// Elastic-fleet benchmark: arrival-driven autoscaling over mixed GPU pools.
//
// Serves two canonical production traces on a heterogeneous fleet cluster
// (whole racks of A100-80G, L40-48G and V100-32G):
//   * diurnal — sinusoidal day/night load swinging around the mean;
//   * flash   — a viral-moment step burst on steady background traffic.
// Each trace runs twice over identical topology and seed:
//   * static  — PR-4-style fixed fleet, provisioned for the trace's PEAK
//     rate and billed for every GPU from start to finish;
//   * elastic — starts at the minimum fleet; a FleetController watches the
//     router's dispatch counter, plans scale-up replicas out of the spare
//     pool (planner::plan_replica picks the hardware class that fits), and
//     drains + releases replicas when demand falls.
// The controller compares its EWMA against the planner's capacity-model
// service rate — a theoretical ceiling above realized throughput — so the
// elastic cells run a lower target_utilization than the 0.65 default.
//
// Reports SLA attainment, GPU-hours, and the post-burst p99 TTFT per cell,
// writes BENCH_autoscale.json, and prints the verdict line CI asserts:
// on the diurnal trace the elastic fleet must match static SLA attainment
// (within 2 points) on strictly fewer GPU-hours, and on the flash trace it
// must recover post-burst p99 TTFT back under the SLA within the window.
// Fixed seed: reruns are byte-identical (the determinism gate diffs the
// JSON).
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

namespace {

using namespace hero;

std::uint64_t g_seed = 29;
bool g_quick = false;

constexpr double kSlaTolerance = 0.02;

topo::Graph hetero_cluster() {
  topo::FleetClusterOptions opts;
  opts.racks = 6;
  opts.rack_hardware = {
      {topo::GpuModel::kA100_80, 80.0 * units::GB},
      {topo::GpuModel::kL40_48, 48.0 * units::GB},
      {topo::GpuModel::kV100_32, 32.0 * units::GB},
  };
  return topo::make_fleet_cluster(opts);
}

struct Scenario {
  std::string name;
  wl::Trace trace;
  double mean_rate = 0.0;  ///< elastic planner sizing (expected rate)
  double peak_rate = 0.0;  ///< static planner sizing (peak provisioning)
  std::size_t static_instances = 2;
  Time burst_end = 0.0;  ///< flash only: recovery window starts here
};

Scenario diurnal_scenario() {
  Scenario s;
  s.name = "diurnal";
  wl::DiurnalOptions opts;
  opts.base.rate = 4.0;
  opts.base.count = g_quick ? 400 : 1200;
  opts.base.seed = g_seed;
  opts.base.lengths = wl::sharegpt_lengths();
  opts.period = 180.0;
  opts.amplitude = 0.8;
  s.trace = wl::generate_diurnal_trace(opts);
  s.mean_rate = raw(opts.base.rate);
  s.peak_rate = raw(opts.base.rate) * (1.0 + opts.amplitude);
  s.static_instances = 2;
  return s;
}

Scenario flash_scenario() {
  Scenario s;
  s.name = "flash";
  wl::FlashCrowdOptions opts;
  opts.base.rate = 1.5;
  // ~45 pre-burst + ~270 burst arrivals; everything past that is the
  // post-burst recovery window the verdict measures (30s in quick mode,
  // ~190s in the full run).
  opts.base.count = g_quick ? 360 : 600;
  opts.base.seed = g_seed + 1;
  opts.base.lengths = wl::sharegpt_lengths();
  opts.burst_start = 30.0;
  opts.burst_duration = 30.0;
  opts.burst_multiplier = 6.0;
  s.trace = wl::generate_flash_crowd_trace(opts);
  s.mean_rate = raw(opts.base.rate);
  s.peak_rate = raw(opts.base.rate) * opts.burst_multiplier;
  s.static_instances = 2;
  s.burst_end = opts.burst_start + opts.burst_duration;
  return s;
}

ExperimentConfig base_config(const Scenario& s, bool elastic) {
  ExperimentConfig cfg;
  cfg.topology = hetero_cluster();
  cfg.serving.model = llm::opt_66b();
  cfg.serving.seed = g_seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;
  if (elastic) {
    // Min-start: one replica sized for the expected (mean) rate; the
    // controller buys the rest of the peak out of the spare pool.
    cfg.workload.rate = s.mean_rate;
    cfg.fleet.instances = 1;
    cfg.fleet.autoscale.enabled = true;
    cfg.fleet.autoscale.tick_period = 5.0;
    cfg.fleet.autoscale.warmup_delay = 15.0;
    cfg.fleet.autoscale.cooldown = 10.0;
    cfg.fleet.autoscale.target_utilization = 0.5;
  } else {
    // Peak provisioning: the whole static fleet is sized for the worst
    // minute of the trace and held for the full run.
    cfg.workload.rate = s.peak_rate;
    cfg.fleet.instances = s.static_instances;
  }
  return cfg;
}

/// p99 TTFT over the requests that ARRIVED in [from, to) — windowed view
/// of the fleet-wide retired samples (sorted by arrival).
double windowed_ttft_p99(const std::vector<serve::RetiredSample>& samples,
                         Time from, Time to) {
  std::vector<double> ttfts;
  for (const serve::RetiredSample& s : samples) {
    if (s.arrival >= from && s.arrival < to) ttfts.push_back(raw(s.ttft));
  }
  if (ttfts.empty()) return 0.0;
  std::sort(ttfts.begin(), ttfts.end());
  const double idx = 0.99 * static_cast<double>(ttfts.size() - 1);
  return ttfts[static_cast<std::size_t>(idx)];
}

struct Cell {
  FleetExperimentResult result;
  double recovery_p99 = 0.0;  ///< flash only: post-burst window p99 TTFT
  bool ok = false;
};

Cell run_cell(const Scenario& s, bool elastic) {
  const ExperimentConfig cfg = base_config(s, elastic);
  Cell cell;
  cell.result = run_fleet_experiment(SystemKind::kHeroServe, cfg, s.trace);
  cell.ok = cell.result.ok();
  if (cell.ok && s.burst_end > 0.0) {
    const Time end = s.trace.back().arrival;
    cell.recovery_p99 =
        windowed_ttft_p99(cell.result.report.samples, s.burst_end, end + 1.0);
  }
  return cell;
}

std::map<std::string, Cell> g_cells;
std::vector<Scenario> g_scenarios;

std::string cell_key(const std::string& scenario, bool elastic) {
  return scenario + "/" + (elastic ? "elastic" : "static");
}

void Autoscale_Cell(benchmark::State& state, std::size_t scenario_idx,
                    bool elastic) {
  const Scenario& s = g_scenarios[scenario_idx];
  Cell cell;
  for (auto _ : state) cell = run_cell(s, elastic);
  state.counters["sla_attainment"] =
      cell.result.report.aggregate.sla_attainment;
  state.counters["gpu_hours"] = cell.result.report.gpu_hours;
  state.counters["peak_instances"] =
      static_cast<double>(cell.result.report.autoscale.peak_instances);
  g_cells[cell_key(s.name, elastic)] = std::move(cell);
}

void register_cells() {
  for (std::size_t i = 0; i < g_scenarios.size(); ++i) {
    for (const bool elastic : {false, true}) {
      benchmark::RegisterBenchmark(
          ("Autoscale_Cell/" + cell_key(g_scenarios[i].name, elastic))
              .c_str(),
          [i, elastic](benchmark::State& state) {
            Autoscale_Cell(state, i, elastic);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_tables() {
  for (const Scenario& s : g_scenarios) {
    hero::bench::FigureTable table(
        "Elastic vs static fleet: " + s.name +
            " trace, mixed A100/L40/V100 pools",
        {"fleet", "SLA att.", "GPU-hours", "TTFT p99 (s)",
         "post-burst p99 (s)", "peak inst.", "ups/drains/rel"});
    for (const bool elastic : {false, true}) {
      const Cell& c = g_cells[cell_key(s.name, elastic)];
      if (!c.ok) {
        table.add_row({elastic ? "elastic" : "static", "plan-fail"});
        continue;
      }
      const serve::FleetReport& r = c.result.report;
      table.add_row(
          {elastic ? "elastic" : "static",
           fmt_double(r.aggregate.sla_attainment, 3),
           fmt_double(r.gpu_hours, 3), fmt_double(r.aggregate.ttft.p99(), 2),
           s.burst_end > 0.0 ? fmt_double(c.recovery_p99, 2) : "-",
           std::to_string(r.autoscale.peak_instances),
           std::to_string(r.autoscale.scale_ups) + "/" +
               std::to_string(r.autoscale.drains) + "/" +
               std::to_string(r.autoscale.releases)});
    }
    table.print();
  }
}

void write_json() {
  hero::bench::JsonReport json("autoscale");
  for (const Scenario& s : g_scenarios) {
    for (const bool elastic : {false, true}) {
      const Cell& c = g_cells[cell_key(s.name, elastic)];
      auto& row = json.add_row();
      row.str("scenario", s.name)
          .str("fleet", elastic ? "elastic" : "static");
      if (!c.ok) {
        row.integer("feasible", 0);
        continue;
      }
      const serve::FleetReport& r = c.result.report;
      row.integer("feasible", 1);
      hero::bench::report_latency_fields(row, r.aggregate);
      row.num("gpu_hours", r.gpu_hours)
          .num("recovery_ttft_p99_s", c.recovery_p99)
          .integer("completed", r.aggregate.completed)
          .integer("gpus_used", c.result.plan.gpus_used)
          .integer("peak_instances", r.autoscale.peak_instances)
          .integer("scale_ups", r.autoscale.scale_ups)
          .integer("drains", r.autoscale.drains)
          .integer("releases", r.autoscale.releases)
          .integer("plan_failures", r.autoscale.plan_failures)
          .integer("ticks", r.autoscale.ticks);
    }
  }
  json.write("BENCH_autoscale.json");
}

/// The headline claims this harness exists to demonstrate. CI greps for
/// "autoscale verdict: elastic PASSES".
void print_verdict() {
  const double sla_ttft = 2.5;
  bool diurnal_ok = false;
  bool flash_ok = false;

  const Cell& ds = g_cells[cell_key("diurnal", false)];
  const Cell& de = g_cells[cell_key("diurnal", true)];
  if (ds.ok && de.ok) {
    const serve::FleetReport& rs = ds.result.report;
    const serve::FleetReport& re = de.result.report;
    diurnal_ok =
        re.aggregate.sla_attainment >=
            rs.aggregate.sla_attainment - kSlaTolerance &&
        re.gpu_hours < rs.gpu_hours;
    std::printf("diurnal: elastic SLA %.3f vs static %.3f, GPU-hours %.3f "
                "vs %.3f -> %s\n",
                re.aggregate.sla_attainment, rs.aggregate.sla_attainment,
                re.gpu_hours, rs.gpu_hours, diurnal_ok ? "ok" : "FAIL");
  } else {
    std::printf("diurnal: missing cell (static ok=%d elastic ok=%d)\n",
                ds.ok ? 1 : 0, de.ok ? 1 : 0);
  }

  const Cell& fe = g_cells[cell_key("flash", true)];
  if (fe.ok) {
    flash_ok = fe.result.report.autoscale.scale_ups >= 1 &&
               fe.recovery_p99 > 0.0 && fe.recovery_p99 <= sla_ttft;
    std::printf("flash: elastic scale-ups %llu, post-burst p99 TTFT %.2fs "
                "(SLA %.1fs) -> %s\n",
                static_cast<unsigned long long>(
                    fe.result.report.autoscale.scale_ups),
                fe.recovery_p99, sla_ttft, flash_ok ? "ok" : "FAIL");
  } else {
    std::printf("flash: missing elastic cell\n");
  }

  std::printf("autoscale verdict: elastic %s (diurnal: match-SLA on fewer "
              "GPU-hours; flash: p99 TTFT recovered in-window)\n",
              diurnal_ok && flash_ok ? "PASSES" : "FAILS");
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv,
      "bench_autoscale [--seed N] [--quick] [google-benchmark flags]");
  if (opts.seed_given) g_seed = opts.seed;
  g_quick = opts.quick;
  g_scenarios.push_back(diurnal_scenario());
  g_scenarios.push_back(flash_scenario());
  register_cells();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  write_json();
  print_verdict();
  return 0;
}
