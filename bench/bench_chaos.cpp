// Chaos benchmark: adaptive vs static scheduling under injected faults.
//
// Serves the same fixed-rate OPT-66B chatbot trace (cross-server TP8 on the
// Fig. 6 testbed) under HeroServe and the three static baselines, three
// times each: a clean run, a link-flap plan, and a switch slot-exhaustion
// plan. Identical seed and identical fault plan per column, so the only
// difference between systems is how their communication scheduling reacts:
//   * link_flap degrades two non-leader GPU uplinks (w0g1-sw1, w1g1-sw1) to
//     5% in periodic bursts. Sharded INA and flat rings stream through
//     every member NIC and stall; HeroServe's controller re-costs the
//     afflicted policies (immediately via the injector hook, then each
//     tick from link measurements) and shifts to hierarchical ring, whose
//     wide phase only touches the healthy leader uplinks.
//   * slot_exhaust seizes the two switches' aggregator pools in
//     alternating windows. DS-SwitchML queues behind the seized slots,
//     DS-ATP pays the host-PS fallback detour; HeroServe's slot-health
//     feedback surcharges the starved switch's INA policies so affected
//     groups hop to the healthy switch (or hierarchical ring) and are
//     re-promoted after recovery.
//
// Reports goodput + p50/p99 TTFT/TPOT per (plan, system) cell, the fault
// counts, and writes BENCH_chaos.json for machine consumption. Fixed seed:
// reruns are byte-identical (the determinism gate checks this).
#include "bench_util.hpp"

namespace {

using namespace hero;

std::uint64_t g_seed = 17;

faults::FaultPlan link_flap_plan() {
  faults::FaultPlan plan;
  for (const char* edge : {"w0g1-sw1", "w1g1-sw1"}) {
    faults::FaultEvent ev;
    ev.kind = faults::FaultKind::kLinkFlap;
    ev.at = 2.0;
    ev.period = 4.0;
    ev.duration = 2.0;  // degraded half of each cycle
    ev.count = 10;
    ev.target = edge;
    ev.magnitude = 0.05;
    plan.events.push_back(ev);
  }
  return plan;
}

faults::FaultPlan slot_exhaust_plan() {
  // Alternating seizures: one switch's aggregator pool at a time, so a
  // scheduler that can re-place aggregation always has a healthy switch
  // available. The static round-robin pinning can't move.
  faults::FaultPlan plan;
  for (int window = 0; window < 8; ++window) {
    faults::FaultEvent ev;
    ev.kind = faults::FaultKind::kSlotExhaust;
    ev.at = 2.0 + 6.0 * window;
    ev.duration = 3.0;
    ev.target = (window % 2 == 0) ? "sw0" : "sw1";
    ev.magnitude = 4096;  // capped at the pool size: full exhaustion
    plan.events.push_back(ev);
  }
  return plan;
}

struct ChaosScenario {
  const char* name = nullptr;
  faults::FaultPlan (*plan)() = nullptr;
};

const ChaosScenario kClean{"clean", nullptr};
const ChaosScenario kLinkFlap{"link_flap", link_flap_plan};
const ChaosScenario kSlotExhaust{"slot_exhaust", slot_exhaust_plan};

struct Cell {
  serve::ServingReport report;
  bool ok = false;
};

Cell run_cell(SystemKind kind, const ChaosScenario& scenario) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 1.2;
  cfg.workload.count = 60;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = g_seed;
  cfg.serving.seed = g_seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  cfg.min_p_tens = 8;  // cross-server TP: communication on the fault path
  if (scenario.plan != nullptr) cfg.fault_plan = scenario.plan();

  Cell cell;
  const ExperimentResult r = run_experiment(kind, cfg);
  cell.ok = r.ok();
  if (r.ok()) cell.report = r.report;
  return cell;
}

std::map<std::string, Cell> g_cells;

std::string cell_key(const ChaosScenario& scenario, SystemKind kind) {
  return std::string(scenario.name) + "/" + to_string(kind);
}

void Chaos_Cell(benchmark::State& state, SystemKind kind,
                const ChaosScenario& scenario) {
  Cell cell;
  for (auto _ : state) cell = run_cell(kind, scenario);
  g_cells[cell_key(scenario, kind)] = cell;
  state.counters["goodput_rps"] = raw(cell.report.requests_per_second);
  state.counters["sla_attainment"] = cell.report.sla_attainment;
  state.counters["ttft_p99_s"] = cell.report.ttft.p99();
  state.counters["tpot_p99_s"] = cell.report.tpot.p99();
}

#define CHAOS(scenario, system)                                         \
  BENCHMARK_CAPTURE(Chaos_Cell, scenario##_##system,                    \
                    SystemKind::k##system, k##scenario)                 \
      ->Iterations(1)->Unit(benchmark::kMillisecond)

CHAOS(Clean, HeroServe);
CHAOS(Clean, DistServe);
CHAOS(Clean, DsAtp);
CHAOS(Clean, DsSwitchMl);
CHAOS(LinkFlap, HeroServe);
CHAOS(LinkFlap, DistServe);
CHAOS(LinkFlap, DsAtp);
CHAOS(LinkFlap, DsSwitchMl);
CHAOS(SlotExhaust, HeroServe);
CHAOS(SlotExhaust, DistServe);
CHAOS(SlotExhaust, DsAtp);
CHAOS(SlotExhaust, DsSwitchMl);

void print_scenario(const ChaosScenario& scenario) {
  hero::bench::FigureTable table(
      std::string("Chaos (") + scenario.name +
          "): OPT-66B chatbot @1.2 req/s, cross-server TP8",
      {"system", "goodput (req/s)", "SLA att.", "TTFT p50/p99 (s)",
       "TPOT p50/p99 (s)", "INA fallbacks"});
  for (SystemKind kind : kAllSystems) {
    const Cell& c = g_cells[cell_key(scenario, kind)];
    if (!c.ok) {
      table.add_row({to_string(kind), "plan-fail"});
      continue;
    }
    table.add_row(
        {to_string(kind), fmt_double(raw(c.report.requests_per_second), 3),
         fmt_double(c.report.sla_attainment, 3),
         fmt_double(c.report.ttft.median(), 2) + " / " +
             fmt_double(c.report.ttft.p99(), 2),
         fmt_double(c.report.tpot.median(), 4) + " / " +
             fmt_double(c.report.tpot.p99(), 4),
         std::to_string(c.report.ina_fallbacks)});
  }
  table.print();
}

void write_json() {
  hero::bench::JsonReport json("chaos");
  for (const ChaosScenario* scenario :
       {&kClean, &kLinkFlap, &kSlotExhaust}) {
    for (SystemKind kind : kAllSystems) {
      const Cell& c = g_cells[cell_key(*scenario, kind)];
      auto& row = json.add_row();
      row.str("scenario", scenario->name).str("system", to_string(kind));
      hero::bench::report_latency_fields(row, c.report);
      row.integer("completed", c.report.completed)
          .integer("ina_fallbacks", c.report.ina_fallbacks);
    }
  }
  json.write("BENCH_chaos.json");
}

/// The headline claim this harness exists to demonstrate: under both fault
/// plans the adaptive scheduler must keep more goodput and a lower p99
/// TTFT than every static baseline.
void print_verdict() {
  bool adaptive_wins = true;
  for (const ChaosScenario* scenario : {&kLinkFlap, &kSlotExhaust}) {
    const Cell& hero_cell =
        g_cells[cell_key(*scenario, SystemKind::kHeroServe)];
    for (SystemKind kind :
         {SystemKind::kDistServe, SystemKind::kDsAtp,
          SystemKind::kDsSwitchMl}) {
      const Cell& base = g_cells[cell_key(*scenario, kind)];
      if (!hero_cell.ok || !base.ok) continue;
      const bool wins = hero_cell.report.requests_per_second >
                            base.report.requests_per_second &&
                        hero_cell.report.ttft.p99() < base.report.ttft.p99();
      if (!wins) {
        adaptive_wins = false;
        std::printf("verdict: HeroServe does NOT beat %s under %s\n",
                    to_string(kind), scenario->name);
      }
    }
  }
  std::printf("chaos verdict: adaptive scheduler %s every static baseline "
              "on goodput + p99 TTFT under faults\n",
              adaptive_wins ? "beats" : "FAILS to beat");
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv, "bench_chaos [--seed N] [google-benchmark flags]");
  if (opts.seed_given) g_seed = opts.seed;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_scenario(kClean);
  print_scenario(kLinkFlap);
  print_scenario(kSlotExhaust);
  write_json();
  print_verdict();
  return 0;
}
