// Collective-scheme crossover study: ring vs INA vs their hierarchical
// (NVLink-local) variants as message size and group size vary.
//
// This is the design-space map behind Alg. 2's per-group alpha/beta choice
// and the online scheduler's policy set: where flat INA beats flat ring,
// and how much NVLink-local reduction buys on the testbed.
#include "bench_util.hpp"
#include "collectives/engine.hpp"
#include "netsim/flownet.hpp"

namespace {

using namespace hero;

enum class Variant { kFlatRing, kFlatIna, kHierRing, kHierIna };

const char* name_of(Variant v) {
  switch (v) {
    case Variant::kFlatRing: return "flat ring (Ethernet)";
    case Variant::kFlatIna: return "flat INA";
    case Variant::kHierRing: return "hier ring (NVLink+Eth)";
    case Variant::kHierIna: return "hier INA (NVLink+Eth)";
  }
  return "?";
}

/// All-reduce over 8 GPUs (two testbed servers) with the given scheme.
Time run_collective(Variant variant, Bytes bytes,
                    topo::IntraLink intra = topo::IntraLink::kNvLink) {
  topo::TestbedOptions topts;
  topts.links.intra_link = intra;
  const topo::Graph graph = topo::make_testbed(topts);
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);

  const auto by_server = graph.gpus_by_server();
  std::vector<topo::NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());

  const bool hier =
      variant == Variant::kHierRing || variant == Variant::kHierIna;
  const bool ina =
      variant == Variant::kFlatIna || variant == Variant::kHierIna;
  const topo::PathConstraints constraints{hier, true};
  const coll::Router route =
      coll::shortest_path_router(graph, constraints);
  const auto ranked =
      coll::rank_aggregation_switches(graph, members, constraints, 1);

  coll::AllReducePlan plan;
  if (hier) {
    plan = coll::make_hierarchical_plan(
        graph, members, bytes,
        ina ? coll::Scheme::kInaSync : coll::Scheme::kRing, route,
        ina ? ranked.front() : topo::kInvalidNode);
  } else if (ina) {
    plan = coll::make_ina_plan(members, bytes, ranked.front(),
                               coll::Scheme::kInaSync, route);
  } else {
    plan = coll::make_ring_plan(members, bytes, route);
  }

  Time latency = 0;
  engine.all_reduce(std::move(plan), [&](const coll::AllReduceResult& r) {
    latency = r.latency();
  });
  simulator.run();
  return latency;
}

const Bytes kSizes[] = {256 * units::KiB, 1 * units::MB, 4 * units::MB,
                        16 * units::MB, 64 * units::MB};

std::map<std::string, Time> g_latency;

void Coll_Case(benchmark::State& state, Variant variant, Bytes bytes) {
  Time latency = 0;
  for (auto _ : state) {
    latency = run_collective(variant, bytes);
    benchmark::DoNotOptimize(latency);
  }
  g_latency[std::string(name_of(variant)) + "/" +
            fmt_double(bytes / units::MB, 2)] = latency;
  state.counters["latency_us"] = latency / units::us;
  // Algorithmic bandwidth: payload per member / latency.
  state.counters["algbw_GBps"] = raw(bytes / latency) / 1e9;
}

#define COLL(variant, tag)                                                  \
  BENCHMARK_CAPTURE(Coll_Case, tag##_256KiB, Variant::k##variant,           \
                    256 * units::KiB)->Iterations(1);                       \
  BENCHMARK_CAPTURE(Coll_Case, tag##_1MB, Variant::k##variant,              \
                    1 * units::MB)->Iterations(1);                          \
  BENCHMARK_CAPTURE(Coll_Case, tag##_4MB, Variant::k##variant,              \
                    4 * units::MB)->Iterations(1);                          \
  BENCHMARK_CAPTURE(Coll_Case, tag##_16MB, Variant::k##variant,             \
                    16 * units::MB)->Iterations(1);                         \
  BENCHMARK_CAPTURE(Coll_Case, tag##_64MB, Variant::k##variant,             \
                    64 * units::MB)->Iterations(1)

COLL(FlatRing, flat_ring);
COLL(FlatIna, flat_ina);
COLL(HierRing, hier_ring);
COLL(HierIna, hier_ina);

}  // namespace

void Coll_PcieCase(benchmark::State& state, Variant variant, Bytes bytes) {
  // SVII future work: the hierarchical schemes on PCIe-only servers
  // (cross-NUMA penalties included).
  Time latency = 0;
  for (auto _ : state) {
    latency = run_collective(variant, bytes, topo::IntraLink::kPcie);
  }
  g_latency[std::string(name_of(variant)) + "+pcie/" +
            fmt_double(bytes / units::MB, 2)] = latency;
  state.counters["latency_us"] = latency / units::us;
}

BENCHMARK_CAPTURE(Coll_PcieCase, pcie_hier_ring_16MB, Variant::kHierRing,
                  16 * units::MB)->Iterations(1);
BENCHMARK_CAPTURE(Coll_PcieCase, pcie_hier_ina_16MB, Variant::kHierIna,
                  16 * units::MB)->Iterations(1);

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_collectives [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  hero::bench::FigureTable table(
      "All-reduce latency (ms), 8 GPUs across 2 testbed servers",
      {"scheme", "256KiB", "1MB", "4MB", "16MB", "64MB"});
  for (Variant v : {Variant::kFlatRing, Variant::kFlatIna,
                    Variant::kHierRing, Variant::kHierIna}) {
    std::vector<std::string> row{name_of(v)};
    for (Bytes size : kSizes) {
      row.push_back(fmt_double(
          g_latency[std::string(name_of(v)) + "/" +
                    fmt_double(size / units::MB, 2)] /
              units::ms,
          3));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nPCIe future-work mode (16MB): hier ring %.3f ms, hier INA %.3f ms "
      "(NVLink: %.3f / %.3f ms)\n",
      g_latency["hier ring (NVLink+Eth)+pcie/16.00"] / units::ms,
      g_latency["hier INA (NVLink+Eth)+pcie/16.00"] / units::ms,
      g_latency["hier ring (NVLink+Eth)/16.00"] / units::ms,
      g_latency["hier INA (NVLink+Eth)/16.00"] / units::ms);

  hero::bench::JsonReport json("collectives");
  for (Variant v : {Variant::kFlatRing, Variant::kFlatIna,
                    Variant::kHierRing, Variant::kHierIna}) {
    for (Bytes size : kSizes) {
      const Time latency = g_latency[std::string(name_of(v)) + "/" +
                                     fmt_double(size / units::MB, 2)];
      json.add_row()
          .str("scheme", name_of(v))
          .num("message_mb", size / units::MB)
          .num("latency_ms", latency / units::ms);
    }
  }
  for (const char* scheme :
       {"hier ring (NVLink+Eth)", "hier INA (NVLink+Eth)"}) {
    json.add_row()
        .str("scheme", std::string(scheme) + "+pcie")
        .num("message_mb", 16.0)
        .num("latency_ms",
             g_latency[std::string(scheme) + "+pcie/16.00"] / units::ms);
  }
  json.write("BENCH_collectives.json");
  return 0;
}
