// Fig. 10 reproduction: memory efficiency of storing the KV cache.
// Summarization workload, OPT-175B, low arrival rate, 2tracks pods.
//
// Paper (SV-B): "HeroServe consistently maintains the lowest memory
// utilization in both 2tracks and 8tracks scenarios. Its high transmission
// efficiency results in more frequent KV cache refreshes, reducing memory
// usage."
//
// We run the same trace through all four systems and report the
// time-averaged and peak KV-cache utilization of the decode cluster.
#include "bench_util.hpp"

namespace {

using namespace hero;

struct Cell {
  double kv_avg = 0;
  double kv_peak = 0;
  double tpot_p90 = 0;
  std::size_t completed = 0;
  std::vector<serve::KvSample> timeline;
};

topo::Graph make_two_tracks() {
  topo::TracksOptions opts;
  opts.servers = 12;
  opts.tracks = 2;
  opts.servers_per_pod = 6;
  opts.core_switches = 3;
  // 4-GPU servers (as on the paper's own testbed): OPT-175B instances must
  // span servers, which is the regime the paper's evaluation exercises.
  opts.gpus_per_server = 4;
  topo::Graph g = topo::make_tracks_cluster(opts);
  const auto ps = g.add_server("ps");
  g.add_edge(ps, g.find("p0a0"), topo::LinkKind::kEthernet,
             100 * units::Gbps);
  g.add_edge(ps, g.find("p0a1"), topo::LinkKind::kEthernet,
             100 * units::Gbps);
  return g;
}

Cell run_cell(SystemKind kind) {
  ExperimentConfig cfg;
  cfg.topology = make_two_tracks();
  cfg.serving.model = llm::opt_175b();
  cfg.workload.rate = 0.25;  // scaled counterpart of the paper's 0.07 req/s
  cfg.workload.count = 30;
  cfg.workload.lengths = wl::longbench_lengths();
  cfg.workload.seed = 29;
  cfg.serving.sla_ttft = 25.0;  // simulation summarization SLA (SV)
  cfg.serving.sla_tpot = 0.2;
  cfg.min_p_tens = 8;   // cross-server deployments (SII-B premise)
  // All systems run the same decode concurrency so the figure isolates how
  // fast each one drains KV (the paper's mechanism), not how large a batch
  // its planner dares to admit.
  cfg.serving.decode_batch_limit = 16;

  const ExperimentResult r = run_experiment(kind, cfg);
  Cell cell;
  cell.kv_avg = r.report.kv_utilization_avg;
  cell.kv_peak = r.report.kv_utilization_peak;
  cell.tpot_p90 = r.report.tpot.p90();
  cell.completed = r.report.completed;
  cell.timeline = r.report.kv_timeline;
  return cell;
}

std::map<std::string, Cell> g_cells;

void Fig10_Cell(benchmark::State& state, SystemKind kind) {
  Cell cell;
  for (auto _ : state) cell = run_cell(kind);
  g_cells[to_string(kind)] = cell;
  state.counters["kv_util_avg"] = cell.kv_avg;
  state.counters["kv_util_peak"] = cell.kv_peak;
}

BENCHMARK_CAPTURE(Fig10_Cell, HeroServe, SystemKind::kHeroServe)
    ->Iterations(1);
BENCHMARK_CAPTURE(Fig10_Cell, DistServe, SystemKind::kDistServe)
    ->Iterations(1);
BENCHMARK_CAPTURE(Fig10_Cell, DsAtp, SystemKind::kDsAtp)->Iterations(1);
BENCHMARK_CAPTURE(Fig10_Cell, DsSwitchMl, SystemKind::kDsSwitchMl)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_fig10_memory [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  hero::bench::FigureTable table(
      "Fig. 10: KV-cache memory utilization, summarization, OPT-175B, "
      "2tracks pods",
      {"system", "KV util avg", "KV util peak", "TPOT p90 (s)",
       "completed"});
  for (SystemKind kind : kAllSystems) {
    const Cell& c = g_cells[to_string(kind)];
    table.add_row({to_string(kind), fmt_double(c.kv_avg, 4),
                   fmt_double(c.kv_peak, 4), fmt_double(c.tpot_p90, 4),
                   std::to_string(c.completed)});
  }
  table.print();

  // The "over time" view of the figure: occupancy sampled on a fixed grid.
  hero::bench::FigureTable timeline(
      "KV utilization over time (sampled every 40 s of simulated time)",
      {"t (s)", "HeroServe", "DistServe", "DS-ATP", "DS-SwitchML"});
  double horizon = 0;
  for (SystemKind kind : kAllSystems) {
    const auto& tl = g_cells[to_string(kind)].timeline;
    if (!tl.empty()) horizon = std::max(horizon, raw(tl.back().time));
  }
  auto at_time = [&](SystemKind kind, double t) {
    const auto& tl = g_cells[to_string(kind)].timeline;
    double v = 0;
    for (const serve::KvSample& s : tl) {
      if (s.time > t) break;
      v = s.utilization;
    }
    return v;
  };
  for (double t = 0; t <= horizon; t += 40.0) {
    std::vector<std::string> row{fmt_double(t, 0)};
    for (SystemKind kind : kAllSystems) {
      row.push_back(fmt_double(at_time(kind, t), 3));
    }
    timeline.add_row(row);
  }
  timeline.print();
  std::printf(
      "paper: HeroServe consistently maintains the lowest memory "
      "utilization\n");

  hero::bench::JsonReport json("fig10_memory");
  for (SystemKind kind : kAllSystems) {
    const Cell& c = g_cells[to_string(kind)];
    json.add_row()
        .str("system", to_string(kind))
        .num("kv_util_avg", c.kv_avg)
        .num("kv_util_peak", c.kv_peak)
        .num("tpot_p90_s", c.tpot_p90)
        .integer("completed", c.completed);
  }
  json.write("BENCH_fig10_memory.json");
  return 0;
}
