// Fig. 1 reproduction: prefill cost breakdown of LLaMA-3-70B with TP=4,
// batch of 8 requests x 1024 input tokens, NCCL ring all-reduce over
// cross-server 100 Gbps Ethernet.
//
// Paper: "the communication latency of all-reduce accounts for over 65% of
// the overall latency on L40 GPU, and the latency exceeds 75% on A100 due
// to its larger computation FLOPS."
//
// Compute comes from the roofline kernel model; communication executes a
// real ring all-reduce (per-layer sync volume, 2 syncs/layer) through the
// flow network on a 4-server Ethernet topology.
#include "bench_util.hpp"
#include "collectives/engine.hpp"
#include "gpusim/kernel_model.hpp"
#include "netsim/flownet.hpp"

namespace {

using namespace hero;

struct Breakdown {
  Time compute = 0;
  Time comm = 0;
  [[nodiscard]] double comm_share() const {
    return comm / (comm + compute);
  }
};

/// Four single-GPU servers behind one switch: TP=4 across servers, all
/// synchronization over Ethernet (the paper's cross-server setting).
topo::Graph cross_server_tp4() {
  topo::Graph g;
  const auto sw = g.add_switch("sw", topo::NodeKind::kAccessSwitch, 64);
  for (int i = 0; i < 4; ++i) {
    const auto gpu = g.add_gpu("g" + std::to_string(i),
                               topo::GpuModel::kL40_48, 48 * units::GB, i);
    g.add_edge(gpu, sw, topo::LinkKind::kEthernet, 100 * units::Gbps);
  }
  return g;
}

Breakdown run_breakdown(topo::GpuModel gpu_model) {
  const llm::ModelConfig model = llm::llama3_70b();
  constexpr std::size_t kBatch = 8;
  constexpr std::size_t kInputLen = 1024;
  constexpr std::size_t kKin = kBatch * kInputLen;
  constexpr std::size_t kKin2 = kBatch * kInputLen * kInputLen;
  constexpr std::size_t kTp = 4;

  Breakdown b;

  // Compute: one full prefill pass on the target GPU (noise-free).
  gpu::KernelModelOptions kopts;
  kopts.noise_sigma = 0.0;
  const gpu::KernelModel hw(gpu::spec_of(gpu_model), model, kopts);
  b.compute = hw.prefill_time(kKin, kKin2, model.layers, kTp);

  // Communication: ring all-reduce of the full iteration sync volume
  // (2 syncs/layer x L layers x K_in * h * 2B) across 4 Ethernet workers.
  const topo::Graph graph = cross_server_tp4();
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);
  const coll::Router route = coll::shortest_path_router(graph);
  const Bytes volume = model.iteration_sync_volume(kKin, model.layers);
  engine.all_reduce(
      coll::make_ring_plan(graph.gpus(), volume, route),
      [&](const coll::AllReduceResult& r) { b.comm = r.latency(); });
  simulator.run();
  return b;
}

hero::bench::FigureTable g_table(
    "Fig. 1: LLaMA-3-70B prefill breakdown, TP=4 over 100GbE, batch 8x1024",
    {"GPU", "compute (s)", "all-reduce (s)", "comm share", "paper"});

Breakdown g_l40, g_a100;

void Fig1_L40(benchmark::State& state) {
  for (auto _ : state) g_l40 = run_breakdown(topo::GpuModel::kL40_48);
  state.counters["comm_share_pct"] = 100.0 * g_l40.comm_share();
}
BENCHMARK(Fig1_L40)->Iterations(1);

void Fig1_A100(benchmark::State& state) {
  for (auto _ : state) g_a100 = run_breakdown(topo::GpuModel::kA100_40);
  state.counters["comm_share_pct"] = 100.0 * g_a100.comm_share();
}
BENCHMARK(Fig1_A100)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_fig1_prefill_breakdown [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  g_table.add_row({"L40 FP16/FP16", fmt_double(raw(g_l40.compute), 3),
                   fmt_double(raw(g_l40.comm), 3),
                   fmt_double(100.0 * g_l40.comm_share(), 1) + "%",
                   ">65%"});
  g_table.add_row({"A100 FP16/FP16", fmt_double(raw(g_a100.compute), 3),
                   fmt_double(raw(g_a100.comm), 3),
                   fmt_double(100.0 * g_a100.comm_share(), 1) + "%",
                   ">75%"});
  g_table.print();

  hero::bench::JsonReport json("fig1_prefill_breakdown");
  for (const auto& [gpu, b] :
       {std::pair<const char*, const Breakdown&>{"L40", g_l40},
        {"A100", g_a100}}) {
    json.add_row()
        .str("gpu", gpu)
        .num("compute_s", raw(b.compute))
        .num("allreduce_s", raw(b.comm))
        .num("comm_share", b.comm_share());
  }
  json.write("BENCH_fig1_prefill_breakdown.json");
  return 0;
}
