// Fig. 2 reproduction: INA aggregation delay over homogeneous vs
// heterogeneous networks.
//
// Paper: "For 1 MB of data, two hops of Ethernet links are required,
// resulting in an aggregation delay of approximately 160 us. In a
// heterogeneous network, GPUs use NVLink to forward data to an access
// switch S2 before traversing an Ethernet link. This path significantly
// reduces the delay to about 90 us, nearly 43% lower."
//
// The bench executes both variants through the full stack (routing + flow
// network + switch agent) for the {GN1, GN3} group of the Fig. 2 topology
// and reports the collection delay (time until all contributions reach the
// aggregation switch) and the full all-reduce latency.
#include "bench_util.hpp"
#include "collectives/engine.hpp"
#include "netsim/flownet.hpp"
#include "topology/builders.hpp"

namespace {

using namespace hero;

struct Fig2Result {
  Time collection = 0;
  Time total = 0;
};

Fig2Result run_fig2(bool heterogeneous, Bytes bytes) {
  const topo::Graph graph = topo::make_fig2_example();
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);

  const topo::PathConstraints constraints{heterogeneous, true};
  const coll::Router route = coll::shortest_path_router(graph, constraints);
  const std::vector<topo::NodeId> group{graph.find("GN1"),
                                        graph.find("GN3")};
  const auto ranked =
      coll::rank_aggregation_switches(graph, group, constraints, 1);
  coll::AllReducePlan plan = coll::make_ina_plan(
      group, bytes, ranked.front(), coll::Scheme::kInaSync, route);

  Fig2Result result;
  engine.all_reduce(std::move(plan), [&](const coll::AllReduceResult& r) {
    result.collection = r.collected - r.start;
    result.total = r.latency();
  });
  simulator.run();
  return result;
}

hero::bench::FigureTable g_table(
    "Fig. 2: aggregation delay, 1 MB, {GN1, GN3}",
    {"network", "agg switch path", "collection (us)", "full all-reduce (us)",
     "vs homogeneous"});

Fig2Result g_homo, g_hetero;

void Fig2_Homogeneous(benchmark::State& state) {
  for (auto _ : state) {
    g_homo = run_fig2(false, 1.0 * units::MB);
    benchmark::DoNotOptimize(g_homo);
  }
  state.counters["collection_us"] = g_homo.collection / units::us;
  state.counters["total_us"] = g_homo.total / units::us;
}
BENCHMARK(Fig2_Homogeneous)->Iterations(1);

void Fig2_Heterogeneous(benchmark::State& state) {
  for (auto _ : state) {
    g_hetero = run_fig2(true, 1.0 * units::MB);
    benchmark::DoNotOptimize(g_hetero);
  }
  state.counters["collection_us"] = g_hetero.collection / units::us;
  state.counters["total_us"] = g_hetero.total / units::us;
}
BENCHMARK(Fig2_Heterogeneous)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_fig2_hetero_ina [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  g_table.add_row({"homogeneous (Ethernet only)", "2 Ethernet hops -> core",
                   fmt_double(g_homo.collection / units::us, 1),
                   fmt_double(g_homo.total / units::us, 1), "baseline"});
  g_table.add_row(
      {"heterogeneous (NVLink fwd)", "NVLink + 1 Ethernet hop -> access",
       fmt_double(g_hetero.collection / units::us, 1),
       fmt_double(g_hetero.total / units::us, 1),
       fmt_double(100.0 * (1.0 - g_hetero.collection / g_homo.collection),
                  1) +
           "% lower"});
  g_table.print();
  std::printf(
      "paper: ~160 us homogeneous vs ~90 us heterogeneous (~43%% lower)\n");

  hero::bench::JsonReport json("fig2_hetero_ina");
  for (const auto& [network, r] :
       {std::pair<const char*, const Fig2Result&>{"homogeneous", g_homo},
        {"heterogeneous", g_hetero}}) {
    json.add_row()
        .str("network", network)
        .num("collection_us", r.collection / units::us)
        .num("total_us", r.total / units::us);
  }
  json.write("BENCH_fig2_hetero_ina.json");
  return 0;
}
