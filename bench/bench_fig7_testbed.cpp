// Fig. 7 reproduction: testbed scalability and latency, OPT-66B.
//
// Paper (SV-A): per-GPU goodput at >=90% SLA attainment —
//   chatbot (ShareGPT, SLA 2.5s TTFT / 0.15s TPOT):
//     HeroServe 1.53x / 1.42x / 1.33x over DistServe / DS-ATP / DS-SwitchML
//   summarization (LongBench, SLA 15s TTFT / 0.15s TPOT):
//     1.68x / 1.58x / 1.35x
//   TPOT reduced by ~18.6%-49.2% (chatbot); TTFT by 15.2%-45.2% and TPOT by
//   11.2%-27.3% (summarization).
//
// Each benchmark case binary-searches the maximum Poisson rate at which a
// system keeps >=90% of requests within both SLAs on the Fig. 6 testbed,
// then reports the per-GPU goodput and the latency percentiles at that
// operating point.
#include "bench_util.hpp"

namespace {

using namespace hero;

struct Scenario {
  const char* name = nullptr;
  wl::LengthDistribution lengths;
  Time sla_ttft = 0.0;
  Time sla_tpot = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  /// Minimum TP width. 8 mandates cross-server tensor groups — the
  /// deployment of the paper's own Fig. 1 profile and SII-B premise; 1
  /// leaves the planner free (on this 4-GPU-server testbed it then packs
  /// stages inside NVLink domains and the systems legitimately tie).
  std::size_t min_p_tens = 1;
};

const Scenario kChatbot{"chatbot (cross-server TP8)", wl::sharegpt_lengths(),
                        2.5, 0.15, 0.1, 8.0, 8};
const Scenario kSummarization{"summarization (cross-server TP8)",
                              wl::longbench_lengths(), 15.0, 0.15, 0.02, 2.0,
                              8};
const Scenario kChatbotFree{"chatbot (free placement)",
                            wl::sharegpt_lengths(), 2.5, 0.15, 0.2, 8.0, 1};

std::uint64_t g_seed = 17;
bool g_seed_given = false;

struct Cell {
  double max_rate = 0;
  double per_gpu = 0;
  double ttft_p90 = 0;
  double tpot_p90 = 0;
  std::size_t gpus = 0;
  serve::ServingReport report;  ///< full report at the knee (JSON output)
};

Cell run_cell(SystemKind kind, const Scenario& scenario) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.count = 60;
  cfg.workload.lengths = scenario.lengths;
  cfg.workload.seed = g_seed;
  if (g_seed_given) cfg.serving.seed = g_seed;
  cfg.serving.sla_ttft = scenario.sla_ttft;
  cfg.serving.sla_tpot = scenario.sla_tpot;
  cfg.min_p_tens = scenario.min_p_tens;

  const RateSearchResult search =
      find_max_rate(kind, cfg, scenario.lo, scenario.hi, 0.9, 6);
  Cell cell;
  cell.max_rate = search.max_rate;
  cell.gpus = search.at_max.report.gpus_used;
  cell.per_gpu = cell.gpus ? search.max_rate / cell.gpus : 0.0;
  cell.ttft_p90 = search.at_max.report.ttft.p90();
  cell.tpot_p90 = search.at_max.report.tpot.p90();
  cell.report = search.at_max.report;
  return cell;
}

std::map<std::string, Cell> g_cells;

void Fig7_Cell(benchmark::State& state, SystemKind kind,
               const Scenario& scenario) {
  Cell cell;
  for (auto _ : state) cell = run_cell(kind, scenario);
  g_cells[std::string(scenario.name) + "/" + to_string(kind)] = cell;
  state.counters["max_rate_rps"] = cell.max_rate;
  state.counters["per_gpu_goodput"] = cell.per_gpu;
  state.counters["ttft_p90_s"] = cell.ttft_p90;
  state.counters["tpot_p90_s"] = cell.tpot_p90;
}

#define FIG7(scenario, system)                                           \
  BENCHMARK_CAPTURE(Fig7_Cell, scenario##_##system, SystemKind::k##system, \
                    k##scenario)                                          \
      ->Iterations(1)->Unit(benchmark::kMillisecond)

FIG7(Chatbot, HeroServe);
FIG7(Chatbot, DistServe);
FIG7(Chatbot, DsAtp);
FIG7(Chatbot, DsSwitchMl);
FIG7(Summarization, HeroServe);
FIG7(Summarization, DistServe);
FIG7(Summarization, DsAtp);
FIG7(Summarization, DsSwitchMl);
FIG7(ChatbotFree, HeroServe);
FIG7(ChatbotFree, DistServe);
FIG7(ChatbotFree, DsAtp);
FIG7(ChatbotFree, DsSwitchMl);

void print_scenario(const Scenario& scenario) {
  hero::bench::FigureTable table(
      std::string("Fig. 7 (") + scenario.name +
          "): OPT-66B on the Fig. 6 testbed, 90% SLA attainment",
      {"system", "max rate (req/s)", "per-GPU goodput", "vs system",
       "TTFT p90 (s)", "TPOT p90 (s)"});
  const Cell hero =
      g_cells[std::string(scenario.name) + "/HeroServe"];
  for (SystemKind kind : kAllSystems) {
    const Cell& c = g_cells[std::string(scenario.name) + "/" +
                            to_string(kind)];
    const std::string gain =
        kind == SystemKind::kHeroServe
            ? "-"
            : "Hero " + fmt_double(c.per_gpu > 0
                                       ? hero.per_gpu / c.per_gpu
                                       : 0.0,
                                   2) +
                  "x";
    table.add_row({to_string(kind), fmt_double(c.max_rate, 2),
                   fmt_double(c.per_gpu, 4), gain,
                   fmt_double(c.ttft_p90, 2), fmt_double(c.tpot_p90, 4)});
  }
  table.print();
}

void write_json() {
  hero::bench::JsonReport json("fig7_testbed");
  for (const Scenario* scenario :
       {&kChatbot, &kSummarization, &kChatbotFree}) {
    for (SystemKind kind : kAllSystems) {
      const Cell& c =
          g_cells[std::string(scenario->name) + "/" + to_string(kind)];
      auto& row = json.add_row();
      row.str("scenario", scenario->name)
          .str("system", to_string(kind))
          .num("max_rate_rps", c.max_rate)
          .integer("gpus", c.gpus);
      hero::bench::report_latency_fields(row, c.report);
    }
  }
  json.write("BENCH_fig7.json");
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv,
      "bench_fig7_testbed [--seed N] [google-benchmark flags]");
  g_seed = opts.seed_given ? opts.seed : 17;
  g_seed_given = opts.seed_given;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_json();
  print_scenario(kChatbot);
  std::printf(
      "paper (chatbot): Hero 1.53x/1.42x/1.33x over "
      "DistServe/DS-ATP/DS-SwitchML; TPOT -18.6%%..-49.2%%\n");
  print_scenario(kSummarization);
  std::printf(
      "paper (summarization): Hero 1.68x/1.58x/1.35x; TTFT "
      "-15.2%%..-45.2%%, TPOT -11.2%%..-27.3%%\n");
  print_scenario(kChatbotFree);
  std::printf(
      "(free placement: the planner packs TP stages inside NVLink domains "
      "and all systems honestly tie — see EXPERIMENTS.md)\n");
  return 0;
}
