// Fig. 8 reproduction: large-scale simulation scalability with 2tracks and
// 8tracks network configurations, OPT-175B.
//
// Paper (SV-B): HeroServe boosts scalability by 1.12x-1.94x (2tracks) and
// 1.09x-1.83x (8tracks) over the baselines, and reduces per-token delay by
// 28.4%-42.1%. Chatbot SLA: 4s TTFT / 0.2s TPOT; summarization SLA: 25s /
// 0.2s.
//
// Scale substitution: the paper simulates 1200 8-GPU servers on APEX; a
// fluid DES at that size exceeds this harness's budget, so we run
// structurally identical pods (same tracks wiring, 8-GPU A100 servers) at
// reduced server counts and compare the *shape* — per-GPU goodput ordering
// and ratios across the same four systems.
#include "bench_util.hpp"

namespace {

using namespace hero;

struct TrackSetup {
  const char* name = nullptr;
  int servers = 0;
  int tracks = 0;
  int servers_per_pod = 0;
  int cores = 0;
};

const TrackSetup kTwoTracks{"2tracks", 18, 2, 6, 3};
const TrackSetup kEightTracks{"8tracks", 16, 8, 16, 4};

struct Cell {
  double max_rate = 0;
  double per_gpu = 0;
  double ttft_p90 = 0;
  double tpot_p90 = 0;
};

topo::Graph make_setup(const TrackSetup& setup) {
  topo::TracksOptions opts;
  opts.servers = setup.servers;
  opts.tracks = setup.tracks;
  opts.servers_per_pod = setup.servers_per_pod;
  opts.core_switches = setup.cores;
  // 4-GPU servers (as on the paper's own testbed): OPT-175B instances must
  // span servers, which is the regime the paper's evaluation exercises.
  opts.gpus_per_server = 4;
  topo::Graph g = topo::make_tracks_cluster(opts);
  // PS host for DS-ATP's fallback, dual-homed on the first pod's switches.
  const auto ps = g.add_server("ps");
  g.add_edge(ps, g.find("p0a0"), topo::LinkKind::kEthernet,
             100 * units::Gbps);
  if (setup.tracks > 1) {
    g.add_edge(ps, g.find("p0a1"), topo::LinkKind::kEthernet,
               100 * units::Gbps);
  }
  return g;
}

Cell run_cell(SystemKind kind, const TrackSetup& setup) {
  ExperimentConfig cfg;
  cfg.topology = make_setup(setup);
  cfg.serving.model = llm::opt_175b();
  cfg.workload.count = 40;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 23;
  cfg.serving.sla_ttft = 4.0;   // simulation chatbot SLA (SV)
  cfg.serving.sla_tpot = 0.2;
  cfg.min_p_tens = 8;   // cross-server deployments (SII-B premise)

  const RateSearchResult search = find_max_rate(kind, cfg, 0.1, 6.0, 0.9, 4);
  Cell cell;
  cell.max_rate = search.max_rate;
  const std::size_t gpus = search.at_max.report.gpus_used;
  cell.per_gpu = gpus ? search.max_rate / gpus : 0.0;
  cell.ttft_p90 = search.at_max.report.ttft.p90();
  cell.tpot_p90 = search.at_max.report.tpot.p90();
  return cell;
}

std::map<std::string, Cell> g_cells;

void Fig8_Cell(benchmark::State& state, SystemKind kind,
               const TrackSetup& setup) {
  Cell cell;
  for (auto _ : state) cell = run_cell(kind, setup);
  g_cells[std::string(setup.name) + "/" + to_string(kind)] = cell;
  state.counters["max_rate_rps"] = cell.max_rate;
  state.counters["per_gpu_goodput"] = cell.per_gpu;
  state.counters["tpot_p90_s"] = cell.tpot_p90;
}

#define FIG8(setup, system)                                               \
  BENCHMARK_CAPTURE(Fig8_Cell, setup##_##system, SystemKind::k##system,   \
                    k##setup)                                             \
      ->Iterations(1)->Unit(benchmark::kMillisecond)

FIG8(TwoTracks, HeroServe);
FIG8(TwoTracks, DistServe);
FIG8(TwoTracks, DsAtp);
FIG8(TwoTracks, DsSwitchMl);
FIG8(EightTracks, HeroServe);
FIG8(EightTracks, DistServe);
FIG8(EightTracks, DsAtp);
FIG8(EightTracks, DsSwitchMl);

void print_setup(const TrackSetup& setup) {
  hero::bench::FigureTable table(
      std::string("Fig. 8 (") + setup.name +
          "): OPT-175B chatbot, scaled pods, 90% SLA attainment",
      {"system", "max rate (req/s)", "per-GPU goodput", "Hero vs system",
       "TTFT p90 (s)", "TPOT p90 (s)"});
  const Cell hero = g_cells[std::string(setup.name) + "/HeroServe"];
  for (SystemKind kind : kAllSystems) {
    const Cell& c =
        g_cells[std::string(setup.name) + "/" + to_string(kind)];
    table.add_row(
        {to_string(kind), fmt_double(c.max_rate, 2),
         fmt_double(c.per_gpu, 5),
         kind == SystemKind::kHeroServe
             ? "-"
             : fmt_double(c.per_gpu > 0 ? hero.per_gpu / c.per_gpu : 0.0,
                          2) +
                   "x",
         fmt_double(c.ttft_p90, 2), fmt_double(c.tpot_p90, 4)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_fig8_tracks [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_setup(kTwoTracks);
  std::printf("paper (2tracks): Hero 1.12x-1.94x over baselines\n");
  print_setup(kEightTracks);
  std::printf(
      "paper (8tracks): Hero 1.09x-1.83x; TPOT reduced 28.4%%-42.1%%\n");

  hero::bench::JsonReport json("fig8_tracks");
  for (const TrackSetup* setup : {&kTwoTracks, &kEightTracks}) {
    for (SystemKind kind : kAllSystems) {
      const Cell& c =
          g_cells[std::string(setup->name) + "/" + to_string(kind)];
      json.add_row()
          .str("setup", setup->name)
          .str("system", to_string(kind))
          .num("max_rate_rps", c.max_rate)
          .num("per_gpu_goodput", c.per_gpu)
          .num("ttft_p90_s", c.ttft_p90)
          .num("tpot_p90_s", c.tpot_p90);
    }
  }
  json.write("BENCH_fig8_tracks.json");
  return 0;
}
