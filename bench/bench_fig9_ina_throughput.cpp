// Fig. 9 reproduction: in-network aggregation throughput vs message size
// (4 MB - 64 MB), 2tracks configuration.
//
// Paper (SV-B): "in the 2tracks scenario, HeroServe improves throughput by
// 71.7%, 26%, and 20.1% over DistServe, DS-ATP, and DS-SwitchML".
//
// Setup: one 2tracks pod (6 servers x 8 A100s). Six TP=8 groups, each
// spanning a server pair (4 GPUs + 4 GPUs), run closed-loop all-reduces of
// the given message size for a fixed simulated window. Aggregation
// throughput = aggregate all-reduced payload bytes per second across
// groups. Slot pressure is real: 64 aggregator slots per switch, 32 per
// job, six concurrent jobs — the regime where synchronous INA queues,
// asynchronous INA falls back to the PS, and HeroServe reduces locally
// over NVLink before a two-leader inter-server exchange.
#include "baselines/static_scheduler.hpp"
#include "bench_util.hpp"
#include "online/scheduler.hpp"

namespace {

using namespace hero;

constexpr double kWindowSeconds = 0.5;
constexpr std::size_t kGroups = 6;

topo::Graph make_pod() {
  topo::TracksOptions opts;
  opts.servers = 6;
  opts.tracks = 2;
  opts.servers_per_pod = 6;
  opts.core_switches = 2;
  topo::Graph g = topo::make_tracks_cluster(opts);
  const auto ps = g.add_server("ps");
  g.add_edge(ps, g.find("p0a0"), topo::LinkKind::kEthernet,
             100 * units::Gbps);
  g.add_edge(ps, g.find("p0a1"), topo::LinkKind::kEthernet,
             100 * units::Gbps);
  return g;
}

/// Aggregate all-reduce goodput (bytes of reduced payload per second).
double run_throughput(SystemKind kind, Bytes message) {
  const topo::Graph graph = make_pod();
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);

  std::unique_ptr<coll::CommScheduler> scheduler;
  switch (kind) {
    case SystemKind::kHeroServe:
      scheduler = std::make_unique<online::HeroCommScheduler>(network);
      break;
    case SystemKind::kDistServe:
      scheduler = std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kDistServe);
      break;
    case SystemKind::kDsAtp:
      scheduler = std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kAtp);
      break;
    case SystemKind::kDsSwitchMl:
      scheduler = std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kSwitchMl);
      break;
  }

  // Groups span server pairs: group j = first 4 GPUs of server j plus
  // first 4 GPUs of server (j+1) mod 6, so every all-reduce mixes NVLink
  // locality with mandatory inter-server traffic.
  const auto by_server = graph.gpus_by_server();
  std::vector<coll::GroupId> groups;
  for (std::size_t j = 0; j < kGroups; ++j) {
    std::vector<topo::NodeId> members;
    for (std::size_t i = 0; i < 4; ++i) members.push_back(by_server[j][i]);
    for (std::size_t i = 0; i < 4; ++i) {
      members.push_back(by_server[(j + 1) % by_server.size()][i]);
    }
    groups.push_back(scheduler->register_group(members));
  }
  scheduler->start();

  // Closed loop: each group re-issues its all-reduce on completion.
  std::uint64_t completed = 0;
  std::function<void(std::size_t)> launch = [&](std::size_t g) {
    coll::AllReducePlan plan = scheduler->all_reduce_plan(groups[g], message);
    engine.all_reduce(std::move(plan), [&, g](const coll::AllReduceResult&) {
      ++completed;
      if (simulator.now() < kWindowSeconds) launch(g);
    });
  };
  for (std::size_t g = 0; g < kGroups; ++g) launch(g);
  simulator.run_until(kWindowSeconds * 1.5);

  return static_cast<double>(completed) * raw(message) / kWindowSeconds;
}

std::map<std::string, double> g_throughput;  // "size/system" -> bytes/s
const Bytes kSizes[] = {4 * units::MB, 8 * units::MB, 16 * units::MB,
                        32 * units::MB, 64 * units::MB};

void Fig9_Cell(benchmark::State& state, SystemKind kind, Bytes message) {
  double tput = 0;
  for (auto _ : state) tput = run_throughput(kind, message);
  g_throughput[fmt_double(message / units::MB, 0) + "/" + to_string(kind)] =
      tput;
  state.counters["agg_GBps"] = tput / 1e9;
}

#define FIG9(system)                                                    \
  BENCHMARK_CAPTURE(Fig9_Cell, system##_4MB, SystemKind::k##system,     \
                    4 * units::MB)->Iterations(1);                      \
  BENCHMARK_CAPTURE(Fig9_Cell, system##_8MB, SystemKind::k##system,     \
                    8 * units::MB)->Iterations(1);                      \
  BENCHMARK_CAPTURE(Fig9_Cell, system##_16MB, SystemKind::k##system,    \
                    16 * units::MB)->Iterations(1);                     \
  BENCHMARK_CAPTURE(Fig9_Cell, system##_32MB, SystemKind::k##system,    \
                    32 * units::MB)->Iterations(1);                     \
  BENCHMARK_CAPTURE(Fig9_Cell, system##_64MB, SystemKind::k##system,    \
                    64 * units::MB)->Iterations(1)

FIG9(HeroServe);
FIG9(DistServe);
FIG9(DsAtp);
FIG9(DsSwitchMl);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_fig9_ina_throughput [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  hero::bench::FigureTable table(
      "Fig. 9: aggregation throughput (GB/s of reduced payload), 2tracks "
      "pod, 6 concurrent TP8 groups",
      {"system", "4MB", "8MB", "16MB", "32MB", "64MB", "mean vs Hero"});
  double hero_mean = 0;
  for (SystemKind kind : kAllSystems) {
    std::vector<std::string> row{to_string(kind)};
    double mean = 0;
    for (Bytes size : kSizes) {
      const double t = g_throughput[fmt_double(size / units::MB, 0) + "/" +
                                    to_string(kind)];
      row.push_back(fmt_double(t / 1e9, 2));
      mean += t / 1e9;
    }
    mean /= std::size(kSizes);
    if (kind == SystemKind::kHeroServe) hero_mean = mean;
    row.push_back(kind == SystemKind::kHeroServe
                      ? "-"
                      : "+" + fmt_double(100.0 * (hero_mean / mean - 1.0),
                                         1) +
                            "% for Hero");
    table.add_row(row);
  }
  table.print();
  std::printf(
      "paper (2tracks): Hero +71.7%% / +26%% / +20.1%% over DistServe / "
      "DS-ATP / DS-SwitchML\n");

  hero::bench::JsonReport json("fig9_ina_throughput");
  for (SystemKind kind : kAllSystems) {
    for (Bytes size : kSizes) {
      const double t = g_throughput[fmt_double(size / units::MB, 0) + "/" +
                                    to_string(kind)];
      json.add_row()
          .str("system", to_string(kind))
          .num("message_mb", size / units::MB)
          .num("agg_gbps", t / 1e9);
    }
  }
  json.write("BENCH_fig9_ina_throughput.json");
  return 0;
}
