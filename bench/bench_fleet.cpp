// Fleet benchmark: router policies at multi-instance scale-out.
//
// Packs N replicated OPT-66B (prefill, decode) instances onto the
// rack-scale fleet cluster (oversubscribed ToR uplinks) and serves the
// same bursty ShareGPT-style trace behind each dispatch policy:
//   * rr     — round-robin (even counts, blind to request size and load);
//   * random — seeded uniform pick (the no-information baseline);
//   * jsq    — join-shortest-queue on in-flight requests;
//   * hero   — Eq. 16-style cost: estimated queue delay from the live
//     instance load snapshot, the request's predicted decode residence at
//     the instance's planned TPOT, and the KV-transfer latency of this
//     request at the current flow network's fair-share admission rate.
// Identical seed, trace, topology, and fleet plan per scale — the only
// difference between columns is the dispatch decision. Burstiness plus the
// heavy-tailed prompt lengths make blind policies pile long prefills onto
// one instance; the load-aware policies should hold p99 TTFT down.
//
// Reports goodput + p99 latency + dispatch imbalance per (scale, policy)
// cell, writes BENCH_fleet.json, and prints the verdict line CI asserts:
// the hero router must strictly beat rr and random on both goodput and
// p99 TTFT at every scale. Fixed seed: reruns are byte-identical.
#include "bench_util.hpp"

namespace {

using namespace hero;

std::uint64_t g_seed = 23;
bool g_quick = false;

constexpr serve::RouterPolicy kPolicies[] = {
    serve::RouterPolicy::kRoundRobin, serve::RouterPolicy::kRandom,
    serve::RouterPolicy::kShortestQueue, serve::RouterPolicy::kHeroServe};

std::vector<std::size_t> scales() {
  if (g_quick) return {4};
  return {4, 8, 16};
}

struct Cell {
  planner::FleetPlan plan;
  serve::FleetReport report;
  bool ok = false;
};

Cell run_cell(std::size_t instances, serve::RouterPolicy policy) {
  ExperimentConfig cfg;
  topo::FleetClusterOptions fabric;
  fabric.racks = static_cast<std::int32_t>(instances > 4 ? instances : 4);
  cfg.topology = topo::make_fleet_cluster(fabric);
  cfg.serving.model = llm::opt_66b();
  // Bursty arrivals (skewed load): Markov-modulated rate near the fleet's
  // knee — during a burst the fleet runs hot and a blind dispatch decision
  // queues a whole burst behind one instance.
  cfg.workload.rate = 1.15 * static_cast<double>(instances);
  cfg.workload.count = g_quick ? 240 : 60 * instances;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = g_seed;
  cfg.workload.bursty = true;
  cfg.workload.burst_multiplier = 3.0;
  cfg.workload.burst_fraction = 0.3;
  cfg.serving.seed = g_seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  cfg.fleet.instances = instances;
  cfg.fleet.policy = policy;

  Cell cell;
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  cell.ok = r.ok();
  if (r.ok()) {
    cell.plan = r.plan;
    cell.report = r.report;
  }
  return cell;
}

std::map<std::string, Cell> g_cells;

std::string cell_key(std::size_t instances, serve::RouterPolicy policy) {
  return "n" + std::to_string(instances) + "/" +
         serve::to_string(policy);
}

void Fleet_Cell(benchmark::State& state, std::size_t instances,
                serve::RouterPolicy policy) {
  Cell cell;
  for (auto _ : state) cell = run_cell(instances, policy);
  g_cells[cell_key(instances, policy)] = cell;
  state.counters["goodput_rps"] = raw(cell.report.aggregate.requests_per_second);
  state.counters["ttft_p99_s"] = cell.report.aggregate.ttft.p99();
  state.counters["sla_attainment"] = cell.report.aggregate.sla_attainment;
  state.counters["dispatch_imbalance"] = cell.report.dispatch_imbalance;
}

void register_cells() {
  for (std::size_t n : scales()) {
    for (serve::RouterPolicy policy : kPolicies) {
      benchmark::RegisterBenchmark(
          ("Fleet_Cell/" + cell_key(n, policy)).c_str(),
          [n, policy](benchmark::State& state) {
            Fleet_Cell(state, n, policy);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_tables() {
  for (std::size_t n : scales()) {
    hero::bench::FigureTable table(
        "Fleet scale-out: " + std::to_string(n) +
            " OPT-66B instances, bursty arrivals",
        {"router", "goodput (req/s)", "SLA att.", "TTFT p50/p99 (s)",
         "TPOT p99 (s)", "imbalance", "GPUs"});
    for (serve::RouterPolicy policy : kPolicies) {
      const Cell& c = g_cells[cell_key(n, policy)];
      if (!c.ok) {
        table.add_row({serve::to_string(policy), "plan-fail"});
        continue;
      }
      const serve::ServingReport& agg = c.report.aggregate;
      table.add_row({serve::to_string(policy),
                     fmt_double(raw(agg.requests_per_second), 3),
                     fmt_double(agg.sla_attainment, 3),
                     fmt_double(agg.ttft.median(), 2) + " / " +
                         fmt_double(agg.ttft.p99(), 2),
                     fmt_double(agg.tpot.p99(), 4),
                     fmt_double(c.report.dispatch_imbalance, 3),
                     std::to_string(c.plan.gpus_used)});
    }
    table.print();
  }
}

void write_json() {
  hero::bench::JsonReport json("fleet");
  for (std::size_t n : scales()) {
    for (serve::RouterPolicy policy : kPolicies) {
      const Cell& c = g_cells[cell_key(n, policy)];
      auto& row = json.add_row();
      row.integer("instances", n).str("router", serve::to_string(policy));
      hero::bench::report_latency_fields(row, c.report.aggregate);
      row.num("dispatch_imbalance", c.report.dispatch_imbalance)
          .integer("gpus_used", c.plan.gpus_used)
          .integer("completed", c.report.aggregate.completed);
    }
  }
  json.write("BENCH_fleet.json");
}

/// The headline claim this harness exists to demonstrate: the load-aware
/// hero router must strictly beat round-robin and random dispatch on both
/// goodput and p99 TTFT at every fleet scale.
void print_verdict() {
  bool hero_wins = true;
  for (std::size_t n : scales()) {
    const Cell& hero_cell =
        g_cells[cell_key(n, serve::RouterPolicy::kHeroServe)];
    for (serve::RouterPolicy base :
         {serve::RouterPolicy::kRoundRobin, serve::RouterPolicy::kRandom}) {
      const Cell& c = g_cells[cell_key(n, base)];
      if (!hero_cell.ok || !c.ok) {
        hero_wins = false;
        std::printf("verdict: missing cell at %zu instances\n", n);
        continue;
      }
      const bool wins = hero_cell.report.aggregate.requests_per_second >
                            c.report.aggregate.requests_per_second &&
                        hero_cell.report.aggregate.ttft.p99() <
                            c.report.aggregate.ttft.p99();
      if (!wins) {
        hero_wins = false;
        std::printf("verdict: hero does NOT beat %s at %zu instances\n",
                    serve::to_string(base), n);
      }
    }
  }
  std::printf("fleet verdict: hero router %s rr and random on goodput + "
              "p99 TTFT at every scale\n",
              hero_wins ? "beats" : "FAILS to beat");
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv,
      "bench_fleet [--seed N] [--quick] [google-benchmark flags]");
  if (opts.seed_given) g_seed = opts.seed;
  g_quick = opts.quick;
  register_cells();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  write_json();
  print_verdict();
  return 0;
}
