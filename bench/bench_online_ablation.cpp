// Online-scheduler ablations for the design choices DESIGN.md calls out,
// measured where the scheduler's decisions actually bind: the Fig. 9
// contention harness (six TP=8 groups saturating a 2tracks pod) plus a
// mid-run link failure the scheduler must route around.
//
// Variants:
//  * delta model: Eq. 16's literal delta = D/(T_u*b_c) vs the
//    bottleneck-capacity reading (our default);
//  * gamma (Eq. 18 smoothing) sensitivity;
//  * controller staleness: fast counter polling vs never recalibrating;
//  * frozen policy: adaptation disabled after the first choice (what a
//    purely offline-planned heterogeneous system would do).
#include "bench_util.hpp"
#include "online/scheduler.hpp"

namespace {

using namespace hero;

constexpr double kWindowSeconds = 0.5;
constexpr std::size_t kGroups = 6;
constexpr Bytes kMessage = 16 * units::MB;

topo::Graph make_pod() {
  topo::TracksOptions opts;
  opts.servers = 6;
  opts.tracks = 2;
  opts.servers_per_pod = 6;
  opts.core_switches = 2;
  return topo::make_tracks_cluster(opts);
}

struct Variant {
  const char* name;
  online::OnlineConfig config;
  bool frozen = false;       ///< stick to the first selected policy
  bool inject_failure = false;  ///< degrade a leader uplink mid-run
};

/// Aggregate all-reduce goodput under a variant (bytes/s).
double run_variant(const Variant& variant) {
  const topo::Graph graph = make_pod();
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);
  online::HeroCommScheduler scheduler(network, variant.config);

  const auto by_server = graph.gpus_by_server();
  std::vector<coll::GroupId> groups;
  std::vector<coll::AllReducePlan> first_plan(kGroups);
  for (std::size_t j = 0; j < kGroups; ++j) {
    std::vector<topo::NodeId> members;
    for (std::size_t i = 0; i < 4; ++i) members.push_back(by_server[j][i]);
    for (std::size_t i = 0; i < 4; ++i) {
      members.push_back(by_server[(j + 1) % by_server.size()][i]);
    }
    groups.push_back(scheduler.register_group(members));
  }
  scheduler.start();

  if (variant.inject_failure) {
    // Degrade one access uplink a quarter of the way in: adaptive tables
    // shift traffic, frozen policies keep hammering the degraded route.
    simulator.schedule(kWindowSeconds / 4, [&] {
      // Degrade the NIC uplinks of server 0's first two GPUs (members of
      // groups 0 and 5): adaptive tables shift those shards to other
      // tracks via NVLink forwarding; frozen policies keep hammering them.
      const std::vector<topo::NodeId> victims = graph.gpus_by_server()[0];
      for (std::size_t v = 0; v < 2 && v < victims.size(); ++v) {
        for (const topo::Adjacency& adj : graph.neighbors(victims[v])) {
          if (graph.edge(adj.edge).kind == topo::LinkKind::kEthernet) {
            network.set_link_degradation(adj.edge, 0.1);
          }
        }
      }
    });
  }

  std::uint64_t completed = 0;
  std::vector<bool> have_first(kGroups, false);
  std::function<void(std::size_t)> launch = [&](std::size_t g) {
    coll::AllReducePlan plan;
    if (variant.frozen && have_first[g]) {
      plan = first_plan[g];
      plan.bytes = kMessage;
    } else {
      plan = scheduler.all_reduce_plan(groups[g], kMessage);
      first_plan[g] = plan;
      have_first[g] = true;
    }
    engine.all_reduce(std::move(plan), [&, g](const coll::AllReduceResult&) {
      ++completed;
      if (simulator.now() < kWindowSeconds) launch(g);
    });
  };
  for (std::size_t g = 0; g < kGroups; ++g) launch(g);
  simulator.run_until(kWindowSeconds * 1.5);
  return static_cast<double>(completed) * raw(kMessage) / kWindowSeconds;
}

hero::bench::FigureTable g_table(
    "Online scheduler ablation: aggregate all-reduce goodput, 2tracks pod "
    "(16 MB ops, 6 groups)",
    {"variant", "healthy (GB/s)", "with link failure (GB/s)"});
hero::bench::JsonReport g_json("online_ablation");

void Ablate(benchmark::State& state, Variant variant) {
  double healthy = 0, failed = 0;
  for (auto _ : state) {
    variant.inject_failure = false;
    healthy = run_variant(variant);
    variant.inject_failure = true;
    failed = run_variant(variant);
  }
  state.counters["healthy_GBps"] = healthy / 1e9;
  state.counters["failure_GBps"] = failed / 1e9;
  g_table.add_row({variant.name, fmt_double(healthy / 1e9, 2),
                   fmt_double(failed / 1e9, 2)});
  g_json.add_row()
      .str("variant", variant.name)
      .num("healthy_gbps", healthy / 1e9)
      .num("failure_gbps", failed / 1e9);
}

Variant make_variant(const char* name, online::OnlineConfig cfg,
                     bool frozen = false) {
  return Variant{name, cfg, frozen, false};
}

BENCHMARK_CAPTURE(Ablate, default_capacity_delta,
                  make_variant("default (capacity delta, gamma 0.3)", {}))
    ->Iterations(1);

BENCHMARK_CAPTURE(Ablate, paper_literal_delta, [] {
  online::OnlineConfig cfg;
  cfg.delta_model = online::DeltaModel::kPaperLiteral;
  return make_variant("Eq.16 literal delta = D/(T_u*b_c)", cfg);
}())->Iterations(1);

BENCHMARK_CAPTURE(Ablate, gamma_low, [] {
  online::OnlineConfig cfg;
  cfg.gamma = 0.05;
  return make_variant("gamma = 0.05 (sluggish penalties)", cfg);
}())->Iterations(1);

BENCHMARK_CAPTURE(Ablate, gamma_high, [] {
  online::OnlineConfig cfg;
  cfg.gamma = 0.9;
  return make_variant("gamma = 0.9 (twitchy penalties)", cfg);
}())->Iterations(1);

BENCHMARK_CAPTURE(Ablate, stale_controller, [] {
  online::OnlineConfig cfg;
  cfg.sync_period = 1e6;
  cfg.controller_delay = 20.0 * units::ms;
  return make_variant("stale controller (no polling, 20ms delay)", cfg);
}())->Iterations(1);

BENCHMARK_CAPTURE(Ablate, frozen_policy, [] {
  return make_variant("frozen policy (offline plan only)", {}, true);
}())->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_online_ablation [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_table.print();
  g_json.write("BENCH_online_ablation.json");
  return 0;
}
