// Offline planner performance and ablations (paper SIII-C3).
//
// Claims exercised:
//  * "Our algorithm typically finds a solution within 10 minutes, a
//    reduction of 28.57% compared to DistServe" — we report wall-clock
//    solve time across cluster sizes and candidate budgets (our simulated
//    clusters solve in milliseconds; the point is the scaling shape).
//  * "setting max_candi = twenty usually yields near-optimal solutions" —
//    sweep max_candi and compare the achieved objective H.
//  * "the algorithm typically converges within five iterations" — compare
//    perturbation on/off via the estimated network latency.
#include "bench_util.hpp"

#include <chrono>

namespace {

using namespace hero;

/// Wall-clock belongs to the bench harness, not the deterministic planner
/// (PlanResult reports solve_work_units instead); measure around plan().
double timed_plan(planner::OfflinePlanner& planner,
                  planner::PlanResult& result) {
  const auto start =
      std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
  result = planner.plan();
  const auto end =
      std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
  return std::chrono::duration<double>(end - start).count();
}

planner::PlannerInputs base_inputs(const topo::Graph& graph) {
  planner::PlannerInputs in;
  in.graph = &graph;
  in.model = llm::opt_66b();
  in.latency = &fitted_model(llm::opt_66b());
  in.batch_q = 8;
  in.k_in = 2500;
  in.k_in2 = 900000;
  in.k_out = 1500;
  in.arrival_rate = 1.0;
  in.t_sla_prefill = 2.5;
  in.t_sla_decode = 0.15;
  return in;
}

topo::Graph sized_cluster(int servers) {
  topo::TracksOptions opts;
  opts.servers = servers;
  opts.tracks = 2;
  opts.servers_per_pod = 6;
  opts.core_switches = 3;
  return topo::make_tracks_cluster(opts);
}

hero::bench::FigureTable g_scaling(
    "Planner solve time vs cluster size (max_candi = 20)",
    {"cluster", "GPUs", "solve (ms)", "work units", "candidates", "swaps",
     "H (1/s)"});
hero::bench::JsonReport g_json("planner");

void Planner_Scale(benchmark::State& state, const char* name, int servers) {
  const topo::Graph graph =
      servers == 0 ? topo::make_testbed() : sized_cluster(servers);
  planner::PlannerInputs in = base_inputs(graph);
  planner::PlanResult result;
  double solve_s = 0.0;
  for (auto _ : state) {
    planner::OfflinePlanner planner(in);
    solve_s = timed_plan(planner, result);
    benchmark::DoNotOptimize(result);
  }
  state.counters["solve_ms"] = solve_s * 1e3;
  state.counters["H"] = raw(result.throughput_h);
  g_scaling.add_row({name, std::to_string(graph.gpus().size()),
                     fmt_double(solve_s * 1e3, 1),
                     std::to_string(result.solve_work_units),
                     std::to_string(result.candidates_evaluated),
                     std::to_string(result.perturbation_swaps),
                     fmt_double(raw(result.throughput_h), 4)});
  // Wall ms stays out of the JSON: the determinism gate byte-compares
  // BENCH_*.json across reruns.
  g_json.add_row()
      .str("cell", std::string("scale/") + name)
      .integer("gpus", graph.gpus().size())
      .integer("solve_work_units", result.solve_work_units)
      .integer("candidates", result.candidates_evaluated)
      .integer("swaps", result.perturbation_swaps)
      .num("throughput_h", raw(result.throughput_h));
}

BENCHMARK_CAPTURE(Planner_Scale, testbed_16gpu, "testbed (16 GPU)", 0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Planner_Scale, tracks_12srv, "2tracks 12 servers", 12)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(Planner_Scale, tracks_24srv, "2tracks 24 servers", 24)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

hero::bench::FigureTable g_candi(
    "max_candi sweep on the testbed (paper: 20 is near-optimal)",
    {"max_candi", "solve (ms)", "H (1/s)", "feasible"});

void Planner_MaxCandi(benchmark::State& state, std::size_t max_candi) {
  const topo::Graph graph = topo::make_testbed();
  planner::PlannerInputs in = base_inputs(graph);
  in.max_candi = max_candi;
  planner::PlanResult result;
  double solve_s = 0.0;
  for (auto _ : state) {
    planner::OfflinePlanner planner(in);
    solve_s = timed_plan(planner, result);
  }
  state.counters["H"] = raw(result.throughput_h);
  g_candi.add_row({std::to_string(max_candi),
                   fmt_double(solve_s * 1e3, 1),
                   fmt_double(raw(result.throughput_h), 4),
                   result.feasible ? "yes" : "no"});
  g_json.add_row()
      .str("cell", "max_candi/" + std::to_string(max_candi))
      .integer("solve_work_units", result.solve_work_units)
      .num("throughput_h", raw(result.throughput_h))
      .str("feasible", result.feasible ? "yes" : "no");
}

BENCHMARK_CAPTURE(Planner_MaxCandi, c2, 2)->Iterations(1);
BENCHMARK_CAPTURE(Planner_MaxCandi, c5, 5)->Iterations(1);
BENCHMARK_CAPTURE(Planner_MaxCandi, c10, 10)->Iterations(1);
BENCHMARK_CAPTURE(Planner_MaxCandi, c20, 20)->Iterations(1);
BENCHMARK_CAPTURE(Planner_MaxCandi, c40, 40)->Iterations(1);

hero::bench::FigureTable g_perturb(
    "Random-swap perturbation ablation (Alg. 2 step 3)",
    {"perturb rounds", "prefill T_n (ms)", "H (1/s)", "swaps"});

void Planner_Perturb(benchmark::State& state, std::size_t rounds) {
  const topo::Graph graph = sized_cluster(12);
  planner::PlannerInputs in = base_inputs(graph);
  in.perturb_rounds = rounds;
  planner::PlanResult result;
  for (auto _ : state) {
    planner::OfflinePlanner planner(in);
    result = planner.plan();
  }
  state.counters["H"] = raw(result.throughput_h);
  g_perturb.add_row({std::to_string(rounds),
                     fmt_double(raw(result.prefill.t_net) * 1e3, 2),
                     fmt_double(raw(result.throughput_h), 4),
                     std::to_string(result.perturbation_swaps)});
  g_json.add_row()
      .str("cell", "perturb/" + std::to_string(rounds))
      .num("prefill_t_net_ms", raw(result.prefill.t_net) * 1e3)
      .num("throughput_h", raw(result.throughput_h))
      .integer("swaps", result.perturbation_swaps);
}

BENCHMARK_CAPTURE(Planner_Perturb, off, 0)->Iterations(1);
BENCHMARK_CAPTURE(Planner_Perturb, rounds5, 5)->Iterations(1);
BENCHMARK_CAPTURE(Planner_Perturb, rounds10, 10)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  (void)hero::bench::init(argc, argv,
                          "bench_planner [--seed N] [google-benchmark flags]");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  g_scaling.print();
  g_candi.print();
  g_perturb.print();
  g_json.write("BENCH_planner.json");
  std::printf(
      "paper: solution within 10 min on the real testbed; max_candi=20 "
      "near-optimal; perturbation converges within ~5 rounds\n");
  return 0;
}
