// Prefix/KV-tier benchmark: network-priced block placement vs prefix-blind
// serving on multi-turn chat workloads.
//
// Serves the same multi-turn session trace (every follow-up turn resubmits
// its session's accumulated context) on a 4-instance OPT-66B fleet under
// three prefix regimes:
//   * oneshot — no follow-up turns (~0% shareable prefill);
//   * light   — a mix of one-shot and short chats (~1/3 shareable);
//   * chat    — long sessions (~60% shareable prefill).
// Each regime runs twice over identical topology, trace, and seed:
//   * blind    — the tier disabled (prefix_block_tokens = 0): every turn
//     recomputes its full context, exactly the pre-tier serving path;
//   * affinity — the tier on: retired turns publish their KV blocks to the
//     per-instance cache, the fleet directory mirrors coverage, and the
//     hero router settles each follow-up as kHit (route to the holder),
//     kStream (move blocks over the fabric when estimate_path says the
//     stream beats the target's recompute rate), or kRecompute.
// The only difference between the columns is the tier.
//
// Reports p99 TTFT, total prefill tokens actually computed, hit/stream/
// recompute counts per cell, writes BENCH_prefix.json, and prints the
// verdict line CI asserts: wherever the trace offers >= 30% shareable
// prefixes, affinity routing must strictly beat prefix-blind serving on
// BOTH p99 TTFT and total prefill tokens computed. Fixed seed: reruns are
// byte-identical (the determinism gate diffs the JSON).
#include "bench_util.hpp"

namespace {

using namespace hero;

std::uint64_t g_seed = 31;
bool g_quick = false;

constexpr std::size_t kInstances = 4;
constexpr std::size_t kBlockTokens = 128;
constexpr double kShareableGate = 0.30;

struct Regime {
  std::string name;
  wl::Trace trace;
  wl::TraceStats stats;
  std::size_t input_tokens = 0;  ///< sum of input_tokens over the trace
};

Regime make_regime(const std::string& name, double multi_turn_fraction,
                   double mean_turns) {
  wl::MultiturnOptions opts;
  opts.base.rate = 2.0;
  opts.base.count = g_quick ? 240 : 480;
  opts.base.seed = g_seed;
  opts.base.lengths = wl::sharegpt_lengths();
  opts.multi_turn_fraction = multi_turn_fraction;
  opts.mean_turns = mean_turns;
  opts.think_mean = 45.0;
  // Keep accumulated contexts in planner-feasible territory: the planner
  // sizes prefill for the realized mean input, and 8k-token contexts at
  // chat rates push past what the 4-rack fabric can serve inside the SLA.
  opts.max_context_tokens = 4096;
  Regime r;
  r.name = name;
  r.trace = wl::generate_multiturn_trace(opts);
  r.stats = wl::summarize(r.trace);
  for (const wl::Request& q : r.trace) r.input_tokens += q.input_tokens;
  return r;
}

struct Cell {
  planner::FleetPlan plan;
  serve::FleetReport report;
  std::size_t prefill_tokens = 0;  ///< input tokens actually prefilled
  bool ok = false;
};

Cell run_cell(const Regime& regime, bool affinity) {
  ExperimentConfig cfg;
  topo::FleetClusterOptions fabric;
  fabric.racks = kInstances;
  cfg.topology = topo::make_fleet_cluster(fabric);
  cfg.serving.model = llm::opt_66b();
  cfg.serving.seed = g_seed;
  // Long-context SLA: follow-up turns legitimately carry multi-thousand-
  // token contexts, so the per-request prefill budget is looser than the
  // short-prompt benches' 2.5s.
  cfg.serving.sla_ttft = 6.0;
  cfg.serving.sla_tpot = 0.15;
  cfg.serving.prefix_block_tokens = affinity ? kBlockTokens : 0;
  // Planner sizing: accumulated contexts make multi-turn prefills several
  // times the per-turn ShareGPT lengths, so size for the realized mean.
  cfg.workload.rate = 2.0;
  cfg.workload.count = regime.trace.size();
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = g_seed;
  cfg.fleet.instances = kInstances;
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;
  cfg.fleet.prefix_affinity = affinity;

  Cell cell;
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg, regime.trace);
  cell.ok = r.ok();
  if (r.ok()) {
    cell.plan = r.plan;
    cell.report = r.report;
    cell.prefill_tokens =
        regime.input_tokens - r.report.prefix.reused_tokens;
  }
  return cell;
}

std::vector<Regime> g_regimes;
std::map<std::string, Cell> g_cells;

std::string cell_key(const std::string& regime, bool affinity) {
  return regime + "/" + (affinity ? "affinity" : "blind");
}

void Prefix_Cell(benchmark::State& state, std::size_t regime_idx,
                 bool affinity) {
  const Regime& regime = g_regimes[regime_idx];
  Cell cell;
  for (auto _ : state) cell = run_cell(regime, affinity);
  state.counters["ttft_p99_s"] = cell.report.aggregate.ttft.p99();
  state.counters["prefill_tokens"] =
      static_cast<double>(cell.prefill_tokens);
  state.counters["hit_rate"] =
      cell.report.prefix.lookups > 0
          ? static_cast<double>(cell.report.prefix.hits) /
                static_cast<double>(cell.report.prefix.lookups)
          : 0.0;
  g_cells[cell_key(regime.name, affinity)] = std::move(cell);
}

void register_cells() {
  for (std::size_t i = 0; i < g_regimes.size(); ++i) {
    for (const bool affinity : {false, true}) {
      benchmark::RegisterBenchmark(
          ("Prefix_Cell/" + cell_key(g_regimes[i].name, affinity)).c_str(),
          [i, affinity](benchmark::State& state) {
            Prefix_Cell(state, i, affinity);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void print_tables() {
  for (const Regime& regime : g_regimes) {
    hero::bench::FigureTable table(
        "Prefix tier: " + regime.name + " regime (" +
            fmt_double(100.0 * regime.stats.shareable_fraction, 1) +
            "% shareable, " + std::to_string(regime.stats.sessions) +
            " sessions)",
        {"serving", "TTFT p50/p99 (s)", "SLA att.", "prefill Mtok",
         "hits/streams/recomputes", "stream GB"});
    for (const bool affinity : {false, true}) {
      const Cell& c = g_cells[cell_key(regime.name, affinity)];
      if (!c.ok) {
        table.add_row({affinity ? "affinity" : "blind", "plan-fail"});
        continue;
      }
      const serve::ServingReport& agg = c.report.aggregate;
      table.add_row(
          {affinity ? "affinity" : "blind",
           fmt_double(agg.ttft.median(), 2) + " / " +
               fmt_double(agg.ttft.p99(), 2),
           fmt_double(agg.sla_attainment, 3),
           fmt_double(static_cast<double>(c.prefill_tokens) / 1e6, 3),
           std::to_string(c.report.prefix.hits) + "/" +
               std::to_string(c.report.prefix_streams) + "/" +
               std::to_string(c.report.prefix.recomputes),
           fmt_double(raw(c.report.prefix_stream_bytes) / raw(units::GB),
                      3)});
    }
    table.print();
  }
}

void write_json() {
  hero::bench::JsonReport json("prefix");
  for (const Regime& regime : g_regimes) {
    for (const bool affinity : {false, true}) {
      const Cell& c = g_cells[cell_key(regime.name, affinity)];
      auto& row = json.add_row();
      row.str("regime", regime.name)
          .str("serving", affinity ? "affinity" : "blind")
          .num("shareable_fraction", regime.stats.shareable_fraction)
          .integer("sessions", regime.stats.sessions);
      if (!c.ok) {
        row.integer("feasible", 0);
        continue;
      }
      row.integer("feasible", 1);
      hero::bench::report_latency_fields(row, c.report.aggregate);
      row.integer("prefill_tokens", c.prefill_tokens)
          .integer("trace_input_tokens", regime.input_tokens)
          .integer("completed", c.report.aggregate.completed)
          .integer("gpus_used", c.plan.gpus_used)
          .integer("prefix_lookups", c.report.prefix.lookups)
          .integer("prefix_hits", c.report.prefix.hits)
          .integer("prefix_recomputes", c.report.prefix.recomputes)
          .integer("reused_tokens", c.report.prefix.reused_tokens)
          .integer("published_tokens", c.report.prefix.published_tokens)
          .integer("prefix_streams", c.report.prefix_streams)
          .num("prefix_stream_bytes", raw(c.report.prefix_stream_bytes));
    }
  }
  json.write("BENCH_prefix.json");
}

/// The headline claim this harness exists to demonstrate. CI greps for
/// "prefix verdict: affinity PASSES".
void print_verdict() {
  bool wins = true;
  bool gated_regime_seen = false;
  for (const Regime& regime : g_regimes) {
    const Cell& blind = g_cells[cell_key(regime.name, false)];
    const Cell& affinity = g_cells[cell_key(regime.name, true)];
    if (!blind.ok || !affinity.ok) {
      wins = false;
      std::printf("%s: missing cell (blind ok=%d affinity ok=%d)\n",
                  regime.name.c_str(), blind.ok ? 1 : 0,
                  affinity.ok ? 1 : 0);
      continue;
    }
    const double bp99 = blind.report.aggregate.ttft.p99();
    const double ap99 = affinity.report.aggregate.ttft.p99();
    if (regime.stats.shareable_fraction < kShareableGate) {
      std::printf("%s: %.1f%% shareable (below %.0f%% gate) — "
                  "p99 TTFT %.2fs vs %.2fs, informational only\n",
                  regime.name.c_str(),
                  100.0 * regime.stats.shareable_fraction,
                  100.0 * kShareableGate, ap99, bp99);
      continue;
    }
    gated_regime_seen = true;
    const bool regime_ok = ap99 < bp99 &&
                           affinity.prefill_tokens < blind.prefill_tokens;
    std::printf("%s: affinity p99 TTFT %.2fs vs blind %.2fs, prefill "
                "%.3fM vs %.3fM tokens (%.1f%% shareable) -> %s\n",
                regime.name.c_str(), ap99, bp99,
                static_cast<double>(affinity.prefill_tokens) / 1e6,
                static_cast<double>(blind.prefill_tokens) / 1e6,
                100.0 * regime.stats.shareable_fraction,
                regime_ok ? "ok" : "FAIL");
    if (!regime_ok) wins = false;
  }
  if (!gated_regime_seen) wins = false;
  std::printf("prefix verdict: affinity %s prefix-blind serving on p99 "
              "TTFT + prefill tokens at >= %.0f%% shareable prefixes\n",
              wins ? "PASSES, beating" : "FAILS to beat",
              100.0 * kShareableGate);
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv,
      "bench_prefix [--seed N] [--quick] [google-benchmark flags]");
  if (opts.seed_given) g_seed = opts.seed;
  g_quick = opts.quick;
  g_regimes.push_back(make_regime("oneshot", 0.0, 1.0));
  g_regimes.push_back(make_regime("light", 0.45, 2.0));
  g_regimes.push_back(make_regime("chat", 1.0, 5.0));
  register_cells();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  write_json();
  print_verdict();
  return 0;
}
