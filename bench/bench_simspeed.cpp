// Simulation-engine speed benchmark: how much simulated time one wall
// second buys.
//
// Replays the repo's standard scenarios — the quickstart chatbot testbed,
// the chaos link-flap plan, and the 4/8/16-instance fleet — through the
// experiment driver and reports, per scenario:
//   * simulated-seconds-per-wall-second (the headline),
//   * events executed per wall second,
//   * how much max-min work the incremental flow-network engine avoided
//     (flows actually re-solved vs the full-solve baseline's would-be work).
// Deterministic outputs (simulated seconds, event counts, solver counters)
// are written to BENCH_simspeed.json; wall-clock-derived keys carry a
// `wall_` prefix and solver-mode-dependent keys a `solver_` prefix so the
// determinism gate can filter them (rerun cmp strips wall_*; the
// incremental-vs-full-solve cmp strips wall_* and solver_*).
//
//   ./build/bench/bench_simspeed [--seed N] [--quick] [--full-solve]
//
// --quick shrinks every trace 4x (CI smoke mode); --full-solve swaps the
// incremental engine for the whole-fabric solve (all plain JSON keys must
// stay byte-identical to the incremental run).
#include <chrono>  // hero-lint: allow-file(wall-clock) — wall speed is the product here

#include "bench_util.hpp"
#include "faults/fault_plan.hpp"

namespace {

using namespace hero;

std::uint64_t g_seed = 1;
bool g_quick = false;
bool g_full_solve = false;

/// The chaos scenario's fault plan (bench_chaos's link_flap): two GPU
/// uplinks degraded to 5% in periodic bursts.
faults::FaultPlan link_flap_plan() {
  faults::FaultPlan plan;
  for (const char* edge : {"w0g1-sw1", "w1g1-sw1"}) {
    faults::FaultEvent ev;
    ev.kind = faults::FaultKind::kLinkFlap;
    ev.at = 2.0;
    ev.period = 4.0;
    ev.duration = 2.0;
    ev.count = 10;
    ev.target = edge;
    ev.magnitude = 0.05;
    plan.events.push_back(ev);
  }
  return plan;
}

std::size_t scaled(std::size_t requests) {
  return g_quick ? std::max<std::size_t>(requests / 4, 8) : requests;
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.serving.model = llm::opt_66b();
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = g_seed;
  cfg.serving.seed = g_seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  cfg.netsim.full_solve = g_full_solve;
  return cfg;
}

struct Outcome {
  SimStats stats;
  double wall_seconds = 0.0;
  bool ok = false;
};

template <typename Run>
Outcome timed(Run&& run) {
  Outcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.ok = run(out.stats);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

Outcome run_quickstart() {
  ExperimentConfig cfg = base_config();
  cfg.topology = topo::make_testbed();
  cfg.workload.rate = 2.0;
  cfg.workload.count = scaled(80);
  return timed([&](SimStats& stats) {
    const ExperimentResult r = run_experiment(SystemKind::kHeroServe, cfg);
    stats = r.sim_stats;
    return r.ok();
  });
}

Outcome run_chaos() {
  ExperimentConfig cfg = base_config();
  cfg.topology = topo::make_testbed();
  cfg.workload.rate = 1.2;
  cfg.workload.count = scaled(60);
  cfg.min_p_tens = 8;  // cross-server TP: communication on the fault path
  cfg.fault_plan = link_flap_plan();
  return timed([&](SimStats& stats) {
    const ExperimentResult r = run_experiment(SystemKind::kHeroServe, cfg);
    stats = r.sim_stats;
    return r.ok();
  });
}

Outcome run_fleet(std::size_t instances) {
  ExperimentConfig cfg = base_config();
  topo::FleetClusterOptions fabric;
  fabric.racks = static_cast<std::int32_t>(instances > 4 ? instances : 4);
  cfg.topology = topo::make_fleet_cluster(fabric);
  cfg.fleet.instances = instances;
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;
  cfg.workload.rate = 1.15 * static_cast<double>(instances);
  cfg.workload.count = scaled(60 * instances);
  return timed([&](SimStats& stats) {
    const FleetExperimentResult r =
        run_fleet_experiment(SystemKind::kHeroServe, cfg);
    stats = r.sim_stats;
    return r.ok();
  });
}

struct Scenario {
  const char* name = nullptr;
  Outcome (*run)() = nullptr;
};

const Scenario kScenarios[] = {
    {"quickstart", run_quickstart},
    {"chaos", run_chaos},
    {"fleet4", [] { return run_fleet(4); }},
    {"fleet8", [] { return run_fleet(8); }},
    {"fleet16", [] { return run_fleet(16); }},
};

std::map<std::string, Outcome> g_outcomes;

/// Fraction of per-flow max-min solves the incremental engine skipped:
/// a full solve re-rates every in-flight flow each reallocation round
/// (flows_active); the dirty-set solve only touches the affected
/// component (flows_solved).
double solves_avoided(const SimStats& stats) {
  if (stats.flownet.flows_active == 0) return 0.0;
  return 1.0 - static_cast<double>(stats.flownet.flows_solved) /
                   static_cast<double>(stats.flownet.flows_active);
}

void SimSpeed_Cell(benchmark::State& state, const Scenario& scenario) {
  Outcome out;
  for (auto _ : state) out = scenario.run();
  g_outcomes[scenario.name] = out;
  const double wall = out.wall_seconds > 0 ? out.wall_seconds : 1e-9;
  state.counters["sim_per_wall"] = raw(out.stats.sim_seconds) / wall;
  state.counters["events_per_sec"] =
      static_cast<double>(out.stats.events_executed) / wall;
  state.counters["solves_avoided"] = solves_avoided(out.stats);
}

#define SIMSPEED(idx, name)                                       \
  BENCHMARK_CAPTURE(SimSpeed_Cell, name, kScenarios[idx])         \
      ->Iterations(1)->Unit(benchmark::kMillisecond)

SIMSPEED(0, quickstart);
SIMSPEED(1, chaos);
SIMSPEED(2, fleet4);
SIMSPEED(3, fleet8);
SIMSPEED(4, fleet16);

void print_table() {
  hero::bench::FigureTable table(
      std::string("Simulation engine speed (") +
          (g_full_solve ? "full-solve" : "incremental") + " max-min engine" +
          (g_quick ? ", --quick" : "") + ")",
      {"scenario", "sim s", "events", "sim s / wall s", "events/s",
       "solves avoided"});
  for (const Scenario& s : kScenarios) {
    const Outcome& o = g_outcomes[s.name];
    if (!o.ok) {
      table.add_row({s.name, "plan-fail"});
      continue;
    }
    const double wall = o.wall_seconds > 0 ? o.wall_seconds : 1e-9;
    table.add_row(
        {s.name, fmt_double(raw(o.stats.sim_seconds), 1),
         std::to_string(o.stats.events_executed),
         fmt_double(raw(o.stats.sim_seconds) / wall, 1),
         fmt_double(static_cast<double>(o.stats.events_executed) / wall, 0),
         fmt_double(100.0 * solves_avoided(o.stats), 1) + "%"});
  }
  table.print();
}

void write_json() {
  hero::bench::JsonReport json("simspeed");
  for (const Scenario& s : kScenarios) {
    const Outcome& o = g_outcomes[s.name];
    auto& row = json.add_row();
    row.str("scenario", s.name)
        .str("solver_engine", g_full_solve ? "full" : "incremental")
        .num("sim_seconds", raw(o.stats.sim_seconds))
        .integer("events_executed", o.stats.events_executed)
        .integer("events_scheduled", o.stats.events_scheduled)
        .integer("events_cancelled", o.stats.events_cancelled)
        .integer("solver_reallocations", o.stats.flownet.reallocations)
        .integer("solver_solves", o.stats.flownet.solves)
        .integer("solver_flows_solved", o.stats.flownet.flows_solved)
        .integer("solver_flows_active", o.stats.flownet.flows_active)
        .num("solver_solves_avoided", solves_avoided(o.stats))
        .num("wall_seconds", o.wall_seconds)
        .num("wall_sim_per_wall",
             raw(o.stats.sim_seconds) /
                 (o.wall_seconds > 0 ? o.wall_seconds : 1e-9));
  }
  json.write("BENCH_simspeed.json");
}

/// CI floor: the 16-instance fleet trace must buy at least 5 simulated
/// seconds per wall second (the pre-rework engine managed ~1.4), and the
/// incremental engine must skip at least half of the per-flow max-min
/// solves a full-solve engine would run.
void print_verdict() {
  const Outcome& fleet16 = g_outcomes["fleet16"];
  bool pass = fleet16.ok;
  if (fleet16.ok) {
    const double wall =
        fleet16.wall_seconds > 0 ? fleet16.wall_seconds : 1e-9;
    const double sim_per_wall = raw(fleet16.stats.sim_seconds) / wall;
    if (sim_per_wall < 5.0) {
      pass = false;
      std::printf("verdict: fleet16 sim/wall %.1f below the 5.0 floor\n",
                  sim_per_wall);
    }
    if (!g_full_solve && solves_avoided(fleet16.stats) < 0.5) {
      pass = false;
      std::printf("verdict: fleet16 solves avoided %.2f below 0.50\n",
                  solves_avoided(fleet16.stats));
    }
  }
  std::printf("simspeed verdict: %s\n", pass ? "PASS" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const hero::cli::Options opts = hero::bench::init(
      argc, argv,
      "bench_simspeed [--seed N] [--quick] [--full-solve] "
      "[google-benchmark flags]");
  if (opts.seed_given) g_seed = opts.seed;
  g_quick = opts.quick;
  g_full_solve = opts.full_solve;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  write_json();
  print_verdict();
  return 0;
}
