// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Every bench binary follows the same pattern: run the experiment cells
// through google-benchmark (one benchmark case per cell, pinned to a single
// iteration — the interesting output is the simulated metrics reported as
// counters, not wall time), collect the paper-style series, and print the
// figure's table after the run so EXPERIMENTS.md can quote it directly.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/heroserve.hpp"

namespace hero::bench {

/// Ordered collector for figure rows; printed after RunSpecifiedBenchmarks.
class FigureTable {
 public:
  FigureTable(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    Table table(headers_);
    for (const auto& row : rows_) table.add_row(row);
    table.print();
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Relative improvement a/b - 1 rendered as "+x.x%".
[[nodiscard]] inline std::string pct_gain(double a, double b) {
  if (b <= 0) return "n/a";
  return fmt_double(100.0 * (a / b - 1.0), 1) + "%";
}

}  // namespace hero::bench
