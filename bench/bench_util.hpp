// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Every bench binary follows the same pattern: run the experiment cells
// through google-benchmark (one benchmark case per cell, pinned to a single
// iteration — the interesting output is the simulated metrics reported as
// counters, not wall time), collect the paper-style series, and print the
// figure's table after the run so EXPERIMENTS.md can quote it directly.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"

namespace hero::bench {

/// Shared harness front door: strip the repo-wide flags (--seed, --faults,
/// --trace, --help) from argv, then hand the remainder (--benchmark_filter
/// etc.) to google-benchmark. Call first in every bench main.
inline cli::Options init(int& argc, char** argv, const char* usage) {
  cli::Options opts = cli::parse_args(argc, argv, usage);
  benchmark::Initialize(&argc, argv);
  return opts;
}

/// Machine-readable benchmark output (BENCH_<name>.json). Values are
/// rendered with fixed formatting in insertion order, so identical runs
/// produce byte-identical files — the determinism gate diffs them.
class JsonReport {
 public:
  explicit JsonReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  class Row {
   public:
    Row& str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, "\"" + value + "\"");
      return *this;
    }
    Row& num(const std::string& key, double value) {
      fields_.emplace_back(key, strfmt("{}", value));
      return *this;
    }
    Row& integer(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, strfmt("{}", value));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Write `{"benchmark": ..., "cells": [...]}`; returns false on I/O error.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"cells\": [",
                 benchmark_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n    {", r == 0 ? "" : ",");
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     fields[i].first.c_str(), fields[i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %zu cells -> %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<Row> rows_;
};

/// The latency/goodput fields every serving bench reports per cell.
inline void report_latency_fields(JsonReport::Row& row,
                                  const serve::ServingReport& report) {
  row.num("goodput_rps", raw(report.requests_per_second))
      .num("per_gpu_goodput", raw(report.per_gpu_goodput))
      .num("sla_attainment", report.sla_attainment)
      .num("ttft_p50_s", report.ttft.median())
      .num("ttft_p99_s", report.ttft.p99())
      .num("tpot_p50_s", report.tpot.median())
      .num("tpot_p99_s", report.tpot.p99());
}

/// Ordered collector for figure rows; printed after RunSpecifiedBenchmarks.
class FigureTable {
 public:
  FigureTable(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    Table table(headers_);
    for (const auto& row : rows_) table.add_row(row);
    table.print();
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Relative improvement a/b - 1 rendered as "+x.x%".
[[nodiscard]] inline std::string pct_gain(double a, double b) {
  if (b <= 0) return "n/a";
  return fmt_double(100.0 * (a / b - 1.0), 1) + "%";
}

}  // namespace hero::bench
