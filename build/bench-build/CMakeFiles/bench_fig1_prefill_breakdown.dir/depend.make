# Empty dependencies file for bench_fig1_prefill_breakdown.
# This may be replaced when dependencies are built.
