file(REMOVE_RECURSE
  "../bench/bench_fig2_hetero_ina"
  "../bench/bench_fig2_hetero_ina.pdb"
  "CMakeFiles/bench_fig2_hetero_ina.dir/bench_fig2_hetero_ina.cpp.o"
  "CMakeFiles/bench_fig2_hetero_ina.dir/bench_fig2_hetero_ina.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hetero_ina.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
