# Empty compiler generated dependencies file for bench_fig2_hetero_ina.
# This may be replaced when dependencies are built.
