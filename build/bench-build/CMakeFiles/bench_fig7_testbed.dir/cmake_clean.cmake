file(REMOVE_RECURSE
  "../bench/bench_fig7_testbed"
  "../bench/bench_fig7_testbed.pdb"
  "CMakeFiles/bench_fig7_testbed.dir/bench_fig7_testbed.cpp.o"
  "CMakeFiles/bench_fig7_testbed.dir/bench_fig7_testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
