file(REMOVE_RECURSE
  "../bench/bench_fig8_tracks"
  "../bench/bench_fig8_tracks.pdb"
  "CMakeFiles/bench_fig8_tracks.dir/bench_fig8_tracks.cpp.o"
  "CMakeFiles/bench_fig8_tracks.dir/bench_fig8_tracks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
