# Empty dependencies file for bench_fig8_tracks.
# This may be replaced when dependencies are built.
