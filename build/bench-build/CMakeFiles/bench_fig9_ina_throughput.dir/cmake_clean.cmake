file(REMOVE_RECURSE
  "../bench/bench_fig9_ina_throughput"
  "../bench/bench_fig9_ina_throughput.pdb"
  "CMakeFiles/bench_fig9_ina_throughput.dir/bench_fig9_ina_throughput.cpp.o"
  "CMakeFiles/bench_fig9_ina_throughput.dir/bench_fig9_ina_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ina_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
