# Empty compiler generated dependencies file for bench_fig9_ina_throughput.
# This may be replaced when dependencies are built.
