file(REMOVE_RECURSE
  "../bench/bench_online_ablation"
  "../bench/bench_online_ablation.pdb"
  "CMakeFiles/bench_online_ablation.dir/bench_online_ablation.cpp.o"
  "CMakeFiles/bench_online_ablation.dir/bench_online_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
