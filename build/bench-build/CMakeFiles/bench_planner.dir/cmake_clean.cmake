file(REMOVE_RECURSE
  "../bench/bench_planner"
  "../bench/bench_planner.pdb"
  "CMakeFiles/bench_planner.dir/bench_planner.cpp.o"
  "CMakeFiles/bench_planner.dir/bench_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
