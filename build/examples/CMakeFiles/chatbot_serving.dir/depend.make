# Empty dependencies file for chatbot_serving.
# This may be replaced when dependencies are built.
