file(REMOVE_RECURSE
  "CMakeFiles/online_rebalance.dir/online_rebalance.cpp.o"
  "CMakeFiles/online_rebalance.dir/online_rebalance.cpp.o.d"
  "online_rebalance"
  "online_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
