# Empty dependencies file for online_rebalance.
# This may be replaced when dependencies are built.
