file(REMOVE_RECURSE
  "CMakeFiles/summarization_serving.dir/summarization_serving.cpp.o"
  "CMakeFiles/summarization_serving.dir/summarization_serving.cpp.o.d"
  "summarization_serving"
  "summarization_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarization_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
