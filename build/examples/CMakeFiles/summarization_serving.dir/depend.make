# Empty dependencies file for summarization_serving.
# This may be replaced when dependencies are built.
