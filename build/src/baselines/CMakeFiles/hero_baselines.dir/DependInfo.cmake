
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/static_scheduler.cpp" "src/baselines/CMakeFiles/hero_baselines.dir/static_scheduler.cpp.o" "gcc" "src/baselines/CMakeFiles/hero_baselines.dir/static_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hero_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hero_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/hero_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/hero_collectives.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
