file(REMOVE_RECURSE
  "CMakeFiles/hero_baselines.dir/static_scheduler.cpp.o"
  "CMakeFiles/hero_baselines.dir/static_scheduler.cpp.o.d"
  "libhero_baselines.a"
  "libhero_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
