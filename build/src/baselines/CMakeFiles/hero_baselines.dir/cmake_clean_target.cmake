file(REMOVE_RECURSE
  "libhero_baselines.a"
)
