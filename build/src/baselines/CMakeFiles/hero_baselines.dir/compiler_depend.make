# Empty compiler generated dependencies file for hero_baselines.
# This may be replaced when dependencies are built.
