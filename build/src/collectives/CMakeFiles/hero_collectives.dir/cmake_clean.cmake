file(REMOVE_RECURSE
  "CMakeFiles/hero_collectives.dir/cost_model.cpp.o"
  "CMakeFiles/hero_collectives.dir/cost_model.cpp.o.d"
  "CMakeFiles/hero_collectives.dir/engine.cpp.o"
  "CMakeFiles/hero_collectives.dir/engine.cpp.o.d"
  "CMakeFiles/hero_collectives.dir/primitives.cpp.o"
  "CMakeFiles/hero_collectives.dir/primitives.cpp.o.d"
  "libhero_collectives.a"
  "libhero_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
