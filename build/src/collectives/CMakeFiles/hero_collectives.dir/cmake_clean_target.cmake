file(REMOVE_RECURSE
  "libhero_collectives.a"
)
