# Empty compiler generated dependencies file for hero_collectives.
# This may be replaced when dependencies are built.
