file(REMOVE_RECURSE
  "CMakeFiles/hero_common.dir/fixed_point.cpp.o"
  "CMakeFiles/hero_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/hero_common.dir/log.cpp.o"
  "CMakeFiles/hero_common.dir/log.cpp.o.d"
  "CMakeFiles/hero_common.dir/rng.cpp.o"
  "CMakeFiles/hero_common.dir/rng.cpp.o.d"
  "CMakeFiles/hero_common.dir/stats.cpp.o"
  "CMakeFiles/hero_common.dir/stats.cpp.o.d"
  "CMakeFiles/hero_common.dir/table.cpp.o"
  "CMakeFiles/hero_common.dir/table.cpp.o.d"
  "libhero_common.a"
  "libhero_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
