file(REMOVE_RECURSE
  "libhero_common.a"
)
