# Empty dependencies file for hero_common.
# This may be replaced when dependencies are built.
