file(REMOVE_RECURSE
  "CMakeFiles/hero_core.dir/heroserve.cpp.o"
  "CMakeFiles/hero_core.dir/heroserve.cpp.o.d"
  "libhero_core.a"
  "libhero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
