file(REMOVE_RECURSE
  "libhero_core.a"
)
