# Empty compiler generated dependencies file for hero_core.
# This may be replaced when dependencies are built.
