
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/gpu_spec.cpp" "src/gpusim/CMakeFiles/hero_gpusim.dir/gpu_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/hero_gpusim.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/gpusim/kernel_model.cpp" "src/gpusim/CMakeFiles/hero_gpusim.dir/kernel_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/hero_gpusim.dir/kernel_model.cpp.o.d"
  "/root/repo/src/gpusim/latency_model.cpp" "src/gpusim/CMakeFiles/hero_gpusim.dir/latency_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/hero_gpusim.dir/latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hero_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/hero_llm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
