file(REMOVE_RECURSE
  "CMakeFiles/hero_gpusim.dir/gpu_spec.cpp.o"
  "CMakeFiles/hero_gpusim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/hero_gpusim.dir/kernel_model.cpp.o"
  "CMakeFiles/hero_gpusim.dir/kernel_model.cpp.o.d"
  "CMakeFiles/hero_gpusim.dir/latency_model.cpp.o"
  "CMakeFiles/hero_gpusim.dir/latency_model.cpp.o.d"
  "libhero_gpusim.a"
  "libhero_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
