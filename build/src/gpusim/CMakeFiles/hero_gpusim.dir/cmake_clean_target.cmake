file(REMOVE_RECURSE
  "libhero_gpusim.a"
)
