# Empty compiler generated dependencies file for hero_gpusim.
# This may be replaced when dependencies are built.
