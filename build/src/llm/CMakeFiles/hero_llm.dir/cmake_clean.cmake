file(REMOVE_RECURSE
  "CMakeFiles/hero_llm.dir/model.cpp.o"
  "CMakeFiles/hero_llm.dir/model.cpp.o.d"
  "libhero_llm.a"
  "libhero_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
