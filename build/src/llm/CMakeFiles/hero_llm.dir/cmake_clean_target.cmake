file(REMOVE_RECURSE
  "libhero_llm.a"
)
