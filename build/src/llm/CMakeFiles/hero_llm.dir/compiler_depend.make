# Empty compiler generated dependencies file for hero_llm.
# This may be replaced when dependencies are built.
