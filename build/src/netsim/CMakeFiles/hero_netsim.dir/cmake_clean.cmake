file(REMOVE_RECURSE
  "CMakeFiles/hero_netsim.dir/flownet.cpp.o"
  "CMakeFiles/hero_netsim.dir/flownet.cpp.o.d"
  "CMakeFiles/hero_netsim.dir/sim.cpp.o"
  "CMakeFiles/hero_netsim.dir/sim.cpp.o.d"
  "libhero_netsim.a"
  "libhero_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
