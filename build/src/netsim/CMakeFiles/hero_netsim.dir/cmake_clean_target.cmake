file(REMOVE_RECURSE
  "libhero_netsim.a"
)
