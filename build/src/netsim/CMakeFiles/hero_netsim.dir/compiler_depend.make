# Empty compiler generated dependencies file for hero_netsim.
# This may be replaced when dependencies are built.
