file(REMOVE_RECURSE
  "CMakeFiles/hero_online.dir/policy.cpp.o"
  "CMakeFiles/hero_online.dir/policy.cpp.o.d"
  "CMakeFiles/hero_online.dir/scheduler.cpp.o"
  "CMakeFiles/hero_online.dir/scheduler.cpp.o.d"
  "libhero_online.a"
  "libhero_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
