file(REMOVE_RECURSE
  "libhero_online.a"
)
