# Empty compiler generated dependencies file for hero_online.
# This may be replaced when dependencies are built.
