file(REMOVE_RECURSE
  "CMakeFiles/hero_planner.dir/grouping.cpp.o"
  "CMakeFiles/hero_planner.dir/grouping.cpp.o.d"
  "CMakeFiles/hero_planner.dir/planner.cpp.o"
  "CMakeFiles/hero_planner.dir/planner.cpp.o.d"
  "libhero_planner.a"
  "libhero_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
