file(REMOVE_RECURSE
  "libhero_planner.a"
)
