# Empty dependencies file for hero_planner.
# This may be replaced when dependencies are built.
