file(REMOVE_RECURSE
  "CMakeFiles/hero_serving.dir/cluster_sim.cpp.o"
  "CMakeFiles/hero_serving.dir/cluster_sim.cpp.o.d"
  "libhero_serving.a"
  "libhero_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
