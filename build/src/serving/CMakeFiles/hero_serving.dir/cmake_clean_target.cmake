file(REMOVE_RECURSE
  "libhero_serving.a"
)
