# Empty dependencies file for hero_serving.
# This may be replaced when dependencies are built.
