
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/aggregator.cpp" "src/switchsim/CMakeFiles/hero_switchsim.dir/aggregator.cpp.o" "gcc" "src/switchsim/CMakeFiles/hero_switchsim.dir/aggregator.cpp.o.d"
  "/root/repo/src/switchsim/ina_transport.cpp" "src/switchsim/CMakeFiles/hero_switchsim.dir/ina_transport.cpp.o" "gcc" "src/switchsim/CMakeFiles/hero_switchsim.dir/ina_transport.cpp.o.d"
  "/root/repo/src/switchsim/switch_agent.cpp" "src/switchsim/CMakeFiles/hero_switchsim.dir/switch_agent.cpp.o" "gcc" "src/switchsim/CMakeFiles/hero_switchsim.dir/switch_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hero_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hero_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
