file(REMOVE_RECURSE
  "CMakeFiles/hero_switchsim.dir/aggregator.cpp.o"
  "CMakeFiles/hero_switchsim.dir/aggregator.cpp.o.d"
  "CMakeFiles/hero_switchsim.dir/ina_transport.cpp.o"
  "CMakeFiles/hero_switchsim.dir/ina_transport.cpp.o.d"
  "CMakeFiles/hero_switchsim.dir/switch_agent.cpp.o"
  "CMakeFiles/hero_switchsim.dir/switch_agent.cpp.o.d"
  "libhero_switchsim.a"
  "libhero_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
