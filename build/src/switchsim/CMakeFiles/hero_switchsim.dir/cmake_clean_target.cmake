file(REMOVE_RECURSE
  "libhero_switchsim.a"
)
