# Empty dependencies file for hero_switchsim.
# This may be replaced when dependencies are built.
