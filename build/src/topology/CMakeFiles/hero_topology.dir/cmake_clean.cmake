file(REMOVE_RECURSE
  "CMakeFiles/hero_topology.dir/builders.cpp.o"
  "CMakeFiles/hero_topology.dir/builders.cpp.o.d"
  "CMakeFiles/hero_topology.dir/graph.cpp.o"
  "CMakeFiles/hero_topology.dir/graph.cpp.o.d"
  "CMakeFiles/hero_topology.dir/paths.cpp.o"
  "CMakeFiles/hero_topology.dir/paths.cpp.o.d"
  "libhero_topology.a"
  "libhero_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
