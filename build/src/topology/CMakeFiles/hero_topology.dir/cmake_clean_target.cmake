file(REMOVE_RECURSE
  "libhero_topology.a"
)
