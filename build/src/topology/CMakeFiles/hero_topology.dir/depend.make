# Empty dependencies file for hero_topology.
# This may be replaced when dependencies are built.
