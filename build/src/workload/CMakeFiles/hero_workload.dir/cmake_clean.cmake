file(REMOVE_RECURSE
  "CMakeFiles/hero_workload.dir/trace.cpp.o"
  "CMakeFiles/hero_workload.dir/trace.cpp.o.d"
  "CMakeFiles/hero_workload.dir/trace_io.cpp.o"
  "CMakeFiles/hero_workload.dir/trace_io.cpp.o.d"
  "libhero_workload.a"
  "libhero_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hero_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
