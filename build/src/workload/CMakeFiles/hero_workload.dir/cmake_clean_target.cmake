file(REMOVE_RECURSE
  "libhero_workload.a"
)
