# Empty dependencies file for hero_workload.
# This may be replaced when dependencies are built.
