file(REMOVE_RECURSE
  "CMakeFiles/flownet_test.dir/flownet_test.cpp.o"
  "CMakeFiles/flownet_test.dir/flownet_test.cpp.o.d"
  "flownet_test"
  "flownet_test.pdb"
  "flownet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flownet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
