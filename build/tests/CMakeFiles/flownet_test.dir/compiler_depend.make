# Empty compiler generated dependencies file for flownet_test.
# This may be replaced when dependencies are built.
