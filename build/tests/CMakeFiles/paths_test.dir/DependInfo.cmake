
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paths_test.cpp" "tests/CMakeFiles/paths_test.dir/paths_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/hero_online.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/hero_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hero_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/hero_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hero_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/hero_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hero_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/hero_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/hero_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hero_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hero_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
