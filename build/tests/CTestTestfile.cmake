# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/flownet_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
