// Chatbot serving scenario (the paper's SV-A testbed experiment, Fig. 7a/b):
// OPT-66B on the Fig. 6 testbed under a ShareGPT-like interactive workload,
// SLA 2.5 s TTFT / 0.15 s TPOT.
//
// Sweeps the arrival rate for every system and prints the attainment curve,
// then the per-GPU goodput at the 90% knee — the paper's scalability
// metric.
//
//   ./build/examples/chatbot_serving [requests] [--seed N]
//                                    [--faults plan.json]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"

using namespace hero;

int main(int argc, char** argv) {
  const cli::Options opts = cli::parse_args(
      argc, argv, "chatbot_serving [requests] [--seed N] [--faults plan.json]");
  const std::size_t requests = cli::positional_size(opts, 0, 100);

  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = opts.seed_given ? opts.seed : 17;
  if (opts.seed_given) cfg.serving.seed = opts.seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  if (!opts.faults_path.empty()) {
    cfg.fault_plan = faults::load_fault_plan(opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                opts.faults_path.c_str(), cfg.fault_plan.events.size());
  }

  std::printf(
      "Chatbot scenario: OPT-66B, ShareGPT-like lengths, SLA 2.5s TTFT / "
      "0.15s TPOT, %zu requests per point\n\n",
      requests);

  // Attainment curve across a fixed rate grid.
  const double rates[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  Table curve({"rate (req/s)", "HeroServe", "DistServe", "DS-ATP",
               "DS-SwitchML"});
  for (double rate : rates) {
    std::vector<std::string> row{fmt_double(rate, 1)};
    for (SystemKind kind : kAllSystems) {
      cfg.workload.rate = rate;
      const ExperimentResult r = run_experiment(kind, cfg);
      row.push_back(r.ok() ? fmt_double(r.report.sla_attainment, 3)
                           : "plan-fail");
    }
    curve.add_row(row);
  }
  std::printf("SLA attainment vs arrival rate:\n");
  curve.print();

  // Knee search (the Fig. 7a metric).
  Table knee({"system", "max rate @90% (req/s)", "per-GPU goodput",
              "TTFT p90 (s)", "TPOT p90 (s)"});
  for (SystemKind kind : kAllSystems) {
    const RateSearchResult search = find_max_rate(kind, cfg, 0.2, 8.0, 0.9, 7);
    const auto& rep = search.at_max.report;
    knee.add_row({to_string(kind), fmt_double(search.max_rate, 2),
                  fmt_double(rep.gpus_used
                                 ? search.max_rate / rep.gpus_used
                                 : 0.0,
                             4),
                  fmt_double(rep.ttft.p90(), 2),
                  fmt_double(rep.tpot.p90(), 4)});
  }
  std::printf("\nScalability (90%% SLA attainment knee):\n");
  knee.print();
  return 0;
}
