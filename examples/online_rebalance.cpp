// Online rebalancing demo: watch the load-aware scheduler's policy cost
// table (paper Fig. 5) react to congestion and a link failure.
//
// One TP=8 group spanning two testbed servers runs a steady stream of
// all-reduces. Midway, a background bulk flow congests the primary access
// switch; later, one leader uplink degrades to 10%. The demo prints the
// policy cost table each interval and which policy the scheduler selects —
// showing the Eq. 16 selection and Eq. 17/18 cost propagation at work.
//
//   ./build/examples/online_rebalance [--seed N] [--faults plan.json]
//
// The link failure is injected through the faults subsystem: without
// --faults a built-in plan degrades the w0g0->sw0 uplink to 10% at
// t = 0.4 s; pass your own plan to script different chaos.
#include <cstdio>

#include "collectives/engine.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "faults/injector.hpp"
#include "online/scheduler.hpp"
#include "topology/builders.hpp"

using namespace hero;

int main(int argc, char** argv) {
  const cli::Options cli_opts = cli::parse_args(
      argc, argv, "online_rebalance [--seed N] [--faults plan.json]");
  const topo::Graph graph = topo::make_testbed();
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches);
  online::HeroCommScheduler scheduler(network);

  // One TP=8 group across servers w0 and w1.
  const auto by_server = graph.gpus_by_server();
  std::vector<topo::NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());
  const coll::GroupId group = scheduler.register_group(members);
  scheduler.start();

  const online::PolicyTable& table = scheduler.online().table(group);
  std::printf("registered group with %zu candidate policies:\n",
              table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::printf("  policy %zu: %s (%zu edges)\n", i,
                table.policy(i).name.c_str(), table.policy(i).edges.size());
  }

  // Closed-loop all-reduces of 16 MB.
  std::uint64_t ops = 0;
  std::function<void()> launch = [&] {
    coll::AllReducePlan plan =
        scheduler.all_reduce_plan(group, 16.0 * units::MB);
    engine.all_reduce(std::move(plan), [&](const coll::AllReduceResult&) {
      ++ops;
      if (simulator.now() < 0.6) launch();
    });
  };
  launch();

  // t = 0.2 s: bulk background traffic congests sw0 (traffic host -> w1g0).
  simulator.schedule(0.2, [&] {
    std::printf("\n[t=0.20s] background bulk flow starts through sw0\n");
    auto path = topo::shortest_path(graph, graph.find("traffic"),
                                    graph.find("w1g0"));
    net::TransferOptions opts;
    opts.pipelined = true;
    network.start_transfer(*path, 2.0 * units::GB, std::move(opts));
  });

  // t = 0.4 s: the leader uplink w0g0 -> sw0 degrades to 10%, via the
  // fault injector (with the online scheduler hooked up so cost overrides
  // land immediately instead of at the next controller tick).
  faults::FaultPlan fault_plan;
  if (!cli_opts.faults_path.empty()) {
    fault_plan = faults::load_fault_plan(cli_opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                cli_opts.faults_path.c_str(), fault_plan.events.size());
  } else {
    faults::FaultEvent degrade;
    degrade.kind = faults::FaultKind::kLinkDegrade;
    degrade.at = 0.4;
    degrade.target = "w0g0-sw0";
    degrade.magnitude = 0.1;
    fault_plan.events.push_back(degrade);
  }
  faults::FaultInjector::Hooks hooks;
  hooks.switches = &switches;
  hooks.online = &scheduler.online();
  scheduler.online().attach_switches(&switches);
  faults::FaultInjector injector(network, fault_plan, hooks);
  injector.arm();

  // Periodic report of the policy cost table.
  std::function<void()> report = [&] {
    std::printf("[t=%.2fs] ops=%llu | policy costs:", simulator.now(),
                static_cast<unsigned long long>(ops));
    for (std::size_t i = 0; i < table.size(); ++i) {
      std::printf("  %s b=%.3f sel=%llu", table.policy(i).name.c_str(),
                  table.policy(i).cost,
                  static_cast<unsigned long long>(
                      table.policy(i).times_selected));
    }
    std::printf("\n");
    if (simulator.now() < 0.6) simulator.schedule_in(0.05, report);
  };
  simulator.schedule(0.05, report);

  simulator.run_until(0.7);
  std::printf("\ncompleted %llu all-reduce ops in 0.6 s of simulated time "
              "(%llu faults injected, %llu recovered)\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(injector.recovered()));
  return 0;
}
