// Planner explorer: run the scalability-oriented offline planner on a
// topology and dump the full Table-II output — parallelism, GPU placement,
// per-group communication scheme (alpha/beta), elected aggregation
// switches, and the latency/throughput estimates behind the choice.
//
//   ./build/examples/planner_explorer [testbed|tracks] [rate] [model]
//                                     [--seed N]
//     model: 66b (default) | 175b | 13b
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"

using namespace hero;

namespace {

void dump_cluster(const char* name, const planner::ClusterPlan& cluster,
                  const topo::Graph& graph) {
  std::printf("\n%s cluster: TP=%zu x PP=%zu, T_n=%.2f ms, T_c=%.2f ms\n",
              name, cluster.parallel.p_tens, cluster.parallel.p_pipe,
              cluster.t_net * 1e3, cluster.t_comp * 1e3);
  Table table({"stage", "GPUs", "scheme", "INA switch", "step latency (us)"});
  for (std::size_t s = 0; s < cluster.stages.size(); ++s) {
    const planner::GroupPlan& g = cluster.stages[s];
    std::string gpus;
    for (topo::NodeId id : g.gpus) {
      if (!gpus.empty()) gpus += ",";
      gpus += graph.node(id).name;
    }
    table.add_row({std::to_string(s), gpus,
                   std::string(g.hierarchical ? "hier-" : "") +
                       coll::to_string(g.scheme),
                   g.ina_switch == topo::kInvalidNode
                       ? "-"
                       : graph.node(g.ina_switch).name,
                   fmt_double(g.step_latency / units::us, 1)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Options opts = cli::parse_args(
      argc, argv,
      "planner_explorer [testbed|tracks] [rate] [66b|175b|13b] [--seed N]");
  const std::string topo_name = cli::positional_str(opts, 0, "testbed");
  const double rate = cli::positional_double(opts, 1, 1.5);
  const std::string model_name = cli::positional_str(opts, 2, "66b");

  topo::Graph graph;
  if (topo_name == "tracks") {
    topo::TracksOptions topts;
    topts.servers = 12;
    topts.tracks = 2;
    topts.servers_per_pod = 6;
    topts.core_switches = 3;
    topts.gpus_per_server = 4;
    graph = topo::make_tracks_cluster(topts);
  } else {
    graph = topo::make_testbed();
  }
  llm::ModelConfig model = llm::opt_66b();
  if (model_name == "175b") model = llm::opt_175b();
  if (model_name == "13b") model = llm::opt_13b();

  std::printf("profiling %s on the reference A100 (Eq. 12-13 fit)...\n",
              model.name.c_str());
  const gpu::LatencyModel& latency = fitted_model(model);

  for (const bool heterogeneous : {true, false}) {
    planner::PlannerInputs in;
    in.graph = &graph;
    in.model = model;
    in.latency = &latency;
    in.batch_q = 8;
    in.k_in = 2500;
    in.k_in2 = 900000;
    in.k_out = 1500;
    in.arrival_rate = rate;
    in.t_sla_prefill = 2.5;
    in.t_sla_decode = 0.15;
    in.heterogeneous = heterogeneous;
    if (opts.seed_given) in.seed = opts.seed;

    planner::OfflinePlanner planner(in);
    const planner::PlanResult plan = planner.plan();

    std::printf("\n==== %s planning (%s, %s, lambda=%.2f req/s) ====\n",
                heterogeneous ? "HETEROGENEOUS (HeroServe)"
                              : "HOMOGENEOUS (baseline)",
                topo_name.c_str(), model.name.c_str(), rate);
    if (!plan.feasible) {
      std::printf("infeasible: %s (evaluated %zu candidates, %zu work units)\n",
                  plan.infeasible_reason.c_str(), plan.candidates_evaluated,
                  plan.solve_work_units);
      continue;
    }
    std::printf(
        "H=%.4f req/s | TTFT est %.3f s | TPOT est %.4f s | KV tail %.4f s "
        "| q_decode=%zu | mu=%.2f req/s\n",
        plan.throughput_h, plan.t_prefill, plan.t_decode, plan.t_kv,
        plan.q_decode, plan.service_rate);
    std::printf("solved in %zu work units over %zu candidates (%zu swaps)\n",
                plan.solve_work_units, plan.candidates_evaluated,
                plan.perturbation_swaps);
    dump_cluster("prefill", plan.prefill, graph);
    dump_cluster("decode", plan.decode, graph);
  }
  return 0;
}
