// Quickstart: plan and serve a chatbot workload on the paper's testbed.
//
// Builds the Fig. 6 testbed (four 4-GPU workers, two programmable
// switches), plans an OPT-66B deployment with the offline planner, then
// serves a ShareGPT-like trace under HeroServe and the three baselines,
// printing TTFT/TPOT/SLA-attainment for each.
//
//   ./build/examples/quickstart [rate] [requests]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "core/heroserve.hpp"

int main(int argc, char** argv) {
  using namespace hero;
  const double rate = argc > 1 ? std::atof(argv[1]) : 2.0;
  const std::size_t requests =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 80;

  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.model = llm::opt_66b();
  cfg.workload.rate = rate;
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 1;
  cfg.sla_ttft = 2.5;   // chatbot SLA (SV)
  cfg.sla_tpot = 0.15;

  std::printf("HeroServe quickstart: OPT-66B chatbot on the Fig. 6 testbed\n");
  std::printf("rate = %.2f req/s, %zu requests\n\n", rate, requests);

  Table table({"system", "plan (TPxPP pre|dec)", "TTFT p90 (s)",
               "TPOT p90 (s)", "SLA att.", "req/s", "KV util avg"});
  for (SystemKind kind : kAllSystems) {
    const ExperimentResult r = run_experiment(kind, cfg);
    if (!r.ok()) {
      table.add_row({to_string(kind), "infeasible: " +
                                          r.plan.infeasible_reason});
      continue;
    }
    const auto& p = r.plan;
    table.add_row(
        {to_string(kind),
         std::to_string(p.prefill.parallel.p_tens) + "x" +
             std::to_string(p.prefill.parallel.p_pipe) + " | " +
             std::to_string(p.decode.parallel.p_tens) + "x" +
             std::to_string(p.decode.parallel.p_pipe),
         fmt_double(r.report.ttft.p90(), 3),
         fmt_double(r.report.tpot.p90(), 4),
         fmt_double(r.report.sla_attainment, 3),
         fmt_double(r.report.requests_per_second, 2),
         fmt_double(r.report.kv_utilization_avg, 3)});
  }
  table.print();
  return 0;
}
