// Quickstart: plan and serve a chatbot workload on the paper's testbed.
//
// Builds the Fig. 6 testbed (four 4-GPU workers, two programmable
// switches), plans an OPT-66B deployment with the offline planner, then
// serves a ShareGPT-like trace under HeroServe and the three baselines,
// printing TTFT/TPOT/SLA-attainment for each.
//
//   ./build/examples/quickstart [rate] [requests] [--seed N]
//                               [--trace out.json] [--faults plan.json]
//
// With --trace, the HeroServe run records a Chrome trace (open in
// chrome://tracing or https://ui.perfetto.dev): request lifecycles,
// prefill/decode spans, KV transfers, every collective with its chosen
// policy and Eq. 16 cost, and controller ticks. With --faults, the JSON
// fault plan is replayed against every system's run (chaos comparison).
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace hero;
  const cli::Options opts = cli::parse_args(
      argc, argv,
      "quickstart [rate] [requests] [--seed N] [--trace out.json] "
      "[--faults plan.json]");
  const double rate = cli::positional_double(opts, 0, 2.0);
  const std::size_t requests = cli::positional_size(opts, 1, 80);

  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = rate;
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = opts.seed;
  cfg.serving.seed = opts.seed;
  cfg.serving.sla_ttft = 2.5;  // chatbot SLA (SV)
  cfg.serving.sla_tpot = 0.15;
  if (!opts.faults_path.empty()) {
    cfg.fault_plan = faults::load_fault_plan(opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                opts.faults_path.c_str(), cfg.fault_plan.events.size());
  }

  std::printf("HeroServe quickstart: OPT-66B chatbot on the Fig. 6 testbed\n");
  std::printf("rate = %.2f req/s, %zu requests, seed = %llu\n\n", rate,
              requests, static_cast<unsigned long long>(opts.seed));

  obs::EventTracer tracer;
  obs::MetricsRegistry metrics;

  Table table({"system", "plan (TPxPP pre|dec)", "TTFT p90 (s)",
               "TPOT p90 (s)", "SLA att.", "req/s", "KV util avg"});
  for (SystemKind kind : kAllSystems) {
    // Trace the HeroServe run only: each system gets its own simulator
    // timeline, and overlaying four timelines in one file is unreadable.
    const bool traced =
        !opts.trace_path.empty() && kind == SystemKind::kHeroServe;
    cfg.sink = traced ? obs::Sink(&tracer, &metrics) : obs::Sink();
    const ExperimentResult r = run_experiment(kind, cfg);
    if (!r.ok()) {
      table.add_row({to_string(kind), "infeasible: " +
                                          r.plan.infeasible_reason});
      continue;
    }
    const auto& p = r.plan;
    table.add_row(
        {to_string(kind),
         std::to_string(p.prefill.parallel.p_tens) + "x" +
             std::to_string(p.prefill.parallel.p_pipe) + " | " +
             std::to_string(p.decode.parallel.p_tens) + "x" +
             std::to_string(p.decode.parallel.p_pipe),
         fmt_double(r.report.ttft.p90(), 3),
         fmt_double(r.report.tpot.p90(), 4),
         fmt_double(r.report.sla_attainment, 3),
         fmt_double(r.report.requests_per_second, 2),
         fmt_double(r.report.kv_utilization_avg, 3)});
    if (traced && r.report.trace_checked) {
      std::printf(
          "trace cross-check: %llu collectives (engine) vs %llu (tracer) "
          "-> %s\n",
          static_cast<unsigned long long>(r.report.collectives),
          static_cast<unsigned long long>(r.report.trace_collectives),
          r.report.trace_consistent ? "consistent" : "MISMATCH");
    }
  }
  table.print();

  if (!opts.trace_path.empty()) {
    if (tracer.write_chrome_trace_file(opts.trace_path.c_str())) {
      std::printf("\nwrote %zu trace events -> %s (load in ui.perfetto.dev)\n",
                  tracer.event_count(), opts.trace_path.c_str());
    }
    std::printf("%s", metrics.snapshot(0.0).to_string().c_str());
  }
  return 0;
}
