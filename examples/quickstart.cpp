// Quickstart: plan and serve a chatbot workload on the paper's testbed.
//
// Builds the Fig. 6 testbed (four 4-GPU workers, two programmable
// switches), plans an OPT-66B deployment with the offline planner, then
// serves a ShareGPT-like trace under HeroServe and the three baselines,
// printing TTFT/TPOT/SLA-attainment for each.
//
//   ./build/examples/quickstart [rate] [requests] [--seed N]
//                               [--trace out.json] [--faults plan.json]
//                               [--instances N] [--router rr|random|jsq|hero]
//
// With --trace, the HeroServe run records a Chrome trace (open in
// chrome://tracing or https://ui.perfetto.dev): request lifecycles,
// prefill/decode spans, KV transfers, every collective with its chosen
// policy and Eq. 16 cost, and controller ticks. With --faults, the JSON
// fault plan is replayed against every system's run (chaos comparison).
//
// With --instances N (N > 1) the run switches to fleet mode: the fleet
// planner packs N replicated OPT-66B instances onto a rack-scale cluster
// and the trace is served behind the chosen --router policy (default
// hero). The positional rate is fleet-wide.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace {

/// Fleet mode (--instances N > 1): plan N replicas on a rack-scale fleet
/// cluster and serve the trace behind the configured router.
int run_fleet(const hero::cli::Options& opts, hero::ExperimentConfig cfg,
              double rate, std::size_t requests) {
  using namespace hero;
  topo::FleetClusterOptions fabric;
  // One rack per instance (min 4) keeps the planner packing comfortable
  // while leaving rack uplinks oversubscribed enough to matter.
  fabric.racks = static_cast<std::int32_t>(
      opts.instances > 4 ? opts.instances : 4);
  cfg.topology = topo::make_fleet_cluster(fabric);
  cfg.fleet.instances = opts.instances;
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;
  if (!opts.router.empty()) {
    const auto policy = serve::parse_router_policy(opts.router);
    if (!policy) {
      std::fprintf(stderr, "unknown router policy: %s\n",
                   opts.router.c_str());
      return 1;
    }
    cfg.fleet.policy = *policy;
  }

  std::printf(
      "HeroServe quickstart (fleet): OPT-66B x %zu instances, router = %s\n",
      opts.instances, serve::to_string(cfg.fleet.policy));
  std::printf("rate = %.2f req/s fleet-wide, %zu requests, seed = %llu\n\n",
              rate, requests, static_cast<unsigned long long>(opts.seed));

  obs::EventTracer tracer;
  obs::MetricsRegistry metrics;
  if (!opts.trace_path.empty()) cfg.sink = obs::Sink(&tracer, &metrics);

  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  if (!r.ok()) {
    std::printf("fleet planner infeasible: %s\n",
                r.plan.infeasible_reason.c_str());
    return 1;
  }

  Table table({"instance", "plan (TPxPP pre|dec)", "dispatched",
               "TTFT p90 (s)", "TPOT p90 (s)", "SLA att.", "KV util avg"});
  for (std::size_t i = 0; i < r.report.per_instance.size(); ++i) {
    const planner::PlanResult& p = r.plan.instances[i];
    const serve::ServingReport& rep = r.report.per_instance[i];
    table.add_row(
        {"i" + std::to_string(i),
         std::to_string(p.prefill.parallel.p_tens) + "x" +
             std::to_string(p.prefill.parallel.p_pipe) + " | " +
             std::to_string(p.decode.parallel.p_tens) + "x" +
             std::to_string(p.decode.parallel.p_pipe),
         std::to_string(r.report.dispatched[i]),
         fmt_double(rep.ttft.p90(), 3), fmt_double(rep.tpot.p90(), 4),
         fmt_double(rep.sla_attainment, 3),
         fmt_double(rep.kv_utilization_avg, 3)});
  }
  const serve::ServingReport& agg = r.report.aggregate;
  table.add_row({"fleet", std::to_string(r.plan.gpus_used) + " GPUs",
                 std::to_string(agg.submitted), fmt_double(agg.ttft.p90(), 3),
                 fmt_double(agg.tpot.p90(), 4),
                 fmt_double(agg.sla_attainment, 3),
                 fmt_double(agg.kv_utilization_avg, 3)});
  table.print();
  std::printf(
      "\nfleet goodput = %.3f req/s/GPU, dispatch imbalance = %.3f\n",
      raw(agg.per_gpu_goodput), r.report.dispatch_imbalance);

  if (!opts.trace_path.empty()) {
    if (tracer.write_chrome_trace_file(opts.trace_path.c_str())) {
      std::printf("wrote %zu trace events -> %s\n", tracer.event_count(),
                  opts.trace_path.c_str());
    }
    std::printf("%s", metrics.snapshot(0.0).to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hero;
  const cli::Options opts = cli::parse_args(
      argc, argv,
      "quickstart [rate] [requests] [--seed N] [--trace out.json] "
      "[--faults plan.json] [--instances N] [--router rr|random|jsq|hero] "
      "[--full-solve]");
  const double rate = cli::positional_double(opts, 0, 2.0);
  const std::size_t requests = cli::positional_size(opts, 1, 80);

  ExperimentConfig cfg;
  // --full-solve swaps the incremental max-min engine for the whole-fabric
  // solve; output must be byte-identical (the determinism gate diffs them).
  cfg.netsim.full_solve = opts.full_solve;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = rate;
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = opts.seed;
  cfg.serving.seed = opts.seed;
  cfg.serving.sla_ttft = 2.5;  // chatbot SLA (SV)
  cfg.serving.sla_tpot = 0.15;
  if (!opts.faults_path.empty()) {
    cfg.fault_plan = faults::load_fault_plan(opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                opts.faults_path.c_str(), cfg.fault_plan.events.size());
  }

  if (opts.instances > 1) return run_fleet(opts, cfg, rate, requests);

  std::printf("HeroServe quickstart: OPT-66B chatbot on the Fig. 6 testbed\n");
  std::printf("rate = %.2f req/s, %zu requests, seed = %llu\n\n", rate,
              requests, static_cast<unsigned long long>(opts.seed));

  obs::EventTracer tracer;
  obs::MetricsRegistry metrics;

  Table table({"system", "plan (TPxPP pre|dec)", "TTFT p90 (s)",
               "TPOT p90 (s)", "SLA att.", "req/s", "KV util avg"});
  for (SystemKind kind : kAllSystems) {
    // Trace the HeroServe run only: each system gets its own simulator
    // timeline, and overlaying four timelines in one file is unreadable.
    const bool traced =
        !opts.trace_path.empty() && kind == SystemKind::kHeroServe;
    cfg.sink = traced ? obs::Sink(&tracer, &metrics) : obs::Sink();
    const ExperimentResult r = run_experiment(kind, cfg);
    if (!r.ok()) {
      table.add_row({to_string(kind), "infeasible: " +
                                          r.plan.infeasible_reason});
      continue;
    }
    const auto& p = r.plan;
    table.add_row(
        {to_string(kind),
         std::to_string(p.prefill.parallel.p_tens) + "x" +
             std::to_string(p.prefill.parallel.p_pipe) + " | " +
             std::to_string(p.decode.parallel.p_tens) + "x" +
             std::to_string(p.decode.parallel.p_pipe),
         fmt_double(r.report.ttft.p90(), 3),
         fmt_double(r.report.tpot.p90(), 4),
         fmt_double(r.report.sla_attainment, 3),
         fmt_double(raw(r.report.requests_per_second), 2),
         fmt_double(r.report.kv_utilization_avg, 3)});
    if (traced && r.report.trace_checked) {
      std::printf(
          "trace cross-check: %llu collectives (engine) vs %llu (tracer) "
          "-> %s\n",
          static_cast<unsigned long long>(r.report.collectives),
          static_cast<unsigned long long>(r.report.trace_collectives),
          r.report.trace_consistent ? "consistent" : "MISMATCH");
    }
  }
  table.print();

  if (!opts.trace_path.empty()) {
    if (tracer.write_chrome_trace_file(opts.trace_path.c_str())) {
      std::printf("\nwrote %zu trace events -> %s (load in ui.perfetto.dev)\n",
                  tracer.event_count(), opts.trace_path.c_str());
    }
    std::printf("%s", metrics.snapshot(0.0).to_string().c_str());
  }
  return 0;
}
