// Quickstart: plan and serve a chatbot workload on the paper's testbed.
//
// Builds the Fig. 6 testbed (four 4-GPU workers, two programmable
// switches), plans an OPT-66B deployment with the offline planner, then
// serves a ShareGPT-like trace under HeroServe and the three baselines,
// printing TTFT/TPOT/SLA-attainment for each.
//
//   ./build/examples/quickstart [rate] [requests] [--seed N]
//                               [--trace out.json]
//
// With --trace, the HeroServe run records a Chrome trace (open in
// chrome://tracing or https://ui.perfetto.dev): request lifecycles,
// prefill/decode spans, KV transfers, every collective with its chosen
// policy and Eq. 16 cost, and controller ticks.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/heroserve.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace hero;
  const char* trace_path = nullptr;
  std::uint64_t seed = 1;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 ||
        std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: quickstart [rate] [requests] "
                             "[--seed N] [--trace out.json]\n");
        return 1;
      }
      if (std::strcmp(argv[i], "--trace") == 0) {
        trace_path = argv[++i];
      } else {
        seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  const double rate = !positional.empty() ? std::atof(positional[0]) : 2.0;
  const std::size_t requests =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoll(positional[1]))
          : 80;

  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = rate;
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = seed;
  cfg.serving.seed = seed;
  cfg.serving.sla_ttft = 2.5;  // chatbot SLA (SV)
  cfg.serving.sla_tpot = 0.15;

  std::printf("HeroServe quickstart: OPT-66B chatbot on the Fig. 6 testbed\n");
  std::printf("rate = %.2f req/s, %zu requests, seed = %llu\n\n", rate,
              requests, static_cast<unsigned long long>(seed));

  obs::EventTracer tracer;
  obs::MetricsRegistry metrics;

  Table table({"system", "plan (TPxPP pre|dec)", "TTFT p90 (s)",
               "TPOT p90 (s)", "SLA att.", "req/s", "KV util avg"});
  for (SystemKind kind : kAllSystems) {
    // Trace the HeroServe run only: each system gets its own simulator
    // timeline, and overlaying four timelines in one file is unreadable.
    const bool traced = trace_path && kind == SystemKind::kHeroServe;
    cfg.tracer = traced ? &tracer : nullptr;
    cfg.metrics = traced ? &metrics : nullptr;
    const ExperimentResult r = run_experiment(kind, cfg);
    if (!r.ok()) {
      table.add_row({to_string(kind), "infeasible: " +
                                          r.plan.infeasible_reason});
      continue;
    }
    const auto& p = r.plan;
    table.add_row(
        {to_string(kind),
         std::to_string(p.prefill.parallel.p_tens) + "x" +
             std::to_string(p.prefill.parallel.p_pipe) + " | " +
             std::to_string(p.decode.parallel.p_tens) + "x" +
             std::to_string(p.decode.parallel.p_pipe),
         fmt_double(r.report.ttft.p90(), 3),
         fmt_double(r.report.tpot.p90(), 4),
         fmt_double(r.report.sla_attainment, 3),
         fmt_double(r.report.requests_per_second, 2),
         fmt_double(r.report.kv_utilization_avg, 3)});
    if (traced && r.report.trace_checked) {
      std::printf(
          "trace cross-check: %llu collectives (engine) vs %llu (tracer) "
          "-> %s\n",
          static_cast<unsigned long long>(r.report.collectives),
          static_cast<unsigned long long>(r.report.trace_collectives),
          r.report.trace_consistent ? "consistent" : "MISMATCH");
    }
  }
  table.print();

  if (trace_path) {
    if (tracer.write_chrome_trace_file(trace_path)) {
      std::printf("\nwrote %zu trace events -> %s (load in ui.perfetto.dev)\n",
                  tracer.event_count(), trace_path);
    }
    std::printf("%s", metrics.snapshot(0.0).to_string().c_str());
  }
  return 0;
}
