// Summarization serving scenario: OPT-175B on a 2tracks pod cluster of
// 4-GPU servers under a LongBench-like long-input workload (the paper's
// simulation setting, SLA 25 s TTFT / 0.2 s TPOT).
//
// This is the cross-server regime: a 350 GB model on 4-GPU/40 GB servers
// cannot keep tensor-parallel groups inside one NVLink domain, so the
// communication scheduling differences between the four systems surface.
//
//   ./build/examples/summarization_serving [rate] [requests] [--seed N]
//                                          [--faults plan.json]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"

using namespace hero;

int main(int argc, char** argv) {
  const cli::Options opts = cli::parse_args(
      argc, argv,
      "summarization_serving [rate] [requests] [--seed N] "
      "[--faults plan.json]");
  const double rate = cli::positional_double(opts, 0, 0.4);
  const std::size_t requests = cli::positional_size(opts, 1, 60);

  topo::TracksOptions topts;
  topts.servers = 18;
  topts.tracks = 2;
  topts.servers_per_pod = 6;
  topts.core_switches = 3;
  topts.gpus_per_server = 4;

  ExperimentConfig cfg;
  cfg.topology = topo::make_tracks_cluster(topts);
  const auto ps = cfg.topology.add_server("ps");
  cfg.topology.add_edge(ps, cfg.topology.find("p0a0"),
                        topo::LinkKind::kEthernet, 100 * units::Gbps);
  cfg.topology.add_edge(ps, cfg.topology.find("p0a1"),
                        topo::LinkKind::kEthernet, 100 * units::Gbps);
  cfg.serving.model = llm::opt_175b();
  cfg.workload.rate = rate;
  cfg.workload.count = requests;
  cfg.workload.lengths = wl::longbench_lengths();
  cfg.workload.seed = opts.seed_given ? opts.seed : 29;
  if (opts.seed_given) cfg.serving.seed = opts.seed;
  cfg.serving.sla_ttft = 25.0;
  cfg.serving.sla_tpot = 0.2;
  if (!opts.faults_path.empty()) {
    cfg.fault_plan = faults::load_fault_plan(opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                opts.faults_path.c_str(), cfg.fault_plan.events.size());
  }

  std::printf(
      "Summarization scenario: OPT-175B on a 2tracks cluster (18 x 4-GPU "
      "servers), LongBench-like inputs, rate %.2f req/s, %zu requests\n\n",
      rate, requests);

  Table table({"system", "plan (TPxPP pre|dec)", "SLA att.", "TTFT p90 (s)",
               "TPOT p90 (s)", "KV util avg", "req/s"});
  for (SystemKind kind : kAllSystems) {
    const ExperimentResult r = run_experiment(kind, cfg);
    if (!r.ok()) {
      table.add_row({to_string(kind),
                     "infeasible: " + r.plan.infeasible_reason});
      continue;
    }
    table.add_row(
        {to_string(kind),
         std::to_string(r.plan.prefill.parallel.p_tens) + "x" +
             std::to_string(r.plan.prefill.parallel.p_pipe) + " | " +
             std::to_string(r.plan.decode.parallel.p_tens) + "x" +
             std::to_string(r.plan.decode.parallel.p_pipe),
         fmt_double(r.report.sla_attainment, 3),
         fmt_double(r.report.ttft.p90(), 2),
         fmt_double(r.report.tpot.p90(), 4),
         fmt_double(r.report.kv_utilization_avg, 3),
         fmt_double(raw(r.report.requests_per_second), 3)});
  }
  table.print();
  return 0;
}
