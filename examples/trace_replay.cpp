// Trace replay: serve a recorded request trace from a CSV file, the way
// the paper's traffic host replays ShareGPT/LongBench captures.
//
//   ./build/examples/trace_replay <trace.csv> [rate]
//
// Without arguments, generates a demo trace, saves it next to the binary,
// and replays it at two rates — demonstrating the capture -> rescale ->
// replay loop (workload/trace_io.hpp).
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/heroserve.hpp"
#include "workload/trace_io.hpp"

using namespace hero;

namespace {

void serve_trace(const wl::Trace& trace, const char* label) {
  // run_experiment generates its own trace from TraceOptions; for replay we
  // drive the pieces directly.
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.model = llm::opt_66b();
  cfg.sla_ttft = 2.5;
  cfg.sla_tpot = 0.15;

  wl::WorkloadEstimator estimator;
  for (const wl::Request& r : trace) estimator.observe(r);
  const wl::TraceStats stats = wl::summarize(trace);

  planner::PlannerInputs in;
  in.graph = &cfg.topology;
  in.model = cfg.model;
  in.latency = &fitted_model(cfg.model);
  in.batch_q = 8;
  in.k_in = estimator.k_in(8);
  in.k_in2 = estimator.k_in2(8);
  in.k_out = estimator.k_out(8);
  in.arrival_rate = stats.mean_rate;
  in.t_sla_prefill = cfg.sla_ttft;
  in.t_sla_decode = cfg.sla_tpot;
  planner::OfflinePlanner planner(in);
  const planner::PlanResult plan = planner.plan();
  if (!plan.feasible) {
    std::printf("%s: planner infeasible: %s\n", label,
                plan.infeasible_reason.c_str());
    return;
  }

  sim::Simulator simulator;
  net::FlowNetwork network(simulator, cfg.topology);
  sw::SwitchRegistry switches(simulator, cfg.topology);
  coll::CollectiveEngine engine(network, switches);
  online::HeroCommScheduler scheduler(network);

  serve::ServingOptions serving;
  serving.model = cfg.model;
  serving.sla_ttft = cfg.sla_ttft;
  serving.sla_tpot = cfg.sla_tpot;
  serving.max_sim_time =
      3600.0 + (trace.empty() ? 0.0 : trace.back().arrival);
  serve::ClusterSim cluster(network, engine, scheduler, plan, serving);
  scheduler.start();
  const serve::ServingReport report = cluster.run(trace);

  std::printf(
      "%s: %zu reqs @ %.2f req/s -> attainment %.3f, TTFT p90 %.2fs, "
      "TPOT p90 %.4fs\n",
      label, trace.size(), stats.mean_rate, report.sla_attainment,
      report.ttft.p90(), report.tpot.p90());
}

}  // namespace

int main(int argc, char** argv) {
  wl::Trace trace;
  if (argc > 1) {
    trace = wl::load_trace_csv(argv[1]);
    std::printf("loaded %zu requests from %s\n", trace.size(), argv[1]);
  } else {
    wl::TraceOptions opts;
    opts.rate = 1.0;
    opts.count = 60;
    opts.lengths = wl::sharegpt_lengths();
    trace = wl::generate_trace(opts);
    wl::save_trace_csv("demo_trace.csv", trace);
    std::printf("generated demo trace -> demo_trace.csv (%zu requests)\n",
                trace.size());
  }

  if (argc > 2) {
    trace = wl::rescale_rate(std::move(trace), std::atof(argv[2]));
  }

  serve_trace(trace, "as recorded");
  serve_trace(wl::rescale_rate(trace, wl::summarize(trace).mean_rate * 2.0),
              "replayed at 2x rate");
  return 0;
}
