// Trace replay: serve a recorded request trace from a CSV file, the way
// the paper's traffic host replays ShareGPT/LongBench captures.
//
//   ./build/examples/trace_replay [trace.csv] [rate] [--seed N]
//                                 [--trace out.json] [--faults plan.json]
//
// Without positional arguments, generates a demo trace, saves it next to
// the binary, and replays it at two rates — demonstrating the capture ->
// rescale -> replay loop (workload/trace_io.hpp). With --trace, the first
// replay records a Chrome trace_event JSON viewable in chrome://tracing or
// https://ui.perfetto.dev. With --faults, the plan is replayed against the
// first serve (faults/fault_plan.hpp).
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heroserve.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "workload/trace_io.hpp"

using namespace hero;

namespace {

void serve_trace(const wl::Trace& trace, const char* label, obs::Sink sink,
                 const faults::FaultPlan* fault_plan = nullptr) {
  // run_experiment generates its own trace from TraceOptions; for replay we
  // drive the pieces directly.
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;

  wl::WorkloadEstimator estimator;
  for (const wl::Request& r : trace) estimator.observe(r);
  const wl::TraceStats stats = wl::summarize(trace);

  planner::PlannerInputs in;
  in.graph = &cfg.topology;
  in.model = cfg.serving.model;
  in.latency = &fitted_model(cfg.serving.model);
  in.batch_q = 8;
  in.k_in = estimator.k_in(8);
  in.k_in2 = estimator.k_in2(8);
  in.k_out = estimator.k_out(8);
  in.arrival_rate = stats.mean_rate;
  in.t_sla_prefill = cfg.serving.sla_ttft;
  in.t_sla_decode = cfg.serving.sla_tpot;
  planner::OfflinePlanner planner(in);
  const planner::PlanResult plan = planner.plan();
  if (!plan.feasible) {
    std::printf("%s: planner infeasible: %s\n", label,
                plan.infeasible_reason.c_str());
    return;
  }

  sim::Simulator simulator;
  simulator.attach(sink);
  net::FlowNetwork network(simulator, cfg.topology);
  sw::SwitchRegistry switches(simulator, cfg.topology);
  coll::CollectiveEngine engine(network, switches);
  online::HeroCommScheduler scheduler(network);

  serve::ServingOptions serving = cfg.serving;
  serving.max_sim_time =
      3600.0 + (trace.empty() ? 0.0 : trace.back().arrival);

  std::unique_ptr<faults::FaultInjector> injector;
  if (fault_plan != nullptr && !fault_plan->empty()) {
    faults::FaultInjector::Hooks hooks;
    hooks.switches = &switches;
    hooks.online = &scheduler.online();
    scheduler.online().attach_switches(&switches);
    injector =
        std::make_unique<faults::FaultInjector>(network, *fault_plan, hooks);
    serving.compute_scale = [inj = injector.get()](topo::NodeId g) {
      return inj->compute_scale(g);
    };
    injector->arm();
  }
  serve::ClusterSim cluster(network, engine, scheduler, plan, serving);
  scheduler.start();
  const serve::ServingReport report = cluster.run(trace);

  std::printf(
      "%s: %zu reqs @ %.2f req/s -> attainment %.3f, TTFT p90 %.2fs, "
      "TPOT p90 %.4fs\n",
      label, trace.size(), stats.mean_rate, report.sla_attainment,
      report.ttft.p90(), report.tpot.p90());
  if (report.trace_checked) {
    std::printf(
        "%s: trace cross-check: collectives %llu/%llu fallbacks %llu/%llu "
        "(engine/tracer) -> %s\n",
        label, static_cast<unsigned long long>(report.collectives),
        static_cast<unsigned long long>(report.trace_collectives),
        static_cast<unsigned long long>(report.ina_fallbacks),
        static_cast<unsigned long long>(report.trace_ina_fallbacks),
        report.trace_consistent ? "consistent" : "MISMATCH");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Options opts = cli::parse_args(
      argc, argv,
      "trace_replay [trace.csv] [rate] [--seed N] [--trace out.json] "
      "[--faults plan.json]");

  wl::Trace trace;
  if (!opts.positional.empty()) {
    trace = wl::load_trace_csv(opts.positional[0].c_str());
    std::printf("loaded %zu requests from %s\n", trace.size(),
                opts.positional[0].c_str());
  } else {
    wl::TraceOptions gen;
    gen.rate = 1.0;
    gen.count = 60;
    gen.lengths = wl::sharegpt_lengths();
    gen.seed = opts.seed;
    trace = wl::generate_trace(gen);
    wl::save_trace_csv("demo_trace.csv", trace);
    std::printf("generated demo trace -> demo_trace.csv (%zu requests)\n",
                trace.size());
  }

  if (opts.positional.size() > 1) {
    trace = wl::rescale_rate(std::move(trace),
                             cli::positional_double(opts, 1, 1.0));
  }

  faults::FaultPlan fault_plan;
  if (!opts.faults_path.empty()) {
    fault_plan = faults::load_fault_plan(opts.faults_path);
    std::printf("loaded fault plan %s (%zu events)\n",
                opts.faults_path.c_str(), fault_plan.events.size());
  }

  // Record the first replay only: each replay runs on a fresh simulator
  // whose clock restarts at zero, so a shared trace file would interleave.
  obs::EventTracer tracer;
  obs::MetricsRegistry metrics;
  serve_trace(trace, "as recorded",
              opts.trace_path.empty() ? obs::Sink()
                                      : obs::Sink(&tracer, &metrics),
              &fault_plan);
  if (!opts.trace_path.empty()) {
    if (tracer.write_chrome_trace_file(opts.trace_path.c_str())) {
      std::printf("wrote %zu trace events -> %s (load in ui.perfetto.dev)\n",
                  tracer.event_count(), opts.trace_path.c_str());
    }
  }
  serve_trace(wl::rescale_rate(trace, wl::summarize(trace).mean_rate * 2.0),
              "replayed at 2x rate", obs::Sink());
  return 0;
}
