#include "baselines/static_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace hero::baselines {
namespace {

constexpr topo::PathConstraints kEthernetOnly{/*allow_nvlink=*/false,
                                              /*allow_ethernet=*/true};

/// NCCL-style baseline routing: same-server GPU pairs always use the direct
/// NVLink edge (no real stack sends intra-node traffic out the NIC); every
/// other pair takes the static Ethernet shortest path. What the baselines
/// lack — by design (SII-C) — is NVLink *forwarding* (detouring through a
/// peer GPU's NIC), heterogeneous aggregation placement, and load-aware
/// re-routing.
coll::Router nccl_style_router(const topo::Graph& g) {
  const coll::Router ethernet = coll::shortest_path_router(g, kEthernetOnly);
  return [&g, ethernet](topo::NodeId a, topo::NodeId b) -> topo::Path {
    if (g.is_gpu(a) && g.is_gpu(b) &&
        g.node(a).gpu.server == g.node(b).gpu.server) {
      return coll::direct_nvlink_path(g, a, b);
    }
    return ethernet(a, b);
  };
}

topo::NodeId find_ps_host(const topo::Graph& g) {
  for (topo::NodeId i = 0; i < g.node_count(); ++i) {
    if (g.node(i).kind == topo::NodeKind::kServer) return i;
  }
  return topo::kInvalidNode;
}

}  // namespace

const char* to_string(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kDistServe: return "DistServe";
    case BaselineKind::kSwitchMl: return "DS-SwitchML";
    case BaselineKind::kAtp: return "DS-ATP";
  }
  return "?";
}

StaticCommScheduler::StaticCommScheduler(net::FlowNetwork& network,
                                         BaselineKind kind,
                                         BaselineOptions opts)
    : network_(&network), kind_(kind), opts_(opts) {
  if (kind_ == BaselineKind::kAtp && opts_.fallback == topo::kInvalidNode) {
    opts_.fallback = find_ps_host(network.graph());
  }
}

coll::GroupId StaticCommScheduler::register_group(
    std::vector<topo::NodeId> members) {
  const topo::Graph& g = network_->graph();
  // Ring order follows NCCL's topology detection: same-server members sit
  // adjacent so intra-node legs ride NVLink.
  std::stable_sort(members.begin(), members.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     return g.node(a).gpu.server < g.node(b).gpu.server;
                   });
  const coll::Router route = nccl_style_router(g);
  const coll::Router ethernet =
      coll::shortest_path_router(g, kEthernetOnly);

  // A group confined to one server has nothing to aggregate in-network:
  // the DS-integrated INA baselines fall back to plain NCCL there, same as
  // DistServe.
  const bool single_server =
      std::all_of(members.begin(), members.end(), [&](topo::NodeId m) {
        return g.node(m).gpu.server == g.node(members.front()).gpu.server;
      });

  coll::AllReducePlan plan;
  switch (kind_) {
    case BaselineKind::kDistServe:
      plan = coll::make_ring_plan(std::move(members), 0.0, route);
      break;
    case BaselineKind::kSwitchMl:
    case BaselineKind::kAtp: {
      if (single_server) {
        plan = coll::make_ring_plan(std::move(members), 0.0, route);
        break;
      }
      // The DS integration offloads NCCL's *inter-node* stage to the
      // switch: NVLink-local reduction first, then the per-server leaders
      // stream to the aggregator over their own NICs (Ethernet). What the
      // baselines still lack vs HeroServe: NVLink forwarding detours,
      // multi-switch placement, and load-aware scheme switching.
      // Sharded INA: every member streams its shard via its own NIC, so the
      // aggregator is elected by the worst member's path. The central
      // scheduler "uniformly allocates and recycles aggregator slots"
      // (SIV): spread groups round-robin across the top-ranked switches.
      auto switches =
          coll::rank_aggregation_switches(g, members, kEthernetOnly, 2);
      if (switches.empty()) {
        throw std::runtime_error(
            "StaticCommScheduler: no aggregation switch reachable");
      }
      if (switches.size() > 1) {
        std::rotate(switches.begin(),
                    switches.begin() +
                        static_cast<std::ptrdiff_t>(plans_.size() %
                                                    switches.size()),
                    switches.end());
      }
      const bool sync = kind_ == BaselineKind::kSwitchMl;
      if (!sync && opts_.fallback == topo::kInvalidNode) {
        throw std::runtime_error("DS-ATP: no PS fallback host in topology");
      }
      plan = coll::make_hierarchical_plan(
          g, std::move(members),
          0.0, sync ? coll::Scheme::kInaSync : coll::Scheme::kInaAsync,
          ethernet, switches.front(),
          sync ? topo::kInvalidNode : opts_.fallback, opts_.slots);
      break;
    }
  }
  plans_.push_back(std::move(plan));
  return plans_.size() - 1;
}

coll::AllReducePlan StaticCommScheduler::all_reduce_plan(coll::GroupId group,
                                                         Bytes bytes) {
  coll::AllReducePlan plan = plans_.at(group);
  plan.bytes = bytes;
  return plan;
}

topo::Path StaticCommScheduler::unicast_path(topo::NodeId src,
                                             topo::NodeId dst) {
  topo::PathOptions opts;
  opts.constraints = kEthernetOnly;
  auto p = topo::shortest_path(network_->graph(), src, dst, opts);
  if (!p) throw std::runtime_error("StaticCommScheduler: no unicast route");
  return *std::move(p);
}

}  // namespace hero::baselines
