// Baseline communication schedulers (paper SV): DistServe, DS-SwitchML, and
// DS-ATP, all restricted to homogeneous Ethernet paths.
//
//  * DistServe     — NCCL-style flat ring all-reduce over Ethernet; no INA.
//  * DS-SwitchML   — DistServe + synchronous INA: flat aggregation at the
//                    closest programmable switch; jobs queue when the
//                    aggregator pool is exhausted.
//  * DS-ATP        — DistServe + asynchronous INA: best-effort aggregation
//                    with fallback to end-host PS aggregation on slot miss.
//
// All three pick their scheme and routes once at group registration and
// never adapt — the key behavioural difference from HeroServe's online
// scheduler.
#pragma once

#include <vector>

#include "collectives/comm_scheduler.hpp"
#include "netsim/flownet.hpp"

namespace hero::baselines {

enum class BaselineKind : std::uint8_t { kDistServe, kSwitchMl, kAtp };

[[nodiscard]] const char* to_string(BaselineKind kind);

struct BaselineOptions {
  /// PS host for DS-ATP's fallback; auto-discovered (first kServer node)
  /// when left invalid.
  topo::NodeId fallback = topo::kInvalidNode;
  std::uint32_t slots = 8;
};

class StaticCommScheduler final : public coll::CommScheduler {
 public:
  StaticCommScheduler(net::FlowNetwork& network, BaselineKind kind,
                      BaselineOptions opts = {});

  coll::GroupId register_group(std::vector<topo::NodeId> members) override;
  coll::AllReducePlan all_reduce_plan(coll::GroupId group,
                                      Bytes bytes) override;
  topo::Path unicast_path(topo::NodeId src, topo::NodeId dst) override;
  [[nodiscard]] const char* name() const override {
    return to_string(kind_);
  }

  [[nodiscard]] BaselineKind kind() const { return kind_; }
  /// The fixed plan of a registered group (bytes left 0).
  [[nodiscard]] const coll::AllReducePlan& plan(coll::GroupId group) const {
    return plans_.at(group);
  }

 private:
  net::FlowNetwork* network_;
  BaselineKind kind_;
  BaselineOptions opts_;
  std::vector<coll::AllReducePlan> plans_;
};

}  // namespace hero::baselines
