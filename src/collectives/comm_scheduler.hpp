// The communication-scheduling interface the serving layer programs against.
//
// A CommScheduler answers two questions per communication event:
//   * for a tensor-parallel group's all-reduce: which scheme over which
//     paths (returned as a fully resolved AllReducePlan);
//   * for a point-to-point transfer (pipeline boundary, KV cache): which
//     route.
// HeroServe's implementation adapts both per call from the policy cost
// table (online/); the baselines return fixed homogeneous-network plans
// (baselines/).
#pragma once

#include <cstddef>
#include <vector>

#include "collectives/engine.hpp"

namespace hero::coll {

using GroupId = std::size_t;

class CommScheduler {
 public:
  virtual ~CommScheduler() = default;

  /// Register a tensor-parallel GPU group; the returned id keys later
  /// all_reduce_plan calls.
  virtual GroupId register_group(std::vector<topo::NodeId> members) = 0;

  /// Resolve one all-reduce of `bytes` per member for a registered group.
  virtual AllReducePlan all_reduce_plan(GroupId group, Bytes bytes) = 0;

  /// Route a one-way transfer (pipeline activations, KV cache).
  virtual topo::Path unicast_path(topo::NodeId src, topo::NodeId dst) = 0;

  /// Hook for periodic work (controller sync); default none.
  virtual void start() {}

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace hero::coll
