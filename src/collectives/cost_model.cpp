#include "collectives/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace hero::coll {

Time ring_all_reduce_latency(std::size_t members, Bytes volume_per_gpu,
                             Bandwidth bottleneck, Time per_step_overhead) {
  if (members <= 1 || volume_per_gpu <= 0) return 0.0;
  if (bottleneck <= 0) return std::numeric_limits<Time>::infinity();
  const double steps = 2.0 * (static_cast<double>(members) - 1.0);
  const Bytes chunk = volume_per_gpu / static_cast<double>(members);
  return steps * (chunk / bottleneck + per_step_overhead);
}

Time ring_all_reduce_latency_on_paths(const topo::Graph& g,
                                      std::span<const topo::Path> ring_paths,
                                      Bytes volume_per_gpu,
                                      std::span<const Bandwidth> residual_bw) {
  if (ring_paths.size() <= 1 || volume_per_gpu <= 0) return 0.0;
  // Every step moves one chunk across every ring edge concurrently; the step
  // time is set by the slowest neighbour path (store-and-forward over its
  // hops).
  const std::size_t members = ring_paths.size();
  const Bytes chunk = volume_per_gpu / static_cast<double>(members);
  Time worst_step = 0.0;
  for (const topo::Path& p : ring_paths) {
    if (p.empty()) return std::numeric_limits<Time>::infinity();
    worst_step = std::max(worst_step, p.latency(g, chunk, residual_bw));
  }
  return 2.0 * (static_cast<double>(members) - 1.0) * worst_step;
}

Time ina_all_reduce_latency_on_paths(const topo::Graph& g,
                                     std::span<const topo::Path> up_paths,
                                     std::span<const topo::Path> down_paths,
                                     Bytes volume_per_gpu,
                                     const CostConfig& cfg,
                                     std::span<const Bandwidth> residual_bw) {
  if (up_paths.empty() || volume_per_gpu <= 0) return 0.0;
  Time col = 0.0;
  for (const topo::Path& p : up_paths) {
    col = std::max(col, p.latency(g, volume_per_gpu, residual_bw));
  }
  Time dis = 0.0;
  for (const topo::Path& p : down_paths) {
    dis = std::max(dis, p.latency(g, volume_per_gpu, residual_bw));
  }
  return col + cfg.agg_latency + dis;
}

Time hierarchical_latency(Bytes volume_per_gpu,
                          std::span<const std::size_t> local_sizes,
                          Bandwidth nvlink_bw, Time wide_latency) {
  Time local = 0.0;
  Time bcast = 0.0;
  for (std::size_t size : local_sizes) {
    local = std::max(local, ring_all_reduce_latency(size, volume_per_gpu,
                                                    nvlink_bw));
    if (size > 1) {
      bcast = std::max(bcast, transfer_time(volume_per_gpu, nvlink_bw));
    }
  }
  return local + wide_latency + bcast;
}

}  // namespace hero::coll
