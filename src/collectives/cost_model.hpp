// Closed-form collective cost models — the planner-side mirror of what the
// runtime engine executes (paper Eq. 7-11).
//
// The offline planner (Alg. 2 `compute_ina_latency` / `compute_ring_latency`)
// and the online scheduler both need cheap latency estimates that do not run
// the event simulation; these helpers compute them from paths and residual
// bandwidths.
#pragma once

#include <span>

#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace hero::coll {

struct CostConfig {
  /// T_agg: in-switch aggregation constant (paper: ~1 us, [42][43]).
  Time agg_latency = 1.0 * units::us;
  /// End-host (PS) aggregation bandwidth for the ATP fallback path.
  Bandwidth host_agg_bw = 50.0 * units::GBps;
};

/// Eq. 11: T_ring = 2 (P-1) * D_rg / min_e B(e), where D_rg is the per-step
/// chunk (= volume_per_gpu / P for all-reduce) and the bottleneck is the
/// slowest link on any ring hop. `per_step_overhead` adds the fixed hop
/// latency paid on every step.
[[nodiscard]] Time ring_all_reduce_latency(std::size_t members,
                                           Bytes volume_per_gpu,
                                           Bandwidth bottleneck,
                                           Time per_step_overhead = 0.0);

/// Ring estimate from concrete ring paths (bottleneck and per-step overhead
/// derived from the path hops).
[[nodiscard]] Time ring_all_reduce_latency_on_paths(
    const topo::Graph& g, std::span<const topo::Path> ring_paths,
    Bytes volume_per_gpu, std::span<const Bandwidth> residual_bw = {});

/// Eq. 8-10: T_ina = max_k T_col(k) + T_agg + max_k T_dis(k), each phase a
/// store-and-forward path transfer of the full per-GPU volume.
[[nodiscard]] Time ina_all_reduce_latency_on_paths(
    const topo::Graph& g, std::span<const topo::Path> up_paths,
    std::span<const topo::Path> down_paths, Bytes volume_per_gpu,
    const CostConfig& cfg = {}, std::span<const Bandwidth> residual_bw = {});

/// Hierarchical estimate: local NVLink ring within each server over
/// `local_sizes`, then the inter-server phase (`wide_latency`), then an
/// NVLink broadcast. Used by the planner when scoring HeroServe's
/// heterogeneous scheme.
[[nodiscard]] Time hierarchical_latency(Bytes volume_per_gpu,
                                        std::span<const std::size_t>
                                            local_sizes,
                                        Bandwidth nvlink_bw,
                                        Time wide_latency);

}  // namespace hero::coll
