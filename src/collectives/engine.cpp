#include "collectives/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::coll {

const char* to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kRing: return "ring";
    case Scheme::kInaSync: return "ina-sync";
    case Scheme::kInaAsync: return "ina-async";
  }
  return "?";
}

/// State of one ring all-reduce pass (flat wide phase or one NVLink-local
/// group). Addresses stay stable: Ops live behind unique_ptr and these
/// vectors are fully built before the first flow launches.
struct RingRun {
  std::vector<topo::Path> paths;
  Bytes chunk = 0;
  std::size_t steps_left = 0;
  std::size_t flows_pending = 0;
};

struct CollectiveEngine::Op {
  std::uint64_t id = 0;
  AllReducePlan plan;
  Done done;
  AllReduceResult result;

  std::vector<RingRun> local_runs;
  std::size_t local_pending = 0;
  RingRun wide_ring;
  std::size_t flows_pending = 0;  // INA / fallback / broadcast phases
  bool holds_slots = false;
};

namespace {

void start_ring_pass(CollectiveEngine& engine, net::FlowNetwork& network,
                     RingRun& run, std::function<void()> on_done);

void ring_step(CollectiveEngine& engine, net::FlowNetwork& network,
               RingRun& run, const std::shared_ptr<std::function<void()>>& done) {
  run.flows_pending = run.paths.size();
  for (const topo::Path& path : run.paths) {
    network.start_transfer(
        path, run.chunk,
        net::TransferOptions{[&engine, &network, &run, done](net::TransferId) {
          if (--run.flows_pending != 0) return;
          if (--run.steps_left == 0) {
            (*done)();
          } else {
            ring_step(engine, network, run, done);
          }
        }});
  }
}

void start_ring_pass(CollectiveEngine& engine, net::FlowNetwork& network,
                     RingRun& run, std::function<void()> on_done) {
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  if (run.paths.size() <= 1 || run.steps_left == 0 || run.chunk <= 0) {
    // Degenerate ring: complete asynchronously for uniform semantics.
    network.simulator().schedule_in(0.0, [done] { (*done)(); });
    return;
  }
  ring_step(engine, network, run, done);
}

}  // namespace

CollectiveEngine::CollectiveEngine(net::FlowNetwork& network,
                                   sw::SwitchRegistry& switches,
                                   EngineConfig config)
    : network_(&network), switches_(&switches), config_(config) {}

CollectiveEngine::~CollectiveEngine() = default;

void CollectiveEngine::all_reduce(AllReducePlan plan, Done done) {
  const std::uint64_t id = next_op_++;
  auto op = std::make_unique<Op>();
  op->id = id;
  op->plan = std::move(plan);
  op->done = std::move(done);
  op->result.start = network_->simulator().now();
  op->result.scheme = op->plan.scheme;
  Op& ref = *op;
  ops_.emplace(id, std::move(op));

  sim::Simulator& sim = network_->simulator();
  if (obs::EventTracer* tr = sim.tracer()) {
    std::string name = to_string(ref.plan.scheme);
    if (!ref.plan.flat()) name = "hier-" + name;
    obs::TraceArgs args{
        obs::arg("bytes", ref.plan.bytes),
        obs::arg("scheme", to_string(ref.plan.scheme)),
        obs::arg("wide_members", ref.plan.wide_members.size()),
        obs::arg("hierarchical", !ref.plan.flat())};
    if (ref.plan.switch_node != topo::kInvalidNode) {
      args.push_back(obs::arg(
          "switch", network_->graph().node(ref.plan.switch_node).name));
    }
    tr->async_begin(sim.now(), id, "collective", std::move(name),
                    std::move(args));
    tr->counter(sim.now(), "coll.inflight",
                static_cast<double>(ops_.size()));
  }
  if (obs::MetricsRegistry* m = sim.metrics()) {
    m->counter("coll.started").add();
    m->gauge("coll.inflight").set(sim.now(),
                                  static_cast<double>(ops_.size()));
  }

  if (!ref.plan.local_groups.empty()) {
    start_local_phase(ref);
  } else {
    start_wide_phase(ref);
  }
}

void CollectiveEngine::start_local_phase(Op& op) {
  // NVLink-local ring all-reduce inside every server group.
  op.local_runs.clear();
  op.local_runs.reserve(op.plan.local_groups.size());
  for (const auto& group : op.plan.local_groups) {
    if (group.size() <= 1) continue;
    RingRun run;
    run.chunk = op.plan.bytes / static_cast<double>(group.size());
    run.steps_left = 2 * (group.size() - 1);
    run.paths.reserve(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      run.paths.push_back(direct_nvlink_path(
          network_->graph(), group[i], group[(i + 1) % group.size()]));
    }
    op.local_runs.push_back(std::move(run));
  }
  if (op.local_runs.empty()) {
    start_wide_phase(op);
    return;
  }
  op.local_pending = op.local_runs.size();
  for (RingRun& run : op.local_runs) {
    start_ring_pass(*this, *network_, run, [this, id = op.id] {
      auto it = ops_.find(id);
      if (it == ops_.end()) return;
      if (--it->second->local_pending == 0) start_wide_phase(*it->second);
    });
  }
}

void CollectiveEngine::start_wide_phase(Op& op) {
  op.result.wide_start = network_->simulator().now();
  if (op.plan.wide_members.size() <= 1) {
    op.result.collected = op.result.wide_start;
    start_broadcast_phase(op);
    return;
  }
  switch (op.plan.scheme) {
    case Scheme::kRing:
      run_ring(op);
      break;
    case Scheme::kInaSync:
    case Scheme::kInaAsync:
      run_ina(op);
      break;
  }
}

void CollectiveEngine::run_ring(Op& op) {
  if (op.plan.ring_paths.size() != op.plan.wide_members.size()) {
    throw std::invalid_argument("all_reduce: ring_paths size mismatch");
  }
  op.wide_ring.paths = op.plan.ring_paths;
  op.wide_ring.chunk =
      op.plan.bytes / static_cast<double>(op.plan.wide_members.size());
  op.wide_ring.steps_left = 2 * (op.plan.wide_members.size() - 1);
  start_ring_pass(*this, *network_, op.wide_ring, [this, id = op.id] {
    auto it = ops_.find(id);
    if (it == ops_.end()) return;
    it->second->result.collected = network_->simulator().now();
    start_broadcast_phase(*it->second);
  });
}

void CollectiveEngine::run_ina(Op& op) {
  if (op.plan.switch_node == topo::kInvalidNode ||
      op.plan.up_paths.size() != op.plan.wide_members.size() ||
      op.plan.down_paths.size() != op.plan.wide_members.size()) {
    throw std::invalid_argument("all_reduce: incomplete INA plan");
  }
  sw::SwitchAgent& agent = switches_->agent(op.plan.switch_node);
  const bool sync = op.plan.scheme == Scheme::kInaSync;
  const sw::Admission admission = agent.reserve(
      op.id, op.plan.slots, /*queue_if_full=*/sync, [this, id = op.id] {
        auto it = ops_.find(id);
        if (it == ops_.end()) return;
        it->second->holds_slots = true;
        ina_collect(*it->second);
      });
  if (admission == sw::Admission::kRejected) {
    // ATP best-effort: aggregate at the end-host parameter server instead.
    run_fallback(op);
  }
}

void CollectiveEngine::ina_collect(Op& op) {
  op.flows_pending = op.plan.up_paths.size();
  for (std::size_t i = 0; i < op.plan.up_paths.size(); ++i) {
    const topo::Path& path = op.plan.up_paths[i];
    const double scale =
        op.plan.wide_scale.empty() ? 1.0 : op.plan.wide_scale[i];
    network_->start_transfer(
        path, op.plan.bytes * scale,
        net::TransferOptions{[this, id = op.id](net::TransferId) {
          auto it = ops_.find(id);
          if (it == ops_.end()) return;
          Op& o = *it->second;
          if (--o.flows_pending != 0) return;
          o.result.collected = network_->simulator().now();
          // Constant in-switch aggregation latency, then distribution.
          network_->simulator().schedule_in(
              config_.cost.agg_latency, [this, id] {
                auto it2 = ops_.find(id);
                if (it2 == ops_.end()) return;
                Op& o2 = *it2->second;
                o2.flows_pending = o2.plan.down_paths.size();
                for (std::size_t di = 0; di < o2.plan.down_paths.size();
                     ++di) {
                  const topo::Path& down = o2.plan.down_paths[di];
                  const double dscale = o2.plan.wide_scale.empty()
                                            ? 1.0
                                            : o2.plan.wide_scale[di];
                  network_->start_transfer(
                      down, o2.plan.bytes * dscale,
                      net::TransferOptions{[this, id](net::TransferId) {
                        auto it3 = ops_.find(id);
                        if (it3 == ops_.end()) return;
                        Op& o3 = *it3->second;
                        if (--o3.flows_pending != 0) return;
                        switches_->agent(o3.plan.switch_node)
                            .release(o3.id);
                        o3.holds_slots = false;
                        start_broadcast_phase(o3);
                      }});
                }
              });
        }});
  }
}

void CollectiveEngine::run_fallback(Op& op) {
  // Fallback consistency: only a best-effort (async INA) reservation can
  // be rejected into the end-host path, and never while holding slots.
  HERO_INVARIANT(op.plan.scheme == Scheme::kInaAsync,
                 "fallback taken for scheme {}", to_string(op.plan.scheme));
  HERO_INVARIANT(!op.holds_slots, "op {} falls back while holding slots",
                 op.id);
  if (op.plan.fallback_node == topo::kInvalidNode ||
      op.plan.fallback_up.size() != op.plan.wide_members.size() ||
      op.plan.fallback_down.size() != op.plan.wide_members.size()) {
    throw std::invalid_argument(
        "all_reduce: async INA rejected and no fallback configured");
  }
  ++fallbacks_taken;
  op.result.used_fallback = true;
  sim::Simulator& sim = network_->simulator();
  if (obs::EventTracer* tr = sim.tracer()) {
    // ATP degradation moment: the switch rejected the reservation and the
    // op re-routes through the end-host parameter server.
    tr->instant(sim.now(), tr->track("collectives"), "ina_fallback",
                "switch-reject->host-ps",
                {obs::arg("op", op.id), obs::arg("bytes", op.plan.bytes),
                 obs::arg("fallback",
                          network_->graph().node(op.plan.fallback_node).name)});
  }
  if (obs::MetricsRegistry* m = sim.metrics()) {
    m->counter("coll.fallbacks").add();
  }
  op.flows_pending = op.plan.fallback_up.size();
  for (std::size_t i = 0; i < op.plan.fallback_up.size(); ++i) {
    const topo::Path& path = op.plan.fallback_up[i];
    const double scale =
        op.plan.wide_scale.empty() ? 1.0 : op.plan.wide_scale[i];
    network_->start_transfer(
        path, op.plan.bytes * scale,
        net::TransferOptions{[this, id = op.id](net::TransferId) {
          auto it = ops_.find(id);
          if (it == ops_.end()) return;
          Op& o = *it->second;
          if (--o.flows_pending != 0) return;
          o.result.collected = network_->simulator().now();
          // Host-side reduction of P payloads through memory bandwidth.
          const Time host_time =
              static_cast<double>(o.plan.wide_members.size()) * o.plan.bytes /
              config_.cost.host_agg_bw;
          network_->simulator().schedule_in(host_time, [this, id] {
            auto it2 = ops_.find(id);
            if (it2 == ops_.end()) return;
            Op& o2 = *it2->second;
            o2.flows_pending = o2.plan.fallback_down.size();
            for (std::size_t di = 0; di < o2.plan.fallback_down.size();
                 ++di) {
              const topo::Path& down = o2.plan.fallback_down[di];
              const double dscale = o2.plan.wide_scale.empty()
                                        ? 1.0
                                        : o2.plan.wide_scale[di];
              network_->start_transfer(
                  down, o2.plan.bytes * dscale,
                  net::TransferOptions{[this, id](net::TransferId) {
                    auto it3 = ops_.find(id);
                    if (it3 == ops_.end()) return;
                    Op& o3 = *it3->second;
                    if (--o3.flows_pending != 0) return;
                    start_broadcast_phase(o3);
                  }});
            }
          });
        }});
  }
}

void CollectiveEngine::start_broadcast_phase(Op& op) {
  if (op.plan.local_groups.empty()) {
    finish(op);
    return;
  }
  std::size_t transfers = 0;
  for (const auto& group : op.plan.local_groups) {
    if (group.size() > 1) transfers += group.size() - 1;
  }
  if (transfers == 0) {
    finish(op);
    return;
  }
  op.flows_pending = transfers;
  for (const auto& group : op.plan.local_groups) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      network_->start_transfer(
          direct_nvlink_path(network_->graph(), group[0], group[i]),
          op.plan.bytes,
          net::TransferOptions{[this, id = op.id](net::TransferId) {
            auto it = ops_.find(id);
            if (it == ops_.end()) return;
            if (--it->second->flows_pending == 0) finish(*it->second);
          }});
    }
  }
}

void CollectiveEngine::finish(Op& op) {
  // Every phase barrier must have drained before an op completes.
  HERO_INVARIANT(op.flows_pending == 0,
                 "op {} finished with {} flows pending", op.id,
                 op.flows_pending);
  HERO_INVARIANT(op.local_pending == 0,
                 "op {} finished with {} local rings pending", op.id,
                 op.local_pending);
  HERO_INVARIANT(op.result.used_fallback ? op.plan.scheme == Scheme::kInaAsync
                                         : true,
                 "op {} recorded fallback under scheme {}", op.id,
                 to_string(op.plan.scheme));
  op.result.end = network_->simulator().now();
  ++ops_completed;
  if (op.holds_slots) {
    switches_->agent(op.plan.switch_node).release(op.id);
    op.holds_slots = false;
  }
  Done done = std::move(op.done);
  const AllReduceResult result = op.result;
  const std::uint64_t id = op.id;
  // Rebuild the begin event's name: legacy async matching is by
  // (category, name, id).
  std::string name = to_string(op.plan.scheme);
  if (!op.plan.flat()) name = "hier-" + name;
  ops_.erase(op.id);
  sim::Simulator& sim = network_->simulator();
  if (obs::EventTracer* tr = sim.tracer()) {
    tr->async_end(sim.now(), id, "collective", std::move(name),
                  {obs::arg("latency", result.latency()),
                   obs::arg("used_fallback", result.used_fallback)});
    tr->counter(sim.now(), "coll.inflight",
                static_cast<double>(ops_.size()));
  }
  if (obs::MetricsRegistry* m = sim.metrics()) {
    m->counter("coll.ops").add();
    m->gauge("coll.inflight").set(sim.now(),
                                  static_cast<double>(ops_.size()));
  }
  if (done) done(result);
}

void CollectiveEngine::transfer(const topo::Path& path, Bytes bytes,
                                std::function<void()> done) {
  network_->start_transfer(
      path, bytes,
      net::TransferOptions{[cb = std::move(done)](net::TransferId) {
        if (cb) cb();
      }});
}

// --- plan builders -------------------------------------------------------

AllReducePlan make_ring_plan(std::vector<topo::NodeId> members, Bytes bytes,
                             const Router& route) {
  AllReducePlan plan;
  plan.bytes = bytes;
  plan.scheme = Scheme::kRing;
  plan.wide_members = std::move(members);
  plan.ring_paths.reserve(plan.wide_members.size());
  if (plan.wide_members.size() > 1) {
    for (std::size_t i = 0; i < plan.wide_members.size(); ++i) {
      plan.ring_paths.push_back(
          route(plan.wide_members[i],
                plan.wide_members[(i + 1) % plan.wide_members.size()]));
    }
  }
  return plan;
}

AllReducePlan make_ina_plan(std::vector<topo::NodeId> members, Bytes bytes,
                            topo::NodeId agg_switch, Scheme scheme,
                            const Router& route, topo::NodeId fallback,
                            std::uint32_t slots) {
  if (scheme == Scheme::kRing) {
    throw std::invalid_argument("make_ina_plan: scheme must be INA");
  }
  AllReducePlan plan;
  plan.bytes = bytes;
  plan.scheme = scheme;
  plan.wide_members = std::move(members);
  plan.switch_node = agg_switch;
  plan.slots = slots;
  plan.up_paths.reserve(plan.wide_members.size());
  plan.down_paths.reserve(plan.wide_members.size());
  for (topo::NodeId m : plan.wide_members) {
    plan.up_paths.push_back(route(m, agg_switch));
    plan.down_paths.push_back(route(agg_switch, m));
  }
  if (fallback != topo::kInvalidNode) {
    plan.fallback_node = fallback;
    for (topo::NodeId m : plan.wide_members) {
      plan.fallback_up.push_back(route(m, fallback));
      plan.fallback_down.push_back(route(fallback, m));
    }
  }
  return plan;
}

AllReducePlan make_hierarchical_plan(const topo::Graph& g,
                                     std::vector<topo::NodeId> members,
                                     Bytes bytes, Scheme wide_scheme,
                                     const Router& route,
                                     topo::NodeId agg_switch,
                                     topo::NodeId fallback,
                                     std::uint32_t slots) {
  // Group members by NVLink domain (server id).
  std::vector<std::vector<topo::NodeId>> groups;
  std::unordered_map<std::int32_t, std::size_t> by_server;
  for (topo::NodeId m : members) {
    const std::int32_t server = g.node(m).gpu.server;
    auto [it, inserted] = by_server.try_emplace(server, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(m);
  }

  AllReducePlan plan;
  if (wide_scheme == Scheme::kRing) {
    std::vector<topo::NodeId> leaders;
    leaders.reserve(groups.size());
    for (const auto& group : groups) leaders.push_back(group.front());
    plan = make_ring_plan(leaders, bytes, route);
  } else {
    // Sharded INA: every member streams its 1/g shard via its own NIC.
    std::vector<topo::NodeId> all_members;
    std::vector<double> scale;
    for (const auto& group : groups) {
      for (topo::NodeId m : group) {
        all_members.push_back(m);
        scale.push_back(1.0 / static_cast<double>(group.size()));
      }
    }
    plan = make_ina_plan(all_members, bytes, agg_switch, wide_scheme, route,
                         fallback, slots);
    plan.wide_scale = std::move(scale);
  }
  plan.local_groups = std::move(groups);
  return plan;
}

topo::Path direct_nvlink_path(const topo::Graph& g, topo::NodeId a,
                              topo::NodeId b) {
  for (const topo::Adjacency& adj : g.neighbors(a)) {
    if (adj.peer == b && g.edge(adj.edge).kind == topo::LinkKind::kNvLink) {
      return topo::Path{{a, b}, {adj.edge}};
    }
  }
  throw std::invalid_argument("direct_nvlink_path: no NVLink edge");
}

Router shortest_path_router(const topo::Graph& g,
                            topo::PathConstraints constraints) {
  return [&g, constraints](topo::NodeId a, topo::NodeId b) -> topo::Path {
    topo::PathOptions opts;
    opts.constraints = constraints;
    auto p = topo::shortest_path(g, a, b, opts);
    if (!p) {
      throw std::runtime_error("shortest_path_router: unreachable pair " +
                               g.node(a).name + " -> " + g.node(b).name);
    }
    return *std::move(p);
  };
}

std::vector<topo::NodeId> rank_aggregation_switches(
    const topo::PathOracle& oracle, const std::vector<topo::NodeId>& members,
    std::size_t count) {
  struct Scored {
    topo::NodeId sw = topo::kInvalidNode;
    Time score = 0.0;
  };
  const topo::Graph& g = oracle.graph();
  std::vector<Scored> scored;
  for (topo::NodeId sw : g.switches()) {
    if (g.node(sw).agg_slots <= 0) continue;
    // Collection latency is a max over members (Eq. 9), so the election
    // minimizes the worst member's path; the sum breaks ties.
    Time worst = 0.0;
    Time total = 0.0;
    bool reachable = true;
    for (topo::NodeId m : members) {
      const Time lat = oracle.latency(m, sw, 1.0 * units::MiB);
      if (std::isinf(raw(lat))) {
        reachable = false;
        break;
      }
      worst = std::max(worst, lat);
      total += lat;
    }
    if (reachable) scored.push_back({sw, worst * 1e6 + total});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score < b.score; });
  std::vector<topo::NodeId> out;
  for (const Scored& s : scored) {
    if (out.size() >= count) break;
    out.push_back(s.sw);
  }
  return out;
}

std::vector<topo::NodeId> rank_aggregation_switches(
    const topo::Graph& g, const std::vector<topo::NodeId>& members,
    topo::PathConstraints constraints, std::size_t count) {
  topo::PathOptions opts;
  opts.constraints = constraints;
  // One Dijkstra per distinct member instead of one per (member, switch):
  // the oracle memoizes per-source solves within this election.
  const topo::PathOracle oracle(g, opts);
  return rank_aggregation_switches(oracle, members, count);
}

}  // namespace hero::coll
