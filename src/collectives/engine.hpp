// Collective-communication execution engine over the flow network.
//
// The engine executes fully *resolved* plans: the caller (offline planner
// output or the online scheduler) has already decided the scheme (ring /
// synchronous INA / asynchronous INA), the aggregation switch, and every
// transmission path. The engine turns that decision into flows, enforces
// switch slot admission, and reports phase timestamps.
//
// Supported shapes:
//  * flat ring all-reduce           (the NCCL baseline, Eq. 11 semantics)
//  * flat INA all-reduce            (SwitchML/ATP: collect -> agg -> dist)
//  * hierarchical all-reduce        (HeroServe: NVLink-local ring, one leader
//                                    per server joins the inter-server phase,
//                                    NVLink broadcast back — Fig. 2(b))
//  * point-to-point transfer        (pipeline activations, KV cache)
//
// Asynchronous INA (ATP) falls back to end-host PS aggregation when the
// switch rejects the reservation, reproducing ATP's best-effort degradation
// under slot pressure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "collectives/cost_model.hpp"
#include "netsim/flownet.hpp"
#include "switchsim/switch_agent.hpp"

namespace hero::coll {

enum class Scheme : std::uint8_t { kRing, kInaSync, kInaAsync };

[[nodiscard]] const char* to_string(Scheme scheme);

/// Path lookup used by plan builders; implementations: static planner
/// PathStore, online scheduler dynamic choice, Ethernet-only baselines.
using Router = std::function<topo::Path(topo::NodeId, topo::NodeId)>;

struct AllReducePlan {
  Bytes bytes = 0;  ///< per-GPU payload (the all-reduce tensor size)

  /// Hierarchical phase: same-server groups (leader at index 0). Empty for
  /// flat plans.
  std::vector<std::vector<topo::NodeId>> local_groups;

  /// Inter-server phase participants (every member when flat, the leaders
  /// when hierarchical).
  Scheme scheme = Scheme::kRing;
  std::vector<topo::NodeId> wide_members;

  /// scheme == kRing: ring_paths[i] routes wide_members[i] ->
  /// wide_members[(i+1) % n].
  std::vector<topo::Path> ring_paths;

  /// scheme == kIna*: collection/distribution paths per wide member.
  topo::NodeId switch_node = topo::kInvalidNode;
  std::vector<topo::Path> up_paths;
  std::vector<topo::Path> down_paths;
  /// Per-wide-member payload fraction (SwitchML sharding: after a local
  /// reduce-scatter every GPU streams only its 1/g shard through its own
  /// NIC). Empty = every member ships the full payload.
  std::vector<double> wide_scale;
  std::uint32_t slots = 8;  ///< aggregator slots the job reserves

  /// scheme == kInaAsync: end-host fallback aggregator (the testbed PS).
  topo::NodeId fallback_node = topo::kInvalidNode;
  std::vector<topo::Path> fallback_up;
  std::vector<topo::Path> fallback_down;

  [[nodiscard]] bool flat() const { return local_groups.empty(); }
};

struct AllReduceResult {
  Time start = 0;
  Time wide_start = 0;   ///< local phase done / switch granted
  Time collected = 0;    ///< INA: all contributions at aggregation point
  Time end = 0;
  Scheme scheme = Scheme::kRing;
  bool used_fallback = false;

  [[nodiscard]] Time latency() const { return end - start; }
};

struct EngineConfig {
  CostConfig cost;  ///< agg latency, host fallback bandwidth
};

class CollectiveEngine {
 public:
  CollectiveEngine(net::FlowNetwork& network, sw::SwitchRegistry& switches,
                   EngineConfig config = {});

  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;
  ~CollectiveEngine();  // out of line: Op is incomplete here

  using Done = std::function<void(const AllReduceResult&)>;

  /// Execute an all-reduce; `done` fires when every member holds the result.
  void all_reduce(AllReducePlan plan, Done done);

  /// One-way transfer along a resolved path (KV cache, pipeline boundary).
  void transfer(const topo::Path& path, Bytes bytes,
                std::function<void()> done);

  [[nodiscard]] net::FlowNetwork& network() { return *network_; }
  [[nodiscard]] sw::SwitchRegistry& switches() { return *switches_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  // --- aggregate statistics ---
  std::uint64_t ops_completed = 0;
  std::uint64_t fallbacks_taken = 0;

 private:
  struct Op;

  net::FlowNetwork* network_;
  sw::SwitchRegistry* switches_;
  EngineConfig config_;
  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Op>> ops_;

  void start_local_phase(Op& op);
  void start_wide_phase(Op& op);
  void run_ring(Op& op);
  void ring_step(Op& op);
  void run_ina(Op& op);
  void ina_collect(Op& op);
  void run_fallback(Op& op);
  void start_broadcast_phase(Op& op);
  void finish(Op& op);
};

// --- plan builders -------------------------------------------------------

/// Flat ring plan over `members` in the given order; paths via `route`.
[[nodiscard]] AllReducePlan make_ring_plan(
    std::vector<topo::NodeId> members, Bytes bytes, const Router& route);

/// Flat INA plan aggregating at `agg_switch`; async plans may carry a
/// fallback host.
[[nodiscard]] AllReducePlan make_ina_plan(
    std::vector<topo::NodeId> members, Bytes bytes, topo::NodeId agg_switch,
    Scheme scheme, const Router& route,
    topo::NodeId fallback = topo::kInvalidNode, std::uint32_t slots = 8);

/// Hierarchical plan: members grouped by server. For ring schemes the
/// per-server leaders run the wide phase with the full payload; for INA
/// schemes the wide phase is *sharded* — a local reduce-scatter leaves each
/// GPU with a 1/g shard which it streams to `agg_switch` through its own
/// NIC (SwitchML's per-worker streams), followed by a local all-gather.
[[nodiscard]] AllReducePlan make_hierarchical_plan(
    const topo::Graph& g, std::vector<topo::NodeId> members, Bytes bytes,
    Scheme wide_scheme, const Router& route,
    topo::NodeId agg_switch = topo::kInvalidNode,
    topo::NodeId fallback = topo::kInvalidNode, std::uint32_t slots = 8);

/// Single NVLink edge path between two same-server GPUs (throws when there
/// is no direct NVLink edge).
[[nodiscard]] topo::Path direct_nvlink_path(const topo::Graph& g,
                                            topo::NodeId a, topo::NodeId b);

/// Router resolving pairs through static shortest paths under the given
/// constraints (throws std::runtime_error on unreachable pairs).
[[nodiscard]] Router shortest_path_router(
    const topo::Graph& g, topo::PathConstraints constraints = {});

/// Aggregation-switch election: switches with aggregator slots, ranked by
/// total shortest-path latency (1 MiB reference) to `members`; at most
/// `count` returned. Used by the offline planner (Alg. 2 step 2), the
/// online policy builder, and the INA baselines. The oracle overload is the
/// fast path: a caller-owned topo::PathOracle amortizes the per-member
/// Dijkstra across every election it runs (the planner scores tens of
/// thousands of candidate groups against the same graph).
[[nodiscard]] std::vector<topo::NodeId> rank_aggregation_switches(
    const topo::PathOracle& oracle, const std::vector<topo::NodeId>& members,
    std::size_t count);
[[nodiscard]] std::vector<topo::NodeId> rank_aggregation_switches(
    const topo::Graph& g, const std::vector<topo::NodeId>& members,
    topo::PathConstraints constraints, std::size_t count);

}  // namespace hero::coll
