#include "collectives/primitives.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

namespace hero::coll {

const char* to_string(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::kAllGather: return "all-gather";
    case PrimitiveKind::kReduceScatter: return "reduce-scatter";
    case PrimitiveKind::kBroadcast: return "broadcast";
  }
  return "?";
}

PrimitivePlan make_ring_primitive(PrimitiveKind kind,
                                  std::vector<topo::NodeId> members,
                                  Bytes bytes, const Router& route) {
  if (kind == PrimitiveKind::kBroadcast) {
    throw std::invalid_argument(
        "make_ring_primitive: use make_broadcast_plan for broadcasts");
  }
  PrimitivePlan plan;
  plan.kind = kind;
  plan.bytes = bytes;
  plan.members = std::move(members);
  if (plan.members.size() > 1) {
    plan.paths.reserve(plan.members.size());
    for (std::size_t i = 0; i < plan.members.size(); ++i) {
      plan.paths.push_back(route(
          plan.members[i], plan.members[(i + 1) % plan.members.size()]));
    }
  }
  return plan;
}

PrimitivePlan make_broadcast_plan(std::vector<topo::NodeId> members,
                                  Bytes bytes, const Router& route) {
  PrimitivePlan plan;
  plan.kind = PrimitiveKind::kBroadcast;
  plan.bytes = bytes;
  plan.members = std::move(members);
  if (plan.members.size() > 1) {
    plan.paths.resize(plan.members.size());
    for (std::size_t i = 1; i < plan.members.size(); ++i) {
      plan.paths[i] = route(plan.members[0], plan.members[i]);
    }
  }
  return plan;
}

namespace {

/// Ring pass driver shared by all-gather and reduce-scatter: `steps` rounds
/// in which every member forwards a (bytes / P) chunk to its successor.
struct RingPassState {
  std::vector<topo::Path> paths;
  Bytes chunk = 0;
  std::size_t steps_left = 0;
  std::size_t flows_pending = 0;
  Time start = 0;
  std::function<void(Time)> done;
};

void ring_pass_step(net::FlowNetwork& network,
                    const std::shared_ptr<RingPassState>& state) {
  state->flows_pending = state->paths.size();
  for (const topo::Path& path : state->paths) {
    network.start_transfer(
        path, state->chunk,
        net::TransferOptions{[&network, state](net::TransferId) {
          if (--state->flows_pending != 0) return;
          if (--state->steps_left == 0) {
            state->done(network.simulator().now() - state->start);
          } else {
            ring_pass_step(network, state);
          }
        }});
  }
}

}  // namespace

void run_primitive(CollectiveEngine& engine, PrimitivePlan plan,
                   std::function<void(Time)> done) {
  net::FlowNetwork& network = engine.network();
  const Time start = network.simulator().now();
  if (plan.members.size() <= 1 || plan.bytes <= 0) {
    network.simulator().schedule_in(0.0, [done = std::move(done)] {
      if (done) done(0.0);
    });
    return;
  }

  switch (plan.kind) {
    case PrimitiveKind::kAllGather:
    case PrimitiveKind::kReduceScatter: {
      auto state = std::make_shared<RingPassState>();
      state->paths = std::move(plan.paths);
      state->chunk =
          plan.bytes / static_cast<double>(plan.members.size());
      state->steps_left = plan.members.size() - 1;
      state->start = start;
      state->done = std::move(done);
      ring_pass_step(network, state);
      return;
    }
    case PrimitiveKind::kBroadcast: {
      auto pending =
          std::make_shared<std::size_t>(plan.members.size() - 1);
      auto cb = std::make_shared<std::function<void(Time)>>(std::move(done));
      for (std::size_t i = 1; i < plan.members.size(); ++i) {
        network.start_transfer(
            plan.paths[i], plan.bytes,
            net::TransferOptions{[&network, pending, cb,
                                  start](net::TransferId) {
              if (--*pending == 0 && *cb) {
                (*cb)(network.simulator().now() - start);
              }
            }});
      }
      return;
    }
  }
}

Time all_gather_latency(std::size_t members, Bytes bytes,
                        Bandwidth bottleneck, Time per_step_overhead) {
  if (members <= 1 || bytes <= 0) return 0.0;
  if (bottleneck <= 0) return std::numeric_limits<Time>::infinity();
  const double steps = static_cast<double>(members - 1);
  const Bytes chunk = bytes / static_cast<double>(members);
  return steps * (chunk / bottleneck + per_step_overhead);
}

Time reduce_scatter_latency(std::size_t members, Bytes bytes,
                            Bandwidth bottleneck, Time per_step_overhead) {
  return all_gather_latency(members, bytes, bottleneck, per_step_overhead);
}

Time broadcast_latency_on_paths(const topo::Graph& g,
                                std::span<const topo::Path> paths,
                                Bytes bytes,
                                std::span<const Bandwidth> residual_bw) {
  Time worst = 0.0;
  for (const topo::Path& p : paths) {
    if (p.nodes.empty()) continue;  // root's own slot
    worst = std::max(worst, p.latency(g, bytes, residual_bw));
  }
  return worst;
}

Time sequence_parallel_pair_latency(std::size_t members, Bytes bytes,
                                    Bandwidth bottleneck) {
  return reduce_scatter_latency(members, bytes, bottleneck) +
         all_gather_latency(members, bytes, bottleneck);
}

}  // namespace hero::coll
