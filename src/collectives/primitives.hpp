// Additional collective primitives beyond all-reduce: all-gather,
// reduce-scatter, and broadcast — both closed-form cost models (planner
// side) and DES execution on top of the CollectiveEngine's flow machinery.
//
// These are the building blocks SwiftTransformer-style runtimes use around
// the all-reduce: sequence-parallel attention uses all-gather/
// reduce-scatter pairs instead of two all-reduces, and pipeline stages
// broadcast sampled tokens. Providing them makes the collective layer a
// complete NCCL-shaped surface rather than a single-op special case.
#pragma once

#include "collectives/engine.hpp"

namespace hero::coll {

enum class PrimitiveKind : std::uint8_t {
  kAllGather,
  kReduceScatter,
  kBroadcast,
};

[[nodiscard]] const char* to_string(PrimitiveKind kind);

/// Resolved plan for a non-all-reduce primitive. `bytes` is the full tensor
/// size; each primitive moves the NCCL-standard fraction of it.
struct PrimitivePlan {
  PrimitiveKind kind = PrimitiveKind::kAllGather;
  Bytes bytes = 0;
  std::vector<topo::NodeId> members;  ///< broadcast root at index 0
  /// ring_paths[i] routes members[i] -> members[(i+1) % n]; broadcast uses
  /// root -> member paths instead (index 0 unused).
  std::vector<topo::Path> paths;
};

/// Build a ring-based all-gather / reduce-scatter plan over `members`.
[[nodiscard]] PrimitivePlan make_ring_primitive(PrimitiveKind kind,
                                                std::vector<topo::NodeId>
                                                    members,
                                                Bytes bytes,
                                                const Router& route);

/// Build a broadcast plan: root = members[0] sends the full tensor to every
/// other member along individual routes.
[[nodiscard]] PrimitivePlan make_broadcast_plan(
    std::vector<topo::NodeId> members, Bytes bytes, const Router& route);

/// Execute a primitive on the engine's network; `done` receives the
/// operation latency.
void run_primitive(CollectiveEngine& engine, PrimitivePlan plan,
                   std::function<void(Time)> done);

// --- closed-form cost models (ring algorithms, per NCCL) ---

/// All-gather: (P-1) steps of (bytes/P) per ring hop.
[[nodiscard]] Time all_gather_latency(std::size_t members, Bytes bytes,
                                      Bandwidth bottleneck,
                                      Time per_step_overhead = 0.0);

/// Reduce-scatter: identical wire cost to all-gather.
[[nodiscard]] Time reduce_scatter_latency(std::size_t members, Bytes bytes,
                                          Bandwidth bottleneck,
                                          Time per_step_overhead = 0.0);

/// Broadcast: max over receivers of the root->receiver path serialization.
[[nodiscard]] Time broadcast_latency_on_paths(
    const topo::Graph& g, std::span<const topo::Path> paths, Bytes bytes,
    std::span<const Bandwidth> residual_bw = {});

/// Identity check: all-gather + reduce-scatter == all-reduce on the wire
/// (the sequence-parallel equivalence); returns the combined estimate.
[[nodiscard]] Time sequence_parallel_pair_latency(std::size_t members,
                                                  Bytes bytes,
                                                  Bandwidth bottleneck);

}  // namespace hero::coll
