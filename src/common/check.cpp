#include "common/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hero::check {
namespace {

void default_handler(const char* kind, const char* file, int line,
                     const char* condition, const std::string& message) {
  std::fprintf(stderr, "%s:%d: HERO_%s failed: %s%s%s\n", file, line,
               kind[0] == 'r' ? "REQUIRE" : "INVARIANT", condition,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

std::atomic<FailureHandler> g_handler{nullptr};
std::atomic<std::uint64_t> g_failures{0};

}  // namespace

void set_failure_handler(FailureHandler handler) { g_handler = handler; }

std::uint64_t failures_observed() { return g_failures.load(); }

void fail(const char* kind, const char* file, int line, const char* condition,
          const std::string& message) {
  g_failures.fetch_add(1);
  FailureHandler h = g_handler.load();
  (h != nullptr ? h : &default_handler)(kind, file, line, condition, message);
}

}  // namespace hero::check
