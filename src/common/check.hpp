// Runtime invariant subsystem.
//
// HERO_INVARIANT(cond, ...)  — internal-consistency check ("this cannot
//                              happen unless the simulation state is
//                              corrupt"): per-link allocated rate vs.
//                              capacity, event-time monotonicity, slot
//                              refcounts, cost-table non-negativity.
// HERO_REQUIRE(cond, ...)    — precondition check at a subsystem boundary
//                              ("the caller handed us garbage").
//
// Both macros are *compiled out* unless the HERO_VALIDATE CMake option is
// ON (`cmake --preset validate`): the condition is type-checked via
// sizeof() but never evaluated, so release builds pay nothing and validate
// builds catch drift the tier-1 assertions are too coarse to see. Under
// HERO_VALIDATE a failed check formats file:line, the condition text, and
// an optional strfmt() message, then invokes the failure handler — by
// default fatal (abort). Tests install a recording handler via
// set_failure_handler() to observe checks firing without dying.
#pragma once

#include <cstdint>
#include <string>

#include "common/format.hpp"

namespace hero::check {

/// Invoked on a failed HERO_INVARIANT/HERO_REQUIRE (HERO_VALIDATE builds
/// only). `kind` is "invariant" or "require". The default handler prints
/// the failure to stderr and aborts; a handler that returns (or throws)
/// lets tests continue past the failure.
using FailureHandler = void (*)(const char* kind, const char* file, int line,
                                const char* condition,
                                const std::string& message);

/// Install a failure handler; nullptr restores the fatal default.
void set_failure_handler(FailureHandler handler);

/// Total checks failed process-wide (survives handler swaps; tests use it
/// to assert "nothing fired" across a whole scenario).
[[nodiscard]] std::uint64_t failures_observed();

/// Dispatch a failure to the current handler (macro plumbing).
void fail(const char* kind, const char* file, int line, const char* condition,
          const std::string& message);

/// True when this translation unit was built with HERO_VALIDATE.
[[nodiscard]] constexpr bool enabled() {
#if defined(HERO_VALIDATE)
  return true;
#else
  return false;
#endif
}

namespace detail {
inline std::string message() { return {}; }
template <typename... Args>
std::string message(std::string_view fmt, Args&&... args) {
  return strfmt(fmt, std::forward<Args>(args)...);
}
}  // namespace detail

}  // namespace hero::check

#if defined(HERO_VALIDATE)

#define HERO_CHECK_IMPL(kind, cond, ...)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hero::check::fail(kind, __FILE__, __LINE__, #cond,                \
                          ::hero::check::detail::message(__VA_ARGS__));   \
    }                                                                     \
  } while (0)

#define HERO_INVARIANT(cond, ...) HERO_CHECK_IMPL("invariant", cond, __VA_ARGS__)
#define HERO_REQUIRE(cond, ...) HERO_CHECK_IMPL("require", cond, __VA_ARGS__)

#else  // !HERO_VALIDATE: type-check the condition, never evaluate it.

#define HERO_INVARIANT(cond, ...) \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)
#define HERO_REQUIRE(cond, ...)   \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)

#endif
