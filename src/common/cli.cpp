#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hero::cli {
namespace {

[[noreturn]] void usage_error(const char* usage, const char* flag) {
  std::fprintf(stderr, "missing value for %s\nusage: %s\n", flag, usage);
  std::exit(1);
}

}  // namespace

Options parse_args(int& argc, char** argv, const char* usage) {
  Options opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) usage_error(usage, flag);
      return argv[++i];
    };
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::printf("usage: %s\n", usage);
      std::exit(0);
    } else if (std::strcmp(a, "--seed") == 0) {
      opts.seed = static_cast<std::uint64_t>(std::atoll(value("--seed")));
      opts.seed_given = true;
    } else if (std::strcmp(a, "--faults") == 0) {
      opts.faults_path = value("--faults");
    } else if (std::strcmp(a, "--trace") == 0) {
      opts.trace_path = value("--trace");
    } else if (std::strcmp(a, "--instances") == 0) {
      opts.instances = static_cast<std::size_t>(
          std::atoll(value("--instances")));
      if (opts.instances == 0) opts.instances = 1;
    } else if (std::strcmp(a, "--router") == 0) {
      opts.router = value("--router");
    } else if (std::strcmp(a, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(a, "--full-solve") == 0) {
      opts.full_solve = true;
    } else {
      if (a[0] != '-') opts.positional.emplace_back(a);
      argv[out++] = argv[i];  // pass through (benchmark flags, positionals)
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return opts;
}

double positional_double(const Options& opts, std::size_t i,
                         double fallback) {
  if (i >= opts.positional.size()) return fallback;
  return std::atof(opts.positional[i].c_str());
}

std::size_t positional_size(const Options& opts, std::size_t i,
                            std::size_t fallback) {
  if (i >= opts.positional.size()) return fallback;
  return static_cast<std::size_t>(std::atoll(opts.positional[i].c_str()));
}

std::string positional_str(const Options& opts, std::size_t i,
                           std::string fallback) {
  if (i >= opts.positional.size()) return fallback;
  return opts.positional[i];
}

}  // namespace hero::cli
