// Shared command-line parsing for the example and benchmark binaries.
//
// Every per-binary main used to hand-roll the same argv loop; this parser
// owns the flags they all share —
//   --seed N           deterministic run seed
//   --faults plan.json fault-injection plan (see faults/fault_plan.hpp)
//   --trace out.json   Chrome trace output path
//   --instances N      fleet size (multi-instance serving)
//   --router NAME      fleet dispatch policy (rr | random | jsq | hero)
//   --quick            reduced-size run (smoke-test mode)
//   --full-solve       whole-fabric max-min each round (equivalence gate)
//   --help             print the binary's usage string and exit 0
// — plus positional argument collection. Recognized flags are *removed*
// from argv (argc is updated) so harnesses can hand the remainder to
// google-benchmark's Initialize() untouched; unrecognized flags (e.g.
// --benchmark_filter) pass through.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hero::cli {

struct Options {
  std::uint64_t seed = 1;
  bool seed_given = false;     ///< --seed appeared (callers keep their own
                               ///< default otherwise)
  std::string faults_path;     ///< empty = no fault plan requested
  std::string trace_path;      ///< empty = no trace requested
  std::size_t instances = 1;   ///< --instances (fleet size; 1 = single)
  std::string router;          ///< --router policy name; empty = default
  bool quick = false;          ///< --quick smoke-test mode
  bool full_solve = false;     ///< --full-solve (incremental-engine check)
  std::vector<std::string> positional;
};

/// Parse and strip the shared flags from argv. On --help prints `usage`
/// and exits 0; on a flag missing its value prints `usage` to stderr and
/// exits 1.
[[nodiscard]] Options parse_args(int& argc, char** argv, const char* usage);

/// Positional accessors with defaults (index past the end -> fallback).
[[nodiscard]] double positional_double(const Options& opts, std::size_t i,
                                       double fallback);
[[nodiscard]] std::size_t positional_size(const Options& opts, std::size_t i,
                                          std::size_t fallback);
[[nodiscard]] std::string positional_str(const Options& opts, std::size_t i,
                                         std::string fallback = {});

}  // namespace hero::cli
