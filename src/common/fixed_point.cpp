#include "common/fixed_point.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hero {

std::int32_t to_fixed(double value, FixedPointFormat fmt) {
  const double scaled = std::nearbyint(value * fmt.scale());
  if (scaled >= static_cast<double>(std::numeric_limits<std::int32_t>::max()))
    return std::numeric_limits<std::int32_t>::max();
  if (scaled <= static_cast<double>(std::numeric_limits<std::int32_t>::min()))
    return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(scaled);
}

double from_fixed(std::int32_t value, FixedPointFormat fmt) {
  return static_cast<double>(value) / fmt.scale();
}

std::int32_t saturating_add(std::int32_t a, std::int32_t b) {
  const std::int64_t sum = static_cast<std::int64_t>(a) + b;
  if (sum > std::numeric_limits<std::int32_t>::max())
    return std::numeric_limits<std::int32_t>::max();
  if (sum < std::numeric_limits<std::int32_t>::min())
    return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(sum);
}

std::vector<std::int32_t> encode_vector(std::span<const double> values,
                                        FixedPointFormat fmt) {
  std::vector<std::int32_t> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(to_fixed(v, fmt));
  return out;
}

std::vector<double> decode_vector(std::span<const std::int32_t> values,
                                  FixedPointFormat fmt) {
  std::vector<double> out;
  out.reserve(values.size());
  for (std::int32_t v : values) out.push_back(from_fixed(v, fmt));
  return out;
}

void aggregate_into(std::span<std::int32_t> acc,
                    std::span<const std::int32_t> contribution) {
  if (acc.size() != contribution.size()) {
    throw std::invalid_argument("aggregate_into: size mismatch");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = saturating_add(acc[i], contribution[i]);
  }
}

}  // namespace hero
