// Fixed-point arithmetic as performed by the programmable-switch data plane.
//
// Tofino-class switches aggregate integers, not floats (paper SIV: "whose
// elements are represented as fixed-point integers"). SwitchML-style INA
// scales each float by 2^frac_bits on the worker, aggregates int32 (here with
// saturation, mirroring the hardware's saturating ALU), and scales back on
// distribution. This module implements that conversion plus saturating
// vector aggregation so the switch simulator reproduces the precision and
// overflow behaviour of the real data plane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hero {

struct FixedPointFormat {
  int frac_bits = 16;  ///< SwitchML default scaling of 2^16

  [[nodiscard]] double scale() const {
    return static_cast<double>(std::int64_t{1} << frac_bits);
  }
};

/// Encode a float into the switch's fixed-point representation
/// (round-to-nearest, saturating at int32 range).
[[nodiscard]] std::int32_t to_fixed(double value, FixedPointFormat fmt);

/// Decode back to float.
[[nodiscard]] double from_fixed(std::int32_t value, FixedPointFormat fmt);

/// Saturating int32 add — the data-plane ALU does not wrap.
[[nodiscard]] std::int32_t saturating_add(std::int32_t a, std::int32_t b);

/// Encode a vector.
[[nodiscard]] std::vector<std::int32_t> encode_vector(
    std::span<const double> values, FixedPointFormat fmt);

/// Decode a vector.
[[nodiscard]] std::vector<double> decode_vector(
    std::span<const std::int32_t> values, FixedPointFormat fmt);

/// acc[i] <- saturating_add(acc[i], contribution[i]); sizes must match.
void aggregate_into(std::span<std::int32_t> acc,
                    std::span<const std::int32_t> contribution);

}  // namespace hero
