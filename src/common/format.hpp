// Minimal `{}`-placeholder string formatting (libstdc++ 12 has no <format>).
//
// Supports positional-free `{}` placeholders only; each argument is rendered
// with operator<< . Literal braces are written as `{{` / `}}`.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace hero {

namespace detail {

inline void fmt_append(std::ostringstream& os, std::string_view& rest) {
  os << rest;
  rest = {};
}

template <typename Arg, typename... Args>
void fmt_append(std::ostringstream& os, std::string_view& rest, Arg&& arg,
                Args&&... args) {
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '{' && i + 1 < rest.size() && rest[i + 1] == '{') {
      os << rest.substr(0, i) << '{';
      rest.remove_prefix(i + 2);
      fmt_append(os, rest, std::forward<Arg>(arg), std::forward<Args>(args)...);
      return;
    }
    if (rest[i] == '}' && i + 1 < rest.size() && rest[i + 1] == '}') {
      os << rest.substr(0, i) << '}';
      rest.remove_prefix(i + 2);
      fmt_append(os, rest, std::forward<Arg>(arg), std::forward<Args>(args)...);
      return;
    }
    if (rest[i] == '{' && i + 1 < rest.size() && rest[i + 1] == '}') {
      os << rest.substr(0, i) << std::forward<Arg>(arg);
      rest.remove_prefix(i + 2);
      fmt_append(os, rest, std::forward<Args>(args)...);
      return;
    }
  }
  // No placeholder left; extra arguments are dropped.
  os << rest;
  rest = {};
}

}  // namespace detail

/// Format `fmt` replacing each `{}` with the next argument (via operator<<).
template <typename... Args>
[[nodiscard]] std::string strfmt(std::string_view fmt, Args&&... args) {
  std::ostringstream os;
  std::string_view rest = fmt;
  detail::fmt_append(os, rest, std::forward<Args>(args)...);
  return os.str();
}

}  // namespace hero
