// Minimal leveled logger. Defaults to warnings-only so simulations stay
// quiet; examples raise the level to narrate what the system is doing.
#pragma once

#include <string_view>

#include "common/format.hpp"

namespace hero::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_level(Level level);
[[nodiscard]] Level level();

void write(Level level, std::string_view message);

template <typename... Args>
void debug(std::string_view fmt, Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, strfmt(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void info(std::string_view fmt, Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, strfmt(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void warn(std::string_view fmt, Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, strfmt(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void error(std::string_view fmt, Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, strfmt(fmt, std::forward<Args>(args)...));
}

}  // namespace hero::log
