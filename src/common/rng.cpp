#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace hero {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

std::uint64_t Rng::next() {
  // xoshiro256**
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace hero
