// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in HeroServe (arrival processes, trace length
// sampling, planner perturbation) takes an explicit Rng so experiments are
// replayable from a single seed. The generator is xoshiro256** — fast, high
// quality, and fully specified here so results do not depend on the standard
// library's unspecified distribution implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hero {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent stream (for module-local generators).
  [[nodiscard]] Rng fork();

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponential with the given rate (mean 1/rate). Used for Poisson
  /// inter-arrival gaps.
  double exponential(double rate);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// True with probability p.
  bool bernoulli(double p);

  /// Sample an index from unnormalized weights (empty -> 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hero
