#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hero {

// --- Summary ---

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

// --- Percentiles ---

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Percentiles::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Percentiles::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Percentiles::fraction_below(double threshold) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

// --- Ewma ---

void Ewma::observe(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = (1.0 - gamma_) * value_ + gamma_ * x;
  }
}

// --- TimeWeighted ---

void TimeWeighted::observe(Time now, double value) {
  if (!started_) {
    started_ = true;
    first_time_ = now;
    last_time_ = now;
    current_ = value;
    peak_ = value;
    return;
  }
  if (now > last_time_) {
    weighted_sum_ += current_ * (now - last_time_);
    last_time_ = now;
  }
  current_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeighted::average() const {
  const Time dur = last_time_ - first_time_;
  return dur > 0.0 ? weighted_sum_ / dur : current_;
}

double TimeWeighted::average_until(Time now) const {
  if (!started_ || now <= last_time_) return average();
  const Time dur = now - first_time_;
  const Time sum = weighted_sum_ + current_ * (now - last_time_);
  return dur > 0.0 ? sum / dur : current_;
}

// --- Histogram ---

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  std::size_t b;
  if (x < lo_) {
    b = 0;
  } else if (x >= hi_) {
    b = counts_.size() - 1;
  } else {
    b = static_cast<std::size_t>((x - lo_) / width_);
    b = std::min(b, counts_.size() - 1);
  }
  ++counts_[b];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  return counts_.at(bucket);
}

double Histogram::bucket_lo(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

// --- MovingAverage ---

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MovingAverage: window == 0");
}

void MovingAverage::add(double x) {
  if (values_.size() < window_) {
    values_.push_back(x);
    sum_ += x;
  } else {
    sum_ += x - values_[next_];
    values_[next_] = x;
  }
  next_ = (next_ + 1) % window_;
}

double MovingAverage::value() const {
  return values_.empty() ? 0.0
                         : sum_ / static_cast<double>(values_.size());
}

}  // namespace hero
