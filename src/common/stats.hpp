// Statistics helpers shared by the simulator, the online scheduler, and the
// benchmark harnesses: streaming summaries, percentiles, exponentially
// weighted moving averages ("hardware counters"), time-weighted averages for
// utilization accounting, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/units.hpp"

namespace hero {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample set (linear interpolation between
/// order statistics). Used for TTFT/TPOT distributions, which are small
/// enough (one value per request) to keep in memory.
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  /// Pool another sample set (fleet-level aggregation of per-instance
  /// distributions).
  void merge(const Percentiles& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  /// q in [0, 1]; returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const;
  /// Fraction of samples <= threshold (SLA attainment).
  [[nodiscard]] double fraction_below(double threshold) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Exponentially weighted moving average with an explicit smoothing factor,
/// mirroring the paper's Eq. (18) update style: v <- (1-gamma)*v + gamma*x.
class Ewma {
 public:
  explicit Ewma(double gamma, double initial = 0.0)
      : gamma_(gamma), value_(initial) {}

  void observe(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double gamma() const { return gamma_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  double gamma_;
  double value_;
  bool seeded_ = false;
};

/// Time-weighted average of a piecewise-constant signal, e.g. link
/// utilization or KV-cache occupancy over simulated time.
class TimeWeighted {
 public:
  /// Record that the signal had `value` from the previous observation time
  /// up to `now`, and takes a (possibly) new value afterwards.
  void observe(Time now, double value);

  [[nodiscard]] double average() const;
  /// Average with the current value extended through `now`. The incremental
  /// flow engine only observes a signal when it *changes*, so the plain
  /// average() denominator would stop at the last change; this closes the
  /// window at the caller's clock instead. `now` earlier than the last
  /// observation falls back to average().
  [[nodiscard]] double average_until(Time now) const;
  [[nodiscard]] double peak() const { return peak_; }
  [[nodiscard]] double current() const { return current_; }
  [[nodiscard]] Time duration() const { return last_time_ - first_time_; }

 private:
  bool started_ = false;
  Time first_time_ = 0.0;
  Time last_time_ = 0.0;
  double current_ = 0.0;
  Time weighted_sum_ = 0.0;  ///< signal (dimensionless) x seconds
  double peak_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Simple windowed moving average used by the workload estimator
/// (paper SIII-B: "apply a moving average method to dynamically update
/// K_in and K_out").
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double x);
  [[nodiscard]] double value() const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::size_t window_;
  std::size_t next_ = 0;
  std::vector<double> values_;
  double sum_ = 0.0;
};

}  // namespace hero
