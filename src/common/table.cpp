#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace hero {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace hero
