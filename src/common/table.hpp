// ASCII table rendering used by benches/examples to print paper-style rows
// ("Fig. 7(a): per-GPU goodput by system", etc.) in a readable aligned form.
#pragma once

#include <string>
#include <vector>

namespace hero {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with the given precision.
  void add_row_values(const std::string& label,
                      const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::string render() const;
  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
[[nodiscard]] std::string fmt_double(double value, int precision = 3);

}  // namespace hero
