// Unit conventions used throughout HeroServe.
//
// All internal quantities use SI base units:
//   time        seconds
//   data        bytes
//   tokens      LLM tokens (fluid token-flow in rate math)
//   work        GPU work units (FLOPs in the roofline model)
//   bandwidth   bytes per second       (data / time)
//   token rate  tokens per second      (tokens / time)
//   work rate   FLOPs per second       (work / time)
//
// Two representations sit behind one set of aliases:
//
//   default build        `Time`, `Bytes`, ... are plain `double`. Zero
//                        abstraction, bit-for-bit the historical ABI and
//                        arithmetic.
//   -DHERO_STRONG_UNITS  the aliases become `Quantity<T,D,K,W>`, a
//                        zero-overhead wrapper holding one double whose
//                        template parameters are the exponents of the four
//                        base dimensions (time, data, tokens, work).
//                        `Bytes / Time -> Bandwidth` and friends are encoded
//                        in the operators; `Bytes + Time` does not compile.
//
// Both modes perform the identical double operations in the identical
// order, so simulator output is byte-for-byte the same — the strong build
// exists purely to let the compiler audit dimensional correctness
// (CI builds it; tools/determinism_check.sh asserts output identity).
//
// Conventions for call sites:
//   * state units explicitly: `100.0 * units::Gbps`, `4.0 * units::MiB`;
//     a bare numeric literal seeding a unit-typed variable trips
//     hero-lint's `raw-unit-literal` rule.
//   * `hero::raw(x)` unwraps a quantity (or passes a double through) at
//     genuine type boundaries: printf-style varargs, <cmath> calls,
//     observability gauges, percentile sketches.
#pragma once

#include <limits>
#include <ostream>

namespace hero {

#if defined(HERO_STRONG_UNITS)

/// One double tagged with base-dimension exponents. `TimeD` counts seconds,
/// `DataD` bytes, `TokD` tokens, `WorkD` GPU work units; `Quantity<-1,1,0,0>`
/// is therefore bytes/second. Implicitly constructible from `double` (so
/// `Time t = 0.0;` and `bw > 0.0` stay valid — hero-lint polices literal
/// hygiene), but conversion *out* is explicit: crossing back to raw double
/// takes `hero::raw()` / `value()`, and mixed-dimension `+`/`-`/compare do
/// not compile.
template <int TimeD, int DataD, int TokD, int WorkD>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr Quantity(double v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr double value() const { return v_; }
  explicit constexpr operator double() const { return v_; }

  constexpr Quantity& operator+=(Quantity o) { v_ += o.v_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v_ -= o.v_; return *this; }
  constexpr Quantity& operator*=(double s) { v_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { v_ /= s; return *this; }

  // Hidden friends: found by ADL only when one operand already has this
  // exact dimension, so `Time + 1.0` converts the literal while
  // `Bytes + Time` has no viable overload.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.v_ - b.v_);
  }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.v_); }
  friend constexpr Quantity operator+(Quantity a) { return a; }

  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.v_ / s);
  }

  friend constexpr bool operator<(Quantity a, Quantity b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Quantity a, Quantity b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.v_ >= b.v_;
  }
  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.v_ != b.v_;
  }

  friend std::ostream& operator<<(std::ostream& os, Quantity a) {
    return os << a.v_;  // renders exactly like the underlying double
  }

 private:
  double v_ = 0.0;
};

namespace units_detail {

/// Maps a dimension vector to its quantity type; the dimensionless case
/// decays to plain double so `bytes / bytes` is an ordinary ratio.
template <int T, int D, int K, int W>
struct Typed {
  using type = Quantity<T, D, K, W>;
  static constexpr type from(double v) { return type(v); }
};
template <>
struct Typed<0, 0, 0, 0> {
  using type = double;
  static constexpr double from(double v) { return v; }
};

}  // namespace units_detail

/// Dimension algebra: multiplying adds exponents, dividing subtracts them.
template <int T1, int D1, int K1, int W1, int T2, int D2, int K2, int W2>
[[nodiscard]] constexpr auto operator*(Quantity<T1, D1, K1, W1> a,
                                       Quantity<T2, D2, K2, W2> b) {
  return units_detail::Typed<T1 + T2, D1 + D2, K1 + K2, W1 + W2>::from(
      a.value() * b.value());
}
template <int T1, int D1, int K1, int W1, int T2, int D2, int K2, int W2>
[[nodiscard]] constexpr auto operator/(Quantity<T1, D1, K1, W1> a,
                                       Quantity<T2, D2, K2, W2> b) {
  return units_detail::Typed<T1 - T2, D1 - D2, K1 - K2, W1 - W2>::from(
      a.value() / b.value());
}
template <int T, int D, int K, int W>
[[nodiscard]] constexpr auto operator/(double s, Quantity<T, D, K, W> a) {
  return units_detail::Typed<-T, -D, -K, -W>::from(s / a.value());
}

using Time = Quantity<1, 0, 0, 0>;        ///< seconds
using Bytes = Quantity<0, 1, 0, 0>;       ///< bytes (fluid-flow model splits bytes)
using Bandwidth = Quantity<-1, 1, 0, 0>;  ///< bytes per second
using Tokens = Quantity<0, 0, 1, 0>;      ///< LLM tokens (fluid in rate math)
using WorkUnits = Quantity<0, 0, 0, 1>;   ///< GPU work (FLOPs)
using Rate = Quantity<-1, 0, 0, 0>;       ///< events per second (arrivals, ...)
using TokenRate = Quantity<-1, 0, 1, 0>;  ///< tokens per second
using WorkRate = Quantity<-1, 0, 0, 1>;   ///< FLOPs per second

/// Unwrap a quantity to its raw double at a genuine type boundary
/// (varargs, <cmath>, gauges). Prefer staying in quantity space otherwise.
template <int T, int D, int K, int W>
[[nodiscard]] constexpr double raw(Quantity<T, D, K, W> q) {
  return q.value();
}
[[nodiscard]] constexpr double raw(double v) { return v; }

#else  // !HERO_STRONG_UNITS

using Time = double;       ///< seconds
using Bytes = double;      ///< bytes (double: fluid-flow model splits bytes)
using Bandwidth = double;  ///< bytes per second
using Tokens = double;     ///< LLM tokens (fluid in rate math)
using WorkUnits = double;  ///< GPU work (FLOPs)
using Rate = double;       ///< events per second (arrivals, ...)
using TokenRate = double;  ///< tokens per second
using WorkRate = double;   ///< FLOPs per second

/// No-op twin of the strong-units unwrap so call sites compile unchanged.
[[nodiscard]] constexpr double raw(double v) { return v; }

#endif  // HERO_STRONG_UNITS

// This namespace is the one legitimate home of bare conversion-factor
// literals: the constants below *define* the units:: factors every other
// file is told to spell.
// hero-lint: allow-file(raw-unit-literal)
namespace units {

// --- time ---
inline constexpr Time ns = 1e-9;
inline constexpr Time us = 1e-6;
inline constexpr Time ms = 1e-3;
inline constexpr Time sec = 1.0;

// --- data ---
inline constexpr Bytes B = 1.0;
inline constexpr Bytes KiB = 1024.0;
inline constexpr Bytes MiB = 1024.0 * 1024.0;
inline constexpr Bytes GiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr Bytes KB = 1e3;
inline constexpr Bytes MB = 1e6;
inline constexpr Bytes GB = 1e9;

// --- bandwidth ---
// Network links are quoted in bits/s, NVLink in bytes/s; both normalize to
// bytes per second internally.
inline constexpr Bandwidth bps = 1.0 / 8.0;
inline constexpr Bandwidth Kbps = 1e3 / 8.0;
inline constexpr Bandwidth Mbps = 1e6 / 8.0;
inline constexpr Bandwidth Gbps = 1e9 / 8.0;
inline constexpr Bandwidth GBps = 1e9;

// --- tokens / work ---
inline constexpr Tokens token = 1.0;
inline constexpr WorkUnits flop = 1.0;
inline constexpr WorkRate GFLOPs = 1e9;
inline constexpr WorkRate TFLOPs = 1e12;

// --- dimensionless conversion factors ---
inline constexpr double bits_per_byte = 8.0;

}  // namespace units

/// Serialization delay of `data` bytes over a `bw` bytes/s link. A link
/// with no capacity never completes a transfer: the delay is +infinity
/// (callers price such paths out rather than treating them as free).
[[nodiscard]] constexpr Time transfer_time(Bytes data, Bandwidth bw) {
  return bw > 0.0 ? data / bw
                  : Time{std::numeric_limits<double>::infinity()};
}

}  // namespace hero

#if defined(HERO_STRONG_UNITS)
// `std::numeric_limits<Time>::infinity()` and friends must keep working in
// the strong build; the unspecialized primary template would silently
// return value-initialized (zero) quantities.
template <int T, int D, int K, int W>
struct std::numeric_limits<hero::Quantity<T, D, K, W>> {
 private:
  using Base = std::numeric_limits<double>;
  using Q = hero::Quantity<T, D, K, W>;

 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = Base::is_signed;
  static constexpr bool is_integer = Base::is_integer;
  static constexpr bool is_exact = Base::is_exact;
  static constexpr bool has_infinity = Base::has_infinity;
  static constexpr bool has_quiet_NaN = Base::has_quiet_NaN;
  static constexpr int digits = Base::digits;
  static constexpr int digits10 = Base::digits10;

  static constexpr Q min() { return Q{Base::min()}; }
  static constexpr Q max() { return Q{Base::max()}; }
  static constexpr Q lowest() { return Q{Base::lowest()}; }
  static constexpr Q epsilon() { return Q{Base::epsilon()}; }
  static constexpr Q infinity() { return Q{Base::infinity()}; }
  static constexpr Q quiet_NaN() { return Q{Base::quiet_NaN()}; }
};
#endif  // HERO_STRONG_UNITS
