// Unit conventions used throughout HeroServe.
//
// All internal quantities use SI base units stored in double:
//   time       seconds
//   data       bytes
//   bandwidth  bytes per second
//
// The helpers below exist so call sites can state their units explicitly
// (`100.0 * units::Gbps`, `4 * units::MiB`) instead of sprinkling magic
// conversion factors.
#pragma once

namespace hero {

using Time = double;       ///< seconds
using Bytes = double;      ///< bytes (double: fluid-flow model splits bytes)
using Bandwidth = double;  ///< bytes per second

namespace units {

// --- time ---
inline constexpr Time ns = 1e-9;
inline constexpr Time us = 1e-6;
inline constexpr Time ms = 1e-3;
inline constexpr Time sec = 1.0;

// --- data ---
inline constexpr Bytes B = 1.0;
inline constexpr Bytes KiB = 1024.0;
inline constexpr Bytes MiB = 1024.0 * 1024.0;
inline constexpr Bytes GiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr Bytes KB = 1e3;
inline constexpr Bytes MB = 1e6;
inline constexpr Bytes GB = 1e9;

// --- bandwidth ---
// Network links are quoted in bits/s, NVLink in bytes/s; both normalize to
// bytes per second internally.
inline constexpr Bandwidth bps = 1.0 / 8.0;
inline constexpr Bandwidth Kbps = 1e3 / 8.0;
inline constexpr Bandwidth Mbps = 1e6 / 8.0;
inline constexpr Bandwidth Gbps = 1e9 / 8.0;
inline constexpr Bandwidth GBps = 1e9;

}  // namespace units

/// Serialization delay of `data` bytes over a `bw` bytes/s link.
[[nodiscard]] constexpr Time transfer_time(Bytes data, Bandwidth bw) {
  return bw > 0.0 ? data / bw : 0.0;
}

}  // namespace hero
