#include "core/heroserve.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/format.hpp"
#include "common/log.hpp"
#include "faults/injector.hpp"
#include "serving/fleet_controller.hpp"

namespace hero {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHeroServe: return "HeroServe";
    case SystemKind::kDistServe: return "DistServe";
    case SystemKind::kDsAtp: return "DS-ATP";
    case SystemKind::kDsSwitchMl: return "DS-SwitchML";
  }
  return "?";
}

const gpu::LatencyModel& fitted_model(const llm::ModelConfig& model) {
  static std::mutex mutex;
  static std::unordered_map<std::string, std::unique_ptr<gpu::LatencyModel>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(model.name);
  if (it == cache.end()) {
    const gpu::KernelModel hw(gpu::spec_of(topo::GpuModel::kA100_40), model,
                              gpu::KernelModelOptions{}, /*seed=*/12345);
    it = cache
             .emplace(model.name, std::make_unique<gpu::LatencyModel>(
                                      gpu::fit_latency_model(hw)))
             .first;
    log::info("profiled {}: fitted Eq.12/13 coefficients", model.name);
  }
  return *it->second;
}

namespace {

/// The planner consumes the same experiment fields in both the single-
/// instance and the fleet pipeline.
planner::PlannerInputs planner_inputs_for(SystemKind kind,
                                          const ExperimentConfig& cfg,
                                          const wl::Trace& trace) {
  // Workload estimates (the online estimator's moving averages, warmed on
  // the trace's own length distribution).
  wl::WorkloadEstimator estimator;
  for (const wl::Request& r : trace) estimator.observe(r);

  planner::PlannerInputs inputs;
  inputs.graph = &cfg.topology;
  inputs.model = cfg.serving.model;
  inputs.latency = &fitted_model(cfg.serving.model);
  inputs.batch_q = cfg.batch_q;
  inputs.k_in = estimator.k_in(cfg.batch_q);
  inputs.k_in2 = estimator.k_in2(cfg.batch_q);
  inputs.k_out = estimator.k_out(cfg.batch_q);
  inputs.arrival_rate = cfg.workload.rate;
  inputs.t_sla_prefill = cfg.serving.sla_ttft;
  inputs.t_sla_decode = cfg.serving.sla_tpot;
  inputs.r_frac = cfg.serving.r_frac;
  inputs.min_p_tens = cfg.min_p_tens;
  inputs.max_candi = cfg.max_candi;
  inputs.decode_batch_limit = cfg.serving.decode_batch_limit;
  inputs.prefill_token_budget = cfg.serving.prefill_token_budget;
  inputs.heterogeneous = kind == SystemKind::kHeroServe;
  inputs.seed = cfg.serving.seed;
  inputs.comm_cost = cfg.engine.cost;
  return inputs;
}

/// The communication scheduler per system; `hero` is set for kHeroServe.
std::unique_ptr<coll::CommScheduler> make_scheduler(
    SystemKind kind, net::FlowNetwork& network, const ExperimentConfig& cfg,
    online::HeroCommScheduler** hero) {
  *hero = nullptr;
  switch (kind) {
    case SystemKind::kHeroServe: {
      online::PolicyBuildOptions build;
      build.heterogeneous = true;
      auto owned = std::make_unique<online::HeroCommScheduler>(
          network, cfg.online, build);
      *hero = owned.get();
      return owned;
    }
    case SystemKind::kDistServe:
      return std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kDistServe);
    case SystemKind::kDsAtp:
      return std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kAtp);
    case SystemKind::kDsSwitchMl:
      return std::make_unique<baselines::StaticCommScheduler>(
          network, baselines::BaselineKind::kSwitchMl);
  }
  return nullptr;
}

/// Chaos wiring shared by both pipelines: build + arm the injector and
/// route its compute-scale hook into `serving`.
std::unique_ptr<faults::FaultInjector> arm_faults(
    net::FlowNetwork& network, sw::SwitchRegistry& switches,
    const ExperimentConfig& cfg, online::HeroCommScheduler* hero,
    serve::ServingOptions& serving) {
  if (cfg.fault_plan.empty()) return nullptr;
  faults::FaultInjector::Hooks hooks;
  hooks.switches = &switches;
  if (hero != nullptr) {
    hooks.online = &hero->online();
    hero->online().attach_switches(&switches);
  }
  auto injector = std::make_unique<faults::FaultInjector>(
      network, cfg.fault_plan, hooks);
  serving.compute_scale = [inj = injector.get()](topo::NodeId g) {
    return inj->compute_scale(g);
  };
  injector->arm();
  return injector;
}

void apply_netsim_options(net::FlowNetwork& network,
                          const ExperimentConfig& cfg) {
  network.set_full_solve(cfg.netsim.full_solve);
  if (cfg.netsim.validate_solves) network.set_solve_validation(true);
}

SimStats collect_sim_stats(const sim::Simulator& simulator,
                           const net::FlowNetwork& network) {
  SimStats stats;
  stats.sim_seconds = simulator.now();
  stats.events_executed = simulator.executed_events();
  stats.events_scheduled = simulator.scheduled_events();
  stats.events_cancelled = simulator.cancelled_events();
  stats.flownet = network.stats();
  return stats;
}

}  // namespace

ExperimentResult run_experiment(SystemKind kind,
                                const ExperimentConfig& cfg) {
  ExperimentResult result;
  const wl::Trace trace = wl::generate_trace(cfg.workload);

  const planner::PlannerInputs inputs = planner_inputs_for(kind, cfg, trace);
  planner::OfflinePlanner offline(inputs);
  result.plan = offline.plan();
  if (!result.plan.feasible) {
    log::warn("{}: planner infeasible: {}", to_string(kind),
              result.plan.infeasible_reason);
    return result;
  }

  // Deploy and serve.
  sim::Simulator simulator;
  simulator.attach(cfg.sink);
  net::FlowNetwork network(simulator, cfg.topology);
  apply_netsim_options(network, cfg);
  sw::SwitchRegistry switches(simulator, cfg.topology);
  coll::CollectiveEngine engine(network, switches, cfg.engine);

  online::HeroCommScheduler* hero = nullptr;
  std::unique_ptr<coll::CommScheduler> scheduler =
      make_scheduler(kind, network, cfg, &hero);

  serve::ServingOptions serving = cfg.serving;
  // The abort deadline is a *drain budget* after the last arrival; at low
  // rates the arrival horizon itself can exceed any fixed wall.
  serving.max_sim_time =
      cfg.serving.max_sim_time + (trace.empty() ? 0.0 : trace.back().arrival);

  // Chaos wiring (fault plan present only). HeroServe's online scheduler
  // gets the reaction hooks — switch slot-health feedback at controller
  // ticks, immediate cost overrides on link faults; baselines feel the raw
  // faults without any adaptation channel.
  std::unique_ptr<faults::FaultInjector> injector =
      arm_faults(network, switches, cfg, hero, serving);

  serve::ClusterSim cluster(network, engine, *scheduler, result.plan,
                            serving);
  scheduler->start();
  result.report = cluster.run(trace);
  result.sim_stats = collect_sim_stats(simulator, network);
  return result;
}

FleetExperimentResult run_fleet_experiment(SystemKind kind,
                                           const ExperimentConfig& cfg) {
  return run_fleet_experiment(kind, cfg, wl::generate_trace(cfg.workload));
}

FleetExperimentResult run_fleet_experiment(SystemKind kind,
                                           const ExperimentConfig& cfg,
                                           const wl::Trace& trace) {
  FleetExperimentResult result;

  planner::FleetPlannerInputs fleet_inputs;
  fleet_inputs.base = planner_inputs_for(kind, cfg, trace);
  fleet_inputs.instances = std::max<std::size_t>(cfg.fleet.instances, 1);
  // The fleet rate is explicit — the planner does its own (single)
  // per-instance division and echoes it in planned_arrival_rate.
  fleet_inputs.fleet_arrival_rate = cfg.workload.rate;
  fleet_inputs.balance_stage_rates = cfg.fleet.balance_stage_rates;
  fleet_inputs.uniform_hardware_pools = cfg.fleet.uniform_hardware_pools;
  planner::FleetPlanner fleet_planner(fleet_inputs);
  result.plan = fleet_planner.plan();
  if (!result.plan.feasible) {
    log::warn("{}: fleet planner infeasible: {}", to_string(kind),
              result.plan.infeasible_reason);
    return result;
  }

  sim::Simulator simulator;
  simulator.attach(cfg.sink);
  net::FlowNetwork network(simulator, cfg.topology);
  apply_netsim_options(network, cfg);
  sw::SwitchRegistry switches(simulator, cfg.topology);
  coll::CollectiveEngine engine(network, switches, cfg.engine);

  online::HeroCommScheduler* hero = nullptr;
  std::unique_ptr<coll::CommScheduler> scheduler =
      make_scheduler(kind, network, cfg, &hero);

  serve::ServingOptions serving = cfg.serving;
  serving.max_sim_time =
      cfg.serving.max_sim_time + (trace.empty() ? 0.0 : trace.back().arrival);
  std::unique_ptr<faults::FaultInjector> injector =
      arm_faults(network, switches, cfg, hero, serving);

  // Router randomness follows the experiment seed so `--seed` reruns are
  // reproducible end to end (the config's own seed offsets the stream).
  serve::FleetConfig fleet_config = cfg.fleet;
  fleet_config.router_seed += cfg.serving.seed * 0x9e3779b9ull;

  serve::FleetSim fleet(network, engine, *scheduler, fleet_config, serving);
  // Per-instance policy tables: one shared scheduler, prefixed group names
  // ("i2.group5") so traces and metrics stay attributable — including the
  // groups of replicas the autoscaler deploys mid-run.
  fleet.set_deploy_hooks(
      [hero](std::size_t id) {
        if (hero != nullptr) hero->set_group_prefix(strfmt("i{}.", id));
      },
      [hero](std::size_t) {
        if (hero != nullptr) hero->set_group_prefix("");
      });
  for (planner::PlanResult& plan : result.plan.instances) {
    fleet.add_instance(plan);
  }

  std::unique_ptr<serve::FleetController> controller;
  if (cfg.fleet.autoscale.enabled) {
    controller = std::make_unique<serve::FleetController>(
        fleet, planner_inputs_for(kind, cfg, trace));
    controller->start();
  }

  scheduler->start();
  result.report = fleet.run(trace);
  if (controller) result.report.autoscale = controller->stats();
  result.sim_stats = collect_sim_stats(simulator, network);
  return result;
}

RateSearchResult find_max_rate(SystemKind kind, ExperimentConfig cfg,
                               double lo, double hi, double target,
                               int iterations) {
  RateSearchResult search;
  auto attain = [&](double rate) {
    cfg.workload.rate = rate;
    ExperimentResult r = run_experiment(kind, cfg);
    search.samples.emplace_back(rate, r.report.sla_attainment);
    return r;
  };

  ExperimentResult at_lo = attain(lo);
  if (at_lo.report.sla_attainment < target) {
    // Even the lower bound fails; report zero scalability.
    search.max_rate = 0.0;
    search.at_max = std::move(at_lo);
    return search;
  }
  search.max_rate = lo;
  search.at_max = std::move(at_lo);

  ExperimentResult at_hi = attain(hi);
  if (at_hi.report.sla_attainment >= target) {
    search.max_rate = hi;
    search.at_max = std::move(at_hi);
    return search;
  }

  double good = lo, bad = hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (good + bad);
    ExperimentResult r = attain(mid);
    if (r.report.sla_attainment >= target) {
      good = mid;
      search.max_rate = mid;
      search.at_max = std::move(r);
    } else {
      bad = mid;
    }
  }
  return search;
}

}  // namespace hero
