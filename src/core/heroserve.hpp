// HeroServe public facade.
//
// One-call experiment driver used by the examples and every benchmark
// harness: configure a topology + model + workload, pick a system
// (HeroServe or one of the paper's baselines), and run
//     plan (offline planner) -> deploy -> serve trace -> report.
// Also provides the max-rate search that implements the paper's
// scalability metric ("the maximum per-GPU rate that the system can handle
// while satisfying the latency requirements for over 90% of requests").
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "baselines/static_scheduler.hpp"
#include "faults/fault_plan.hpp"
#include "obs/sink.hpp"
#include "online/scheduler.hpp"
#include "planner/fleet.hpp"
#include "planner/planner.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/fleet_sim.hpp"
#include "topology/builders.hpp"
#include "workload/trace.hpp"

namespace hero {

enum class SystemKind : std::uint8_t {
  kHeroServe,
  kDistServe,
  kDsAtp,
  kDsSwitchMl,
};

[[nodiscard]] const char* to_string(SystemKind kind);

inline constexpr std::array<SystemKind, 4> kAllSystems{
    SystemKind::kHeroServe, SystemKind::kDistServe, SystemKind::kDsAtp,
    SystemKind::kDsSwitchMl};

struct ExperimentConfig {
  topo::Graph topology;
  wl::TraceOptions workload;

  /// Everything the serving simulator consumes — model, SLAs, batching
  /// limits, KV memory fraction, kernel noise, seed — lives here exactly
  /// once; the planner derives its inputs from the same fields. One twist:
  /// `serving.max_sim_time` is a *drain budget* counted from the last
  /// arrival (run_experiment adds the arrival horizon before serving), so
  /// low-rate long traces are not cut off by a fixed wall.
  serve::ServingOptions serving = [] {
    serve::ServingOptions s;
    s.seed = 7;  // experiment-level default, distinct from ClusterSim's 1
    return s;
  }();

  /// Minimum tensor-parallel width (planner::PlannerInputs::min_p_tens).
  std::size_t min_p_tens = 1;
  std::size_t max_candi = 20;
  std::size_t batch_q = 8;  ///< planner's assumed batch size Q

  online::OnlineConfig online;  ///< HeroServe's scheduler knobs
  coll::EngineConfig engine;    ///< T_agg, fallback host bandwidth

  /// Observability sink, attached to the run's simulator for the whole
  /// plan->deploy->serve pipeline. Default-constructed = tracing off (zero
  /// cost).
  obs::Sink sink;

  /// Chaos schedule replayed against the run (empty = no fault injection,
  /// byte-identical to a plain run). HeroServe additionally gets switch
  /// slot-health feedback and immediate cost overrides wired into its
  /// online scheduler; baselines only feel the raw faults.
  faults::FaultPlan fault_plan;

  /// Multi-instance serving (run_fleet_experiment): the consolidated
  /// serve::FleetConfig — fleet shape, router policy + cost weights, and
  /// the elastic-autoscaling knobs — lives here exactly once. instances ==
  /// 1 keeps the config usable with the single-instance run_experiment
  /// unchanged.
  serve::FleetConfig fleet;

  /// Flow-network engine knobs (equivalence gates and validate runs).
  struct NetsimOptions {
    /// Whole-fabric max-min solve every round instead of the incremental
    /// dirty-set solve. Output is byte-identical; only speed differs.
    bool full_solve = false;
    /// Cross-check every incremental round against a full solve (on by
    /// default in HERO_VALIDATE builds regardless of this flag).
    bool validate_solves = false;
  };
  NetsimOptions netsim;
};

/// Engine-side totals of one run: how much simulated time one wall-second
/// buys is bench_simspeed's headline, and the flownet counters show how much
/// max-min work the incremental engine avoided. Deterministic for a given
/// config (wall-clock time is deliberately *not* in here).
struct SimStats {
  Time sim_seconds = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  net::FlowNetStats flownet;
};

struct ExperimentResult {
  planner::PlanResult plan;
  serve::ServingReport report;
  SimStats sim_stats;
  [[nodiscard]] bool ok() const { return plan.feasible; }
};

/// Fitted Eq. 12-13 latency model for `model` on the reference A100
/// (process-lifetime cache; profiling runs once per model).
[[nodiscard]] const gpu::LatencyModel& fitted_model(
    const llm::ModelConfig& model);

/// Plan + serve one trace under `kind`. When the planner finds no feasible
/// deployment the report is empty and result.ok() is false.
[[nodiscard]] ExperimentResult run_experiment(SystemKind kind,
                                              const ExperimentConfig& cfg);

struct FleetExperimentResult {
  planner::FleetPlan plan;
  serve::FleetReport report;
  SimStats sim_stats;
  [[nodiscard]] bool ok() const { return plan.feasible; }
};

/// Fleet pipeline: FleetPlanner packs cfg.fleet.instances replicas onto
/// cfg.topology, then FleetSim serves the trace behind the configured
/// router — one shared simulator/flownet/engine/scheduler (per-instance
/// policy-table prefixes on HeroServe) and the same fault wiring as
/// run_experiment. With cfg.fleet.autoscale.enabled a FleetController
/// ticks alongside the run, scaling the instance count against the
/// observed arrival rate (report.autoscale carries its stats). ok() is
/// false when not every starting instance fits.
[[nodiscard]] FleetExperimentResult run_fleet_experiment(
    SystemKind kind, const ExperimentConfig& cfg);

/// Same pipeline over a caller-supplied trace (diurnal / flash-crowd
/// generators) instead of wl::generate_trace(cfg.workload). The planner is
/// still sized from cfg.workload.rate — the *expected* fleet rate — while
/// the trace drives what actually arrives.
[[nodiscard]] FleetExperimentResult run_fleet_experiment(
    SystemKind kind, const ExperimentConfig& cfg, const wl::Trace& trace);

struct RateSearchResult {
  double max_rate = 0.0;  ///< highest rate meeting the attainment target
  std::vector<std::pair<double, double>> samples;  ///< (rate, attainment)
  ExperimentResult at_max;  ///< full result at max_rate
};

/// Binary-search the Poisson arrival rate for the highest load at which SLA
/// attainment stays >= `target` (paper: 90%). `lo`..`hi` bound the search.
[[nodiscard]] RateSearchResult find_max_rate(SystemKind kind,
                                             ExperimentConfig cfg,
                                             double lo, double hi,
                                             double target = 0.9,
                                             int iterations = 6);

}  // namespace hero
