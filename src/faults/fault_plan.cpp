#include "faults/fault_plan.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/format.hpp"

namespace hero::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kSlotExhaust: return "slot_exhaust";
    case FaultKind::kSwitchRestart: return "switch_restart";
    case FaultKind::kGpuSlow: return "gpu_slow";
    case FaultKind::kSyncDelay: return "sync_delay";
    case FaultKind::kSyncDrop: return "sync_drop";
  }
  return "?";
}

namespace {

/// Just enough JSON for fault plans: one object with an "events" array of
/// flat objects whose values are strings or numbers. Hand-rolled so the
/// repo stays dependency-free; anything outside that shape is an error.
class PlanParser {
 public:
  explicit PlanParser(std::string_view text) : text_(text) {}

  FaultPlan parse() {
    FaultPlan plan;
    expect('{');
    bool have_events = false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      const std::string key = parse_string();
      expect(':');
      if (key == "events") {
        parse_events(plan);
        have_events = true;
      } else {
        fail(strfmt("unknown top-level key \"{}\"", key));
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after plan object");
    if (!have_events) fail("plan object has no \"events\" array");
    return plan;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(
        strfmt("fault plan parse error at byte {}: {}", pos_, what));
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) return '\0';
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(strfmt("expected '{}'", c));
    ++pos_;
  }

  std::string parse_string() {
    skip_ws();
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escapes not supported");
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  void parse_events(FaultPlan& plan) {
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return; }
    while (true) {
      plan.events.push_back(parse_event());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      break;
    }
  }

  FaultEvent parse_event() {
    expect('{');
    FaultEvent ev;
    bool have_kind = false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      const std::string key = parse_string();
      expect(':');
      if (key == "kind") {
        ev.kind = parse_kind(parse_string());
        have_kind = true;
      } else if (key == "at") {
        ev.at = parse_number();
      } else if (key == "duration") {
        ev.duration = parse_number();
      } else if (key == "target") {
        ev.target = parse_string();
      } else if (key == "magnitude") {
        ev.magnitude = parse_number();
      } else if (key == "count") {
        ev.count = static_cast<std::uint32_t>(parse_number());
      } else if (key == "period") {
        ev.period = parse_number();
      } else {
        fail(strfmt("unknown event key \"{}\"", key));
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
    }
    if (!have_kind) fail("event without \"kind\"");
    return ev;
  }

  FaultKind parse_kind(const std::string& name) {
    for (FaultKind k :
         {FaultKind::kLinkDegrade, FaultKind::kLinkFlap,
          FaultKind::kSlotExhaust, FaultKind::kSwitchRestart,
          FaultKind::kGpuSlow, FaultKind::kSyncDelay, FaultKind::kSyncDrop}) {
      if (name == to_string(k)) return k;
    }
    fail(strfmt("unknown fault kind \"{}\"", name));
  }
};

}  // namespace

FaultPlan parse_fault_plan(std::string_view json) {
  return PlanParser(json).parse();
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(strfmt("cannot open fault plan {}", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fault_plan(buf.str());
}

}  // namespace hero::faults
