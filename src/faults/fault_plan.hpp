// Declarative fault plans for chaos experiments.
//
// A FaultPlan is a deterministic schedule of infrastructure faults — link
// degradation/flapping, switch slot-pool exhaustion and restarts, GPU
// stragglers, controller sync-channel loss — that the FaultInjector replays
// against a running simulation. Plans are plain data: build them in code
// (benchmarks, tests) or load them from a small JSON file (`--faults
// plan.json` on every example/bench binary). The same plan + the same seed
// reproduces the same run byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace hero::faults {

enum class FaultKind : std::uint8_t {
  /// Scale `target` edge capacity by `magnitude` (factor in (0,1]) at `at`,
  /// restore to 1.0 after `duration`.
  kLinkDegrade,
  /// `count` degrade/restore cycles starting at `at`, one cycle every
  /// `period`; each cycle degrades for `duration` (default period/2).
  kLinkFlap,
  /// Seize `magnitude` aggregator slots on switch `target` (capped at the
  /// free pool) for `duration` — models tenant jobs hogging the pool.
  kSlotExhaust,
  /// Control-plane restart of switch `target`: queue a whole-pool
  /// reservation so the pool drains, then hold every slot for `duration`.
  kSwitchRestart,
  /// Multiply compute time of GPU `target` by `magnitude` (>= 1) for
  /// `duration` — thermal throttling / noisy neighbour.
  kGpuSlow,
  /// Delay each controller sync's table recalibration by `magnitude`
  /// seconds for `duration`.
  kSyncDelay,
  /// Sever the controller sync channel for `duration`; the scheduler
  /// retries with exponential backoff and serves from stale costs.
  kSyncDrop,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegrade;
  Time at = 0.0;        ///< injection time (simulated seconds)
  Time duration = 0.0;  ///< time until recovery (0 = permanent)
  /// Edge "nodeA-nodeB" (link faults) or node name (switch/GPU faults);
  /// unused for sync faults.
  std::string target;
  /// Kind-dependent: capacity factor (link), slot count (slot exhaust),
  /// compute multiplier (GPU), extra delay seconds (sync delay).
  double magnitude = 1.0;
  std::uint32_t count = 1;  ///< flap cycles (kLinkFlap only)
  Time period = 0.0;        ///< flap cycle length (kLinkFlap only)
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Parse a plan from JSON text. Schema:
///   {"events": [{"kind": "link_flap", "at": 0.2, "duration": 0.025,
///                "period": 0.05, "count": 6, "target": "w0g1-sw1",
///                "magnitude": 0.05}, ...]}
/// Unknown keys are rejected; kinds are the snake_case enum names. Throws
/// std::runtime_error with a position on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view json);

/// Read + parse a JSON plan file (throws on I/O or parse error).
[[nodiscard]] FaultPlan load_fault_plan(const std::string& path);

}  // namespace hero::faults
