#include "faults/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/format.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/scheduler.hpp"

namespace hero::faults {
namespace {

topo::NodeId node_by_name(const topo::Graph& g, const std::string& name) {
  for (topo::NodeId id = 0;
       id < static_cast<topo::NodeId>(g.node_count()); ++id) {
    if (g.node(id).name == name) return id;
  }
  throw std::invalid_argument(strfmt("fault target: no node \"{}\"", name));
}

}  // namespace

FaultInjector::FaultInjector(net::FlowNetwork& network, FaultPlan plan,
                             Hooks hooks)
    : network_(&network), plan_(std::move(plan)), hooks_(hooks) {}

topo::NodeId FaultInjector::resolve_node(const FaultEvent& ev) const {
  return node_by_name(network_->graph(), ev.target);
}

topo::EdgeId FaultInjector::resolve_edge(const FaultEvent& ev) const {
  const std::size_t dash = ev.target.find('-');
  if (dash == std::string::npos) {
    throw std::invalid_argument(
        strfmt("fault target \"{}\" is not an edge (want \"a-b\")",
               ev.target));
  }
  const topo::Graph& g = network_->graph();
  const topo::NodeId a = node_by_name(g, ev.target.substr(0, dash));
  const topo::NodeId b = node_by_name(g, ev.target.substr(dash + 1));
  for (const topo::Adjacency& adj : g.neighbors(a)) {
    if (adj.peer == b) return adj.edge;
  }
  throw std::invalid_argument(
      strfmt("fault target: no edge \"{}\"", ev.target));
}

void FaultInjector::validate(const FaultEvent& ev) const {
  HERO_REQUIRE(ev.at >= 0.0 && ev.duration >= 0.0,
               "fault {}: negative time", to_string(ev.kind));
  switch (ev.kind) {
    case FaultKind::kLinkDegrade:
      HERO_REQUIRE(ev.magnitude > 0.0 && ev.magnitude <= 1.0,
                   "link_degrade factor {} not in (0,1]", ev.magnitude);
      (void)resolve_edge(ev);
      break;
    case FaultKind::kLinkFlap:
      HERO_REQUIRE(ev.magnitude > 0.0 && ev.magnitude <= 1.0,
                   "link_flap factor {} not in (0,1]", ev.magnitude);
      HERO_REQUIRE(ev.count >= 1 && ev.period > 0.0,
                   "link_flap needs count >= 1 and period > 0");
      (void)resolve_edge(ev);
      break;
    case FaultKind::kSlotExhaust:
      HERO_REQUIRE(ev.magnitude >= 1.0, "slot_exhaust: {} slots",
                   ev.magnitude);
      (void)resolve_node(ev);
      break;
    case FaultKind::kSwitchRestart:
      (void)resolve_node(ev);
      break;
    case FaultKind::kGpuSlow:
      HERO_REQUIRE(ev.magnitude >= 1.0,
                   "gpu_slow multiplier {} < 1 (speedup?)", ev.magnitude);
      (void)resolve_node(ev);
      break;
    case FaultKind::kSyncDelay:
      HERO_REQUIRE(ev.magnitude >= 0.0, "sync_delay of {}s", ev.magnitude);
      break;
    case FaultKind::kSyncDrop:
      break;
  }
}

void FaultInjector::arm() {
  HERO_REQUIRE(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  for (const FaultEvent& ev : plan_.events) {
    validate(ev);
    schedule(ev);
  }
}

void FaultInjector::schedule(const FaultEvent& ev) {
  sim::Simulator& s = simulator();
  switch (ev.kind) {
    case FaultKind::kLinkDegrade: {
      const topo::EdgeId edge = resolve_edge(ev);
      s.schedule_in(ev.at, [this, ev, edge] { inject_link(ev, edge); });
      if (ev.duration > 0.0) {
        s.schedule_in(ev.at + ev.duration,
                      [this, ev, edge] { recover_link(ev, edge); });
      }
      break;
    }
    case FaultKind::kLinkFlap: {
      const topo::EdgeId edge = resolve_edge(ev);
      const Time down = ev.duration > 0.0 ? ev.duration : ev.period / 2.0;
      HERO_REQUIRE(down <= ev.period,
                   "link_flap: down time {} exceeds period {}", down,
                   ev.period);
      for (std::uint32_t k = 0; k < ev.count; ++k) {
        const Time start = ev.at + static_cast<double>(k) * ev.period;
        s.schedule_in(start, [this, ev, edge] { inject_link(ev, edge); });
        s.schedule_in(start + down,
                      [this, ev, edge] { recover_link(ev, edge); });
      }
      break;
    }
    case FaultKind::kSlotExhaust: {
      const topo::NodeId node = resolve_node(ev);
      s.schedule_in(ev.at, [this, ev, node] { inject_slots(ev, node); });
      break;
    }
    case FaultKind::kSwitchRestart: {
      const topo::NodeId node = resolve_node(ev);
      s.schedule_in(ev.at, [this, ev, node] { inject_restart(ev, node); });
      break;
    }
    case FaultKind::kGpuSlow: {
      const topo::NodeId node = resolve_node(ev);
      s.schedule_in(ev.at, [this, ev, node] { inject_gpu(ev, node); });
      if (ev.duration > 0.0) {
        s.schedule_in(ev.at + ev.duration,
                      [this, ev, node] { recover_gpu(ev, node); });
      }
      break;
    }
    case FaultKind::kSyncDelay:
    case FaultKind::kSyncDrop: {
      s.schedule_in(ev.at, [this, ev] { inject_sync(ev); });
      if (ev.duration > 0.0) {
        s.schedule_in(ev.at + ev.duration,
                      [this, ev] { recover_sync(ev); });
      }
      break;
    }
  }
}

void FaultInjector::emit(const FaultEvent& ev, const char* phase,
                         double value) {
  sim::Simulator& s = simulator();
  const bool inject = std::string_view(phase) == "inject";
  if (inject) ++injected_; else ++recovered_;
  log::debug("t={} fault {} {} target={} value={}", s.now(), phase,
             to_string(ev.kind), ev.target, value);
  if (obs::EventTracer* tr = s.tracer()) {
    tr->instant(s.now(), tr->track("faults"), "fault",
                strfmt("{}:{}", to_string(ev.kind), phase),
                {obs::arg("target", ev.target), obs::arg("value", value),
                 obs::arg("kind", to_string(ev.kind))});
  }
  if (obs::MetricsRegistry* m = s.metrics()) {
    m->counter(inject ? "faults.injected" : "faults.recovered").add(1);
  }
}

void FaultInjector::notify_scheduler_link(topo::EdgeId edge, double factor) {
  if (hooks_.online == nullptr) return;
  online::OnlineScheduler& online = *hooks_.online;
  // Surcharge every policy that rides the afflicted link so Eq. 16 steers
  // away *now*; the next controller tick recalibrates from measurements
  // (which see the degraded capacity too), so no explicit undo is needed.
  for (online::GroupId g = 0; g < online.group_count(); ++g) {
    const online::PolicyTable& table = online.table(g);
    for (std::size_t i = 0; i < table.size(); ++i) {
      const online::Policy& p = table.policy(i);
      if (!std::binary_search(p.edges.begin(), p.edges.end(), edge)) continue;
      const double cost = std::min(1.0, p.cost + (1.0 - factor));
      online.apply_cost_override(g, i, cost);
    }
  }
  online.recompute_penalties();
}

void FaultInjector::notify_scheduler_switch(topo::NodeId node) {
  if (hooks_.online == nullptr) return;
  online::OnlineScheduler& online = *hooks_.online;
  const double penalty = online.config().ina_unavailable_penalty;
  for (online::GroupId g = 0; g < online.group_count(); ++g) {
    const online::PolicyTable& table = online.table(g);
    for (std::size_t i = 0; i < table.size(); ++i) {
      const online::Policy& p = table.policy(i);
      if (p.plan.switch_node != node) continue;
      online.apply_cost_override(g, i, std::min(1.0, p.cost + penalty));
    }
  }
}

void FaultInjector::inject_link(const FaultEvent& ev, topo::EdgeId edge) {
  network_->set_link_degradation(edge, ev.magnitude);
  emit(ev, "inject", ev.magnitude);
  notify_scheduler_link(edge, ev.magnitude);
}

void FaultInjector::recover_link(const FaultEvent& ev, topo::EdgeId edge) {
  network_->set_link_degradation(edge, 1.0);
  emit(ev, "recover", 1.0);
  if (hooks_.online != nullptr) hooks_.online->recompute_penalties();
}

void FaultInjector::inject_slots(const FaultEvent& ev, topo::NodeId node) {
  HERO_REQUIRE(hooks_.switches != nullptr,
               "slot_exhaust fault needs a switch registry");
  sw::SwitchAgent& agent = hooks_.switches->agent(node);
  const std::uint32_t want = static_cast<std::uint32_t>(ev.magnitude);
  const std::uint32_t free =
      agent.slots_total() -
      std::min(agent.slots_in_use(), agent.slots_total());
  const std::uint32_t take = std::min(want, free);
  if (take == 0) {
    // Pool already saturated by real traffic; nothing to seize. Still an
    // exhaustion event from the cluster's point of view.
    emit(ev, "inject", 0.0);
    notify_scheduler_switch(node);
    return;
  }
  const sw::JobId job = next_job_++;
  const sw::Admission adm =
      agent.reserve(job, take, /*queue_if_full=*/false, [] {});
  HERO_INVARIANT(adm == sw::Admission::kGranted,
                 "slot seizure of {} free slots not granted", take);
  emit(ev, "inject", static_cast<double>(take));
  notify_scheduler_switch(node);
  if (ev.duration > 0.0) {
    simulator().schedule_in(ev.duration, [this, ev, node, job] {
      hooks_.switches->agent(node).release(job);
      emit(ev, "recover", 0.0);
    });
  }
}

void FaultInjector::inject_restart(const FaultEvent& ev, topo::NodeId node) {
  HERO_REQUIRE(hooks_.switches != nullptr,
               "switch_restart fault needs a switch registry");
  sw::SwitchAgent& agent = hooks_.switches->agent(node);
  const sw::JobId job = next_job_++;
  emit(ev, "inject", static_cast<double>(agent.slots_total()));
  notify_scheduler_switch(node);
  // A queued whole-pool reservation: no new job can be admitted ahead of it
  // (FIFO), running jobs drain, then the injector holds every slot for the
  // restart window. Mirrors a control-plane reboot that first quiesces the
  // data plane.
  const sw::Admission adm = agent.reserve(
      job, agent.slots_total(), /*queue_if_full=*/true,
      [this, ev, node, job] {
        if (ev.duration > 0.0) {
          simulator().schedule_in(ev.duration, [this, ev, node, job] {
            hooks_.switches->agent(node).release(job);
            emit(ev, "recover", 0.0);
          });
        }
      });
  HERO_INVARIANT(adm != sw::Admission::kRejected,
                 "queued whole-pool reservation rejected");
}

void FaultInjector::inject_gpu(const FaultEvent& ev, topo::NodeId node) {
  HERO_REQUIRE(network_->graph().node(node).kind == topo::NodeKind::kGpu,
               "gpu_slow target {} is not a GPU", ev.target);
  gpu_scales_[node].push_back(ev.magnitude);
  emit(ev, "inject", ev.magnitude);
}

void FaultInjector::recover_gpu(const FaultEvent& ev, topo::NodeId node) {
  auto it = gpu_scales_.find(node);
  HERO_INVARIANT(it != gpu_scales_.end(), "gpu_slow recovery without fault");
  std::vector<double>& scales = it->second;
  auto pos = std::find(scales.begin(), scales.end(), ev.magnitude);
  HERO_INVARIANT(pos != scales.end(), "gpu_slow recovery without fault");
  scales.erase(pos);
  if (scales.empty()) gpu_scales_.erase(it);
  emit(ev, "recover", 1.0);
}

double FaultInjector::compute_scale(topo::NodeId gpu) const {
  const auto it = gpu_scales_.find(gpu);
  if (it == gpu_scales_.end()) return 1.0;
  // Strongest active straggler wins (no drift from multiply/divide pairs).
  return *std::max_element(it->second.begin(), it->second.end());
}

void FaultInjector::inject_sync(const FaultEvent& ev) {
  if (hooks_.online == nullptr) {
    // Static baselines have no controller sync channel; the fault lands but
    // nothing depends on the channel. Counted so chaos runs stay comparable
    // across systems.
    emit(ev, "inject", ev.magnitude);
    return;
  }
  if (ev.kind == FaultKind::kSyncDelay) {
    sync_delay_ = std::max(sync_delay_, Time{ev.magnitude});
  } else {
    ++sync_drops_;
  }
  hooks_.online->set_sync_disruption(sync_delay_, sync_drops_ > 0);
  emit(ev, "inject", ev.magnitude);
}

void FaultInjector::recover_sync(const FaultEvent& ev) {
  if (hooks_.online == nullptr) {
    emit(ev, "recover", 0.0);
    return;
  }
  if (ev.kind == FaultKind::kSyncDelay) {
    sync_delay_ = 0.0;
  } else {
    HERO_INVARIANT(sync_drops_ > 0, "sync_drop recovery without fault");
    --sync_drops_;
  }
  hooks_.online->set_sync_disruption(sync_delay_, sync_drops_ > 0);
  emit(ev, "recover", 0.0);
}

}  // namespace hero::faults
