// Deterministic fault injector: replays a FaultPlan against a live
// simulation.
//
// Every fault is an ordinary simulator event, so chaos runs are as
// reproducible as clean ones — same plan, same seed, same trace bytes.
// The injector drives four failure domains:
//   * network  — FlowNetwork::set_link_degradation (degrade + flap);
//   * switches — SwitchAgent slot seizures (tenant pressure) and queued
//                whole-pool reservations (control-plane restart drain);
//   * GPUs     — a compute-time multiplier exposed through compute_scale(),
//                wired into ClusterSim via ServingOptions::compute_scale;
//   * control  — OnlineScheduler::set_sync_disruption (sync delay / loss).
// When an OnlineScheduler is attached, link faults additionally push
// cost overrides + an Eq. 18 penalty refresh so the Eq. 16 selection reacts
// immediately instead of waiting for the next controller tick.
//
// Every injection and recovery emits a "faults" trace instant and bumps
// faults.injected / faults.recovered counters.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "faults/fault_plan.hpp"
#include "netsim/flownet.hpp"
#include "switchsim/switch_agent.hpp"

namespace hero::online {
class OnlineScheduler;
}  // namespace hero::online

namespace hero::faults {

/// Slot-seizure job ids live far above the collective engine's op-id space
/// (engine ids count up from 1) so fault reservations never collide.
inline constexpr sw::JobId kFaultJobBase = sw::JobId{1} << 62;

class FaultInjector {
 public:
  /// Optional reaction hooks; the network is always required.
  struct Hooks {
    sw::SwitchRegistry* switches = nullptr;     ///< slot/restart faults
    online::OnlineScheduler* online = nullptr;  ///< adaptive reaction
  };

  FaultInjector(net::FlowNetwork& network, FaultPlan plan, Hooks hooks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validate the plan against the topology and schedule every event on the
  /// simulator (call once, before running the workload).
  void arm();

  /// Current compute-time multiplier for a GPU (>= 1; strongest active
  /// straggler wins). Plug into ServingOptions::compute_scale.
  [[nodiscard]] double compute_scale(topo::NodeId gpu) const;

  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }

 private:
  net::FlowNetwork* network_;
  FaultPlan plan_;
  Hooks hooks_;
  bool armed_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t recovered_ = 0;
  sw::JobId next_job_ = kFaultJobBase;
  /// Active straggler multipliers per GPU (a GPU can be hit by overlapping
  /// events; ordered map keeps iteration deterministic).
  std::map<topo::NodeId, std::vector<double>> gpu_scales_;
  Time sync_delay_ = 0.0;
  std::uint32_t sync_drops_ = 0;

  [[nodiscard]] sim::Simulator& simulator() const {
    return network_->simulator();
  }
  [[nodiscard]] topo::NodeId resolve_node(const FaultEvent& ev) const;
  [[nodiscard]] topo::EdgeId resolve_edge(const FaultEvent& ev) const;
  void validate(const FaultEvent& ev) const;
  void schedule(const FaultEvent& ev);

  void inject_link(const FaultEvent& ev, topo::EdgeId edge);
  void recover_link(const FaultEvent& ev, topo::EdgeId edge);
  void inject_slots(const FaultEvent& ev, topo::NodeId node);
  void inject_restart(const FaultEvent& ev, topo::NodeId node);
  void inject_gpu(const FaultEvent& ev, topo::NodeId node);
  void recover_gpu(const FaultEvent& ev, topo::NodeId node);
  void inject_sync(const FaultEvent& ev);
  void recover_sync(const FaultEvent& ev);

  /// Push the link fault into the online scheduler's cost tables (Eq. 16
  /// reacts immediately; the next controller tick re-syncs from
  /// measurements as usual).
  void notify_scheduler_link(topo::EdgeId edge, double factor);
  /// Same immediate reaction for switch faults: surcharge every INA policy
  /// aggregating on `node` so no collective queues behind the seized pool
  /// during the window before the next controller tick.
  void notify_scheduler_switch(topo::NodeId node);
  void emit(const FaultEvent& ev, const char* phase, double value);
};

}  // namespace hero::faults
