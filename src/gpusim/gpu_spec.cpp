#include "gpusim/gpu_spec.hpp"

namespace hero::gpu {

GpuSpec spec_of(topo::GpuModel model) {
  switch (model) {
    case topo::GpuModel::kA100_40:
      return GpuSpec{"A100-40GB", 312.0, 0.45, 1555.0 * units::GBps, 0.8,
                     40.0 * units::GB};
    case topo::GpuModel::kA100_80:
      return GpuSpec{"A100-80GB", 312.0, 0.45, 2039.0 * units::GBps, 0.8,
                     80.0 * units::GB};
    case topo::GpuModel::kV100_32:
      return GpuSpec{"V100-32GB", 125.0, 0.40, 900.0 * units::GBps, 0.75,
                     32.0 * units::GB};
    case topo::GpuModel::kL40_48:
      return GpuSpec{"L40-48GB", 181.0, 0.40, 864.0 * units::GBps, 0.75,
                     48.0 * units::GB};
    case topo::GpuModel::kH100_80:
      return GpuSpec{"H100-80GB", 989.0, 0.45, 3350.0 * units::GBps, 0.8,
                     80.0 * units::GB};
    case topo::GpuModel::kL4_24:
      return GpuSpec{"L4-24GB", 121.0, 0.35, 300.0 * units::GBps, 0.7,
                     24.0 * units::GB};
  }
  return {};
}

}  // namespace hero::gpu
