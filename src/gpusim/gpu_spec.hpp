// GPU hardware specifications for the roofline kernel model.
//
// The paper's testbed uses A100-40GB and V100-32GB workers (SV) plus L40 and
// A100 in the Fig. 1 breakdown. Peak numbers are public datasheet values;
// `efficiency` is the achievable fraction of peak for transformer kernels
// (model FLOPs utilization), a standard profiling-derived constant.
#pragma once

#include <string>

#include "common/units.hpp"
#include "topology/graph.hpp"

namespace hero::gpu {

struct GpuSpec {
  std::string name;
  double fp16_tflops = 0.0;    ///< peak dense FP16 TFLOP/s
  double efficiency = 0.45;    ///< achievable MFU for transformer kernels
  Bandwidth hbm_bw = 0.0;      ///< HBM bandwidth (bytes/s)
  double hbm_efficiency = 0.8; ///< achievable fraction of peak HBM bandwidth
  Bytes memory = 0.0;

  /// Effective compute throughput in FLOP/s.
  [[nodiscard]] WorkRate flops() const {
    return fp16_tflops * units::TFLOPs * efficiency;
  }
  /// Effective memory bandwidth in bytes/s.
  [[nodiscard]] Bandwidth mem_bw() const { return hbm_bw * hbm_efficiency; }
};

/// Datasheet spec for a topology GPU model.
[[nodiscard]] GpuSpec spec_of(topo::GpuModel model);

}  // namespace hero::gpu
