#include "gpusim/kernel_model.hpp"

#include <algorithm>
#include <cmath>

namespace hero::gpu {

KernelModel::KernelModel(GpuSpec spec, llm::ModelConfig model,
                         KernelModelOptions opts, std::uint64_t seed)
    : spec_(std::move(spec)), model_(std::move(model)), opts_(opts),
      rng_(seed) {}

double KernelModel::noise() const {
  if (opts_.noise_sigma <= 0) return 1.0;
  return rng_.lognormal(0.0, opts_.noise_sigma);
}

Time KernelModel::prefill_time(std::size_t k_in, std::size_t k_in2,
                               std::size_t stage_layers,
                               std::size_t p_tens) const {
  if (k_in == 0 || stage_layers == 0) return 0.0;
  p_tens = std::max<std::size_t>(p_tens, 1);
  const double h = static_cast<double>(model_.hidden);
  const double m = static_cast<double>(model_.ffn);
  const double kin = static_cast<double>(k_in);
  const double kin2 = static_cast<double>(std::max(k_in2, k_in));

  // GEMMs: QKV+O projections (4h^2) and the two FFN matmuls (2hm), 2 FLOPs
  // per MAC, sharded across tensor-parallel workers.
  const WorkUnits gemm_flops = 2.0 * kin * (4.0 * h * h + 2.0 * h * m);
  // Attention: QK^T and PV, each 2 * l_i^2 * h FLOPs per request.
  const WorkUnits attn_flops = 4.0 * kin2 * h;
  const WorkUnits flops_per_layer =
      (gemm_flops + attn_flops) / static_cast<double>(p_tens);

  const double layers = static_cast<double>(stage_layers);
  const Time compute = layers * flops_per_layer / spec_.flops();
  const Time overhead = layers * opts_.kernel_overhead +
                        opts_.iteration_overhead;
  return (compute + overhead) * noise();
}

Time KernelModel::decode_time(std::size_t batch, std::size_t context_tokens,
                              std::size_t stage_layers,
                              std::size_t p_tens) const {
  if (batch == 0 || stage_layers == 0) return 0.0;
  p_tens = std::max<std::size_t>(p_tens, 1);
  const double h = static_cast<double>(model_.hidden);
  const double m = static_cast<double>(model_.ffn);
  const double q = static_cast<double>(batch);
  const double ctx = static_cast<double>(context_tokens);
  const double shard = 1.0 / static_cast<double>(p_tens);

  // Weight streaming: every decode step reads the stage's weight shard once.
  const Bytes weight_bytes =
      model_.dtype_bytes * (4.0 * h * h + 2.0 * h * m) * shard;
  // KV streaming: attention reads the cached keys/values of every context
  // token in the batch.
  const Bytes kv_bytes = model_.dtype_bytes * 2.0 * ctx * h * shard;
  const Time mem_per_layer = (weight_bytes + kv_bytes) / spec_.mem_bw();

  const WorkUnits gemm_flops = 2.0 * q * (4.0 * h * h + 2.0 * h * m) * shard;
  const WorkUnits attn_flops = 4.0 * ctx * h * shard;
  const Time compute_per_layer = (gemm_flops + attn_flops) / spec_.flops();

  const double layers = static_cast<double>(stage_layers);
  const Time busy = layers * std::max(mem_per_layer, compute_per_layer);
  const Time overhead = layers * opts_.kernel_overhead +
                        opts_.iteration_overhead;
  return (busy + overhead) * noise();
}

}  // namespace hero::gpu
