// Ground-truth GPU kernel timing — the simulated "hardware" that iterations
// actually run on.
//
// The serving simulator executes compute through this roofline model, while
// the planner only sees the *fitted* linear model of Eq. 12-13 obtained by
// profiling it (see latency_model.hpp). Keeping the two distinct reproduces
// the real profile-vs-hardware gap that the paper's planner tolerates.
//
// Prefill (compute bound):  FLOPs = K_in * (4h^2 + 2hm) * 2 per layer for
// the GEMMs plus 4 * K_in^2 * h for attention score/value matmuls, divided
// across P_tens tensor shards.
// Decode (memory bound):    every generated token streams the stage's
// weights and the batch's KV cache from HBM; the roofline takes
// max(compute, memory) plus fixed kernel overheads.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "gpusim/gpu_spec.hpp"
#include "llm/model.hpp"

namespace hero::gpu {

struct KernelModelOptions {
  double noise_sigma = 0.02;      ///< lognormal run-to-run jitter
  Time kernel_overhead = 15.0 * units::us;  ///< launch overhead per layer
  Time iteration_overhead = 250.0 * units::us;  ///< Python runtime etc. (C3)
};

class KernelModel {
 public:
  KernelModel(GpuSpec spec, llm::ModelConfig model,
              KernelModelOptions opts = {}, std::uint64_t seed = 1);

  /// One prefill iteration on one pipeline stage.
  /// `k_in`  — total input tokens in the batch (K_in);
  /// `k_in2` — sum of squared per-request input lengths (K_in2);
  /// `stage_layers` — transformer layers hosted by this stage;
  /// `p_tens` — tensor-parallel width.
  [[nodiscard]] Time prefill_time(std::size_t k_in, std::size_t k_in2,
                                  std::size_t stage_layers,
                                  std::size_t p_tens) const;

  /// One decode iteration on one pipeline stage.
  /// `batch` — requests decoding this iteration (each producing one token);
  /// `context_tokens` — total KV-cache tokens read (sum of context lengths).
  [[nodiscard]] Time decode_time(std::size_t batch,
                                 std::size_t context_tokens,
                                 std::size_t stage_layers,
                                 std::size_t p_tens) const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] const llm::ModelConfig& model() const { return model_; }

 private:
  GpuSpec spec_;
  llm::ModelConfig model_;
  KernelModelOptions opts_;
  mutable Rng rng_;

  [[nodiscard]] double noise() const;
};

}  // namespace hero::gpu
