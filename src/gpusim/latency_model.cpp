#include "gpusim/latency_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hero::gpu {

std::vector<double> solve_least_squares(std::span<const double> rows,
                                        std::span<const double> y,
                                        std::size_t cols) {
  if (cols == 0 || rows.size() % cols != 0) {
    throw std::invalid_argument("solve_least_squares: bad shape");
  }
  const std::size_t n = rows.size() / cols;
  if (n != y.size() || n < cols) {
    throw std::invalid_argument("solve_least_squares: need >= cols samples");
  }

  // Column scaling: feature magnitudes span many orders (FLOP counts vs. an
  // intercept of 1), which would make the normal equations catastrophically
  // ill-conditioned. Normalize each column to unit max first.
  std::vector<double> scale(cols, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t j = 0; j < cols; ++j) {
      scale[j] = std::max(scale[j], std::abs(rows[s * cols + j]));
    }
  }
  for (double& s : scale) {
    if (s <= 0.0) s = 1.0;
  }

  // Normal equations on scaled columns: A = X^T X (cols x cols), b = X^T y.
  std::vector<double> a(cols * cols, 0.0);
  std::vector<double> b(cols, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double* row = rows.data() + s * cols;
    for (std::size_t i = 0; i < cols; ++i) {
      const double ri = row[i] / scale[i];
      b[i] += ri * y[s];
      for (std::size_t j = 0; j < cols; ++j) {
        a[i * cols + j] += ri * (row[j] / scale[j]);
      }
    }
  }

  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(cols);
  for (std::size_t i = 0; i < cols; ++i) perm[i] = i;
  for (std::size_t col = 0; col < cols; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < cols; ++r) {
      if (std::abs(a[r * cols + col]) > std::abs(a[pivot * cols + col])) {
        pivot = r;
      }
    }
    if (std::abs(a[pivot * cols + col]) < 1e-30) {
      throw std::invalid_argument("solve_least_squares: singular system");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < cols; ++j) {
        std::swap(a[pivot * cols + j], a[col * cols + j]);
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < cols; ++r) {
      const double f = a[r * cols + col] / a[col * cols + col];
      for (std::size_t j = col; j < cols; ++j) {
        a[r * cols + j] -= f * a[col * cols + j];
      }
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(cols, 0.0);
  for (std::size_t i = cols; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < cols; ++j) sum -= a[i * cols + j] * x[j];
    x[i] = sum / a[i * cols + i];
  }
  // Undo the column scaling.
  for (std::size_t j = 0; j < cols; ++j) x[j] /= scale[j];
  return x;
}

LatencyModel::LatencyModel(llm::ModelConfig model, PrefillCoeffs pre,
                           DecodeCoeffs dec, std::size_t attn_block)
    : model_(std::move(model)), pre_(pre), dec_(dec),
      attn_block_(std::max<std::size_t>(attn_block, 1)) {}

namespace {

// Eq. 12 feature terms, per stage layer.
void prefill_features(const llm::ModelConfig& m, std::size_t attn_block,
                      std::size_t k_in, std::size_t k_in2,
                      std::size_t stage_layers, std::size_t p_tens,
                      double out[3]) {
  const double h = static_cast<double>(m.hidden);
  const double mm = static_cast<double>(m.ffn);
  const double pt = static_cast<double>(std::max<std::size_t>(p_tens, 1));
  const double layers = static_cast<double>(stage_layers);
  out[0] = layers * (4.0 * h * h + 2.0 * h * mm) *
           static_cast<double>(k_in) / pt;
  out[1] = layers * 3.0 * h * static_cast<double>(k_in2) /
           (static_cast<double>(attn_block) * pt);
  out[2] = 1.0;
}

// Eq. 13 feature terms, per stage layer.
void decode_features(const llm::ModelConfig& m, std::size_t k_ctx,
                     std::size_t stage_layers, std::size_t p_tens,
                     double out[3]) {
  const double h = static_cast<double>(m.hidden);
  const double mm = static_cast<double>(m.ffn);
  const double pt = static_cast<double>(std::max<std::size_t>(p_tens, 1));
  const double layers = static_cast<double>(stage_layers);
  out[0] = layers * (4.0 * h * h + 2.0 * h * mm) / pt;
  out[1] = layers * 3.0 * h * static_cast<double>(k_ctx) / pt;
  out[2] = 1.0;
}

}  // namespace

Time LatencyModel::prefill(std::size_t k_in, std::size_t k_in2,
                           std::size_t stage_layers,
                           std::size_t p_tens) const {
  if (k_in == 0 || stage_layers == 0) return 0.0;
  double f[3];
  prefill_features(model_, attn_block_, k_in, k_in2, stage_layers, p_tens, f);
  return std::max(0.0, pre_.c1 * f[0] + pre_.c2 * f[1] + pre_.c3 * f[2]);
}

Time LatencyModel::decode(std::size_t k_ctx, std::size_t stage_layers,
                          std::size_t p_tens) const {
  if (stage_layers == 0) return 0.0;
  double f[3];
  decode_features(model_, k_ctx, stage_layers, p_tens, f);
  return std::max(0.0, dec_.c4 * f[0] + dec_.c5 * f[1] + dec_.c6 * f[2]);
}

FitReport profile_and_fit(const KernelModel& hw, std::size_t attn_block,
                          std::size_t repeats) {
  const llm::ModelConfig& m = hw.model();
  repeats = std::max<std::size_t>(repeats, 1);

  const std::size_t kins[] = {128, 512, 1024, 2048, 4096, 8192};
  const std::size_t requests[] = {1, 4, 16};
  const std::size_t p_tens_grid[] = {1, 2, 4, 8};
  const std::size_t stage_layer_grid[] = {
      std::max<std::size_t>(m.layers / 8, 1),
      std::max<std::size_t>(m.layers / 2, 1), m.layers};

  std::vector<double> pre_rows, pre_y, dec_rows, dec_y;

  for (std::size_t pt : p_tens_grid) {
    for (std::size_t layers : stage_layer_grid) {
      for (std::size_t kin : kins) {
        for (std::size_t q : requests) {
          // q equal-length requests: K_in2 = q * (K_in/q)^2 = K_in^2 / q.
          const std::size_t kin2 = kin / q > 0 ? (kin / q) * kin : kin;
          Time t = 0.0;
          for (std::size_t r = 0; r < repeats; ++r) {
            t += hw.prefill_time(kin, kin2, layers, pt);
          }
          t /= static_cast<double>(repeats);
          double f[3];
          prefill_features(m, attn_block, kin, kin2, layers, pt, f);
          pre_rows.insert(pre_rows.end(), f, f + 3);
          pre_y.push_back(raw(t));

          // Decode grid: batch q, context = kin tokens total.
          Time td = 0.0;
          for (std::size_t r = 0; r < repeats; ++r) {
            td += hw.decode_time(q, kin, layers, pt);
          }
          td /= static_cast<double>(repeats);
          double fd[3];
          decode_features(m, kin, layers, pt, fd);
          dec_rows.insert(dec_rows.end(), fd, fd + 3);
          dec_y.push_back(raw(td));
        }
      }
    }
  }

  const std::vector<double> cp = solve_least_squares(pre_rows, pre_y, 3);
  const std::vector<double> cd = solve_least_squares(dec_rows, dec_y, 3);

  FitReport report;
  report.prefill = PrefillCoeffs{cp[0], cp[1], cp[2]};
  report.decode = DecodeCoeffs{cd[0], cd[1], cd[2]};
  report.samples = pre_y.size();

  // Mean relative error over the grid (noise-free comparison is impossible,
  // so this includes jitter; it should still land in the low percent range).
  double pre_err = 0.0, dec_err = 0.0;
  for (std::size_t s = 0; s < pre_y.size(); ++s) {
    const double* f = pre_rows.data() + s * 3;
    const double pred = cp[0] * f[0] + cp[1] * f[1] + cp[2] * f[2];
    pre_err += std::abs(pred - pre_y[s]) / std::max(pre_y[s], 1e-9);
    const double* fd = dec_rows.data() + s * 3;
    const double predd = cd[0] * fd[0] + cd[1] * fd[1] + cd[2] * fd[2];
    dec_err += std::abs(predd - dec_y[s]) / std::max(dec_y[s], 1e-9);
  }
  report.prefill_rel_err = pre_err / static_cast<double>(pre_y.size());
  report.decode_rel_err = dec_err / static_cast<double>(dec_y.size());
  return report;
}

LatencyModel fit_latency_model(const KernelModel& hw,
                               std::size_t attn_block) {
  const FitReport report = profile_and_fit(hw, attn_block);
  return LatencyModel(hw.model(), report.prefill, report.decode, attn_block);
}

}  // namespace hero::gpu
