// The paper's fitted compute-latency model (Eq. 12-13) and the profiler
// that produces it.
//
//   T_c^pre = C1/P_t * (4h^2 K_in + 2hm K_in) + C2/(b P_t) * 3h K_in2 + C3
//   T_c^dec = C4/(P_t P_p) * (4h^2 + 2hm)     + C5/(P_t P_p) * 3h K_in + C6
//
// "Similar to the existing works, we use a profiling and interpolation
//  approach to figure out the values of C1 to C6." (SIII-C2)
//
// Here profiling means timing the ground-truth KernelModel over a grid of
// batch shapes and parallelism widths, then solving the linear
// least-squares system for C1..C3 and C4..C6. The planner consumes the
// fitted LatencyModel; the serving simulator keeps running on KernelModel,
// so planner estimates carry realistic fitting error.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gpusim/kernel_model.hpp"

namespace hero::gpu {

/// Solve min ||X beta - y||_2 for small column counts via normal equations
/// (Gaussian elimination with partial pivoting). `rows` is row-major with
/// `cols` entries per sample. Throws std::invalid_argument on shape errors
/// or a singular system.
[[nodiscard]] std::vector<double> solve_least_squares(
    std::span<const double> rows, std::span<const double> y,
    std::size_t cols);

struct PrefillCoeffs {
  double c1 = 0, c2 = 0, c3 = 0;
};
struct DecodeCoeffs {
  double c4 = 0, c5 = 0, c6 = 0;
};

class LatencyModel {
 public:
  LatencyModel(llm::ModelConfig model, PrefillCoeffs pre, DecodeCoeffs dec,
               std::size_t attn_block = 16);

  /// Eq. 12 evaluated per pipeline stage (`stage_layers` of the model's L
  /// layers; L is folded out of C1/C2 so stages scale linearly).
  [[nodiscard]] Time prefill(std::size_t k_in, std::size_t k_in2,
                             std::size_t stage_layers,
                             std::size_t p_tens) const;

  /// Eq. 13 per pipeline stage; `k_ctx` is the batch's total context tokens
  /// (the paper's K_in at decode time).
  [[nodiscard]] Time decode(std::size_t k_ctx, std::size_t stage_layers,
                            std::size_t p_tens) const;

  [[nodiscard]] const PrefillCoeffs& prefill_coeffs() const { return pre_; }
  [[nodiscard]] const DecodeCoeffs& decode_coeffs() const { return dec_; }
  [[nodiscard]] const llm::ModelConfig& model() const { return model_; }

 private:
  llm::ModelConfig model_;
  PrefillCoeffs pre_;
  DecodeCoeffs dec_;
  std::size_t attn_block_;
};

struct FitReport {
  PrefillCoeffs prefill;
  DecodeCoeffs decode;
  double prefill_rel_err = 0.0;  ///< mean |pred-true|/true over the grid
  double decode_rel_err = 0.0;
  std::size_t samples = 0;
};

/// Profile `hw` over a grid of (K_in, K_in2, stage_layers, P_tens) shapes
/// and fit C1..C6. `repeats` timing runs are averaged per grid point to tame
/// the kernel jitter.
[[nodiscard]] FitReport profile_and_fit(const KernelModel& hw,
                                        std::size_t attn_block = 16,
                                        std::size_t repeats = 3);

/// Convenience: profile + wrap into a LatencyModel.
[[nodiscard]] LatencyModel fit_latency_model(const KernelModel& hw,
                                             std::size_t attn_block = 16);

}  // namespace hero::gpu
