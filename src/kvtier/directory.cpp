#include "kvtier/directory.hpp"

#include "common/check.hpp"

namespace hero::kv {

void PrefixDirectory::update(std::uint64_t stream, std::size_t instance,
                             std::size_t tokens) {
  auto& holders = holdings_[stream];
  const auto it = holders.find(instance);
  if (tokens == 0) {
    if (it != holders.end()) {
      holders.erase(it);
      HERO_INVARIANT(entries_ > 0 && per_instance_[instance] > 0,
                     "directory entry accounting underflow");
      --entries_;
      --per_instance_[instance];
    }
    if (holders.empty()) holdings_.erase(stream);
    return;
  }
  if (it == holders.end()) {
    holders.emplace(instance, tokens);
    ++entries_;
    ++per_instance_[instance];
  } else {
    it->second = tokens;
  }
}

std::size_t PrefixDirectory::tokens_at(std::uint64_t stream,
                                       std::size_t instance) const {
  const auto s = holdings_.find(stream);
  if (s == holdings_.end()) return 0;
  const auto it = s->second.find(instance);
  return it == s->second.end() ? 0 : it->second;
}

std::optional<PrefixDirectory::Holding> PrefixDirectory::best(
    std::uint64_t stream) const {
  const auto s = holdings_.find(stream);
  if (s == holdings_.end() || s->second.empty()) return std::nullopt;
  Holding best_holding;
  // Ascending instance order + strict > keeps ties on the lowest id.
  for (const auto& [instance, tokens] : s->second) {
    if (tokens > best_holding.tokens) {
      best_holding.instance = instance;
      best_holding.tokens = tokens;
    }
  }
  return best_holding;
}

const std::map<std::size_t, std::size_t>* PrefixDirectory::holders(
    std::uint64_t stream) const {
  const auto s = holdings_.find(stream);
  return s == holdings_.end() ? nullptr : &s->second;
}

std::size_t PrefixDirectory::purge_instance(std::size_t instance) {
  std::size_t removed = 0;
  for (auto s = holdings_.begin(); s != holdings_.end();) {
    removed += s->second.erase(instance);
    if (s->second.empty()) {
      s = holdings_.erase(s);
    } else {
      ++s;
    }
  }
  HERO_INVARIANT(entries_ >= removed, "directory purge underflow");
  entries_ -= removed;
  per_instance_.erase(instance);
  return removed;
}

}  // namespace hero::kv
