// Fleet-level prefix directory — the shared index of the hierarchical KV
// tier. Maps a prefix hash (the serving layer uses the session id) to the
// instances holding its KV blocks and how many tokens each one covers, so
// the router can send a request to a replica that already has its prefix
// resident, or pick the best source to stream blocks from.
//
// The directory is a pure mirror: per-instance PrefixCaches publish their
// coverage changes through the owner's hook and the fleet forwards them
// here. Consistency rule (enforced by serve::FleetSim::mark_released): a
// drained instance's entries are purged from the directory before its GPUs
// return to the spare pool, so the router can never route toward memory
// that is being handed back.
//
// All state is std::map; lookups break ties toward the lowest instance id,
// so identical fleets produce identical routing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace hero::kv {

class PrefixDirectory {
 public:
  struct Holding {
    std::size_t instance = 0;
    std::size_t tokens = 0;
  };

  /// Record that `instance` covers `tokens` of `stream`'s prefix
  /// (contiguous from token zero). 0 tokens removes the entry.
  void update(std::uint64_t stream, std::size_t instance, std::size_t tokens);

  /// Tokens of `stream` held by `instance` (0 = none).
  [[nodiscard]] std::size_t tokens_at(std::uint64_t stream,
                                      std::size_t instance) const;

  /// Best holder of `stream`: the longest coverage, ties toward the lowest
  /// instance id. nullopt when nobody holds it.
  [[nodiscard]] std::optional<Holding> best(std::uint64_t stream) const;

  /// All holders of `stream` (instance -> tokens), or nullptr.
  [[nodiscard]] const std::map<std::size_t, std::size_t>* holders(
      std::uint64_t stream) const;

  /// Drop every entry of `instance` (drain teardown); returns the number
  /// of stream entries removed.
  std::size_t purge_instance(std::size_t instance);

  [[nodiscard]] bool instance_has_entries(std::size_t instance) const {
    const auto it = per_instance_.find(instance);
    return it != per_instance_.end() && it->second > 0;
  }
  /// Total (stream, instance) entries — the index size.
  [[nodiscard]] std::size_t entry_count() const { return entries_; }
  [[nodiscard]] std::size_t stream_count() const { return holdings_.size(); }

 private:
  /// stream -> (instance -> covered tokens)
  std::map<std::uint64_t, std::map<std::size_t, std::size_t>> holdings_;
  /// instance -> number of stream entries (drain-consistency bookkeeping)
  std::map<std::size_t, std::size_t> per_instance_;
  std::size_t entries_ = 0;
};

}  // namespace hero::kv
