#include "kvtier/prefix_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace hero::kv {

PrefixCache::PrefixCache(PrefixCacheOptions options) : opts_(options) {
  HERO_REQUIRE(opts_.block_tokens > 0, "PrefixCache: block_tokens must be > 0");
  HERO_REQUIRE(opts_.bytes_per_token > 0.0,
               "PrefixCache: bytes_per_token must be > 0");
}

std::size_t PrefixCache::cached_tokens(std::uint64_t stream) const {
  const auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.blocks * opts_.block_tokens;
}

void PrefixCache::touch(std::uint64_t stream) {
  const auto it = streams_.find(stream);
  if (it != streams_.end()) it->second.last_use = ++use_seq_;
}

void PrefixCache::pin(std::uint64_t stream, std::size_t tokens) {
  const std::size_t blocks = tokens / opts_.block_tokens;
  HERO_REQUIRE(blocks * opts_.block_tokens == tokens,
               "pin: {} tokens is not whole blocks of {}", tokens,
               opts_.block_tokens);
  auto it = streams_.find(stream);
  HERO_REQUIRE(it != streams_.end() && it->second.blocks >= blocks,
               "pin: stream {} does not cover {} tokens", stream, tokens);
  ++it->second.pins[blocks];
  ++pinned_total_;
}

void PrefixCache::unpin(std::uint64_t stream, std::size_t tokens) {
  const std::size_t blocks = tokens / opts_.block_tokens;
  auto it = streams_.find(stream);
  HERO_REQUIRE(it != streams_.end(), "unpin: unknown stream {}", stream);
  auto pin = it->second.pins.find(blocks);
  HERO_REQUIRE(pin != it->second.pins.end() && pin->second > 0,
               "unpin: stream {} has no pin of {} tokens", stream, tokens);
  if (--pin->second == 0) it->second.pins.erase(pin);
  HERO_INVARIANT(pinned_total_ > 0, "unpin underflow");
  --pinned_total_;
  // A retired cache only kept this stream alive for the in-flight reader;
  // once the last pin is gone the blocks leave with it.
  if (retired_ && it->second.pins.empty()) drop_stream(it);
}

void PrefixCache::drop_stream(std::map<std::uint64_t, Stream>::iterator it) {
  HERO_INVARIANT(total_blocks_ >= it->second.blocks,
                 "cache block accounting underflow");
  total_blocks_ -= it->second.blocks;
  streams_.erase(it);
}

std::size_t PrefixCache::evict_blocks(std::size_t max_blocks,
                                      std::vector<CoverageChange>* changes,
                                      const std::uint64_t* exclude) {
  std::size_t evicted = 0;
  while (evicted < max_blocks) {
    // LRU victim: the least-recently-used stream with an unpinned tail.
    auto victim = streams_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
      if (exclude != nullptr && it->first == *exclude) continue;
      if (it->second.blocks <= it->second.pinned_blocks()) continue;
      if (it->second.last_use < oldest) {
        oldest = it->second.last_use;
        victim = it;
      }
    }
    if (victim == streams_.end()) break;  // everything left is pinned

    // Tail-first within the victim: coverage stays contiguous from zero,
    // so the directory mirror is still one block count.
    Stream& s = victim->second;
    const std::size_t evictable = s.blocks - s.pinned_blocks();
    const std::size_t take = std::min(evictable, max_blocks - evicted);
    s.blocks -= take;
    total_blocks_ -= take;
    evicted += take;
    if (changes != nullptr) {
      changes->push_back(
          CoverageChange{victim->first, s.blocks * opts_.block_tokens});
    }
    if (s.blocks == 0 && s.pins.empty()) streams_.erase(victim);
  }
  return evicted;
}

Bytes PrefixCache::evict(Bytes needed, std::vector<CoverageChange>* changes) {
  if (needed <= 0.0) return 0.0;
  const Bytes per_block = block_bytes();
  const auto blocks = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(total_blocks_),
                       std::ceil(raw(needed) / raw(per_block))));
  const std::size_t evicted = evict_blocks(blocks, changes);
  return per_block * static_cast<double>(evicted);
}

std::size_t PrefixCache::publish(std::uint64_t stream, std::size_t tokens,
                                 Bytes capacity,
                                 std::vector<CoverageChange>* changes) {
  if (retired_) return 0;
  const std::size_t target = tokens / opts_.block_tokens;
  auto it = streams_.find(stream);
  const std::size_t have = it == streams_.end() ? 0 : it->second.blocks;
  if (target <= have) {
    touch(stream);
    return cached_tokens(stream);
  }

  std::size_t grow = target - have;
  const Bytes per_block = block_bytes();
  const Bytes need = per_block * static_cast<double>(grow);
  const Bytes free = capacity - bytes_used();
  if (need > free) {
    // Make room from other streams' cold tails; the stream being published
    // is the warmest by definition and never cannibalizes itself.
    const Bytes shortfall = need - std::max(Bytes{0.0}, free);
    const auto want = static_cast<std::size_t>(
        std::ceil(raw(shortfall) / raw(per_block)));
    evict_blocks(want, changes, &stream);
    const Bytes now_free = capacity - bytes_used();
    const double fit = std::floor(std::max(0.0, raw(now_free)) /
                                  raw(per_block));
    grow = std::min(grow, static_cast<std::size_t>(fit));
    if (grow == 0) {
      touch(stream);
      return cached_tokens(stream);
    }
  }

  Stream& s = it == streams_.end() ? streams_[stream] : it->second;
  s.blocks = have + grow;
  s.last_use = ++use_seq_;
  total_blocks_ += grow;
  return s.blocks * opts_.block_tokens;
}

std::vector<CoverageChange> PrefixCache::retire() {
  retired_ = true;
  std::vector<CoverageChange> dropped;
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->second.pins.empty()) {
      dropped.push_back(CoverageChange{it->first, 0});
      total_blocks_ -= it->second.blocks;
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace hero::kv
