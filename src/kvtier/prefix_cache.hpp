// Per-instance prefix/KV block cache — the bottom level of the cluster-wide
// hierarchical KV tier (HugeCTR-style: per-instance cache -> fleet-shared
// PrefixDirectory -> stream-or-recompute decision at the router).
//
// The cache holds the KV blocks of retired conversation contexts at
// token-block granularity, keyed by *stream* (a prefix identity — the
// serving layer uses the request's session id). Coverage of a stream is
// always contiguous from token zero: blocks are published in order and
// evicted tail-first, so one block count per stream describes exactly which
// prefix is reusable and the fleet directory can mirror it as a single
// number.
//
// Replacement is LRU across streams with tail-first eviction inside the
// victim stream. Blocks backing an in-flight reuse (or serving as the
// source of a cross-instance stream) are pinned and never evicted; pins
// are per-stream prefix lengths, so a pin protects every block below it.
//
// The cache performs no memory accounting of its own — the owner
// (serve::ClusterSim) charges bytes_used() against its KV budget and asks
// for eviction when decode admission needs the space. All state lives in
// std::map and every operation is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"

namespace hero::kv {

struct PrefixCacheOptions {
  /// Tokens per cached block. Reuse and coverage are whole blocks only.
  std::size_t block_tokens = 128;
  /// KV bytes of one token across all layers (llm kv_bytes_per_token).
  Bytes bytes_per_token = 0.0;
};

/// One stream whose published coverage changed (eviction or publication);
/// the owner forwards these to the fleet directory.
struct CoverageChange {
  std::uint64_t stream = 0;
  /// New contiguous-from-zero coverage in tokens (0 = fully evicted).
  std::size_t tokens = 0;
};

class PrefixCache {
 public:
  explicit PrefixCache(PrefixCacheOptions options);

  [[nodiscard]] std::size_t block_tokens() const {
    return opts_.block_tokens;
  }
  [[nodiscard]] Bytes block_bytes() const {
    return opts_.bytes_per_token * static_cast<double>(opts_.block_tokens);
  }
  [[nodiscard]] Bytes bytes_used() const {
    return block_bytes() * static_cast<double>(total_blocks_);
  }
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }
  [[nodiscard]] std::size_t pinned_count() const { return pinned_total_; }
  [[nodiscard]] bool retired() const { return retired_; }

  /// Largest whole-block token count <= `tokens` (what a reuse may cover).
  [[nodiscard]] std::size_t usable_tokens(std::size_t tokens) const {
    return tokens / opts_.block_tokens * opts_.block_tokens;
  }

  /// Contiguous-from-zero coverage of `stream` in tokens (whole blocks).
  [[nodiscard]] std::size_t cached_tokens(std::uint64_t stream) const;

  /// Mark `stream` most-recently-used (call on every reuse).
  void touch(std::uint64_t stream);

  /// Pin the first `tokens` (whole blocks) of `stream` against eviction.
  /// Requires the coverage to exist. Balanced by unpin().
  void pin(std::uint64_t stream, std::size_t tokens);
  /// Release one pin() of the same length. On a retired cache the stream's
  /// blocks are dropped outright once its last pin is gone.
  void unpin(std::uint64_t stream, std::size_t tokens);

  /// Extend `stream`'s coverage toward `tokens` (rounded down to whole
  /// blocks), evicting unpinned LRU tails of other streams while total
  /// bytes would exceed `capacity`. Publishes as many blocks as fit and
  /// returns the resulting coverage in tokens. Evictions of *other*
  /// streams are appended to `changes` (the published stream itself is
  /// not). No-op on a retired cache.
  std::size_t publish(std::uint64_t stream, std::size_t tokens,
                      Bytes capacity, std::vector<CoverageChange>* changes);

  /// Evict unpinned LRU tail blocks until at least `needed` bytes are
  /// freed or nothing evictable remains; returns the bytes freed.
  Bytes evict(Bytes needed, std::vector<CoverageChange>* changes);

  /// Drain teardown: drop every unpinned stream and refuse future
  /// publications. Pinned blocks (in-flight stream sources) survive until
  /// their unpin, then vanish. Returns the streams dropped now.
  std::vector<CoverageChange> retire();

 private:
  struct Stream {
    std::size_t blocks = 0;
    std::uint64_t last_use = 0;
    /// Pinned prefix lengths in blocks -> outstanding pin count. Blocks
    /// below the largest key are not evictable.
    std::map<std::size_t, std::size_t> pins;

    [[nodiscard]] std::size_t pinned_blocks() const {
      return pins.empty() ? 0 : pins.rbegin()->first;
    }
  };

  PrefixCacheOptions opts_;
  std::map<std::uint64_t, Stream> streams_;
  std::uint64_t use_seq_ = 0;
  std::size_t total_blocks_ = 0;
  std::size_t pinned_total_ = 0;
  bool retired_ = false;

  /// Evict up to `max_blocks` tail blocks, LRU stream first (never from
  /// `exclude`); returns the number evicted and records the changes.
  std::size_t evict_blocks(std::size_t max_blocks,
                           std::vector<CoverageChange>* changes,
                           const std::uint64_t* exclude = nullptr);
  void drop_stream(std::map<std::uint64_t, Stream>::iterator it);
};

}  // namespace hero::kv
