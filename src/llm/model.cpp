#include "llm/model.hpp"

namespace hero::llm {

Bytes ModelConfig::param_bytes() const {
  const double h = static_cast<double>(hidden);
  const double per_layer = 4.0 * h * h + 2.0 * h * static_cast<double>(ffn);
  const double embed = static_cast<double>(vocab) * h;
  return dtype_bytes * (embed + static_cast<double>(layers) * per_layer);
}

Bytes ModelConfig::kv_bytes_per_token() const {
  return dtype_bytes * 2.0 * static_cast<double>(layers) *
         static_cast<double>(hidden);
}

Bytes ModelConfig::sync_volume_per_step(std::size_t tokens) const {
  return comm_dtype_bytes * static_cast<double>(tokens) *
         static_cast<double>(hidden);
}

ModelConfig ModelConfig::with_int8_comm() const {
  ModelConfig copy = *this;
  copy.comm_dtype_bytes = 1.0;
  return copy;
}

Bytes ModelConfig::iteration_sync_volume(std::size_t tokens,
                                         std::size_t stage_layers) const {
  return static_cast<double>(kSyncStepsPerLayer) *
         static_cast<double>(stage_layers) * sync_volume_per_step(tokens);
}

Bytes ModelConfig::kv_transfer_bytes_per_gpu(std::size_t k_in,
                                             std::size_t p_tens) const {
  if (p_tens == 0) p_tens = 1;
  return kv_bytes_per_token() * static_cast<double>(k_in) /
         static_cast<double>(p_tens);
}

ModelConfig opt_66b() {
  return ModelConfig{"OPT-66B", 64, 9216, 72, 4 * 9216};
}

ModelConfig opt_175b() {
  return ModelConfig{"OPT-175B", 96, 12288, 96, 4 * 12288};
}

ModelConfig llama3_70b() {
  ModelConfig cfg{"LLaMA-3-70B", 80, 8192, 64, 28672};
  cfg.vocab = 128256;
  return cfg;
}

ModelConfig opt_13b() {
  return ModelConfig{"OPT-13B", 40, 5120, 40, 4 * 5120};
}

}  // namespace hero::llm
