// Transformer model descriptions and the data-volume arithmetic of Table I.
//
// Everything the planner and serving simulator need to know about a model:
// its shape (L, h, A, m of Table I), parameter footprint R, KV-cache bytes
// per token, and the synchronization volumes each parallel inference step
// ships over the network (paper SIII-C2: D_col(a) = D_col(f) = K_in * h per
// tensor-parallel sync step, two steps per layer).
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace hero::llm {

struct ModelConfig {
  std::string name;
  std::size_t layers = 0;   ///< L
  std::size_t hidden = 0;   ///< h
  std::size_t heads = 0;    ///< A
  std::size_t ffn = 0;      ///< m (FFN intermediate size)
  std::size_t vocab = 50272;
  Bytes dtype_bytes = 2.0;  ///< FP16 throughout the paper's evaluation
  /// Bytes per element on the wire for TP synchronization. Defaults to the
  /// compute dtype; setting 1.0 models INT8 communication compression
  /// (Fig. 1's "FP16/INT8" variants, FlashCommunication [33]).
  Bytes comm_dtype_bytes = 2.0;

  /// R of Table I: weight bytes = dtype * (V*h + L*(4h^2 + 2*h*m)).
  [[nodiscard]] Bytes param_bytes() const;

  /// KV-cache bytes per token across the whole model: 2 * L * h * dtype.
  [[nodiscard]] Bytes kv_bytes_per_token() const;

  /// Tensor-parallel synchronization volume of ONE sync step for `tokens`
  /// tokens: D = tokens * h elements at the *communication* precision
  /// (paper: D_col(a) = D_col(f) = K_in h).
  [[nodiscard]] Bytes sync_volume_per_step(std::size_t tokens) const;

  /// Copy of this config with low-bit (INT8) synchronization enabled.
  [[nodiscard]] ModelConfig with_int8_comm() const;

  /// Sync steps per transformer layer (attention output + FFN output).
  static constexpr std::size_t kSyncStepsPerLayer = 2;

  /// Total TP sync volume of one iteration on a pipeline stage holding
  /// `stage_layers` layers, for a batch carrying `tokens` tokens.
  [[nodiscard]] Bytes iteration_sync_volume(std::size_t tokens,
                                            std::size_t stage_layers) const;

  /// KV bytes one prefill GPU ships to its decode twin for a request of
  /// `k_in` tokens when the model is split `p_tens` ways (Eq. 15's D_ij
  /// summed over the layers/segments a GPU owns).
  [[nodiscard]] Bytes kv_transfer_bytes_per_gpu(std::size_t k_in,
                                                std::size_t p_tens) const;
};

/// OPT-66B (testbed model, SV).
[[nodiscard]] ModelConfig opt_66b();
/// OPT-175B (large-scale simulation model, SV).
[[nodiscard]] ModelConfig opt_175b();
/// LLaMA-3-70B (Fig. 1 cost-breakdown model).
[[nodiscard]] ModelConfig llama3_70b();
/// OPT-13B — a small model handy for tests and the quickstart example.
[[nodiscard]] ModelConfig opt_13b();

}  // namespace hero::llm
