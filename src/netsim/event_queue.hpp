// Indexed, pooled event calendar for the discrete-event core.
//
// The original Simulator kept a std::priority_queue plus two unordered_sets
// for lazy deletion: every cancel left a tombstone in the heap, every
// schedule allocated a fresh std::function node, and a cancelled event was
// only reclaimed when it bubbled to the top. The flow network cancels and
// reschedules completion events constantly (every rate change), so the
// calendar is rebuilt here as an indexed binary min-heap over a slot pool:
//
//  - every live event owns a pool slot; the heap stores slot indices and
//    each slot remembers its heap position, so cancel() is a true O(log n)
//    removal — no tombstones, pending count == heap size by construction;
//  - slots are recycled through a free list, so steady-state scheduling
//    performs no allocation (the std::function's own capture buffer aside);
//  - handles encode (generation, slot); a stale or bogus handle simply
//    fails the generation check, keeping cancel() a safe no-op.
//
// Ordering is (time, sequence): `seq` is a monotone counter stamped at
// insertion, which preserves the FIFO-among-equal-times contract the rest
// of the stack depends on for determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace hero::sim {

/// Opaque handle to a scheduled event: (generation << 32) | (slot + 1).
/// Zero is never a valid handle.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Insert an event. `seq` must be strictly increasing across calls — it is
  /// the FIFO tie-break among equal times.
  EventId push(Time at, std::uint64_t seq, Callback cb) {
    std::uint32_t slot = 0;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Node& node = pool_[slot];
    node.at = at;
    node.seq = seq;
    node.cb = std::move(cb);
    node.pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    sift_up(node.pos);
    return encode(node.gen, slot);
  }

  /// Remove a pending event. Returns false (and does nothing) for handles
  /// that already fired, were already cancelled, or never existed.
  bool cancel(EventId id) {
    const std::uint32_t slot = decode_slot(id);
    if (slot == kNoSlot || slot >= pool_.size()) return false;
    Node& node = pool_[slot];
    if (node.pos == kNotQueued || encode(node.gen, slot) != id) return false;
    remove_at(node.pos);
    retire(slot);
    return true;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest pending time; only valid when !empty().
  [[nodiscard]] Time top_time() const { return pool_[heap_.front()].at; }

  /// Pop the earliest (time, seq) event and hand back its callback. The
  /// callback is moved out *before* the caller runs it, so an event is free
  /// to schedule or cancel others — the heap is already consistent.
  std::pair<Time, Callback> pop() {
    HERO_INVARIANT(!heap_.empty(), "EventQueue::pop on empty calendar");
    const std::uint32_t slot = heap_.front();
    Node& node = pool_[slot];
    const Time at = node.at;
    Callback cb = std::move(node.cb);
    remove_at(0);
    retire(slot);
    return {at, std::move(cb)};
  }

 private:
  static constexpr std::uint32_t kNotQueued =
      std::numeric_limits<std::uint32_t>::max();
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Node {
    Time at = 0.0;
    std::uint64_t seq = 0;
    Callback cb;
    std::uint32_t pos = kNotQueued;  ///< index into heap_, kNotQueued if free
    std::uint32_t gen = 0;          ///< bumped on retire; stale-handle guard
  };

  static EventId encode(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) |
           static_cast<EventId>(slot + 1);
  }
  static std::uint32_t decode_slot(EventId id) {
    const std::uint32_t low = static_cast<std::uint32_t>(id & 0xffffffffu);
    return low == 0 ? kNoSlot : low - 1;
  }

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Node& na = pool_[a];
    const Node& nb = pool_[b];
    if (na.at != nb.at) return na.at < nb.at;
    return na.seq < nb.seq;
  }

  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    pool_[slot].pos = pos;
  }

  void sift_up(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!before(slot, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, slot);
  }

  void sift_down(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], slot)) break;
      place(pos, heap_[child]);
      pos = child;
    }
    place(pos, slot);
  }

  /// Detach heap_[pos] from the heap (the slot itself is retired by the
  /// caller). Fills the hole with the last element and restores order.
  void remove_at(std::uint32_t pos) {
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (pos != last) {
      place(pos, heap_[last]);
      heap_.pop_back();
      // The filler may need to move either way relative to its new parent.
      sift_down(pos);
      sift_up(pool_[heap_[pos]].pos);
    } else {
      heap_.pop_back();
    }
  }

  void retire(std::uint32_t slot) {
    Node& node = pool_[slot];
    node.pos = kNotQueued;
    ++node.gen;
    node.cb = nullptr;
    free_.push_back(slot);
  }

  std::vector<Node> pool_;
  std::vector<std::uint32_t> heap_;   ///< slot indices, binary min-heap
  std::vector<std::uint32_t> free_;   ///< recycled slots
};

}  // namespace hero::sim
