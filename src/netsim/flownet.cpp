#include "netsim/flownet.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::net {
namespace {

// Bytes below this are considered delivered. Sub-byte residues are floating
// point drift, never payload (large transfers accumulate ~1e-6 bytes of
// rounding error across rate changes).
constexpr Bytes kEpsilonBytes = 0.5;

}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& simulator, const topo::Graph& graph)
    : sim_(&simulator), graph_(&graph),
      degradation_(graph.edge_count(), 1.0),
      link_rate_(graph.edge_count() * 2, 0.0),
      link_util_avg_(graph.edge_count() * 2),
      link_delivered_(graph.edge_count() * 2, 0.0),
      link_flows_(graph.edge_count() * 2),
      link_is_dirty_(graph.edge_count() * 2, 0),
      link_force_refresh_(graph.edge_count() * 2, 0),
      link_mark_(graph.edge_count() * 2, 0) {}

DirectedLink FlowNetwork::link_at(const Transfer& t, std::size_t hop) const {
  const topo::EdgeId e = t.path.edges[hop];
  const topo::NodeId from = t.path.nodes[hop];
  return DirectedLink{e, graph_->edge(e).a == from};
}

Bandwidth FlowNetwork::link_capacity(DirectedLink link) const {
  return graph_->edge(link.edge).capacity * degradation_[link.edge];
}

std::string FlowNetwork::flow_label(const Transfer& t) const {
  return graph_->node(t.path.nodes.front()).name + "->" +
         graph_->node(t.path.nodes.back()).name;
}

std::uint32_t FlowNetwork::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  flow_mark_.push_back(0);
  return slot;
}

void FlowNetwork::retire_slot(std::uint32_t slot) {
  Transfer& t = pool_[slot];
  HERO_INVARIANT(t.pending_event == sim::kInvalidEvent,
                 "transfer {} retired with a live event", t.id);
  slot_of_.erase(t.id);
  t.id = kInvalidTransfer;
  t.in_flight = false;
  t.on_complete = nullptr;
  t.spans.clear();
  t.path.nodes.clear();  // keep vector capacity for the next occupant
  t.path.edges.clear();
  free_slots_.push_back(slot);
}

void FlowNetwork::mark_dirty(std::size_t link_index) {
  if (link_is_dirty_[link_index]) return;
  link_is_dirty_[link_index] = 1;
  dirty_links_.push_back(link_index);
}

void FlowNetwork::attach_links(std::uint32_t slot) {
  const TransferId id = pool_[slot].id;
  for (const DirectedLink& link : pool_[slot].spans) {
    auto& flows = link_flows_[link.index()];
    // Keep each per-link index sorted by transfer id: rate sums and solver
    // weight accumulation then always run in id order, independent of slot
    // reuse, which the byte-identity contract depends on.
    const auto pos = std::lower_bound(
        flows.begin(), flows.end(), id,
        [this](std::uint32_t s, TransferId want) { return pool_[s].id < want; });
    flows.insert(pos, slot);
    mark_dirty(link.index());
  }
}

void FlowNetwork::detach_links(std::uint32_t slot) {
  const TransferId id = pool_[slot].id;
  for (const DirectedLink& link : pool_[slot].spans) {
    auto& flows = link_flows_[link.index()];
    const auto pos = std::lower_bound(
        flows.begin(), flows.end(), id,
        [this](std::uint32_t s, TransferId want) { return pool_[s].id < want; });
    HERO_INVARIANT(pos != flows.end() && *pos == slot,
                   "transfer {} missing from link {} index", id, link.index());
    flows.erase(pos);
    mark_dirty(link.index());
  }
}

TransferId FlowNetwork::start_transfer(const topo::Path& path, Bytes bytes,
                                       TransferOptions opts) {
  if (bytes < 0) throw std::invalid_argument("start_transfer: bytes < 0");
  const TransferId id = next_id_++;
  if (path.empty() || bytes <= kEpsilonBytes) {
    // Local (same-node) transfers or empty payloads complete "immediately"
    // but still asynchronously, so callers get uniform callback semantics.
    if (opts.on_complete) {
      sim_->schedule_in(0.0, [cb = std::move(opts.on_complete), id] {
        cb(id);
      });
    }
    return id;
  }

  const std::uint32_t slot = acquire_slot();
  Transfer& t = pool_[slot];
  t.id = id;
  t.path = path;
  t.bytes = bytes;
  t.hop = 0;
  t.hop_left = 0;
  t.rate = 0.0;
  t.weight = opts.weight > 0 ? opts.weight : 1.0;
  t.pipelined = opts.pipelined;
  t.in_flight = false;
  t.last_update = sim_->now();
  t.pending_event = sim::kInvalidEvent;
  t.on_complete = std::move(opts.on_complete);
  slot_of_.emplace(id, slot);
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_begin(
        sim_->now(), id, "net.flow",
        graph_->node(path.nodes.front()).name + "->" +
            graph_->node(path.nodes.back()).name,
        {obs::arg("bytes", raw(bytes)), obs::arg("hops", path.edges.size()),
         obs::arg("pipelined", opts.pipelined)});
    tr->counter(sim_->now(), "net.active_transfers",
                static_cast<double>(slot_of_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.transfers").add();
    m->gauge("net.active_transfers")
        .set(sim_->now(), static_cast<double>(slot_of_.size()));
  }
  begin_hop(slot);
  return id;
}

void FlowNetwork::begin_hop(std::uint32_t slot) {
  Transfer& t = pool_[slot];
  t.in_flight = false;
  t.hop_left = t.bytes;
  t.rate = 0.0;
  t.spans.clear();
  // Fixed forwarding latency elapses before the payload starts occupying
  // link(s): the current hop's latency for store-and-forward flows, the
  // whole path's once for pipelined ones.
  Time latency = 0.0;
  if (t.pipelined) {
    for (topo::EdgeId e : t.path.edges) latency += graph_->edge(e).latency;
  } else {
    latency = graph_->edge(t.path.edges[t.hop]).latency;
  }
  const TransferId id = t.id;
  t.pending_event = sim_->schedule_in(
      latency, [this, slot, id] { activate(slot, id); });
}

void FlowNetwork::activate(std::uint32_t slot, TransferId id) {
  Transfer& t = pool_[slot];
  if (t.id != id) return;  // cancelled while waiting out the latency
  t.pending_event = sim::kInvalidEvent;
  t.in_flight = true;
  t.last_update = sim_->now();
  if (t.pipelined) {
    t.spans.reserve(t.path.edges.size());
    for (std::size_t h = 0; h < t.path.edges.size(); ++h) {
      t.spans.push_back(link_at(t, h));
    }
  } else {
    t.spans.push_back(link_at(t, t.hop));
  }
  ++in_flight_count_;
  attach_links(slot);
  reallocate_dirty();
}

void FlowNetwork::cancel_transfer(TransferId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  const std::uint32_t slot = it->second;
  Transfer& t = pool_[slot];
  if (t.pending_event != sim::kInvalidEvent) {
    sim_->cancel(t.pending_event);
    t.pending_event = sim::kInvalidEvent;
  }
  const bool was_in_flight = t.in_flight;
  if (was_in_flight) {
    // Account the stretch since the last rate change before the flow
    // vanishes — delivered_bytes() must never regress on a cancel.
    progress_transfer(t, sim_->now());
    --in_flight_count_;
    detach_links(slot);
  }
  std::string flow_name = flow_label(t);
  retire_slot(slot);
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_end(sim_->now(), id, "net.flow", std::move(flow_name),
                  {obs::arg("cancelled", true)});
    tr->counter(sim_->now(), "net.active_transfers",
                static_cast<double>(slot_of_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.cancelled").add();
    m->gauge("net.active_transfers")
        .set(sim_->now(), static_cast<double>(slot_of_.size()));
  }
  if (was_in_flight) reallocate_dirty();
}

void FlowNetwork::progress_transfer(Transfer& t, Time now) {
  if (!t.in_flight) return;
  const Time dt = now - t.last_update;
  if (dt > 0) {
    const Bytes moved = std::min(t.hop_left, t.rate * dt);
    HERO_INVARIANT(moved >= 0.0, "transfer {} moved {} bytes", t.id, moved);
    t.hop_left -= moved;
    for (const DirectedLink& link : t.spans) {
      link_delivered_[link.index()] += moved;
    }
    HERO_INVARIANT(t.hop_left >= 0.0, "transfer {} hop_left {} underflow",
                   t.id, t.hop_left);
  }
  t.last_update = now;
}

void FlowNetwork::reschedule_completion(std::uint32_t slot) {
  Transfer& t = pool_[slot];
  if (t.pending_event != sim::kInvalidEvent) {
    sim_->cancel(t.pending_event);
    t.pending_event = sim::kInvalidEvent;
  }
  if (!t.in_flight) return;
  const TransferId id = t.id;
  if (t.hop_left <= kEpsilonBytes) {
    t.pending_event = sim_->schedule_in(
        0.0, [this, slot, id] { on_hop_complete(slot, id); });
  } else if (t.rate > 0) {
    t.pending_event = sim_->schedule_in(
        t.hop_left / t.rate, [this, slot, id] { on_hop_complete(slot, id); });
  }
  // rate == 0 (fully degraded link): transfer stalls until the next
  // reallocation gives it bandwidth.
}

void FlowNetwork::collect_all_in_flight(
    std::vector<std::uint32_t>& out) const {
  out.clear();
  for (std::uint32_t slot = 0; slot < pool_.size(); ++slot) {
    if (pool_[slot].in_flight) out.push_back(slot);
  }
  std::sort(out.begin(), out.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return pool_[a].id < pool_[b].id;
            });
}

void FlowNetwork::solve_component(const std::vector<std::uint32_t>& slots,
                                  std::vector<Bandwidth>& rates) const {
  // Weighted progressive filling, generalized to flows spanning several
  // links (pipelined mode): fixing a flow at the bottleneck's fair share
  // consumes capacity on every other link it crosses. `slots` arrives
  // sorted by transfer id, so weight accumulation and fixing order — and
  // therefore every floating-point result — match the whole-fabric solve
  // restricted to this component, bit for bit.
  rates.assign(slots.size(), 0.0);
  struct LinkState {
    Bandwidth residual = 0.0;
    double weight_sum = 0.0;
  };
  // Ordered by directed-link index: when two links tie for the bottleneck
  // share, the winner must not depend on hash order (it decides which
  // flows get fixed first, and therefore every later rate).
  std::map<std::size_t, LinkState> links;
  for (const std::uint32_t slot : slots) {
    const Transfer& t = pool_[slot];
    for (const DirectedLink& link : t.spans) {
      auto [it, inserted] =
          links.try_emplace(link.index(), LinkState{link_capacity(link)});
      it->second.weight_sum += t.weight;
    }
  }

  std::vector<std::uint32_t> unfixed(slots.size());
  for (std::uint32_t i = 0; i < unfixed.size(); ++i) unfixed[i] = i;

  while (!unfixed.empty()) {
    // Find the bottleneck link: minimal fair share per unit weight.
    Bandwidth best_share = std::numeric_limits<Bandwidth>::infinity();
    std::size_t best_link = ~std::size_t{0};
    for (const auto& [idx, state] : links) {
      if (state.weight_sum <= 0) continue;
      const Bandwidth share = state.residual / state.weight_sum;
      if (share < best_share) {
        best_share = share;
        best_link = idx;
      }
    }
    if (best_link == ~std::size_t{0}) break;

    // Fix every unfixed transfer crossing the bottleneck; release their
    // demand from the other links they span.
    std::vector<std::uint32_t> rest;
    rest.reserve(unfixed.size());
    for (const std::uint32_t i : unfixed) {
      const Transfer& t = pool_[slots[i]];
      const bool on_bottleneck =
          std::any_of(t.spans.begin(), t.spans.end(),
                      [&](const DirectedLink& l) {
                        return l.index() == best_link;
                      });
      if (!on_bottleneck) {
        rest.push_back(i);
        continue;
      }
      rates[i] = best_share * t.weight;
      for (const DirectedLink& link : t.spans) {
        if (link.index() == best_link) continue;
        auto it = links.find(link.index());
        if (it != links.end()) {
          it->second.residual =
              std::max(Bandwidth{0.0}, it->second.residual - rates[i]);
          it->second.weight_sum -= t.weight;
        }
      }
    }
    links.erase(best_link);
    unfixed.swap(rest);
  }
}

void FlowNetwork::reallocate_dirty() {
  ++stats_.reallocations;
  stats_.flows_active += in_flight_count_;
  const Time now = sim_->now();

  comp_flows_.clear();
  comp_links_.clear();
  ++mark_epoch_;
  if (full_solve_) {
    collect_all_in_flight(comp_flows_);
    for (const std::uint32_t slot : comp_flows_) {
      for (const DirectedLink& link : pool_[slot].spans) {
        const std::size_t idx = link.index();
        if (link_mark_[idx] != mark_epoch_) {
          link_mark_[idx] = mark_epoch_;
          comp_links_.push_back(idx);
        }
      }
    }
    for (const std::size_t idx : dirty_links_) {
      if (link_mark_[idx] != mark_epoch_) {
        link_mark_[idx] = mark_epoch_;
        comp_links_.push_back(idx);
      }
    }
  } else {
    // Flood-fill the flow/link occupancy graph from the dirty links. The
    // closure is a union of complete bottleneck components, so re-solving
    // exactly these flows reproduces the global solution: max-min rates of
    // untouched components are pure functions of their own flows and links.
    bfs_stack_.clear();
    for (const std::size_t idx : dirty_links_) {
      if (link_mark_[idx] != mark_epoch_) {
        link_mark_[idx] = mark_epoch_;
        comp_links_.push_back(idx);
        bfs_stack_.push_back(idx);
      }
    }
    while (!bfs_stack_.empty()) {
      const std::size_t idx = bfs_stack_.back();
      bfs_stack_.pop_back();
      for (const std::uint32_t slot : link_flows_[idx]) {
        if (flow_mark_[slot] == mark_epoch_) continue;
        flow_mark_[slot] = mark_epoch_;
        comp_flows_.push_back(slot);
        for (const DirectedLink& link : pool_[slot].spans) {
          const std::size_t j = link.index();
          if (link_mark_[j] != mark_epoch_) {
            link_mark_[j] = mark_epoch_;
            comp_links_.push_back(j);
            bfs_stack_.push_back(j);
          }
        }
      }
    }
    std::sort(comp_flows_.begin(), comp_flows_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return pool_[a].id < pool_[b].id;
              });
  }
  for (const std::size_t idx : dirty_links_) link_is_dirty_[idx] = 0;
  dirty_links_.clear();
  std::sort(comp_links_.begin(), comp_links_.end());

  if (!comp_flows_.empty()) {
    ++stats_.solves;
    stats_.flows_solved += comp_flows_.size();
    solve_component(comp_flows_, solved_rates_);
  } else {
    solved_rates_.clear();
  }

  // Apply: a flow only accrues progress, takes its new rate, and moves its
  // completion event when the solved rate differs bitwise from its current
  // one. Unchanged flows keep their accrual chunk and their event — that
  // skip is what makes an event on one component free for every other, and
  // because a re-solved-but-unchanged component reproduces its rates bit
  // for bit, full-solve mode skips exactly the same flows.
  for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
    Transfer& t = pool_[comp_flows_[i]];
    const Bandwidth new_rate = solved_rates_[i];
    if (new_rate == t.rate) continue;
    progress_transfer(t, now);
    t.rate = new_rate;
    reschedule_completion(comp_flows_[i]);
  }

  // Refresh per-link accounting for the touched links (ascending index
  // order). refresh_link() skips links whose busy rate is bitwise
  // unchanged, so observation sequences also match across solve modes.
  obs::MetricsRegistry* metrics = sim_->metrics();
  if (metrics != nullptr && link_gauges_.empty()) {
    link_gauges_.assign(link_rate_.size(), nullptr);
  }
  for (const std::size_t idx : comp_links_) {
    refresh_link(idx, now, metrics);
  }

  if (validate_solves_ && !full_solve_) validate_against_full_solve();
}

void FlowNetwork::refresh_link(std::size_t index, Time now,
                               obs::MetricsRegistry* metrics) {
  Bandwidth rate = 0.0;
  for (const std::uint32_t slot : link_flows_[index]) {
    rate += pool_[slot].rate;  // id order: the index is sorted by id
  }
  const bool force = link_force_refresh_[index] != 0;
  link_force_refresh_[index] = 0;
  if (!force && rate == link_rate_[index]) return;
  link_rate_[index] = rate;

  const DirectedLink link{static_cast<topo::EdgeId>(index / 2),
                          (index % 2) == 0};
  const Bandwidth cap = link_capacity(link);
  // Max-min filling must never over-subscribe a directed link (small
  // relative slack absorbs progressive-filling rounding).
  HERO_INVARIANT(rate <= cap + 1e-6 * std::max(cap, Bandwidth{1.0}),
                 "link {} allocated {} B/s over capacity {} B/s", index, rate,
                 cap);
  const double util = cap > 0 ? rate / cap : 0.0;
  link_util_avg_[index].observe(now, util);
  if (metrics != nullptr) {
    // Per-link utilization timeline (the controller's "hardware
    // counters"); a link's gauge appears once it first carries traffic.
    if (link_gauges_[index] == nullptr && util > 0.0) {
      const topo::Edge& e = graph_->edge(link.edge);
      const topo::NodeId from = link.forward ? e.a : e.b;
      const topo::NodeId to = link.forward ? e.b : e.a;
      link_gauges_[index] = &metrics->gauge(
          "link." + graph_->node(from).name + "->" + graph_->node(to).name);
    }
    if (link_gauges_[index] != nullptr) link_gauges_[index]->set(now, util);
  }
}

void FlowNetwork::validate_against_full_solve() {
  ++stats_.validations;
  collect_all_in_flight(validate_flows_);
  solve_component(validate_flows_, validate_rates_);
  for (std::size_t i = 0; i < validate_flows_.size(); ++i) {
    const Transfer& t = pool_[validate_flows_[i]];
    if (validate_rates_[i] != t.rate) {
      ++stats_.mismatches;
      HERO_INVARIANT(false,
                     "incremental max-min diverged: transfer {} rate {} B/s "
                     "vs full solve {} B/s",
                     t.id, t.rate, validate_rates_[i]);
    }
  }
}

void FlowNetwork::on_hop_complete(std::uint32_t slot, TransferId id) {
  Transfer& t = pool_[slot];
  if (t.id != id) return;  // slot recycled under a stale event
  t.pending_event = sim::kInvalidEvent;

  // Account any residue (event fired exactly at depletion time).
  const Time now = sim_->now();
  progress_transfer(t, now);
  if (t.hop_left > kEpsilonBytes) {
    // Spurious wakeup (defensive; true removal should prevent it): put a
    // fresh completion event back for the residue at the current rate.
    reschedule_completion(slot);
    return;
  }

  t.in_flight = false;
  --in_flight_count_;
  detach_links(slot);
  ++t.hop;
  if (!t.pipelined && t.hop < t.path.edges.size()) {
    begin_hop(slot);
    reallocate_dirty();
    return;
  }
  // Bytes-in == bytes-out: the final hop (or the single pipelined stream)
  // delivered the whole payload up to floating-point residue.
  HERO_INVARIANT(t.hop_left <= kEpsilonBytes,
                 "transfer {} completed with {} bytes undelivered", id,
                 t.hop_left);
  HERO_INVARIANT(t.pipelined || t.hop == t.path.edges.size(),
                 "transfer {} finished on hop {}/{}", id, t.hop,
                 t.path.edges.size());
  auto cb = std::move(t.on_complete);
  std::string flow_name = flow_label(t);
  retire_slot(slot);
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_end(now, id, "net.flow", std::move(flow_name));
    tr->counter(now, "net.active_transfers",
                static_cast<double>(slot_of_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.completed").add();
    m->gauge("net.active_transfers")
        .set(now, static_cast<double>(slot_of_.size()));
  }
  reallocate_dirty();
  if (cb) cb(id);
}

double FlowNetwork::utilization(DirectedLink link) const {
  const Bandwidth cap = link_capacity(link);
  return cap > 0 ? link_rate_[link.index()] / cap : 0.0;
}

double FlowNetwork::edge_utilization(topo::EdgeId edge) const {
  return std::max(utilization(DirectedLink{edge, true}),
                  utilization(DirectedLink{edge, false}));
}

double FlowNetwork::average_utilization(DirectedLink link) const {
  // Utilization is only observed when it changes; extend the current value
  // through the caller's clock so idle stretches count.
  return link_util_avg_[link.index()].average_until(sim_->now());
}

PathEstimate FlowNetwork::estimate_path(const topo::Path& path) const {
  PathEstimate est;
  for (std::size_t h = 0; h < path.edges.size(); ++h) {
    const topo::EdgeId e = path.edges[h];
    const topo::NodeId from = path.nodes[h];
    const DirectedLink link{e, graph_->edge(e).a == from};
    const std::size_t idx = link.index();
    const Bandwidth cap = link_capacity(link);
    est.latency += graph_->edge(e).latency;
    const Bandwidth residual =
        std::max(Bandwidth{0.0}, cap - link_rate_[idx]);
    if (residual < est.residual) est.residual = residual;
    // Post-admission estimate: a new flow gets at least C/(n+1) on a
    // saturated link (it squeezes the n incumbents down to fair share) and
    // at least the residual on an under-used one.
    const double n = static_cast<double>(link_flows_[idx].size());
    const Bandwidth admitted = std::max(residual, cap / (n + 1.0));
    if (admitted < est.fair_share) {
      est.fair_share = admitted;
      est.bottleneck_link = e;
    }
  }
  return est;
}

Bytes FlowNetwork::delivered_bytes(DirectedLink link) const {
  // Flows accrue lazily (only at rate changes), so add the in-progress
  // stretch of every flow currently on the link.
  const std::size_t idx = link.index();
  Bytes total = link_delivered_[idx];
  const Time now = sim_->now();
  for (const std::uint32_t slot : link_flows_[idx]) {
    const Transfer& t = pool_[slot];
    const Time dt = now - t.last_update;
    if (dt > 0) total += std::min(t.hop_left, t.rate * dt);
  }
  return total;
}

void FlowNetwork::debug_dump() const {
  std::vector<std::uint32_t> slots;
  slots.reserve(slot_of_.size());
  for (std::uint32_t slot = 0; slot < pool_.size(); ++slot) {
    if (pool_[slot].id != kInvalidTransfer) slots.push_back(slot);
  }
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return pool_[a].id < pool_[b].id;
            });
  for (const std::uint32_t slot : slots) {
    const Transfer& t = pool_[slot];
    log::warn(
        "transfer {}: hop {}/{} in_flight={} hop_left={} rate={} event={}",
        t.id, t.hop, t.path.edges.size(), t.in_flight, t.hop_left, t.rate,
        t.pending_event);
  }
}

void FlowNetwork::set_link_degradation(topo::EdgeId edge, double factor) {
  if (!(factor > 0.0) || factor > 1.0) {
    throw std::invalid_argument("set_link_degradation: factor in (0,1]");
  }
  degradation_[edge] = factor;
  // Capacity moved under the allocation: both directions must re-solve and
  // re-observe utilization even if their busy rate lands on the same value.
  const std::size_t fwd = static_cast<std::size_t>(edge) * 2;
  mark_dirty(fwd);
  mark_dirty(fwd + 1);
  link_force_refresh_[fwd] = 1;
  link_force_refresh_[fwd + 1] = 1;
  reallocate_dirty();
}

}  // namespace hero::net
