#include "netsim/flownet.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::net {
namespace {

// Bytes below this are considered delivered. Sub-byte residues are floating
// point drift, never payload (large transfers accumulate ~1e-6 bytes of
// rounding error across rate changes).
constexpr Bytes kEpsilonBytes = 0.5;

}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& simulator, const topo::Graph& graph)
    : sim_(&simulator), graph_(&graph),
      degradation_(graph.edge_count(), 1.0),
      link_rate_(graph.edge_count() * 2, 0.0),
      link_util_avg_(graph.edge_count() * 2),
      link_delivered_(graph.edge_count() * 2, 0.0) {}

std::vector<DirectedLink> FlowNetwork::active_links(
    const Transfer& t) const {
  auto link_at = [&](std::size_t hop) {
    const topo::EdgeId e = t.path.edges[hop];
    const topo::NodeId from = t.path.nodes[hop];
    return DirectedLink{e, graph_->edge(e).a == from};
  };
  if (!t.pipelined) return {link_at(t.hop)};
  std::vector<DirectedLink> links;
  links.reserve(t.path.edges.size());
  for (std::size_t h = 0; h < t.path.edges.size(); ++h) {
    links.push_back(link_at(h));
  }
  return links;
}

Bandwidth FlowNetwork::link_capacity(DirectedLink link) const {
  return graph_->edge(link.edge).capacity * degradation_[link.edge];
}

TransferId FlowNetwork::start_transfer(const topo::Path& path, Bytes bytes,
                                       TransferOptions opts) {
  if (bytes < 0) throw std::invalid_argument("start_transfer: bytes < 0");
  const TransferId id = next_id_++;
  if (path.empty() || bytes <= kEpsilonBytes) {
    // Local (same-node) transfers or empty payloads complete "immediately"
    // but still asynchronously, so callers get uniform callback semantics.
    if (opts.on_complete) {
      sim_->schedule_in(0.0, [cb = std::move(opts.on_complete), id] {
        cb(id);
      });
    }
    return id;
  }

  Transfer t;
  t.id = id;
  t.path = path;
  t.bytes = bytes;
  t.hop = 0;
  t.weight = opts.weight > 0 ? opts.weight : 1.0;
  t.pipelined = opts.pipelined;
  t.on_complete = std::move(opts.on_complete);
  auto [it, inserted] = transfers_.emplace(id, std::move(t));
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_begin(
        sim_->now(), id, "net.flow",
        graph_->node(path.nodes.front()).name + "->" +
            graph_->node(path.nodes.back()).name,
        {obs::arg("bytes", bytes), obs::arg("hops", path.edges.size()),
         obs::arg("pipelined", opts.pipelined)});
    tr->counter(sim_->now(), "net.active_transfers",
                static_cast<double>(transfers_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.transfers").add();
    m->gauge("net.active_transfers")
        .set(sim_->now(), static_cast<double>(transfers_.size()));
  }
  begin_hop(it->second);
  return id;
}

void FlowNetwork::begin_hop(Transfer& t) {
  t.in_flight = false;
  t.hop_left = t.bytes;
  t.rate = 0.0;
  // Fixed forwarding latency elapses before the payload starts occupying
  // link(s): the current hop's latency for store-and-forward flows, the
  // whole path's once for pipelined ones.
  Time latency = 0.0;
  if (t.pipelined) {
    for (topo::EdgeId e : t.path.edges) latency += graph_->edge(e).latency;
  } else {
    latency = graph_->edge(t.path.edges[t.hop]).latency;
  }
  const TransferId id = t.id;
  sim_->schedule_in(latency, [this, id] {
    auto it = transfers_.find(id);
    if (it == transfers_.end()) return;
    it->second.in_flight = true;
    it->second.last_update = sim_->now();
    reallocate();
  });
}

void FlowNetwork::cancel_transfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  if (it->second.completion_event != sim::kInvalidEvent) {
    sim_->cancel(it->second.completion_event);
  }
  const bool was_in_flight = it->second.in_flight;
  std::string flow_name =
      graph_->node(it->second.path.nodes.front()).name + "->" +
      graph_->node(it->second.path.nodes.back()).name;
  transfers_.erase(it);
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_end(sim_->now(), id, "net.flow", std::move(flow_name),
                  {obs::arg("cancelled", true)});
    tr->counter(sim_->now(), "net.active_transfers",
                static_cast<double>(transfers_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.cancelled").add();
    m->gauge("net.active_transfers")
        .set(sim_->now(), static_cast<double>(transfers_.size()));
  }
  if (was_in_flight) reallocate();
}

void FlowNetwork::progress_to_now() {
  const Time now = sim_->now();
  for (auto& [id, t] : transfers_) {
    if (!t.in_flight) continue;
    const Time dt = now - t.last_update;
    if (dt > 0) {
      const Bytes moved = std::min(t.hop_left, t.rate * dt);
      HERO_INVARIANT(moved >= 0.0, "transfer {} moved {} bytes", id, moved);
      t.hop_left -= moved;
      for (const DirectedLink& link : active_links(t)) {
        link_delivered_[link.index()] += moved;
      }
      t.last_update = now;
      HERO_INVARIANT(t.hop_left >= 0.0,
                     "transfer {} hop_left {} underflow", id, t.hop_left);
    }
  }
}

void FlowNetwork::compute_max_min_rates() {
  // Weighted progressive filling, generalized to flows spanning several
  // links (pipelined mode): fixing a flow at the bottleneck's fair share
  // consumes capacity on every other link it crosses.
  struct LinkState {
    double residual = 0.0;
    double weight_sum = 0.0;
  };
  // Ordered by directed-link index: when two links tie for the bottleneck
  // share, the winner must not depend on hash order (it decides which
  // flows get fixed first, and therefore every later rate).
  std::map<std::size_t, LinkState> links;
  struct Entry {
    Transfer* t = nullptr;
    std::vector<DirectedLink> spans;
  };
  std::vector<Entry> unfixed;
  unfixed.reserve(transfers_.size());

  for (auto& [id, t] : transfers_) {
    if (!t.in_flight) continue;
    t.rate = 0.0;
    Entry entry{&t, active_links(t)};
    for (const DirectedLink& link : entry.spans) {
      auto [it, inserted] =
          links.try_emplace(link.index(), LinkState{link_capacity(link)});
      it->second.weight_sum += t.weight;
    }
    unfixed.push_back(std::move(entry));
  }

  while (!unfixed.empty()) {
    // Find the bottleneck link: minimal fair share per unit weight.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = ~std::size_t{0};
    for (const auto& [idx, state] : links) {
      if (state.weight_sum <= 0) continue;
      const double share = state.residual / state.weight_sum;
      if (share < best_share) {
        best_share = share;
        best_link = idx;
      }
    }
    if (best_link == ~std::size_t{0}) break;

    // Fix every unfixed transfer crossing the bottleneck; release their
    // demand from the other links they span.
    std::vector<Entry> rest;
    rest.reserve(unfixed.size());
    for (Entry& entry : unfixed) {
      const bool on_bottleneck =
          std::any_of(entry.spans.begin(), entry.spans.end(),
                      [&](const DirectedLink& l) {
                        return l.index() == best_link;
                      });
      if (!on_bottleneck) {
        rest.push_back(std::move(entry));
        continue;
      }
      entry.t->rate = best_share * entry.t->weight;
      for (const DirectedLink& link : entry.spans) {
        if (link.index() == best_link) continue;
        auto it = links.find(link.index());
        if (it != links.end()) {
          it->second.residual =
              std::max(0.0, it->second.residual - entry.t->rate);
          it->second.weight_sum -= entry.t->weight;
        }
      }
    }
    links.erase(best_link);
    unfixed.swap(rest);
  }
}

void FlowNetwork::reallocate() {
  progress_to_now();
  compute_max_min_rates();

  // Refresh utilization accounting.
  const Time now = sim_->now();
  std::fill(link_rate_.begin(), link_rate_.end(), 0.0);
  for (auto& [id, t] : transfers_) {
    if (!t.in_flight) continue;
    for (const DirectedLink& link : active_links(t)) {
      link_rate_[link.index()] += t.rate;
    }
  }
  obs::MetricsRegistry* metrics = sim_->metrics();
  if (metrics != nullptr && link_gauges_.empty()) {
    link_gauges_.assign(link_rate_.size(), nullptr);
  }
  for (std::size_t i = 0; i < link_rate_.size(); ++i) {
    const DirectedLink link{static_cast<topo::EdgeId>(i / 2), (i % 2) == 0};
    const Bandwidth cap = link_capacity(link);
    // Max-min filling must never over-subscribe a directed link (small
    // relative slack absorbs progressive-filling rounding).
    HERO_INVARIANT(link_rate_[i] <= cap + 1e-6 * std::max(cap, 1.0),
                   "link {} allocated {} B/s over capacity {} B/s", i,
                   link_rate_[i], cap);
    const double util = cap > 0 ? link_rate_[i] / cap : 0.0;
    link_util_avg_[i].observe(now, util);
    if (metrics != nullptr) {
      // Per-link utilization timeline (the controller's "hardware
      // counters"); a link's gauge appears once it first carries traffic.
      if (link_gauges_[i] == nullptr && util > 0.0) {
        const topo::Edge& e = graph_->edge(link.edge);
        const topo::NodeId from = link.forward ? e.a : e.b;
        const topo::NodeId to = link.forward ? e.b : e.a;
        link_gauges_[i] = &metrics->gauge("link." + graph_->node(from).name +
                                          "->" + graph_->node(to).name);
      }
      if (link_gauges_[i] != nullptr) link_gauges_[i]->set(now, util);
    }
  }

  // Reschedule completion events.
  for (auto& [id, t] : transfers_) {
    if (t.completion_event != sim::kInvalidEvent) {
      sim_->cancel(t.completion_event);
      t.completion_event = sim::kInvalidEvent;
    }
    if (!t.in_flight) continue;
    if (t.hop_left <= kEpsilonBytes) {
      t.completion_event = sim_->schedule_in(
          0.0, [this, tid = t.id] { on_hop_complete(tid); });
    } else if (t.rate > 0) {
      t.completion_event =
          sim_->schedule_in(t.hop_left / t.rate,
                            [this, tid = t.id] { on_hop_complete(tid); });
    }
    // rate == 0 (fully degraded link): transfer stalls until the next
    // reallocation gives it bandwidth.
  }
}

void FlowNetwork::on_hop_complete(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  t.completion_event = sim::kInvalidEvent;

  // Account any residue (event fired exactly at depletion time).
  const Time now = sim_->now();
  const Time dt = now - t.last_update;
  if (dt > 0 && t.in_flight) {
    const Bytes moved = std::min(t.hop_left, t.rate * dt);
    t.hop_left -= moved;
    for (const DirectedLink& link : active_links(t)) {
      link_delivered_[link.index()] += moved;
    }
    t.last_update = now;
  }
  if (t.hop_left > kEpsilonBytes) {
    // Spurious wakeup (the event raced a rate change); make sure a fresh
    // completion event exists for the residue.
    reallocate();
    return;
  }

  t.in_flight = false;
  ++t.hop;
  if (!t.pipelined && t.hop < t.path.edges.size()) {
    begin_hop(t);
    reallocate();
    return;
  }
  // Bytes-in == bytes-out: the final hop (or the single pipelined stream)
  // delivered the whole payload up to floating-point residue.
  HERO_INVARIANT(t.hop_left <= kEpsilonBytes,
                 "transfer {} completed with {} bytes undelivered", id,
                 t.hop_left);
  HERO_INVARIANT(t.pipelined || t.hop == t.path.edges.size(),
                 "transfer {} finished on hop {}/{}", id, t.hop,
                 t.path.edges.size());
  auto cb = std::move(t.on_complete);
  std::string flow_name = graph_->node(t.path.nodes.front()).name + "->" +
                          graph_->node(t.path.nodes.back()).name;
  transfers_.erase(it);
  if (obs::EventTracer* tr = sim_->tracer()) {
    tr->async_end(now, id, "net.flow", std::move(flow_name));
    tr->counter(now, "net.active_transfers",
                static_cast<double>(transfers_.size()));
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("net.completed").add();
    m->gauge("net.active_transfers")
        .set(now, static_cast<double>(transfers_.size()));
  }
  reallocate();
  if (cb) cb(id);
}

double FlowNetwork::utilization(DirectedLink link) const {
  const Bandwidth cap = link_capacity(link);
  return cap > 0 ? link_rate_[link.index()] / cap : 0.0;
}

double FlowNetwork::edge_utilization(topo::EdgeId edge) const {
  return std::max(utilization(DirectedLink{edge, true}),
                  utilization(DirectedLink{edge, false}));
}

double FlowNetwork::average_utilization(DirectedLink link) const {
  return link_util_avg_[link.index()].average();
}

std::vector<Bandwidth> FlowNetwork::residual_bandwidth() const {
  std::vector<Bandwidth> out(graph_->edge_count(), 0.0);
  for (topo::EdgeId e = 0; e < graph_->edge_count(); ++e) {
    const Bandwidth cap = graph_->edge(e).capacity * degradation_[e];
    const double busy = std::max(link_rate_[e * 2], link_rate_[e * 2 + 1]);
    out[e] = std::max(0.0, cap - busy);
  }
  return out;
}

std::vector<Bandwidth> FlowNetwork::fair_share_bandwidth() const {
  std::vector<std::size_t> flows(graph_->edge_count() * 2, 0);
  for (const auto& [id, t] : transfers_) {
    for (DirectedLink link : active_links(t)) ++flows[link.index()];
  }
  std::vector<Bandwidth> out(graph_->edge_count(), 0.0);
  for (topo::EdgeId e = 0; e < graph_->edge_count(); ++e) {
    const Bandwidth cap = graph_->edge(e).capacity * degradation_[e];
    const std::size_t busiest = std::max(flows[e * 2], flows[e * 2 + 1]);
    out[e] = cap / static_cast<double>(busiest + 1);
  }
  return out;
}

Bytes FlowNetwork::delivered_bytes(DirectedLink link) const {
  return link_delivered_[link.index()];
}

void FlowNetwork::debug_dump() const {
  for (const auto& [id, t] : transfers_) {
    log::warn(
        "transfer {}: hop {}/{} in_flight={} hop_left={} rate={} event={}",
        id, t.hop, t.path.edges.size(), t.in_flight, t.hop_left, t.rate,
        t.completion_event);
  }
}

void FlowNetwork::set_link_degradation(topo::EdgeId edge, double factor) {
  if (!(factor > 0.0) || factor > 1.0) {
    throw std::invalid_argument("set_link_degradation: factor in (0,1]");
  }
  degradation_[edge] = factor;
  reallocate();
}

}  // namespace hero::net
