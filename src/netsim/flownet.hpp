// Fluid flow-level network simulation over a topology graph.
//
// A Transfer moves `bytes` along a multi-hop Path with store-and-forward
// semantics: the payload occupies exactly one directed link at a time and
// advances hop by hop (this matches the paper's latency model, Eq. 10, and
// the Fig. 2 arithmetic). While on a link, a transfer is a *flow*; all flows
// on the network share link bandwidth max-min fairly, recomputed whenever a
// flow starts or finishes. Congestion therefore emerges naturally: bursty
// concurrent collectives slow each other down on shared Ethernet links while
// NVLink hops stay essentially free.
//
// The engine is incremental: per-directed-link flow indexes plus a dirty
// set mean a transfer add/remove/degrade re-solves only the bottleneck
// component it touches, not the whole fabric (the max-min solution
// decomposes exactly by connected components of the flow/link occupancy
// graph). Flows only accrue progress and reschedule their completion events
// when their rate actually changes, so an event on one rack costs nothing
// on an idle rack. set_full_solve() forces the classic whole-fabric solve —
// byte-identical output, used by the equivalence gates — and
// set_solve_validation() cross-checks every incremental round against a
// full solve (on by default in HERO_VALIDATE builds).
//
// The network also keeps per-directed-link utilization accounting — the
// simulated equivalent of the switch hardware counters and DCGM NVLink
// counters the paper's agents poll.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "netsim/sim.hpp"
#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace hero::obs {
class Gauge;
class MetricsRegistry;
}  // namespace hero::obs

namespace hero::net {

using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

/// Directed view of an undirected edge: forward = (edge.a -> edge.b).
struct DirectedLink {
  topo::EdgeId edge = topo::kInvalidEdge;
  bool forward = true;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(edge) * 2 + (forward ? 0 : 1);
  }
};

struct TransferOptions {
  /// Invoked at completion of the final hop.
  std::function<void(TransferId)> on_complete;
  /// Optional priority weight for max-min sharing (>= share of bandwidth on
  /// contended links proportional to weight). 1.0 = normal.
  double weight = 1.0;
  /// Pipelined (wormhole) mode: the flow occupies every hop of its path
  /// simultaneously at one end-to-end rate, paying the fixed hop latencies
  /// once up front. Matches RDMA bulk streams (KV-cache transfers); the
  /// default store-and-forward mode matches the paper's aggregation-path
  /// model (Eq. 10).
  bool pipelined = false;
};

/// Answer to "what would this path give a new flow right now?" — one probe
/// against the live link indexes, replacing the per-edge
/// residual_bandwidth()/fair_share_bandwidth() vector scans (each of which
/// cost a full fabric pass per query).
struct PathEstimate {
  /// Spare capacity on the path's tightest directed link. Zero on a
  /// saturated path — the wrong lens for admission (see fair_share).
  Bandwidth residual = std::numeric_limits<Bandwidth>::infinity();
  /// Post-admission rate estimate for one new unit-weight flow: per
  /// directed link max(residual, C/(n+1)) where n counts in-flight flows on
  /// that direction, minimized over the path. On a saturated link a new
  /// flow squeezes the incumbents down to fair share rather than being
  /// starved, so this never collapses to zero on a healthy link.
  Bandwidth fair_share = std::numeric_limits<Bandwidth>::infinity();
  /// Edge whose post-admission estimate is the path minimum.
  topo::EdgeId bottleneck_link = topo::kInvalidEdge;
  /// Sum of the path's fixed hop latencies.
  Time latency = 0.0;
};

/// Engine counters (deterministic: pure functions of the event schedule).
/// `flows_active - flows_solved` is the work the dirty-set machinery avoided
/// versus a whole-fabric solve per round.
struct FlowNetStats {
  std::uint64_t reallocations = 0;  ///< rate-update rounds
  std::uint64_t solves = 0;         ///< component solves executed
  std::uint64_t flows_solved = 0;   ///< flow rates recomputed, summed
  std::uint64_t flows_active = 0;   ///< in-flight flows per round, summed
  std::uint64_t validations = 0;    ///< full-solve cross-checks run
  std::uint64_t mismatches = 0;     ///< cross-check disagreements (want 0)
};

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& simulator, const topo::Graph& graph);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Begin transferring `bytes` along `path`. Completion fires
  /// opts.on_complete. Zero-length paths (src == dst) complete immediately
  /// (scheduled, not inline).
  TransferId start_transfer(const topo::Path& path, Bytes bytes,
                            TransferOptions opts = {});

  /// Abort an in-flight transfer (no completion callback fires).
  void cancel_transfer(TransferId id);

  [[nodiscard]] std::size_t active_transfers() const {
    return slot_of_.size();
  }

  // --- monitoring (the "hardware counters") ---

  /// Instantaneous utilization in [0,1] of a directed link.
  [[nodiscard]] double utilization(DirectedLink link) const;
  /// Higher of the two directions of an edge.
  [[nodiscard]] double edge_utilization(topo::EdgeId edge) const;
  /// Time-averaged utilization of a directed link since construction.
  [[nodiscard]] double average_utilization(DirectedLink link) const;
  /// Probe a path against the live link state: residual, post-admission
  /// fair share, bottleneck edge, fixed latency. O(hops). An empty path
  /// reports infinite bandwidth and no bottleneck.
  [[nodiscard]] PathEstimate estimate_path(const topo::Path& path) const;
  /// Total bytes delivered on a directed link since construction,
  /// including the partial progress of flows currently on it.
  [[nodiscard]] Bytes delivered_bytes(DirectedLink link) const;

  // --- failure injection ---

  /// Scale the usable capacity of an edge (both directions); factor in
  /// (0, 1]. Rates are recomputed immediately.
  void set_link_degradation(topo::EdgeId edge, double factor);
  /// Current degradation factor of an edge (1.0 = healthy).
  [[nodiscard]] double link_degradation(topo::EdgeId edge) const {
    return degradation_.at(edge);
  }

  // --- engine controls ---

  /// Force the classic whole-fabric max-min solve every round. The schedule
  /// is byte-identical to incremental mode (the equivalence suite and the
  /// determinism gate's --full-solve phase depend on exactly that); only
  /// the solver_* counters differ.
  void set_full_solve(bool on) { full_solve_ = on; }
  [[nodiscard]] bool full_solve() const { return full_solve_; }
  /// Cross-check every incremental round against a full solve; mismatches
  /// trip a HERO_INVARIANT and count in stats(). Defaults to on in
  /// HERO_VALIDATE builds.
  void set_solve_validation(bool on) { validate_solves_ = on; }
  [[nodiscard]] const FlowNetStats& stats() const { return stats_; }

  [[nodiscard]] const topo::Graph& graph() const { return *graph_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Log the state of every active transfer (diagnostics).
  void debug_dump() const;

 private:
  struct Transfer {
    TransferId id = kInvalidTransfer;  // kInvalidTransfer marks a free slot
    topo::Path path;
    Bytes bytes = 0;         // per-hop payload size
    std::size_t hop = 0;     // current hop index into path.edges
    Bytes hop_left = 0;      // bytes left on the current hop/stream
    Bandwidth rate = 0;      // current allocated rate (bytes/s)
    double weight = 1.0;
    bool pipelined = false;  // occupies all hops at once when true
    bool in_flight = false;  // false while waiting out hop latency
    Time last_update = 0;
    sim::EventId pending_event = sim::kInvalidEvent;  // activation/completion
    std::function<void(TransferId)> on_complete;
    /// Directed links occupied while in flight: the current hop for
    /// store-and-forward flows, every hop for pipelined ones. Cached at
    /// activation so the hot loops never re-derive directions.
    std::vector<DirectedLink> spans;
  };

  [[nodiscard]] DirectedLink link_at(const Transfer& t,
                                     std::size_t hop) const;
  [[nodiscard]] Bandwidth link_capacity(DirectedLink link) const;
  [[nodiscard]] std::string flow_label(const Transfer& t) const;

  // Pool / index plumbing.
  [[nodiscard]] std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t slot);
  void attach_links(std::uint32_t slot);
  void detach_links(std::uint32_t slot);
  void mark_dirty(std::size_t link_index);

  // Engine phases.
  void begin_hop(std::uint32_t slot);
  void activate(std::uint32_t slot, TransferId id);
  void on_hop_complete(std::uint32_t slot, TransferId id);
  /// Accrue bytes at the current rate through `now`. Called only when the
  /// flow's rate is about to change (or its hop ends): accrual chunk
  /// boundaries are exactly the rate-change points, which is what makes
  /// incremental and full-solve arithmetic bitwise identical.
  void progress_transfer(Transfer& t, Time now);
  void reschedule_completion(std::uint32_t slot);
  /// Re-solve the bottleneck component(s) reachable from the dirty links,
  /// apply rate changes, refresh per-link accounting. The incremental
  /// counterpart of the old progress-everything / solve-everything /
  /// reschedule-everything round.
  void reallocate_dirty();
  void collect_all_in_flight(std::vector<std::uint32_t>& out) const;
  /// Weighted progressive filling over `slots` (must be sorted by transfer
  /// id); writes per-slot rates into `rates`. Pure: mutates no flow state.
  void solve_component(const std::vector<std::uint32_t>& slots,
                       std::vector<Bandwidth>& rates) const;
  void refresh_link(std::size_t index, Time now,
                    obs::MetricsRegistry* metrics);
  void validate_against_full_solve();

  sim::Simulator* sim_;
  const topo::Graph* graph_;
  TransferId next_id_ = 1;

  /// Transfer pool: slots are recycled through free_slots_ so steady-state
  /// transfer churn performs no allocation. slot_of_ is lookup-only (never
  /// iterated — id-ordered walks go through the pool or the link indexes).
  std::vector<Transfer> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<TransferId, std::uint32_t> slot_of_;
  std::size_t in_flight_count_ = 0;

  std::vector<double> degradation_;          // per edge
  std::vector<Bandwidth> link_rate_;         // per directed link, busy rate
  std::vector<TimeWeighted> link_util_avg_;  // per directed link
  std::vector<Bytes> link_delivered_;        // per directed link
  std::vector<obs::Gauge*> link_gauges_;     // lazily bound metric gauges

  /// Per-directed-link in-flight flow index, each kept sorted by transfer
  /// id so every solve and rate sum runs in id order (determinism).
  std::vector<std::vector<std::uint32_t>> link_flows_;

  // Dirty set + epoch-marked BFS scratch (no per-round allocation).
  std::vector<std::size_t> dirty_links_;
  std::vector<std::uint8_t> link_is_dirty_;
  std::vector<std::uint8_t> link_force_refresh_;
  std::vector<std::uint64_t> link_mark_;
  std::vector<std::uint64_t> flow_mark_;
  std::uint64_t mark_epoch_ = 0;
  std::vector<std::size_t> bfs_stack_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::size_t> comp_links_;
  std::vector<Bandwidth> solved_rates_;
  std::vector<std::uint32_t> validate_flows_;
  std::vector<Bandwidth> validate_rates_;

  bool full_solve_ = false;
  bool validate_solves_ = check::enabled();
  FlowNetStats stats_;
};

}  // namespace hero::net
