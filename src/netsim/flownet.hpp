// Fluid flow-level network simulation over a topology graph.
//
// A Transfer moves `bytes` along a multi-hop Path with store-and-forward
// semantics: the payload occupies exactly one directed link at a time and
// advances hop by hop (this matches the paper's latency model, Eq. 10, and
// the Fig. 2 arithmetic). While on a link, a transfer is a *flow*; all flows
// on the network share link bandwidth max-min fairly, recomputed whenever a
// flow starts or finishes. Congestion therefore emerges naturally: bursty
// concurrent collectives slow each other down on shared Ethernet links while
// NVLink hops stay essentially free.
//
// The network also keeps per-directed-link utilization accounting — the
// simulated equivalent of the switch hardware counters and DCGM NVLink
// counters the paper's agents poll.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/stats.hpp"
#include "netsim/sim.hpp"
#include "topology/graph.hpp"
#include "topology/paths.hpp"

namespace hero::obs {
class Gauge;
}  // namespace hero::obs

namespace hero::net {

using TransferId = std::uint64_t;
inline constexpr TransferId kInvalidTransfer = 0;

/// Directed view of an undirected edge: forward = (edge.a -> edge.b).
struct DirectedLink {
  topo::EdgeId edge = topo::kInvalidEdge;
  bool forward = true;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(edge) * 2 + (forward ? 0 : 1);
  }
};

struct TransferOptions {
  /// Invoked at completion of the final hop.
  std::function<void(TransferId)> on_complete;
  /// Optional priority weight for max-min sharing (>= share of bandwidth on
  /// contended links proportional to weight). 1.0 = normal.
  double weight = 1.0;
  /// Pipelined (wormhole) mode: the flow occupies every hop of its path
  /// simultaneously at one end-to-end rate, paying the fixed hop latencies
  /// once up front. Matches RDMA bulk streams (KV-cache transfers); the
  /// default store-and-forward mode matches the paper's aggregation-path
  /// model (Eq. 10).
  bool pipelined = false;
};

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& simulator, const topo::Graph& graph);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Begin transferring `bytes` along `path`. Completion fires
  /// opts.on_complete. Zero-length paths (src == dst) complete immediately
  /// (scheduled, not inline).
  TransferId start_transfer(const topo::Path& path, Bytes bytes,
                            TransferOptions opts = {});

  /// Abort an in-flight transfer (no completion callback fires).
  void cancel_transfer(TransferId id);

  [[nodiscard]] std::size_t active_transfers() const {
    return transfers_.size();
  }

  // --- monitoring (the "hardware counters") ---

  /// Instantaneous utilization in [0,1] of a directed link.
  [[nodiscard]] double utilization(DirectedLink link) const;
  /// Higher of the two directions of an edge.
  [[nodiscard]] double edge_utilization(topo::EdgeId edge) const;
  /// Time-averaged utilization of a directed link since construction.
  [[nodiscard]] double average_utilization(DirectedLink link) const;
  /// Residual bandwidth per edge = C(e) * degradation - busy rate (max over
  /// directions); the planner's `B(e)` vector (size = edge_count).
  [[nodiscard]] std::vector<Bandwidth> residual_bandwidth() const;
  /// Per-edge estimate of the rate a *new* unit-weight flow would get:
  /// C(e) * degradation / (flows on the busier direction + 1). Residual is
  /// the wrong lens for admission under max-min sharing — a saturated link
  /// reads zero forever even though a new flow simply squeezes the others
  /// down to fair share (size = edge_count).
  [[nodiscard]] std::vector<Bandwidth> fair_share_bandwidth() const;
  /// Total bytes delivered on a directed link since construction.
  [[nodiscard]] Bytes delivered_bytes(DirectedLink link) const;

  // --- failure injection ---

  /// Scale the usable capacity of an edge (both directions); factor in
  /// (0, 1]. Rates are recomputed immediately.
  void set_link_degradation(topo::EdgeId edge, double factor);
  /// Current degradation factor of an edge (1.0 = healthy).
  [[nodiscard]] double link_degradation(topo::EdgeId edge) const {
    return degradation_.at(edge);
  }

  [[nodiscard]] const topo::Graph& graph() const { return *graph_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Log the state of every active transfer (diagnostics).
  void debug_dump() const;

 private:
  struct Transfer {
    TransferId id = kInvalidTransfer;
    topo::Path path;
    Bytes bytes = 0;         // per-hop payload size
    std::size_t hop = 0;     // current hop index into path.edges
    Bytes hop_left = 0;      // bytes left on the current hop/stream
    double rate = 0;         // current allocated rate (bytes/s)
    double weight = 1.0;
    bool pipelined = false;  // occupies all hops at once when true
    Time last_update = 0;
    sim::EventId completion_event = sim::kInvalidEvent;
    bool in_flight = false;  // false while waiting out hop latency
    std::function<void(TransferId)> on_complete;
  };

  sim::Simulator* sim_;
  const topo::Graph* graph_;
  TransferId next_id_ = 1;
  /// Ordered by id (= start order) so every rate-update loop, fair-share
  /// tie-break, and debug dump is independent of hash order. The sim is
  /// only reproducible because iteration order here is specified.
  std::map<TransferId, Transfer> transfers_;
  std::vector<double> degradation_;           // per edge
  mutable std::vector<double> link_rate_;     // per directed link, busy rate
  std::vector<TimeWeighted> link_util_avg_;   // per directed link
  std::vector<Bytes> link_delivered_;         // per directed link
  std::vector<obs::Gauge*> link_gauges_;      // lazily bound metric gauges

  /// Directed links the transfer currently occupies: the single current
  /// hop for store-and-forward flows, every hop for pipelined ones.
  [[nodiscard]] std::vector<DirectedLink> active_links(
      const Transfer& t) const;
  [[nodiscard]] Bandwidth link_capacity(DirectedLink link) const;

  /// Progress all in-flight transfers to now, recompute max-min rates,
  /// reschedule completion events, refresh utilization accounting.
  void reallocate();
  void progress_to_now();
  void compute_max_min_rates();
  void on_hop_complete(TransferId id);
  void begin_hop(Transfer& t);
};

}  // namespace hero::net
