#include "netsim/sim.hpp"

#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace hero::sim {

EventId Simulator::schedule(Time at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator: event in the past");
  return queue_.push(at, next_seq_++, std::move(cb));
}

EventId Simulator::schedule_in(Time delay, Callback cb) {
  return schedule(now_ + delay, std::move(cb));
}

void Simulator::cancel(EventId id) {
  // Only events that are actually pending can be cancelled; stale or bogus
  // ids are ignored so pending_events() stays exact.
  if (queue_.cancel(id)) ++cancelled_;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, cb] = queue_.pop();
  // The calendar executes in (time, insertion) order; time running
  // backwards means the heap or an in-callback mutation broke the
  // deterministic ordering contract.
  HERO_INVARIANT(at >= now_, "event at t={} before now={}", at, now_);
  now_ = at;
  ++executed_;
  cb();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.top_time() <= t) {
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace hero::sim
