#include "netsim/sim.hpp"

#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace hero::sim {

EventId Simulator::schedule(Time at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator: event in the past");
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(cb)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_in(Time delay, Callback cb) {
  return schedule(now_ + delay, std::move(cb));
}

void Simulator::cancel(EventId id) {
  // Only events that are actually pending can be cancelled; stale or bogus
  // ids are ignored so pending_events() stays exact.
  if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    // The calendar executes in (time, insertion) order; time running
    // backwards means the comparator or an in-callback mutation broke the
    // deterministic ordering contract.
    HERO_INVARIANT(ev.at >= now_, "event {} at t={} before now={}", ev.id,
                   ev.at, now_);
    now_ = ev.at;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

std::size_t Simulator::pending_events() const {
  return pending_ids_.size();
}

}  // namespace hero::sim
