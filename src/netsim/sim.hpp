// Discrete-event simulation core.
//
// A single-threaded event calendar: callbacks scheduled at absolute times,
// executed in (time, insertion) order. Everything in HeroServe that "takes
// time" — flow completions, compute kernels, controller sync periods,
// request arrivals — is an event on one Simulator instance, which makes runs
// fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "obs/sink.hpp"

namespace hero::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (>= now). Returns a handle usable
  /// with cancel().
  EventId schedule(Time at, Callback cb);
  /// Schedule `cb` after `delay` seconds.
  EventId schedule_in(Time delay, Callback cb);
  /// Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Execute the next event. Returns false when the calendar is empty.
  bool step();
  /// Run until the calendar drains.
  void run();
  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // --- observability ---
  //
  // Everything simulated hangs off one Simulator, so the simulator is where
  // the observability sink attaches. The default Sink is the null object
  // ("tracing off"); instrumented subsystems test tracer()/metrics() before
  // recording, which keeps the disabled path free of work.
  void attach(obs::Sink sink) { sink_ = sink; }
  [[nodiscard]] const obs::Sink& sink() const { return sink_; }
  [[nodiscard]] obs::EventTracer* tracer() const { return sink_.tracer(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const {
    return sink_.metrics();
  }

 private:
  struct Event {
    Time at = 0.0;
    EventId id = kInvalidEvent;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  Time now_ = 0.0;
  obs::Sink sink_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hero::sim
