// Discrete-event simulation core.
//
// A single-threaded event calendar: callbacks scheduled at absolute times,
// executed in (time, insertion) order. Everything in HeroServe that "takes
// time" — flow completions, compute kernels, controller sync periods,
// request arrivals — is an event on one Simulator instance, which makes runs
// fully deterministic for a given seed.
//
// The calendar is an indexed pooled heap (see event_queue.hpp): cancel()
// is a true O(log n) removal instead of a tombstone, and slots are
// recycled, so the cancel/reschedule storms the flow network generates on
// every rate change cost neither allocation nor dead-event churn.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "netsim/event_queue.hpp"
#include "obs/sink.hpp"

namespace hero::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (>= now). Returns a handle usable
  /// with cancel().
  EventId schedule(Time at, Callback cb);
  /// Schedule `cb` after `delay` seconds.
  EventId schedule_in(Time delay, Callback cb);
  /// Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Execute the next event. Returns false when the calendar is empty.
  bool step();
  /// Run until the calendar drains.
  void run();
  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Lifetime schedule() calls (fired + cancelled + still pending).
  [[nodiscard]] std::uint64_t scheduled_events() const { return next_seq_ - 1; }
  /// Lifetime successful cancel() calls.
  [[nodiscard]] std::uint64_t cancelled_events() const { return cancelled_; }

  // --- observability ---
  //
  // Everything simulated hangs off one Simulator, so the simulator is where
  // the observability sink attaches. The default Sink is the null object
  // ("tracing off"); instrumented subsystems test tracer()/metrics() before
  // recording, which keeps the disabled path free of work.
  void attach(obs::Sink sink) { sink_ = sink; }
  [[nodiscard]] const obs::Sink& sink() const { return sink_; }
  [[nodiscard]] obs::EventTracer* tracer() const { return sink_.tracer(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() const {
    return sink_.metrics();
  }

 private:
  Time now_ = 0.0;
  obs::Sink sink_;
  std::uint64_t next_seq_ = 1;  ///< FIFO tie-break among same-time events
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  EventQueue queue_;
};

}  // namespace hero::sim
