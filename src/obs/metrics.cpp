#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hero::obs {

void Gauge::set(Time now, double value) {
  tw_.observe(now, value);
  if (timeline_.empty() || timeline_.back().value != value) {
    timeline_.push_back(GaugePoint{now, value});
  }
}

TimeHistogram::TimeHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      time_in_(buckets, 0.0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("TimeHistogram: need hi > lo, buckets > 0");
  }
}

std::size_t TimeHistogram::bucket_of(double value) const {
  const double pos = (value - lo_) / width_;
  if (pos <= 0) return 0;
  const auto b = static_cast<std::size_t>(pos);
  return std::min(b, time_in_.size() - 1);
}

void TimeHistogram::observe(Time now, double value) {
  if (started_ && now > last_time_) {
    const Time dt = now - last_time_;
    time_in_[bucket_of(last_value_)] += dt;
    total_ += dt;
  }
  started_ = true;
  last_time_ = now;
  last_value_ = value;
}

Time TimeHistogram::time_in(std::size_t bucket) const {
  return time_in_.at(bucket);
}

double TimeHistogram::fraction(std::size_t bucket) const {
  return total_ > 0 ? time_in_.at(bucket) / total_ : 0.0;
}

double TimeHistogram::bucket_lo(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double TimeHistogram::bucket_hi(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

TimeHistogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                          double hi, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             TimeHistogram(lo, hi, buckets))
             .first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const TimeHistogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsRegistry::snapshot(Time now) const {
  MetricsSnapshot snap;
  snap.time = now;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(MetricsSnapshot::GaugeRow{
        name, g.current(), g.average(), g.peak()});
  }
  return snap;
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "snapshot t=%.9g\n", time);
  out += buf;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const GaugeRow& g : gauges) {
    std::snprintf(buf, sizeof(buf),
                  "gauge %s cur=%.9g avg=%.9g peak=%.9g\n", g.name.c_str(),
                  g.current, g.average, g.peak);
    out += buf;
  }
  return out;
}

}  // namespace hero::obs
