// Metrics registry for the simulated serving stack.
//
// Named counters (monotonic totals: collectives, fallbacks, transfers),
// gauges (piecewise-constant signals with time-weighted averaging and a
// change-point timeline: link utilization, queue depths, KV occupancy), and
// time-weighted histograms (fraction of simulated time a signal spent in
// each value bucket). Backends snapshot the registry at any sim time; two
// identical seeded runs produce byte-identical snapshots.
//
// Like the tracer, the registry is reached through
// sim::Simulator::metrics() and is null unless attached, so the disabled
// path costs one pointer test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace hero::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// One change-point of a gauge's timeline.
struct GaugePoint {
  Time time = 0.0;
  double value = 0.0;
};

/// Piecewise-constant signal: current value, time-weighted average/peak,
/// and the full change-point timeline (repeated equal values collapse).
class Gauge {
 public:
  void set(Time now, double value);

  [[nodiscard]] double current() const { return tw_.current(); }
  [[nodiscard]] double average() const { return tw_.average(); }
  [[nodiscard]] double peak() const { return tw_.peak(); }
  [[nodiscard]] const std::vector<GaugePoint>& timeline() const {
    return timeline_;
  }

 private:
  TimeWeighted tw_;
  std::vector<GaugePoint> timeline_;
};

/// Time-weighted histogram over [lo, hi): how long the observed signal sat
/// in each bucket (out-of-range clamps to the end buckets).
class TimeHistogram {
 public:
  TimeHistogram(double lo, double hi, std::size_t buckets);

  /// The signal takes `value` from `now` onwards (and held its previous
  /// value up to `now`).
  void observe(Time now, double value);

  [[nodiscard]] std::size_t bucket_count() const { return time_in_.size(); }
  [[nodiscard]] Time time_in(std::size_t bucket) const;
  /// Fraction of total observed time spent in `bucket`.
  [[nodiscard]] double fraction(std::size_t bucket) const;
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;
  [[nodiscard]] Time total_time() const { return total_; }

 private:
  double lo_, width_;
  std::vector<Time> time_in_;
  Time total_ = 0.0;
  bool started_ = false;
  Time last_time_ = 0.0;
  double last_value_ = 0.0;

  [[nodiscard]] std::size_t bucket_of(double value) const;
};

/// One registry snapshot: every metric, sorted by name (deterministic).
struct MetricsSnapshot {
  Time time = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  struct GaugeRow {
    std::string name;
    double current = 0.0;
    double average = 0.0;
    double peak = 0.0;
  };
  std::vector<GaugeRow> gauges;

  /// Stable textual rendering (tests compare runs through this).
  [[nodiscard]] std::string to_string() const;
};

class MetricsRegistry {
 public:
  /// Find-or-create. Names are stable identifiers like "coll.ops" or
  /// "serve.kv_util"; creation order does not affect snapshots.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimeHistogram& histogram(std::string_view name, double lo, double hi,
                           std::size_t buckets);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const TimeHistogram* find_histogram(
      std::string_view name) const;

  [[nodiscard]] MetricsSnapshot snapshot(Time now) const;
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, TimeHistogram, std::less<>> histograms_;
};

}  // namespace hero::obs
