// Value-semantic observability handle.
//
// A Sink bundles the (tracer, metrics) pair that used to be threaded
// through the stack as two raw null-default pointers. It is a null object
// by default — "tracing off" — and cheap to copy, so subsystems take and
// store a Sink by value instead of a pointer pair. Instrumented code still
// pays only one pointer test on the disabled path:
//
//   if (obs::EventTracer* tr = sink.tracer()) { ... }
//
// The Sink does not own the tracer/registry; the experiment driver keeps
// them alive for the duration of the run, as before.
#pragma once

namespace hero::obs {

class EventTracer;
class MetricsRegistry;

class Sink {
 public:
  /// Null sink: observability off.
  Sink() = default;
  /// Either pointer may be null to enable only one backend.
  Sink(EventTracer* tracer, MetricsRegistry* metrics)
      : tracer_(tracer), metrics_(metrics) {}

  [[nodiscard]] EventTracer* tracer() const { return tracer_; }
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }

  /// True when any backend is attached.
  [[nodiscard]] bool enabled() const {
    return tracer_ != nullptr || metrics_ != nullptr;
  }
  explicit operator bool() const { return enabled(); }

 private:
  EventTracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace hero::obs
