#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace hero::obs {
namespace {

std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON string escaping for names/categories/arg values.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}

TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}

TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), render_double(value), true};
}

TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}

TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false", true};
}

TrackId EventTracer::track(std::string_view name) {
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return static_cast<TrackId>(i + 1);
  }
  track_names_.emplace_back(name);
  return static_cast<TrackId>(track_names_.size());
}

void EventTracer::push(TraceEvent ev) {
  if (open_depth_.size() <= ev.track) open_depth_.resize(ev.track + 1, 0);
  events_.push_back(std::move(ev));
}

void EventTracer::begin_span(Time now, TrackId track, std::string category,
                             std::string name, TraceArgs args) {
  push(TraceEvent{Phase::kSpanBegin, now, track, 0, std::move(category),
                  std::move(name), std::move(args)});
  ++open_depth_[track];
}

void EventTracer::end_span(Time now, TrackId track, TraceArgs args) {
  push(TraceEvent{Phase::kSpanEnd, now, track, 0, {}, {}, std::move(args)});
  if (open_depth_[track] > 0) --open_depth_[track];
}

void EventTracer::async_begin(Time now, std::uint64_t id,
                              std::string category, std::string name,
                              TraceArgs args) {
  push(TraceEvent{Phase::kAsyncBegin, now, 0, id, std::move(category),
                  std::move(name), std::move(args)});
}

void EventTracer::async_end(Time now, std::uint64_t id, std::string category,
                            std::string name, TraceArgs args) {
  push(TraceEvent{Phase::kAsyncEnd, now, 0, id, std::move(category),
                  std::move(name), std::move(args)});
}

void EventTracer::instant(Time now, TrackId track, std::string category,
                          std::string name, TraceArgs args) {
  push(TraceEvent{Phase::kInstant, now, track, 0, std::move(category),
                  std::move(name), std::move(args)});
}

void EventTracer::counter(Time now, std::string name, double value) {
  TraceArgs args;
  args.push_back(arg("value", value));
  push(TraceEvent{Phase::kCounter, now, 0, 0, "counter", std::move(name),
                  std::move(args)});
}

std::uint64_t EventTracer::count(std::string_view category,
                                 Phase phase) const {
  std::uint64_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.phase == phase && ev.category == category) ++n;
  }
  return n;
}

std::size_t EventTracer::open_spans(TrackId track) const {
  return track < open_depth_.size() ? open_depth_[track] : 0;
}

void EventTracer::write_chrome_trace(std::ostream& out) const {
  out << chrome_trace_json();
}

std::string EventTracer::chrome_trace_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += body;
  };

  // Track (thread) name metadata so the viewer shows labeled rows.
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    std::string row = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    row += std::to_string(i + 1);
    row += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(row, track_names_[i]);
    row += "}}";
    emit(row);
  }

  char ts[64];
  for (const TraceEvent& ev : events_) {
    std::string row = "{\"ph\":\"";
    row += static_cast<char>(ev.phase);
    row += "\",\"pid\":1,\"tid\":";
    row += std::to_string(ev.track);
    // Chrome timestamps are microseconds; keep sub-us precision.
    std::snprintf(ts, sizeof(ts), "%.3f", ev.time * 1e6);
    row += ",\"ts\":";
    row += ts;
    if (!ev.category.empty()) {
      row += ",\"cat\":";
      append_json_string(row, ev.category);
    }
    if (!ev.name.empty()) {
      row += ",\"name\":";
      append_json_string(row, ev.name);
    }
    if (ev.phase == Phase::kAsyncBegin || ev.phase == Phase::kAsyncEnd) {
      row += ",\"id\":";
      row += std::to_string(ev.id);
    }
    if (ev.phase == Phase::kInstant) row += ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      row += ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) row += ',';
        append_json_string(row, ev.args[i].key);
        row += ':';
        if (ev.args[i].numeric) {
          row += ev.args[i].value;
        } else {
          append_json_string(row, ev.args[i].value);
        }
      }
      row += '}';
    }
    row += '}';
    emit(row);
  }
  out += "\n]}\n";
  return out;
}

bool EventTracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    log::warn("EventTracer: cannot open {} for writing", path);
    return false;
  }
  f << chrome_trace_json();
  return static_cast<bool>(f);
}

void EventTracer::clear() {
  events_.clear();
  open_depth_.assign(open_depth_.size(), 0);
}

}  // namespace hero::obs
