// Event tracing for the simulated serving stack.
//
// The EventTracer records typed events against simulated time — nested
// spans on named tracks (request lifecycle, prefill stages, decode
// iterations), async spans correlated by id (network flows, collectives,
// KV transfers), instants (scheduler decisions, controller ticks, INA
// fallbacks), and counter samples — and exports them as Chrome
// `trace_event` JSON loadable in chrome://tracing or Perfetto.
//
// Tracing is opt-in and zero-cost when off: subsystems reach the tracer
// through sim::Simulator::tracer(), which is null unless a tracer was
// attached, so the disabled path is a single pointer test.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace hero::obs {

/// One key=value annotation on an event. Values are pre-rendered: numbers
/// stay numbers in the JSON, everything else becomes a quoted string.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

using TraceArgs = std::vector<TraceArg>;

[[nodiscard]] TraceArg arg(std::string key, std::string value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, double value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg arg(std::string key, bool value);
#if defined(HERO_STRONG_UNITS)
/// Unit-typed annotations render exactly like their raw double twin.
template <int T, int D, int K, int W>
[[nodiscard]] TraceArg arg(std::string key, Quantity<T, D, K, W> value) {
  return arg(std::move(key), value.value());
}
#endif

/// Chrome trace-event phases (the subset this tracer emits).
enum class Phase : char {
  kSpanBegin = 'B',   ///< nested span start on a track
  kSpanEnd = 'E',     ///< nested span end on a track
  kAsyncBegin = 'b',  ///< async span start, correlated by (category, id)
  kAsyncEnd = 'e',    ///< async span end
  kInstant = 'i',     ///< point event
  kCounter = 'C',     ///< sampled counter value
};

using TrackId = std::uint32_t;

struct TraceEvent {
  Phase phase = Phase::kInstant;
  Time time = 0.0;          ///< simulated seconds
  TrackId track = 0;        ///< Chrome tid
  std::uint64_t id = 0;     ///< async correlation id (async phases only)
  std::string category;
  std::string name;
  TraceArgs args;
};

class EventTracer {
 public:
  /// Find-or-create a named track (a `tid` row in the viewer). Track 0 is
  /// the unnamed default.
  TrackId track(std::string_view name);

  // --- recording ---
  void begin_span(Time now, TrackId track, std::string category,
                  std::string name, TraceArgs args = {});
  void end_span(Time now, TrackId track, TraceArgs args = {});
  void async_begin(Time now, std::uint64_t id, std::string category,
                   std::string name, TraceArgs args = {});
  void async_end(Time now, std::uint64_t id, std::string category,
                 std::string name, TraceArgs args = {});
  void instant(Time now, TrackId track, std::string category,
               std::string name, TraceArgs args = {});
  void counter(Time now, std::string name, double value);

  /// Fresh correlation id for async spans (monotonic, never 0).
  [[nodiscard]] std::uint64_t next_async_id() { return next_async_id_++; }

  // --- inspection ---
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  /// Number of recorded events with the given category and phase — the
  /// cross-check hook (e.g. completed collectives = count("collective",
  /// Phase::kAsyncEnd)).
  [[nodiscard]] std::uint64_t count(std::string_view category,
                                    Phase phase) const;
  /// Spans currently open on a track (begin without matching end).
  [[nodiscard]] std::size_t open_spans(TrackId track) const;
  [[nodiscard]] std::size_t track_count() const {
    return track_names_.size() + 1;
  }

  // --- export ---
  /// Serialize everything as Chrome trace-event JSON ({"traceEvents": [...]},
  /// timestamps in microseconds, track names as thread_name metadata).
  void write_chrome_trace(std::ostream& out) const;
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Write to a file; returns false (and logs) on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> track_names_;  ///< track id i+1 -> name
  std::vector<std::size_t> open_depth_;   ///< per track, begin/end balance
  std::uint64_t next_async_id_ = 1;

  void push(TraceEvent ev);
};

}  // namespace hero::obs
