#include "online/policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "common/check.hpp"

namespace hero::online {

Bandwidth Policy::bottleneck_capacity(const topo::Graph& g) const {
  Bandwidth min_bw = std::numeric_limits<Bandwidth>::infinity();
  for (topo::EdgeId e : edges) min_bw = std::min(min_bw, g.edge(e).capacity);
  return edges.empty() ? 0.0 : min_bw;
}

std::vector<topo::EdgeId> plan_edges(const coll::AllReducePlan& plan,
                                     const topo::Graph& g) {
  // Sorted + deduplicated: the edge order feeds floating-point
  // accumulations in update_penalties(), so it must not depend on hash
  // order (summation is not associative).
  std::vector<topo::EdgeId> edges;
  auto add_path = [&](const topo::Path& p) {
    edges.insert(edges.end(), p.edges.begin(), p.edges.end());
  };
  for (const topo::Path& p : plan.ring_paths) add_path(p);
  for (const topo::Path& p : plan.up_paths) add_path(p);
  for (const topo::Path& p : plan.down_paths) add_path(p);
  for (const auto& group : plan.local_groups) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      add_path(coll::direct_nvlink_path(g, group[0], group[i]));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

PolicyTable::PolicyTable(std::vector<Policy> policies,
                         const topo::Graph& graph)
    : graph_(&graph), policies_(std::move(policies)) {
  if (policies_.empty()) {
    throw std::invalid_argument("PolicyTable: no policies");
  }
  // Penalties start at the static sharing ratios computed from capacities.
  penalty_.assign(policies_.size(), std::vector<double>(policies_.size(), 0));
  update_penalties(nullptr, OnlineConfig{});
}

double PolicyTable::cost_of(std::size_t i, Bytes data,
                            const OnlineConfig& cfg) const {
  const Policy& p = policies_.at(i);
  double delta = 0.0;
  if (data > 0) {
    switch (cfg.delta_model) {
      case DeltaModel::kBottleneckCapacity: {
        const Bandwidth bw = p.bottleneck_capacity(*graph_);
        delta = bw > 0 ? data / (cfg.estimation_window * bw) : 0.0;
        break;
      }
      case DeltaModel::kPaperLiteral: {
        const double b = std::max(p.cost, cfg.cost_floor);
        delta = raw(data) / (raw(cfg.estimation_window) * b);
        break;
      }
    }
  }
  return p.cost + delta;
}

std::size_t PolicyTable::select(Bytes data, const OnlineConfig& cfg) const {
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const double j = cost_of(i, data, cfg);
    if (j < best_cost) {
      best_cost = j;
      best = i;
    }
  }
  return best;
}

void PolicyTable::apply_selection(std::size_t selected, Bytes data,
                                  const OnlineConfig& cfg) {
  if (selected >= policies_.size()) {
    throw std::out_of_range("apply_selection: policy index");
  }
  Policy& sel = policies_[selected];
  ++sel.times_selected;
  if (data <= 0) return;

  double delta = 0.0;
  switch (cfg.delta_model) {
    case DeltaModel::kBottleneckCapacity: {
      const Bandwidth bw = sel.bottleneck_capacity(*graph_);
      delta = bw > 0 ? data / (cfg.estimation_window * bw) : 0.0;
      break;
    }
    case DeltaModel::kPaperLiteral: {
      const double b = std::max(sel.cost, cfg.cost_floor);
      delta = raw(data) / (raw(cfg.estimation_window) * b);
      break;
    }
  }
  HERO_INVARIANT(delta >= 0.0 && std::isfinite(delta),
                 "Eq. 16 delta {} for policy {}", delta, sel.name);
  for (std::size_t c = 0; c < policies_.size(); ++c) {
    if (c == selected) {
      policies_[c].cost += delta;
    } else {
      policies_[c].cost += delta * penalty_[selected][c];
    }
    // The cost table only ever accumulates non-negative bumps on top of
    // measured utilization; a negative or non-finite entry means the
    // Eq. 17 bookkeeping (or a penalty weight) is corrupt.
    HERO_INVARIANT(policies_[c].cost >= 0.0 && std::isfinite(policies_[c].cost),
                   "cost table corrupt: b[{}] = {}", c, policies_[c].cost);
  }
}

void PolicyTable::update_penalties(const net::FlowNetwork* net,
                                   const OnlineConfig& cfg) {
  // Weight of an edge inside the sharing ratio: the monitored busy
  // bandwidth when measurements exist (B(e*) "monitored by GPUs and
  // programmable switches"), otherwise static capacity.
  auto edge_weight = [&](topo::EdgeId e) -> Bandwidth {
    const Bandwidth cap = graph_->edge(e).capacity;
    if (net != nullptr) {
      // Busy bandwidth, floored so idle shared links still register.
      return std::max(net->edge_utilization(e), 0.05) * cap;
    }
    return cap;
  };

  for (std::size_t sel = 0; sel < policies_.size(); ++sel) {
    std::unordered_set<topo::EdgeId> sel_edges(policies_[sel].edges.begin(),
                                               policies_[sel].edges.end());
    for (std::size_t other = 0; other < policies_.size(); ++other) {
      if (other == sel) {
        penalty_[sel][other] = 1.0;
        continue;
      }
      Bandwidth shared = 0.0;
      Bandwidth total = 0.0;
      for (topo::EdgeId e : policies_[other].edges) {
        const Bandwidth w = edge_weight(e);
        total += w;
        if (sel_edges.contains(e)) shared += w;
      }
      const double ratio = total > 0 ? shared / total : 0.0;
      penalty_[sel][other] =
          (1.0 - cfg.gamma) * penalty_[sel][other] + cfg.gamma * ratio;
      // Eq. 18 sharing ratios are convex combinations of values in [0,1].
      HERO_INVARIANT(penalty_[sel][other] >= 0.0 &&
                         penalty_[sel][other] <= 1.0 + 1e-12,
                     "penalty f[{}][{}] = {}", sel, other,
                     penalty_[sel][other]);
    }
  }
}

void PolicyTable::sync_costs_from_network(const net::FlowNetwork& net) {
  for (Policy& p : policies_) {
    double max_util = 0.0;
    for (topo::EdgeId e : p.edges) {
      max_util = std::max(max_util, net.edge_utilization(e));
    }
    p.cost = max_util;
  }
}

}  // namespace hero::online
