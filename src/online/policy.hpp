// Transmission policies and the per-group policy cost table (paper SIII-D,
// Fig. 5).
//
// A policy c bundles "the transmission scheme (INA or ring), the next hop,
// the transmission path and etc." for one tensor-parallel GPU group. The
// table keeps, per policy, the virtual bandwidth-utilization cost b_c, and a
// penalty matrix f_{(c*,c)} capturing how much load on a selected policy
// bleeds onto the others through shared links (Eq. 17-18).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collectives/engine.hpp"
#include "netsim/flownet.hpp"
#include "topology/graph.hpp"

namespace hero::online {

/// How Eq. 16's delta (the estimated additional utilization of assigning D
/// bytes to a policy) is computed. The paper prints delta = D/(T_u * b_c);
/// dividing by the *cost* is dimensionally odd and explodes as b_c -> 0, so
/// the default divides by the policy's bottleneck capacity instead. Both are
/// implemented; bench_online_ablation compares them.
enum class DeltaModel : std::uint8_t { kBottleneckCapacity, kPaperLiteral };

struct OnlineConfig {
  Time estimation_window = 100.0 * units::ms;  ///< T_u
  double gamma = 0.3;                          ///< Eq. 18 smoothing factor
  Time sync_period = 50.0 * units::ms;  ///< controller counter-poll period
  DeltaModel delta_model = DeltaModel::kBottleneckCapacity;
  double cost_floor = 1e-3;  ///< epsilon floor for the literal Eq. 16
  /// Control-plane propagation delay for table updates (0 = instantaneous;
  /// > 0 models a slow controller, used in failure-injection tests).
  Time controller_delay = 0.0;
  /// Surcharge added to an INA policy's cost while its aggregation switch
  /// has an exhausted slot pool (only with attach_switches; b_c lives in
  /// [0, 1], so 1.0 decisively loses Eq. 16 to any healthy policy).
  double ina_unavailable_penalty = 1.0;
  /// Cap on the controller's exponential sync-retry backoff
  /// (sync_period * 2^k, k <= this) while the sync channel is down.
  std::uint32_t max_sync_backoff = 4;
};

struct Policy {
  std::string name;
  /// Fully resolved plan with bytes = 0; the scheduler stamps the payload
  /// size per collective call.
  coll::AllReducePlan plan;
  /// Every edge the policy touches (wide paths + NVLink-local edges);
  /// deduplicated. Drives the sharing ratio W and cost measurement.
  std::vector<topo::EdgeId> edges;
  /// b_c: virtual bandwidth utilization ratio of the policy's links.
  double cost = 0.0;
  std::uint64_t times_selected = 0;

  /// Bottleneck capacity over `edges` (bytes/s).
  [[nodiscard]] Bandwidth bottleneck_capacity(const topo::Graph& g) const;
};

/// Collect the deduplicated edge set of a resolved plan.
[[nodiscard]] std::vector<topo::EdgeId> plan_edges(
    const coll::AllReducePlan& plan, const topo::Graph& g);

class PolicyTable {
 public:
  PolicyTable(std::vector<Policy> policies, const topo::Graph& graph);

  [[nodiscard]] std::size_t size() const { return policies_.size(); }
  [[nodiscard]] const Policy& policy(std::size_t i) const {
    return policies_.at(i);
  }
  [[nodiscard]] Policy& policy(std::size_t i) { return policies_.at(i); }

  /// Eq. 16: argmin_c J(c, D) with J = b_c + delta(c, D).
  [[nodiscard]] std::size_t select(Bytes data, const OnlineConfig& cfg) const;

  /// The J value select() minimizes (exposed for tests/ablation).
  [[nodiscard]] double cost_of(std::size_t i, Bytes data,
                               const OnlineConfig& cfg) const;

  /// Eq. 17: bump the selected policy by delta and every other policy by
  /// delta * f_{(c*, c)}.
  void apply_selection(std::size_t selected, Bytes data,
                       const OnlineConfig& cfg);

  /// Eq. 18: refresh the penalty matrix from the sharing ratios
  /// W_{(c*,c)} = sum_{e in c* ∩ c} B(e) / sum_{e in c} B(e), where B(e) is
  /// the monitored utilization-weighted bandwidth of edge e (capacity when
  /// no network measurements are available).
  void update_penalties(const net::FlowNetwork* net, const OnlineConfig& cfg);

  /// Controller recalibration: set each b_c to the measured maximum link
  /// utilization over the policy's edges.
  void sync_costs_from_network(const net::FlowNetwork& net);

  [[nodiscard]] double penalty(std::size_t selected, std::size_t other) const {
    return penalty_.at(selected).at(other);
  }

 private:
  const topo::Graph* graph_;
  std::vector<Policy> policies_;
  std::vector<std::vector<double>> penalty_;  // f_{(c*, c)}
};

}  // namespace hero::online
