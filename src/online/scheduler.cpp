#include "online/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/format.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::online {
namespace {

topo::PathOptions hetero_opts(bool heterogeneous) {
  topo::PathOptions opts;
  opts.constraints.allow_nvlink = heterogeneous;
  return opts;
}

/// Wide-phase participants of a would-be plan: group leaders when
/// hierarchical, all members otherwise.
std::vector<topo::NodeId> wide_participants(
    const topo::Graph& g, const std::vector<topo::NodeId>& members,
    bool hierarchical) {
  if (!hierarchical) return members;
  std::vector<topo::NodeId> leaders;
  std::vector<std::int32_t> seen;
  for (topo::NodeId m : members) {
    const std::int32_t server = g.node(m).gpu.server;
    if (std::find(seen.begin(), seen.end(), server) == seen.end()) {
      seen.push_back(server);
      leaders.push_back(m);
    }
  }
  return leaders;
}

}  // namespace

std::vector<Policy> build_policies(const topo::Graph& graph,
                                   const std::vector<topo::NodeId>& members,
                                   const PolicyBuildOptions& opts) {
  if (members.empty()) {
    throw std::invalid_argument("build_policies: empty group");
  }
  const coll::Router route = coll::shortest_path_router(
      graph, hetero_opts(opts.heterogeneous).constraints);
  const std::vector<topo::NodeId> wide =
      wide_participants(graph, members, opts.heterogeneous);

  std::vector<Policy> policies;
  auto add = [&](std::string name, coll::AllReducePlan plan) {
    Policy p;
    p.name = std::move(name);
    p.edges = plan_edges(plan, graph);
    p.plan = std::move(plan);
    policies.push_back(std::move(p));
  };

  if (opts.include_ina) {
    const auto switches = coll::rank_aggregation_switches(
        graph, wide, hetero_opts(opts.heterogeneous).constraints,
        opts.switch_candidates);
    for (topo::NodeId sw : switches) {
      coll::AllReducePlan plan =
          opts.heterogeneous
              ? coll::make_hierarchical_plan(graph, members, 0.0,
                                             opts.ina_scheme, route, sw,
                                             opts.fallback, opts.slots)
              : coll::make_ina_plan(members, 0.0, sw, opts.ina_scheme, route,
                                    opts.fallback, opts.slots);
      add(strfmt("{}ina@{}", opts.heterogeneous ? "hier-" : "",
                 graph.node(sw).name),
          std::move(plan));
    }
  }
  if (opts.include_ring || policies.empty()) {
    coll::AllReducePlan plan =
        opts.heterogeneous
            ? coll::make_hierarchical_plan(graph, members, 0.0,
                                           coll::Scheme::kRing, route)
            : coll::make_ring_plan(members, 0.0, route);
    add(opts.heterogeneous ? "hier-ring" : "ring", std::move(plan));
  }
  return policies;
}

OnlineScheduler::OnlineScheduler(net::FlowNetwork& network,
                                 OnlineConfig config)
    : network_(&network), config_(config) {}

GroupId OnlineScheduler::register_group(std::string name,
                                        std::vector<Policy> policies) {
  for (const Policy& p : policies) {
    // Policy/link bookkeeping: every policy must carry its deduplicated,
    // deterministically ordered edge set (plan_edges() contract) — the
    // Eq. 18 sharing ratios are summed in this order.
    HERO_REQUIRE(std::is_sorted(p.edges.begin(), p.edges.end()) &&
                     std::adjacent_find(p.edges.begin(), p.edges.end()) ==
                         p.edges.end(),
                 "policy {} edge set not sorted/unique", p.name);
  }
  names_.push_back(std::move(name));
  tables_.push_back(std::make_unique<PolicyTable>(std::move(policies),
                                                  network_->graph()));
  return tables_.size() - 1;
}

void OnlineScheduler::start() {
  if (started_) return;
  started_ = true;
  controller_tick();
}

void OnlineScheduler::run_sync() {
  // "It periodically polls hardware counters from the data plane to obtain
  //  link utilization metrics. These statistics are then used to update the
  //  cost parameters in the online scheduling process." (SIV)
  for (GroupId g = 0; g < tables_.size(); ++g) {
    tables_[g]->sync_costs_from_network(*network_);
    tables_[g]->update_penalties(network_, config_);
    if (switches_ != nullptr) apply_switch_health(g);
  }
}

void OnlineScheduler::apply_switch_health(GroupId group) {
  // Slot-pool feedback: an INA policy whose switch cannot admit another job
  // (pool full, or jobs already queued behind it) is surcharged so Eq. 16
  // steers traffic to ring until the pool frees up — the scheduler-level
  // INA -> ring fallback, distinct from the engine's per-op ATP fallback.
  PolicyTable& table = *tables_.at(group);
  if (ina_avoided_.size() <= group) ina_avoided_.resize(group + 1);
  std::vector<bool>& avoided = ina_avoided_[group];
  avoided.resize(table.size(), false);
  sim::Simulator& s = network_->simulator();
  for (std::size_t i = 0; i < table.size(); ++i) {
    Policy& p = table.policy(i);
    if (p.plan.switch_node == topo::kInvalidNode) continue;
    const sw::SwitchAgent& agent = switches_->agent(p.plan.switch_node);
    const bool starved = agent.slots_in_use() >= agent.slots_total() ||
                         agent.queue_depth() > 0;
    if (starved) p.cost += config_.ina_unavailable_penalty;
    if (starved != avoided[i]) {
      avoided[i] = starved;
      if (obs::EventTracer* tr = s.tracer()) {
        tr->instant(s.now(), tr->track("scheduler"), "scheduler",
                    starved ? "ina_avoid" : "ina_resume",
                    {obs::arg("group", names_.at(group)),
                     obs::arg("policy", p.name),
                     obs::arg("switch",
                              network_->graph().node(p.plan.switch_node).name),
                     obs::arg("slots_in_use",
                              static_cast<std::uint64_t>(agent.slots_in_use())),
                     obs::arg("queued",
                              static_cast<std::uint64_t>(agent.queue_depth()))});
      }
      if (obs::MetricsRegistry* m = s.metrics()) {
        m->counter(starved ? "online.ina_avoided" : "online.ina_resumed")
            .add(1);
      }
    }
  }
}

void OnlineScheduler::controller_tick() {
  sim::Simulator& s = network_->simulator();
  if (sync_dropped_) {
    // Sync channel down: the poll times out, tables stay stale, and the
    // controller retries with exponential backoff instead of hammering a
    // dead channel at the nominal period.
    ++missed_syncs_;
    sync_backoff_ = std::min(sync_backoff_ + 1, config_.max_sync_backoff);
    const Time retry_in =
        config_.sync_period * static_cast<double>(1u << sync_backoff_);
    if (obs::EventTracer* tr = s.tracer()) {
      tr->instant(s.now(), tr->track("controller"), "controller",
                  "sync_lost",
                  {obs::arg("missed", missed_syncs_),
                   obs::arg("backoff", static_cast<std::uint64_t>(sync_backoff_)),
                   obs::arg("retry_in", retry_in)});
    }
    if (obs::MetricsRegistry* m = s.metrics()) {
      m->counter("online.sync_lost").add(1);
    }
    s.schedule_in(retry_in, [this] { controller_tick(); });
    return;
  }
  if (sync_backoff_ > 0) {
    sync_backoff_ = 0;
    if (obs::EventTracer* tr = s.tracer()) {
      tr->instant(s.now(), tr->track("controller"), "controller",
                  "sync_restored", {obs::arg("missed", missed_syncs_)});
    }
    if (obs::MetricsRegistry* m = s.metrics()) {
      m->counter("online.sync_restored").add(1);
    }
  }
  if (sync_extra_delay_ > 0) {
    // Slow counter propagation: the poll completes but the recalibrated
    // tables land late; selections meanwhile use the stale costs.
    s.schedule_in(sync_extra_delay_, [this] { run_sync(); });
  } else {
    run_sync();
  }
  ++controller_ticks_;
  if (obs::EventTracer* tr = s.tracer()) {
    tr->instant(s.now(), tr->track("controller"), "controller", "tick",
                {obs::arg("tick", controller_ticks_),
                 obs::arg("groups", tables_.size())});
  }
  if (obs::MetricsRegistry* m = s.metrics()) {
    m->counter("online.controller_ticks").add(1);
  }
  s.schedule_in(config_.sync_period, [this] { controller_tick(); });
}

coll::AllReducePlan OnlineScheduler::plan_all_reduce(GroupId group,
                                                     Bytes bytes) {
  HERO_REQUIRE(bytes >= 0, "plan_all_reduce: negative payload {}", bytes);
  PolicyTable& table = *tables_.at(group);
  const std::size_t choice = table.select(bytes, config_);
  HERO_INVARIANT(choice < table.size(), "policy choice {} of {}", choice,
                 table.size());
  sim::Simulator& s = network_->simulator();
  if (obs::EventTracer* tr = s.tracer()) {
    // One instant per scheduling decision: which policy Eq. 16 picked, its
    // J = b_c + delta score, and whether the Eq. 17 bump is applied now or
    // still propagating through a slow controller.
    tr->instant(s.now(), tr->track("scheduler"), "policy_decision",
                table.policy(choice).name,
                {obs::arg("group", names_.at(group)),
                 obs::arg("policy_id", static_cast<std::uint64_t>(choice)),
                 obs::arg("cost_j", table.cost_of(choice, bytes, config_)),
                 obs::arg("cost_b", table.policy(choice).cost),
                 obs::arg("bytes", static_cast<std::uint64_t>(raw(bytes))),
                 obs::arg("penalty_deferred", config_.controller_delay > 0)});
  }
  if (obs::MetricsRegistry* m = s.metrics()) {
    m->counter(strfmt("online.selected.{}", table.policy(choice).name))
        .add(1);
  }
  if (config_.controller_delay > 0) {
    // Table updates propagate through the controller with a delay.
    s.schedule_in(config_.controller_delay, [this, group, choice, bytes] {
      tables_.at(group)->apply_selection(choice, bytes, config_);
    });
  } else {
    table.apply_selection(choice, bytes, config_);
  }
  coll::AllReducePlan plan = table.policy(choice).plan;
  plan.bytes = bytes;
  return plan;
}

const PolicyTable& OnlineScheduler::table(GroupId group) const {
  return *tables_.at(group);
}

void OnlineScheduler::apply_cost_override(GroupId group, std::size_t policy,
                                          double cost) {
  HERO_REQUIRE(cost >= 0.0 && std::isfinite(cost),
               "apply_cost_override: bad cost {}", cost);
  PolicyTable& table = *tables_.at(group);
  table.policy(policy).cost = cost;
  sim::Simulator& s = network_->simulator();
  if (obs::EventTracer* tr = s.tracer()) {
    tr->instant(s.now(), tr->track("controller"), "controller",
                "cost_override",
                {obs::arg("group", names_.at(group)),
                 obs::arg("policy", table.policy(policy).name),
                 obs::arg("cost", cost)});
  }
}

void OnlineScheduler::recompute_penalties() {
  for (auto& table : tables_) {
    table->update_penalties(network_, config_);
  }
}

void OnlineScheduler::attach_switches(sw::SwitchRegistry* switches) {
  switches_ = switches;
}

void OnlineScheduler::set_sync_disruption(Time extra_delay, bool drop_sync) {
  HERO_REQUIRE(extra_delay >= 0.0, "set_sync_disruption: negative delay {}",
               extra_delay);
  sync_extra_delay_ = extra_delay;
  sync_dropped_ = drop_sync;
}

HeroCommScheduler::HeroCommScheduler(net::FlowNetwork& network,
                                     OnlineConfig config,
                                     PolicyBuildOptions build)
    : network_(&network), build_(build), online_(network, config) {}

GroupId HeroCommScheduler::register_group(
    std::vector<topo::NodeId> members) {
  std::vector<Policy> policies =
      build_policies(network_->graph(), members, build_);
  return online_.register_group(
      group_prefix_ + strfmt("group{}", online_.group_count()),
      std::move(policies));
}

coll::AllReducePlan HeroCommScheduler::all_reduce_plan(GroupId group,
                                                       Bytes bytes) {
  return online_.plan_all_reduce(group, bytes);
}

topo::Path HeroCommScheduler::unicast_path(topo::NodeId src,
                                           topo::NodeId dst) {
  // Load-aware route choice among edge-diverse alternates: pick the one
  // whose bottleneck residual bandwidth is largest right now. Each probe is
  // one O(hops) estimate_path() walk over the live link indexes — and
  // direction-aware, so a link loaded only in the opposite direction no
  // longer penalizes a route (the old per-edge residual vector took the
  // busier direction of every edge).
  auto alts = topo::alternate_paths(network_->graph(), src, dst, 3,
                                    hetero_opts(build_.heterogeneous));
  if (alts.empty()) {
    throw std::runtime_error("HeroCommScheduler: no unicast route");
  }
  const topo::Path* best = &alts.front();
  Bandwidth best_bw = 0.0;
  for (const topo::Path& p : alts) {
    const Bandwidth bw = network_->estimate_path(p).residual;
    if (bw > best_bw) {
      best_bw = bw;
      best = &p;
    }
  }
  return *best;
}

}  // namespace hero::online
