// Load-aware online scheduler (paper SIII-D) and HeroServe's CommScheduler.
//
// Per registered GPU group the scheduler holds a PolicyTable. On every
// collective call it selects the cheapest policy (Eq. 16), applies the
// Eq. 17 cost propagation (optionally after a controller propagation
// delay), and returns the executable plan. A periodic controller task —
// the simulated central HeroServe controller polling switch hardware
// counters and DCGM — recalibrates policy costs from measured link
// utilization and refreshes the Eq. 18 penalty matrix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collectives/comm_scheduler.hpp"
#include "online/policy.hpp"

namespace hero::online {

using GroupId = coll::GroupId;

/// Options controlling what candidate policies a group's table is populated
/// with.
struct PolicyBuildOptions {
  bool heterogeneous = true;  ///< NVLink paths + hierarchical plans
  bool include_ring = true;
  bool include_ina = true;
  std::size_t switch_candidates = 2;  ///< INA switches considered per group
  coll::Scheme ina_scheme = coll::Scheme::kInaSync;
  topo::NodeId fallback = topo::kInvalidNode;  ///< PS host for async INA
  std::uint32_t slots = 8;
};

/// Build the candidate policy set for one GPU group on `graph`.
[[nodiscard]] std::vector<Policy> build_policies(
    const topo::Graph& graph, const std::vector<topo::NodeId>& members,
    const PolicyBuildOptions& opts);

class OnlineScheduler {
 public:
  OnlineScheduler(net::FlowNetwork& network, OnlineConfig config = {});

  /// Register a group with an explicit policy set.
  GroupId register_group(std::string name, std::vector<Policy> policies);

  /// Begin the periodic controller sync loop (idempotent).
  void start();

  /// Select (Eq. 16) + update costs (Eq. 17) + return the resolved plan.
  [[nodiscard]] coll::AllReducePlan plan_all_reduce(GroupId group,
                                                    Bytes bytes);

  /// Read-only view of a group's policy cost table. Mutation goes through
  /// the named methods below so observers (tests, the obs layer, demos)
  /// cannot silently corrupt the Eq. 17 cost state.
  [[nodiscard]] const PolicyTable& table(GroupId group) const;
  [[nodiscard]] std::size_t group_count() const { return tables_.size(); }
  [[nodiscard]] const OnlineConfig& config() const { return config_; }
  [[nodiscard]] const std::string& group_name(GroupId group) const {
    return names_.at(group);
  }

  /// Overwrite one policy's measured cost b_c, as if the controller had
  /// calibrated it to `cost`. The supported way for tests and the fault
  /// injector to skew the Eq. 16 selection out of band; the next controller
  /// tick re-syncs from network measurements as usual.
  void apply_cost_override(GroupId group, std::size_t policy, double cost);

  /// Re-run the Eq. 18 penalty refresh for every group immediately (the
  /// fault injector calls this when link state changes between controller
  /// ticks; a tick would do the same work at the next sync period).
  void recompute_penalties();

  /// Opt into switch slot-pool health feedback: on every controller tick an
  /// INA policy whose aggregation switch has no free slots (or a backed-up
  /// admission queue) is surcharged `OnlineConfig::ina_unavailable_penalty`
  /// on top of its measured cost, steering Eq. 16 toward ring until the
  /// pool recovers. Null detaches. Off by default so clean runs are
  /// byte-identical with pre-chaos behaviour.
  void attach_switches(sw::SwitchRegistry* switches);

  /// Fault injection on the controller sync channel itself. `extra_delay`
  /// postpones each tick's table recalibration (slow counter propagation);
  /// `drop_sync` makes ticks fail entirely — the scheduler then retries
  /// with exponential backoff (sync_period * 2^k, capped) until the channel
  /// recovers, serving from stale costs meanwhile.
  void set_sync_disruption(Time extra_delay, bool drop_sync);

  [[nodiscard]] std::uint64_t controller_ticks() const {
    return controller_ticks_;
  }
  /// Ticks that failed while the sync channel was down.
  [[nodiscard]] std::uint64_t missed_syncs() const { return missed_syncs_; }

 private:
  net::FlowNetwork* network_;
  OnlineConfig config_;
  sw::SwitchRegistry* switches_ = nullptr;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<PolicyTable>> tables_;
  /// Per (group, policy): whether the switch-health surcharge applied at
  /// the last tick (drives the avoid/resume transition instants).
  std::vector<std::vector<bool>> ina_avoided_;
  bool started_ = false;
  std::uint64_t controller_ticks_ = 0;
  std::uint64_t missed_syncs_ = 0;
  std::uint32_t sync_backoff_ = 0;
  Time sync_extra_delay_ = 0.0;
  bool sync_dropped_ = false;

  void controller_tick();
  void run_sync();
  void apply_switch_health(GroupId group);
};

/// HeroServe's CommScheduler: hierarchical/heterogeneous policies driven by
/// the online scheduler; load-aware alternate routing for unicast.
class HeroCommScheduler final : public coll::CommScheduler {
 public:
  HeroCommScheduler(net::FlowNetwork& network, OnlineConfig config = {},
                    PolicyBuildOptions build = {});

  GroupId register_group(std::vector<topo::NodeId> members) override;
  coll::AllReducePlan all_reduce_plan(GroupId group, Bytes bytes) override;
  topo::Path unicast_path(topo::NodeId src, topo::NodeId dst) override;
  void start() override { online_.start(); }
  [[nodiscard]] const char* name() const override { return "HeroServe"; }

  [[nodiscard]] OnlineScheduler& online() { return online_; }

  /// Prefix applied to subsequently registered group names ("i3." gives
  /// "i3.group7"). The fleet experiment sets this per instance so one
  /// shared scheduler keeps per-instance policy tables tellable apart in
  /// traces and metrics.
  void set_group_prefix(std::string prefix) {
    group_prefix_ = std::move(prefix);
  }

 private:
  net::FlowNetwork* network_;
  PolicyBuildOptions build_;
  std::string group_prefix_;
  OnlineScheduler online_;
};

}  // namespace hero::online
