// Load-aware online scheduler (paper SIII-D) and HeroServe's CommScheduler.
//
// Per registered GPU group the scheduler holds a PolicyTable. On every
// collective call it selects the cheapest policy (Eq. 16), applies the
// Eq. 17 cost propagation (optionally after a controller propagation
// delay), and returns the executable plan. A periodic controller task —
// the simulated central HeroServe controller polling switch hardware
// counters and DCGM — recalibrates policy costs from measured link
// utilization and refreshes the Eq. 18 penalty matrix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collectives/comm_scheduler.hpp"
#include "online/policy.hpp"

namespace hero::online {

using GroupId = coll::GroupId;

/// Options controlling what candidate policies a group's table is populated
/// with.
struct PolicyBuildOptions {
  bool heterogeneous = true;  ///< NVLink paths + hierarchical plans
  bool include_ring = true;
  bool include_ina = true;
  std::size_t switch_candidates = 2;  ///< INA switches considered per group
  coll::Scheme ina_scheme = coll::Scheme::kInaSync;
  topo::NodeId fallback = topo::kInvalidNode;  ///< PS host for async INA
  std::uint32_t slots = 8;
};

/// Build the candidate policy set for one GPU group on `graph`.
[[nodiscard]] std::vector<Policy> build_policies(
    const topo::Graph& graph, const std::vector<topo::NodeId>& members,
    const PolicyBuildOptions& opts);

class OnlineScheduler {
 public:
  OnlineScheduler(net::FlowNetwork& network, OnlineConfig config = {});

  /// Register a group with an explicit policy set.
  GroupId register_group(std::string name, std::vector<Policy> policies);

  /// Begin the periodic controller sync loop (idempotent).
  void start();

  /// Select (Eq. 16) + update costs (Eq. 17) + return the resolved plan.
  [[nodiscard]] coll::AllReducePlan plan_all_reduce(GroupId group,
                                                    Bytes bytes);

  /// Read-only view of a group's policy cost table. Mutation goes through
  /// the named methods below so observers (tests, the obs layer, demos)
  /// cannot silently corrupt the Eq. 17 cost state.
  [[nodiscard]] const PolicyTable& table(GroupId group) const;
  [[nodiscard]] std::size_t group_count() const { return tables_.size(); }
  [[nodiscard]] const OnlineConfig& config() const { return config_; }
  [[nodiscard]] const std::string& group_name(GroupId group) const {
    return names_.at(group);
  }

  /// Test/experiment hook: overwrite one policy's measured cost b_c, as if
  /// the controller had calibrated it to `cost`. The next controller tick
  /// re-syncs from network measurements as usual.
  void seed_cost_for_test(GroupId group, std::size_t policy, double cost);

 private:
  net::FlowNetwork* network_;
  OnlineConfig config_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<PolicyTable>> tables_;
  bool started_ = false;
  std::uint64_t controller_ticks_ = 0;

  void controller_tick();
};

/// HeroServe's CommScheduler: hierarchical/heterogeneous policies driven by
/// the online scheduler; load-aware alternate routing for unicast.
class HeroCommScheduler final : public coll::CommScheduler {
 public:
  HeroCommScheduler(net::FlowNetwork& network, OnlineConfig config = {},
                    PolicyBuildOptions build = {});

  GroupId register_group(std::vector<topo::NodeId> members) override;
  coll::AllReducePlan all_reduce_plan(GroupId group, Bytes bytes) override;
  topo::Path unicast_path(topo::NodeId src, topo::NodeId dst) override;
  void start() override { online_.start(); }
  [[nodiscard]] const char* name() const override { return "HeroServe"; }

  [[nodiscard]] OnlineScheduler& online() { return online_; }

 private:
  net::FlowNetwork* network_;
  PolicyBuildOptions build_;
  OnlineScheduler online_;
};

}  // namespace hero::online
