#include "planner/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/format.hpp"

namespace hero::planner {

namespace {

/// Distinct hardware classes among GPUs still in the free pool
/// (memory_free > 0), ascending by GpuModel enum value — the deterministic
/// iteration order of the per-class planning loop.
std::vector<topo::GpuModel> free_pool_classes(const topo::Graph& graph) {
  std::vector<topo::GpuModel> classes;
  for (topo::NodeId g : graph.gpus()) {
    const topo::GpuInfo& gpu = graph.node(g).gpu;
    if (gpu.memory_free <= 0.0) continue;
    if (std::find(classes.begin(), classes.end(), gpu.model) ==
        classes.end()) {
      classes.push_back(gpu.model);
    }
  }
  std::sort(classes.begin(), classes.end());
  return classes;
}

/// Strict "plan a beats plan b" ordering for the per-class tournament.
/// Equal scores keep the incumbent, so the earliest enum class wins ties.
bool beats(const PlanResult& a, const PlanResult& b) {
  if (!a.feasible) return false;
  if (!b.feasible) return true;
  if (a.throughput_h > b.throughput_h) return true;
  if (b.throughput_h > a.throughput_h) return false;
  return a.service_rate > b.service_rate;
}

}  // namespace

PlanResult plan_replica(const PlannerInputs& inputs,
                        bool uniform_hardware_pools) {
  const std::vector<topo::GpuModel> classes =
      free_pool_classes(*inputs.graph);
  if (!uniform_hardware_pools || classes.size() <= 1) {
    // Homogeneous pool (or masking disabled): plan directly, so existing
    // single-class fleets stay byte-identical to the plain OfflinePlanner.
    OfflinePlanner planner(inputs);
    return planner.plan();
  }

  // Per-class tournament: mask every other class out of a scratch copy so
  // the replica lands on uniform silicon, then keep the best plan.
  PlanResult best;
  best.infeasible_reason = "empty free pool";
  for (topo::GpuModel cls : classes) {
    topo::Graph masked = *inputs.graph;
    for (topo::NodeId g : masked.gpus()) {
      if (masked.node(g).gpu.model != cls) {
        masked.node(g).gpu.memory_free = 0.0;
      }
    }
    PlannerInputs class_inputs = inputs;
    class_inputs.graph = &masked;
    OfflinePlanner planner(class_inputs);
    PlanResult result = planner.plan();
    if (beats(result, best)) best = std::move(result);
  }
  if (best.feasible) return best;

  // No single class can fit the replica — span classes rather than fail.
  OfflinePlanner mixed(inputs);
  PlanResult result = mixed.plan();
  if (!result.feasible) {
    result.infeasible_reason = strfmt("no uniform-hardware pool fits ({})",
                                      result.infeasible_reason);
  }
  return result;
}

void claim_plan(topo::Graph& scratch, const PlanResult& plan) {
  for (topo::NodeId g : plan.prefill.all_gpus()) {
    scratch.node(g).gpu.memory_free = 0.0;
  }
  for (topo::NodeId g : plan.decode.all_gpus()) {
    scratch.node(g).gpu.memory_free = 0.0;
  }
}

void release_plan(topo::Graph& scratch, const topo::Graph& pristine,
                  const PlanResult& plan) {
  for (topo::NodeId g : plan.prefill.all_gpus()) {
    scratch.node(g).gpu.memory_free = pristine.node(g).gpu.memory_free;
  }
  for (topo::NodeId g : plan.decode.all_gpus()) {
    scratch.node(g).gpu.memory_free = pristine.node(g).gpu.memory_free;
  }
}

FleetPlanner::FleetPlanner(FleetPlannerInputs inputs)
    : in_(std::move(inputs)) {
  if (in_.base.graph == nullptr || in_.base.latency == nullptr) {
    throw std::invalid_argument("FleetPlanner: graph/latency required");
  }
  if (in_.instances == 0) {
    throw std::invalid_argument("FleetPlanner: instances must be >= 1");
  }
  if (!(in_.fleet_arrival_rate > 0.0)) {
    throw std::invalid_argument(
        "FleetPlanner: fleet_arrival_rate must be > 0 (the fleet-wide "
        "rate is explicit; base.arrival_rate is ignored)");
  }
}

FleetPlan FleetPlanner::plan() {
  FleetPlan fleet;
  // Scratch copy: claimed GPUs are marked by zeroing memory_free, which
  // fails every m_req eligibility test in candidate generation and pool
  // splitting. Node ids are shared with the caller's graph, so the
  // returned plans deploy directly onto it.
  topo::Graph scratch = *in_.base.graph;

  std::size_t last_pre_gpus = 0;
  std::size_t last_dec_gpus = 0;
  for (std::size_t i = 0; i < in_.instances; ++i) {
    PlannerInputs inputs = in_.base;
    inputs.graph = &scratch;
    // The one and only fleet-to-instance rate division; the plan echoes
    // its share back in planned_arrival_rate.
    inputs.arrival_rate =
        in_.fleet_arrival_rate / static_cast<double>(in_.instances);
    inputs.seed = in_.base.seed + i;
    if (in_.balance_stage_rates && i > 0) {
      // Steer spare GPUs toward the lagging stage: the stage whose
      // aggregate service rate is ahead may not grow past its
      // predecessor's footprint.
      if (fleet.service_rate_prefill > fleet.service_rate_decode) {
        inputs.max_prefill_gpus = last_pre_gpus;
      } else if (fleet.service_rate_decode > fleet.service_rate_prefill) {
        inputs.max_decode_gpus = last_dec_gpus;
      }
    }

    PlanResult result = plan_replica(inputs, in_.uniform_hardware_pools);
    if (!result.feasible &&
        (inputs.max_prefill_gpus != 0 || inputs.max_decode_gpus != 0)) {
      // The balance cap can over-constrain a shrunken pool; the replica
      // itself matters more than the ratio, so retry unconstrained.
      inputs.max_prefill_gpus = 0;
      inputs.max_decode_gpus = 0;
      result = plan_replica(inputs, in_.uniform_hardware_pools);
    }
    if (!result.feasible) {
      fleet.infeasible_reason = strfmt(
          "instance {}: {}", i, result.infeasible_reason);
      break;
    }

    last_pre_gpus = result.prefill.parallel.gpus();
    last_dec_gpus = result.decode.parallel.gpus();
    claim_plan(scratch, result);
    fleet.gpus_used += last_pre_gpus + last_dec_gpus;
    fleet.service_rate += result.service_rate;
    fleet.service_rate_prefill += result.service_rate_prefill;
    fleet.service_rate_decode += result.service_rate_decode;
    fleet.instances.push_back(std::move(result));
  }

  fleet.feasible = fleet.instances.size() == in_.instances;
  if (fleet.feasible) fleet.infeasible_reason.clear();
  return fleet;
}

}  // namespace hero::planner
