#include "planner/fleet.hpp"

#include <stdexcept>

#include "common/format.hpp"

namespace hero::planner {

FleetPlanner::FleetPlanner(FleetPlannerInputs inputs)
    : in_(std::move(inputs)) {
  if (in_.base.graph == nullptr || in_.base.latency == nullptr) {
    throw std::invalid_argument("FleetPlanner: graph/latency required");
  }
  if (in_.instances == 0) {
    throw std::invalid_argument("FleetPlanner: instances must be >= 1");
  }
}

FleetPlan FleetPlanner::plan() {
  FleetPlan fleet;
  // Scratch copy: claimed GPUs are marked by zeroing memory_free, which
  // fails every m_req eligibility test in candidate generation and pool
  // splitting. Node ids are shared with the caller's graph, so the
  // returned plans deploy directly onto it.
  topo::Graph scratch = *in_.base.graph;

  std::size_t last_pre_gpus = 0;
  std::size_t last_dec_gpus = 0;
  for (std::size_t i = 0; i < in_.instances; ++i) {
    PlannerInputs inputs = in_.base;
    inputs.graph = &scratch;
    inputs.arrival_rate =
        in_.base.arrival_rate / static_cast<double>(in_.instances);
    inputs.seed = in_.base.seed + i;
    if (in_.balance_stage_rates && i > 0) {
      // Steer spare GPUs toward the lagging stage: the stage whose
      // aggregate service rate is ahead may not grow past its
      // predecessor's footprint.
      if (fleet.service_rate_prefill > fleet.service_rate_decode) {
        inputs.max_prefill_gpus = last_pre_gpus;
      } else if (fleet.service_rate_decode > fleet.service_rate_prefill) {
        inputs.max_decode_gpus = last_dec_gpus;
      }
    }

    OfflinePlanner planner(inputs);
    PlanResult result = planner.plan();
    if (!result.feasible &&
        (inputs.max_prefill_gpus != 0 || inputs.max_decode_gpus != 0)) {
      // The balance cap can over-constrain a shrunken pool; the replica
      // itself matters more than the ratio, so retry unconstrained.
      inputs.max_prefill_gpus = 0;
      inputs.max_decode_gpus = 0;
      OfflinePlanner retry(inputs);
      result = retry.plan();
    }
    if (!result.feasible) {
      fleet.infeasible_reason = strfmt(
          "instance {}: {}", i, result.infeasible_reason);
      break;
    }

    last_pre_gpus = result.prefill.parallel.gpus();
    last_dec_gpus = result.decode.parallel.gpus();
    for (topo::NodeId g : result.prefill.all_gpus()) {
      scratch.node(g).gpu.memory_free = 0.0;
    }
    for (topo::NodeId g : result.decode.all_gpus()) {
      scratch.node(g).gpu.memory_free = 0.0;
    }
    fleet.gpus_used += last_pre_gpus + last_dec_gpus;
    fleet.service_rate += result.service_rate;
    fleet.service_rate_prefill += result.service_rate_prefill;
    fleet.service_rate_decode += result.service_rate_decode;
    fleet.instances.push_back(std::move(result));
  }

  fleet.feasible = fleet.instances.size() == in_.instances;
  if (fleet.feasible) fleet.infeasible_reason.clear();
  return fleet;
}

}  // namespace hero::planner
