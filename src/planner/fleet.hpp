// Fleet planner: packs N replicated (prefill, decode) instances onto one
// cluster by running the offline planner repeatedly over the remaining
// GPU pool.
//
// Each round plans one instance against the GPUs no earlier instance
// claimed (claimed GPUs have their free memory zeroed in a scratch copy of
// the graph, which excludes them from every m_req eligibility test). The
// fleet-wide arrival rate is an EXPLICIT input — the planner divides it by
// the instance count exactly once and each PlanResult reports the
// per-instance rate it was sized for (planned_arrival_rate), so callers
// can't double-divide.
//
// Heterogeneous pools (HexGen-2 / Taming-the-Chaos style): when the free
// pool mixes GPU hardware classes (A100/V100/L40...), each replica is
// planned per class on a masked view of the pool and the best
// single-class plan wins — every replica gets the stage shape its silicon
// supports instead of cloning one plan. A replica only spans classes when
// no single class can fit it.
//
// Stage-rate balancing: instance plans expose their prefill/decode service
// rates; when the fleet-aggregate rates drift apart, the next instance's
// overprovisioned stage is capped at its predecessor's GPU budget so spare
// GPUs flow to the lagging stage. The loop is fully deterministic — same
// inputs, same fleet.
#pragma once

#include "planner/planner.hpp"

namespace hero::planner {

struct FleetPlannerInputs {
  /// Template for every instance. `base.arrival_rate` is ignored — the
  /// fleet rate is explicit below. `graph` is the shared cluster (never
  /// mutated — planning works on a scratch copy). Per-instance seeds
  /// derive from `base.seed + instance`.
  PlannerInputs base;
  std::size_t instances = 1;
  /// FLEET-wide arrival rate (req/s); required > 0. Each instance is
  /// planned for fleet_arrival_rate / instances and reports that share in
  /// PlanResult::planned_arrival_rate.
  Rate fleet_arrival_rate = 0.0;
  /// Cap the overprovisioned stage of later instances (see file comment).
  bool balance_stage_rates = true;
  /// Plan each replica per GPU hardware class and keep the best
  /// single-class plan (see file comment); off = plan over the mixed pool.
  bool uniform_hardware_pools = true;
};

struct FleetPlan {
  bool feasible = false;  ///< all requested instances packed
  std::string infeasible_reason;
  std::vector<PlanResult> instances;  ///< packed instances, in plan order
  std::size_t gpus_used = 0;
  // Fleet-aggregate service rates (sums over instances).
  Rate service_rate = 0.0;
  Rate service_rate_prefill = 0.0;
  Rate service_rate_decode = 0.0;
};

class FleetPlanner {
 public:
  explicit FleetPlanner(FleetPlannerInputs inputs);

  /// Pack up to `instances` replicas; stops early when the pool runs dry.
  [[nodiscard]] FleetPlan plan();

 private:
  FleetPlannerInputs in_;
};

/// Plan ONE replica on `inputs.graph` (a scratch graph whose claimed GPUs
/// have memory_free == 0). With `uniform_hardware_pools`, plans per
/// hardware class on masked copies and returns the best single-class plan
/// (by throughput H, then service rate; ties keep the earliest GpuModel
/// enum value), falling back to the mixed pool when no class fits alone.
/// Single-class pools skip the masking entirely, so homogeneous clusters
/// plan byte-identically to OfflinePlanner. The autoscaler uses this
/// directly to size scale-up replicas against its spare pool.
[[nodiscard]] PlanResult plan_replica(const PlannerInputs& inputs,
                                      bool uniform_hardware_pools);

/// Mark a replica's GPUs as claimed on `scratch` (memory_free = 0), which
/// fails every m_req eligibility test in later planning rounds.
void claim_plan(topo::Graph& scratch, const PlanResult& plan);

/// Return a replica's GPUs to the free pool: restore each claimed GPU's
/// memory_free from the pristine (never-claimed) copy of the graph.
void release_plan(topo::Graph& scratch, const topo::Graph& pristine,
                  const PlanResult& plan);

}  // namespace hero::planner
