// Fleet planner: packs N replicated (prefill, decode) instances onto one
// cluster by running the offline planner repeatedly over the remaining
// GPU pool.
//
// Each round plans one instance against the GPUs no earlier instance
// claimed (claimed GPUs have their free memory zeroed in a scratch copy of
// the graph, which excludes them from every m_req eligibility test). The
// per-instance arrival rate is the fleet rate divided by the instance
// count, so each instance is sized for its fair share of the load.
//
// Stage-rate balancing (Taming-the-Chaos style): instance plans expose
// their prefill/decode service rates; when the fleet-aggregate rates
// drift apart, the next instance's overprovisioned stage is capped at its
// predecessor's GPU budget so spare GPUs flow to the lagging stage. The
// loop is fully deterministic — same inputs, same fleet.
#pragma once

#include "planner/planner.hpp"

namespace hero::planner {

struct FleetPlannerInputs {
  /// Template for every instance. `arrival_rate` is the FLEET-wide rate;
  /// `graph` is the shared cluster (never mutated — planning works on a
  /// scratch copy). Per-instance seeds derive from `base.seed + instance`.
  PlannerInputs base;
  std::size_t instances = 1;
  /// Cap the overprovisioned stage of later instances (see file comment).
  bool balance_stage_rates = true;
};

struct FleetPlan {
  bool feasible = false;  ///< all requested instances packed
  std::string infeasible_reason;
  std::vector<PlanResult> instances;  ///< packed instances, in plan order
  std::size_t gpus_used = 0;
  // Fleet-aggregate service rates (sums over instances).
  Rate service_rate = 0.0;
  Rate service_rate_prefill = 0.0;
  Rate service_rate_decode = 0.0;
};

class FleetPlanner {
 public:
  explicit FleetPlanner(FleetPlannerInputs inputs);

  /// Pack up to `instances` replicas; stops early when the pool runs dry.
  [[nodiscard]] FleetPlan plan();

 private:
  FleetPlannerInputs in_;
};

}  // namespace hero::planner
