#include "planner/grouping.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hero::planner {

LatencyMatrix::LatencyMatrix(std::vector<topo::NodeId> gpus,
                             std::vector<Time> data)
    : gpus_(std::move(gpus)), data_(std::move(data)) {
  if (data_.size() != gpus_.size() * gpus_.size()) {
    throw std::invalid_argument("LatencyMatrix: shape mismatch");
  }
}

namespace {

/// Squared distance between GPU i's latency row and a centroid row.
double row_distance(const LatencyMatrix& m, std::size_t i,
                    const std::vector<double>& centroid) {
  double d = 0.0;
  for (std::size_t j = 0; j < m.size(); ++j) {
    const double diff = raw(m.at(i, j)) - centroid[j];
    d += diff * diff;
  }
  return d;
}

}  // namespace

std::vector<std::vector<std::size_t>> constrained_kmeans(
    const LatencyMatrix& matrix, std::size_t groups, std::size_t group_size,
    Rng& rng, std::size_t iterations) {
  const std::size_t n = matrix.size();
  if (groups == 0 || group_size == 0 || groups * group_size > n) {
    throw std::invalid_argument("constrained_kmeans: infeasible shape");
  }

  // k-means++ style seeding on latency rows.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(groups);
  {
    std::size_t first = rng.uniform_int(n);
    std::vector<double> row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = raw(matrix.at(first, j));
    centroids.push_back(row);
    while (centroids.size() < groups) {
      std::vector<double> weights(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& c : centroids) {
          best = std::min(best, row_distance(matrix, i, c));
        }
        weights[i] = best;
      }
      const std::size_t pick = rng.weighted_index(weights);
      for (std::size_t j = 0; j < n; ++j) row[j] = raw(matrix.at(pick, j));
      centroids.push_back(row);
    }
  }

  std::vector<std::vector<std::size_t>> assignment;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    // Greedy capacity-constrained assignment: all (gpu, centroid) pairs by
    // ascending distance; fill groups up to group_size.
    struct Pair {
      double dist = 0.0;
      std::size_t gpu = 0;
      std::size_t group = 0;
    };
    std::vector<Pair> pairs;
    pairs.reserve(n * groups);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < groups; ++c) {
        pairs.push_back({row_distance(matrix, i, centroids[c]), i, c});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.dist < b.dist; });

    assignment.assign(groups, {});
    std::vector<bool> taken(n, false);
    std::size_t assigned = 0;
    for (const Pair& p : pairs) {
      if (assigned == groups * group_size) break;
      if (taken[p.gpu] || assignment[p.group].size() >= group_size) continue;
      taken[p.gpu] = true;
      assignment[p.group].push_back(p.gpu);
      ++assigned;
    }

    // Recompute centroids.
    bool moved = false;
    for (std::size_t c = 0; c < groups; ++c) {
      if (assignment[c].empty()) continue;
      std::vector<double> mean(n, 0.0);
      for (std::size_t i : assignment[c]) {
        for (std::size_t j = 0; j < n; ++j) mean[j] += raw(matrix.at(i, j));
      }
      for (double& v : mean) v /= static_cast<double>(assignment[c].size());
      if (mean != centroids[c]) {
        centroids[c] = std::move(mean);
        moved = true;
      }
    }
    if (!moved) break;
  }
  for (auto& group : assignment) std::sort(group.begin(), group.end());
  return assignment;
}

std::size_t perturb_groups(
    std::vector<std::vector<std::size_t>>& groups,
    const std::function<Time(const std::vector<std::size_t>&)>& group_cost,
    Rng& rng, std::size_t max_rounds) {
  if (groups.size() < 2) return 0;
  std::size_t accepted = 0;
  std::size_t rounds_without_improvement = 0;
  while (rounds_without_improvement < max_rounds) {
    bool improvement = false;
    // One round: a handful of random swap proposals.
    const std::size_t proposals = groups.size() * 4;
    for (std::size_t p = 0; p < proposals; ++p) {
      const std::size_t a = rng.uniform_int(groups.size());
      std::size_t b = rng.uniform_int(groups.size() - 1);
      if (b >= a) ++b;
      if (groups[a].empty() || groups[b].empty()) continue;
      const std::size_t ia = rng.uniform_int(groups[a].size());
      const std::size_t ib = rng.uniform_int(groups[b].size());

      const Time before = group_cost(groups[a]) + group_cost(groups[b]);
      std::swap(groups[a][ia], groups[b][ib]);
      const Time after = group_cost(groups[a]) + group_cost(groups[b]);
      if (after < before) {
        ++accepted;
        improvement = true;
      } else {
        std::swap(groups[a][ia], groups[b][ib]);  // revert
      }
    }
    rounds_without_improvement =
        improvement ? 0 : rounds_without_improvement + 1;
  }
  return accepted;
}

Time total_group_cost(
    const std::vector<std::vector<std::size_t>>& groups,
    const std::function<Time(const std::vector<std::size_t>&)>& group_cost) {
  Time total = 0.0;
  for (const auto& g : groups) total += group_cost(g);
  return total;
}

}  // namespace hero::planner
