// GPU grouping for tensor parallelism (paper Alg. 2, steps 1 and 3).
//
// "We partition all GPUs into P_pipe groups, each containing P_tens GPUs
//  using a k-means-constrained approach [45]" followed by a random-swap
// perturbation pass: "GPUs are randomly swapped between groups, and the
// communication latency is recalculated. If a swap reduces latency, the new
// assignment is kept."
//
// The latency matrix D_(i,j) drives both phases: the balanced k-means runs
// on each GPU's latency-vector embedding, and the perturbation objective is
// the caller-provided per-group cost (ring/INA latency estimate).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "topology/graph.hpp"

namespace hero::planner {

/// Dense symmetric latency matrix over an ordered GPU set.
class LatencyMatrix {
 public:
  LatencyMatrix(std::vector<topo::NodeId> gpus, std::vector<Time> data);

  [[nodiscard]] std::size_t size() const { return gpus_.size(); }
  [[nodiscard]] const std::vector<topo::NodeId>& gpus() const { return gpus_; }
  [[nodiscard]] Time at(std::size_t i, std::size_t j) const {
    return data_[i * gpus_.size() + j];
  }
  [[nodiscard]] topo::NodeId gpu(std::size_t i) const { return gpus_[i]; }

 private:
  std::vector<topo::NodeId> gpus_;
  std::vector<Time> data_;
};

/// Partition `matrix.size()` GPUs into `groups` balanced clusters of
/// `group_size` each (groups * group_size must not exceed size; leftover
/// GPUs stay unassigned). Returns per-group index lists into the matrix.
/// Balanced k-means on latency-row embeddings with greedy capacity-aware
/// assignment, a few Lloyd iterations.
[[nodiscard]] std::vector<std::vector<std::size_t>> constrained_kmeans(
    const LatencyMatrix& matrix, std::size_t groups, std::size_t group_size,
    Rng& rng, std::size_t iterations = 8);

/// Random-swap perturbation (Alg. 2 lines 12-22): repeatedly propose
/// swapping a GPU between two random groups; keep improving swaps; stop
/// after `max_rounds` rounds without improvement. `group_cost` maps a
/// group's member indices to its estimated communication latency. Returns
/// the number of accepted swaps.
std::size_t perturb_groups(
    std::vector<std::vector<std::size_t>>& groups,
    const std::function<Time(const std::vector<std::size_t>&)>& group_cost,
    Rng& rng, std::size_t max_rounds = 5);

/// Total cost helper: sum of group costs.
[[nodiscard]] Time total_group_cost(
    const std::vector<std::vector<std::size_t>>& groups,
    const std::function<Time(const std::vector<std::size_t>&)>& group_cost);

}  // namespace hero::planner
