#include "planner/planner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>

#include "gpusim/gpu_spec.hpp"

namespace hero::planner {
namespace {

constexpr std::size_t kTensorWidths[] = {1, 2, 4, 8, 16};
constexpr std::size_t kPipeDepths[] = {1, 2, 3, 4, 6, 8};

topo::PathConstraints constraints_for(bool heterogeneous) {
  // Homogeneous planning still sees direct intra-server NVLink edges (NCCL
  // uses them unconditionally); only multi-hop NVLink forwarding is
  // HeroServe-exclusive.
  return topo::PathConstraints{heterogeneous, true,
                               /*allow_nvlink_direct=*/!heterogeneous};
}

/// Reference GPU for the fitted latency model.
const gpu::GpuSpec& reference_spec() {
  static const gpu::GpuSpec ref = gpu::spec_of(topo::GpuModel::kA100_40);
  return ref;
}

}  // namespace

std::vector<topo::NodeId> ClusterPlan::all_gpus() const {
  std::vector<topo::NodeId> out;
  for (const GroupPlan& g : stages) {
    out.insert(out.end(), g.gpus.begin(), g.gpus.end());
  }
  return out;
}

PoolSplit split_pools(const topo::Graph& graph, Bytes m_req_prefill,
                      Bytes m_req_decode, std::size_t prefill_count,
                      std::size_t decode_count) {
  // Order servers by compute strength (prefill is compute-bound and wants
  // the strongest GPUs; decode takes the opposite end).
  struct ServerScore {
    std::int32_t server = -1;
    WorkRate flops = 0.0;
  };
  const auto by_server = graph.gpus_by_server();
  std::vector<ServerScore> servers;
  for (std::size_t s = 0; s < by_server.size(); ++s) {
    if (by_server[s].empty()) continue;
    WorkRate flops = 0.0;
    for (topo::NodeId g : by_server[s]) {
      flops = std::max(flops, gpu::spec_of(graph.node(g).gpu.model).flops());
    }
    servers.push_back({static_cast<std::int32_t>(s), flops});
  }
  std::stable_sort(servers.begin(), servers.end(),
                   [](const ServerScore& a, const ServerScore& b) {
                     return a.flops > b.flops;
                   });

  PoolSplit split;
  std::vector<bool> claimed(graph.node_count(), false);
  // Prefill: strongest servers first.
  for (const ServerScore& s : servers) {
    for (topo::NodeId g : by_server[static_cast<std::size_t>(s.server)]) {
      if (split.prefill.size() >= prefill_count) break;
      if (graph.node(g).gpu.memory_free >= m_req_prefill) {
        split.prefill.push_back(g);
        claimed[g] = true;
      }
    }
  }
  // Decode: weakest-compute servers first, skipping claimed GPUs.
  for (auto it = servers.rbegin(); it != servers.rend(); ++it) {
    for (topo::NodeId g : by_server[static_cast<std::size_t>(it->server)]) {
      if (split.decode.size() >= decode_count) break;
      if (!claimed[g] && graph.node(g).gpu.memory_free >= m_req_decode) {
        split.decode.push_back(g);
        claimed[g] = true;
      }
    }
  }
  return split;
}

OfflinePlanner::OfflinePlanner(PlannerInputs inputs) : in_(std::move(inputs)) {
  if (in_.graph == nullptr || in_.latency == nullptr) {
    throw std::invalid_argument("OfflinePlanner: graph/latency required");
  }
  // Offline precomputation of the pairwise shortest-path store D_(i,j) /
  // P_(k,a) (Alg. 2 lines 1-3). Terminals: every GPU and switch.
  std::vector<topo::NodeId> terminals = in_.graph->gpus();
  for (topo::NodeId sw : in_.graph->switches()) terminals.push_back(sw);
  topo::PathOptions opts;
  opts.constraints = constraints_for(in_.heterogeneous);
  opts.ref_bytes =
      std::max<Bytes>(in_.model.sync_volume_per_step(
                          std::max<std::size_t>(in_.k_in, 1)),
                      64.0 * units::KiB);
  paths_.emplace(*in_.graph, std::move(terminals), opts);

  // The aggregation-switch elections use the default 1 MiB reference (the
  // election is a route-quality ranking, not a volume estimate), so the
  // oracle gets its own options rather than the path store's.
  topo::PathOptions election;
  election.constraints = constraints_for(in_.heterogeneous);
  oracle_.emplace(*in_.graph, election);
}

const topo::PathStore& OfflinePlanner::paths() const { return *paths_; }

std::vector<CandidateConfig> OfflinePlanner::generate_candidates() const {
  const Bytes model_bytes = in_.model.param_bytes();
  const auto gpus = in_.graph->gpus();

  // Per-cluster feasible (P_tens, P_pipe) combos, bounded by the number of
  // GPUs whose free memory covers m_req = R / (P_t * P_p * R_frac).
  std::vector<ParallelConfig> combos;
  for (std::size_t pt : kTensorWidths) {
    if (pt > in_.model.heads) continue;
    if (pt < in_.min_p_tens) continue;
    for (std::size_t pp : kPipeDepths) {
      if (pp > in_.model.layers) continue;
      const Bytes m_req =
          model_bytes / (static_cast<double>(pt * pp) * in_.r_frac);
      std::size_t eligible = 0;
      for (topo::NodeId g : gpus) {
        if (in_.graph->node(g).gpu.memory_free >= m_req) ++eligible;
      }
      if (eligible >= pt * pp) combos.push_back({pt, pp});
    }
  }
  std::sort(combos.begin(), combos.end(),
            [](const ParallelConfig& a, const ParallelConfig& b) {
              if (a.gpus() != b.gpus()) return a.gpus() < b.gpus();
              return a.p_pipe < b.p_pipe;
            });

  std::vector<CandidateConfig> candidates;
  for (const ParallelConfig& pre : combos) {
    if (in_.max_prefill_gpus > 0 && pre.gpus() > in_.max_prefill_gpus) {
      continue;
    }
    for (const ParallelConfig& dec : combos) {
      if (in_.max_decode_gpus > 0 && dec.gpus() > in_.max_decode_gpus) {
        continue;
      }
      if (pre.gpus() + dec.gpus() <= gpus.size()) {
        candidates.push_back({pre, dec});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateConfig& a, const CandidateConfig& b) {
              return a.gpus() < b.gpus();
            });
  if (candidates.size() > in_.max_candi) candidates.resize(in_.max_candi);
  return candidates;
}

double OfflinePlanner::compute_scale(
    const std::vector<topo::NodeId>& gpus) const {
  // The fitted model profiles the reference GPU; a mixed group runs at the
  // pace of its slowest member.
  double worst = 1.0;
  for (topo::NodeId g : gpus) {
    const gpu::GpuSpec spec = gpu::spec_of(in_.graph->node(g).gpu.model);
    const double flops_ratio = reference_spec().flops() / spec.flops();
    const double mem_ratio = reference_spec().mem_bw() / spec.mem_bw();
    worst = std::max({worst, flops_ratio, mem_ratio});
  }
  return worst;
}

GroupPlan OfflinePlanner::score_group(const std::vector<topo::NodeId>& gpus,
                                      Bytes step_volume) const {
  GroupPlan plan;
  plan.gpus = gpus;
  if (gpus.size() <= 1) {
    plan.step_latency = 0.0;
    return plan;
  }
  const topo::Graph& g = *in_.graph;

  // Order members so intra-server neighbours sit adjacent on the ring.
  std::vector<topo::NodeId> ordered = gpus;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     return g.node(a).gpu.server < g.node(b).gpu.server;
                   });

  // Wide-phase members: leaders per server when heterogeneous.
  std::vector<topo::NodeId> wide;
  std::vector<std::size_t> local_sizes;
  if (in_.heterogeneous) {
    std::map<std::int32_t, std::size_t> counts;
    for (topo::NodeId m : ordered) ++counts[g.node(m).gpu.server];
    std::int32_t last_server = -2;
    for (topo::NodeId m : ordered) {
      const std::int32_t server = g.node(m).gpu.server;
      if (server != last_server) {
        wide.push_back(m);
        local_sizes.push_back(counts[server]);
        last_server = server;
      }
    }
  } else {
    wide = ordered;
    local_sizes.assign(wide.size(), 1);
  }

  // NVLink bandwidth of the local phase (first NVLink edge found).
  Bandwidth nvlink_bw = 600.0 * units::GBps;
  for (topo::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).kind == topo::LinkKind::kNvLink) {
      nvlink_bw = g.edge(e).capacity;
      break;
    }
  }

  auto wide_ring_latency = [&]() -> Time {
    if (wide.size() <= 1) return 0.0;
    std::vector<topo::Path> ring;
    ring.reserve(wide.size());
    for (std::size_t i = 0; i < wide.size(); ++i) {
      ring.push_back(paths_->path(wide[i], wide[(i + 1) % wide.size()]));
    }
    return coll::ring_all_reduce_latency_on_paths(g, ring, step_volume);
  };

  auto wide_ina_latency = [&](topo::NodeId sw) -> Time {
    // Heterogeneous mode runs the sharded INA wide phase: every member
    // streams volume/g through its own NIC (see make_hierarchical_plan).
    Time col = 0.0, dis = 0.0;
    if (in_.heterogeneous) {
      std::map<std::int32_t, double> group_size;
      for (topo::NodeId m : ordered) ++group_size[g.node(m).gpu.server];
      for (topo::NodeId m : ordered) {
        const Bytes shard =
            step_volume / group_size[g.node(m).gpu.server];
        col = std::max(col, paths_->latency(m, sw, shard));
        dis = std::max(dis, paths_->latency(sw, m, shard));
      }
    } else {
      for (topo::NodeId m : wide) {
        col = std::max(col, paths_->latency(m, sw, step_volume));
        dis = std::max(dis, paths_->latency(sw, m, step_volume));
      }
    }
    return col + in_.comm_cost.agg_latency + dis;
  };

  // Ring option.
  Time t_ring = wide_ring_latency();
  if (in_.heterogeneous) {
    t_ring = coll::hierarchical_latency(step_volume, local_sizes, nvlink_bw,
                                        t_ring);
  }

  // INA option: elect the nearest switch with aggregator slots (Alg. 2:
  // "Find V_s with the smallest delay to the group while meeting memory
  // constraints").
  Time t_ina = std::numeric_limits<Time>::infinity();
  topo::NodeId best_switch = topo::kInvalidNode;
  const auto switches = coll::rank_aggregation_switches(*oracle_, wide, 1);
  if (!switches.empty()) {
    best_switch = switches.front();
    t_ina = wide_ina_latency(best_switch);
    if (in_.heterogeneous) {
      t_ina = coll::hierarchical_latency(step_volume, local_sizes, nvlink_bw,
                                         t_ina);
    }
  }

  // Alg. 2 `getlatency`: beta (ring) when T_ina > T_ring, alpha otherwise.
  plan.hierarchical = in_.heterogeneous;
  if (t_ina > t_ring) {
    plan.scheme = coll::Scheme::kRing;
    plan.step_latency = t_ring;
  } else {
    plan.scheme = coll::Scheme::kInaSync;
    plan.ina_switch = best_switch;
    plan.step_latency = t_ina;
  }
  plan.gpus = std::move(ordered);
  return plan;
}

OfflinePlanner::ClusterEstimate OfflinePlanner::estimate_cluster(
    bool is_prefill, ParallelConfig parallel,
    const std::vector<topo::NodeId>& pool, Rng& rng,
    std::size_t q_dec) const {
  ClusterEstimate est;
  est.plan.parallel = parallel;
  if (pool.size() < parallel.gpus()) {
    est.reason = "not enough eligible GPUs";
    return est;
  }
  std::vector<topo::NodeId> chosen(pool.begin(),
                                   pool.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           parallel.gpus()));

  // Sync-step payload: K_in tokens for prefill (clamped to the serving
  // layer's per-iteration token budget — continuous batching chunks larger
  // backlogs), the decoding batch's q_dec tokens for decode (SIII-C2).
  q_dec = std::max<std::size_t>(q_dec, 1);
  const std::size_t k_in_eff = std::max<std::size_t>(
      std::min(in_.k_in, in_.prefill_token_budget), 1);
  const Bytes step_volume =
      is_prefill ? in_.model.sync_volume_per_step(k_in_eff)
                 : in_.model.sync_volume_per_step(q_dec);

  // Latency matrix D_(i,j) restricted to the chosen GPUs.
  std::vector<Time> matrix_data(chosen.size() * chosen.size(), 0.0);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      matrix_data[i * chosen.size() + j] =
          i == j ? 0.0 : paths_->latency(chosen[i], chosen[j], step_volume);
    }
  }
  const LatencyMatrix matrix(chosen, std::move(matrix_data));

  auto groups = constrained_kmeans(matrix, parallel.p_pipe, parallel.p_tens,
                                   rng);

  auto group_cost = [&](const std::vector<std::size_t>& idx) -> Time {
    std::vector<topo::NodeId> members;
    members.reserve(idx.size());
    for (std::size_t i : idx) members.push_back(matrix.gpu(i));
    return score_group(members, step_volume).step_latency;
  };
  est.swaps = perturb_groups(groups, group_cost, rng, in_.perturb_rounds);

  // Final stage plans.
  const std::size_t stage_layers =
      (in_.model.layers + parallel.p_pipe - 1) / parallel.p_pipe;
  est.plan.stages.reserve(groups.size());
  Time sync_sum = 0.0, sync_max = 0.0;
  for (const auto& idx : groups) {
    std::vector<topo::NodeId> members;
    members.reserve(idx.size());
    for (std::size_t i : idx) members.push_back(matrix.gpu(i));
    GroupPlan gp = score_group(members, step_volume);
    const Time stage_sync = 2.0 * static_cast<double>(stage_layers) *
                            gp.step_latency;
    sync_sum += stage_sync;
    sync_max = std::max(sync_max, stage_sync);
    est.plan.stages.push_back(std::move(gp));
  }

  // Inter-stage pipeline transfers (Eq. 6): activation of step_volume bytes
  // from the best sender of stage i to the worst receiver of stage i+1.
  Time t_pp_sum = 0.0, t_pp_max = 0.0;
  for (std::size_t s = 0; s + 1 < est.plan.stages.size(); ++s) {
    Time best_sender = std::numeric_limits<Time>::infinity();
    for (topo::NodeId a : est.plan.stages[s].gpus) {
      Time worst_receiver = 0.0;
      for (topo::NodeId k : est.plan.stages[s + 1].gpus) {
        worst_receiver =
            std::max(worst_receiver, paths_->latency(a, k, step_volume));
      }
      best_sender = std::min(best_sender, worst_receiver);
    }
    t_pp_sum += best_sender;
    t_pp_max = std::max(t_pp_max, best_sender);
  }

  const double scale = compute_scale(chosen);
  if (is_prefill) {
    // TTFT traverses the full pipeline: total sync + total transfers.
    const double clamp_ratio =
        static_cast<double>(k_in_eff) /
        static_cast<double>(std::max<std::size_t>(in_.k_in, 1));
    const std::size_t k_in2_eff = static_cast<std::size_t>(
        static_cast<double>(in_.k_in2) * clamp_ratio);
    est.plan.t_net = sync_sum + t_pp_sum;
    est.plan.t_comp = in_.latency->prefill(k_in_eff, k_in2_eff,
                                           in_.model.layers,
                                           parallel.p_tens) *
                      scale;
  } else {
    // Steady-state TPOT is set by the slowest pipeline stage. The decode
    // batch carries q_dec requests whose average context is
    // (K_in + K_out/2) / Q tokens each.
    const double per_req_ctx =
        (static_cast<double>(in_.k_in) +
         static_cast<double>(in_.k_out) / 2.0) /
        static_cast<double>(std::max<std::size_t>(in_.batch_q, 1));
    const std::size_t k_ctx = static_cast<std::size_t>(
        per_req_ctx * static_cast<double>(q_dec));
    est.plan.t_net = sync_max + t_pp_max;
    est.plan.t_comp =
        in_.latency->decode(k_ctx, stage_layers, parallel.p_tens) * scale;
  }
  est.feasible = true;
  return est;
}

Time OfflinePlanner::kv_transfer_latency(const ClusterPlan& prefill,
                                         const ClusterPlan& decode) const {
  // KV caches stream to the decode twins concurrently with prefill (as in
  // DistServe-style disaggregation and our serving simulator). The latency
  // that matters is the *exposed tail*: how much of the full batch transfer
  // (Eq. 14-15's max over prefill/decode pairs) outlasts the prefill
  // iteration it overlaps with.
  const auto pre = prefill.all_gpus();
  const auto dec = decode.all_gpus();
  if (pre.empty() || dec.empty()) return 0.0;
  const Bytes volume = in_.model.kv_transfer_bytes_per_gpu(
      std::min(in_.k_in, in_.prefill_token_budget),
      prefill.parallel.p_tens);
  Time worst = 0.0;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    const std::size_t j = i * dec.size() / pre.size();
    // KV streams are pipelined RDMA flows: end-to-end bottleneck rate, not
    // per-hop store-and-forward.
    const topo::Path& path = paths_->path(pre[i], dec[j]);
    const Bandwidth bw = path.bottleneck(*in_.graph);
    Time latency = bw > 0 ? volume / bw : 0.0;
    for (topo::EdgeId e : path.edges) latency += in_.graph->edge(e).latency;
    worst = std::max(worst, latency);
  }
  const Time prefill_span = prefill.t_net + prefill.t_comp;
  return std::max(Time{0.0}, worst - prefill_span);
}

PlanResult OfflinePlanner::plan() {
  PlanResult best;
  best.infeasible_reason = "no candidate evaluated";
  best.planned_arrival_rate = in_.arrival_rate;
  const Bytes model_bytes = in_.model.param_bytes();
  Rng rng(in_.seed);

  const auto candidates = generate_candidates();
  Rate max_h = 0.0;
  for (const CandidateConfig& cand : candidates) {
    ++best.candidates_evaluated;
    const Bytes m_req_pre =
        model_bytes /
        (static_cast<double>(cand.prefill.gpus()) * in_.r_frac);
    const Bytes m_req_dec =
        model_bytes / (static_cast<double>(cand.decode.gpus()) * in_.r_frac);
    const PoolSplit pools = split_pools(*in_.graph, m_req_pre, m_req_dec,
                                        cand.prefill.gpus(),
                                        cand.decode.gpus());

    // Memory-feasible decode concurrency: how many requests' full KV
    // sequences the decode cluster can hold next to the weight shards.
    const double per_req_tokens =
        (static_cast<double>(in_.k_in) + static_cast<double>(in_.k_out)) /
        static_cast<double>(std::max<std::size_t>(in_.batch_q, 1));
    const Bytes kv_per_req =
        in_.model.kv_bytes_per_token() * std::max(per_req_tokens, 1.0);
    Bytes kv_budget = 0.0;
    const Bytes weights_per_gpu =
        model_bytes / static_cast<double>(cand.decode.gpus());
    for (std::size_t i = 0;
         i < cand.decode.gpus() && i < pools.decode.size(); ++i) {
      kv_budget += std::max(Bytes{0.0}, in_.graph->node(pools.decode[i])
                                                .gpu.memory_free -
                                            weights_per_gpu);
    }
    const std::size_t q_mem_cap = static_cast<std::size_t>(
        std::max(1.0, kv_budget / kv_per_req));
    const std::size_t q_cap =
        std::min(q_mem_cap, in_.decode_batch_limit);

    // Alg. 1: prefill and decode clusters estimated concurrently. The
    // decode worker additionally searches the largest TPOT-feasible batch
    // (descending powers of two from the memory cap).
    ClusterEstimate pre_est, dec_est;
    std::size_t q_dec = 1;
    {
      Rng pre_rng = rng.fork();
      Rng dec_rng = rng.fork();
      std::jthread pre_thread([&] {
        pre_est = estimate_cluster(true, cand.prefill, pools.prefill,
                                   pre_rng);
      });
      std::jthread dec_thread([&] {
        std::size_t q = 1;
        while (q * 2 <= q_cap) q *= 2;
        for (;; q /= 2) {
          dec_est = estimate_cluster(false, cand.decode, pools.decode,
                                     dec_rng, q);
          if (!dec_est.feasible) return;
          if (dec_est.plan.t_net + dec_est.plan.t_comp <=
                  in_.t_sla_decode ||
              q == 1) {
            q_dec = q;
            return;
          }
        }
      });
    }
    if (!pre_est.feasible || !dec_est.feasible) {
      if (best.infeasible_reason == "no candidate evaluated") {
        best.infeasible_reason =
            !pre_est.feasible ? "prefill: " + pre_est.reason
                              : "decode: " + dec_est.reason;
      }
      continue;
    }
    best.perturbation_swaps += pre_est.swaps + dec_est.swaps;

    const Time t_kv = kv_transfer_latency(pre_est.plan, dec_est.plan);
    const Time t_pre = pre_est.plan.t_net + pre_est.plan.t_comp;  // Eq. 3
    const Time t_dec =
        dec_est.plan.t_net + dec_est.plan.t_comp + t_kv;  // Eq. 4

    if (t_pre > in_.t_sla_prefill || t_dec > in_.t_sla_decode) {
      if (best.infeasible_reason == "no candidate evaluated" ||
          !best.feasible) {
        best.infeasible_reason = t_pre > in_.t_sla_prefill
                                     ? "TTFT SLA violated"
                                     : "TPOT SLA violated";
      }
      continue;
    }

    // Capacity model for the queueing estimate: the prefill pipeline
    // completes Q requests per T_pre; the decode pipeline completes q_dec
    // concurrent requests every (K_out/Q) decode steps. The slower side is
    // the system's service rate.
    const double out_per_req =
        static_cast<double>(std::max<std::size_t>(in_.k_out, 1)) /
        static_cast<double>(std::max<std::size_t>(in_.batch_q, 1));
    const Time t_dec_step = dec_est.plan.t_net + dec_est.plan.t_comp;
    const double prefill_clamp =
        std::min(1.0, static_cast<double>(in_.prefill_token_budget) /
                          static_cast<double>(
                              std::max<std::size_t>(in_.k_in, 1)));
    const Rate mu_pre =
        prefill_clamp *
        static_cast<double>(std::max<std::size_t>(in_.batch_q, 1)) /
        std::max(t_pre, Time{1e-9});
    const Rate mu_dec = static_cast<double>(q_dec) /
                        std::max(out_per_req * t_dec_step, Time{1e-9});
    const Rate mu = std::min(mu_pre, mu_dec);
    const QueueEstimate queue =
        pollaczek_khinchine(in_.arrival_rate, 1.0 / mu);
    const Time t_serve = t_pre + t_kv + out_per_req * t_dec_step;
    // Ranking: stable candidates by H = 1/T_req (Eq. 1); a stable candidate
    // always beats an unstable one. When the offered load exceeds every
    // candidate's capacity, the planner still deploys the highest-capacity
    // SLA-feasible configuration and the serving run shows the SLA misses.
    const Time t_req = queue.stable ? queue.queue_delay + t_serve
                                    : std::numeric_limits<Time>::infinity();
    const bool best_is_stable = best.feasible && best.queue.stable;
    Rate h = 0.0;
    bool better = false;
    if (queue.stable) {
      h = 1.0 / t_req;
      better = !best_is_stable || h > max_h;
    } else {
      h = 0.0;
      better = !best.feasible || (!best_is_stable && mu > best.service_rate);
    }
    if (better) {
      max_h = h;
      best.feasible = true;
      best.infeasible_reason.clear();
      best.prefill = pre_est.plan;
      best.decode = dec_est.plan;
      best.t_prefill = t_pre;
      best.t_decode = t_dec;
      best.t_kv = t_kv;
      best.t_serve = t_serve;
      best.q_decode = q_dec;
      best.service_rate = mu;
      best.service_rate_prefill = mu_pre;
      best.service_rate_decode = mu_dec;
      best.planned_k_in = in_.k_in;
      best.queue = queue;
      best.throughput_h = h;
    }
  }

  // Deterministic effort metric: every candidate runs the k-means grouping
  // once plus perturb_rounds random-swap rounds, for both clusters.
  best.solve_work_units =
      best.candidates_evaluated * 2 * (1 + in_.perturb_rounds);
  return best;
}

}  // namespace hero::planner
