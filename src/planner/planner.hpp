// Scalability-oriented offline planner (paper SIII-C, Algorithms 1 and 2).
//
// Joint optimization of computation allocation (tensor x pipeline
// parallelism and concrete GPU placement for the prefill and decode
// clusters) and communication scheduling (per-group INA-vs-ring selection,
// aggregation switch election, transmission paths), maximizing scalability
// H = 1/T_req subject to the TTFT/TPOT SLAs.
//
// Heuristics as in the paper:
//  * offline all-pairs shortest paths / latency matrices (computed on
//    background threads at construction — the "asynchronous processing");
//  * candidate (P_tens, P_pipe) combinations bounded by the per-GPU memory
//    requirement m_req = R / (P_t * P_p * R_frac), at most `max_candi`;
//  * per-candidate prefill and decode estimation on two concurrent worker
//    threads (Alg. 1's `thread process_prefill_cluster` /
//    `thread process_decode_cluster`);
//  * constrained k-means GPU grouping + random-swap perturbation (Alg. 2);
//  * Pollaczek-Khinchine queueing for T_queue.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "collectives/cost_model.hpp"
#include "collectives/engine.hpp"
#include "gpusim/latency_model.hpp"
#include "llm/model.hpp"
#include "planner/grouping.hpp"
#include "planner/queueing.hpp"
#include "topology/paths.hpp"

namespace hero::planner {

struct ParallelConfig {
  std::size_t p_tens = 1;
  std::size_t p_pipe = 1;
  [[nodiscard]] std::size_t gpus() const { return p_tens * p_pipe; }
  bool operator==(const ParallelConfig&) const = default;
};

/// One P_all of Alg. 1: parallelism for both clusters.
struct CandidateConfig {
  ParallelConfig prefill;
  ParallelConfig decode;
  [[nodiscard]] std::size_t gpus() const {
    return prefill.gpus() + decode.gpus();
  }
};

struct PlannerInputs {
  const topo::Graph* graph = nullptr;
  llm::ModelConfig model;
  /// Fitted Eq. 12-13 model (reference GPU: A100-40); per-group times are
  /// scaled by the slowest member's compute ratio.
  const gpu::LatencyModel* latency = nullptr;

  // Workload estimates (Table I, from the WorkloadEstimator).
  std::size_t batch_q = 8;  ///< Q
  std::size_t k_in = 0;     ///< K_in
  std::size_t k_in2 = 0;    ///< K_in2
  std::size_t k_out = 0;    ///< K_out
  Rate arrival_rate = 1.0;  ///< lambda (requests/s)

  Time t_sla_prefill = 2.5;  ///< T_sla^pre (TTFT)
  Time t_sla_decode = 0.15;  ///< T_sla^dec (TPOT)

  double r_frac = 0.8;        ///< usable memory fraction per GPU
  /// Minimum tensor-parallel width. The paper's evaluation deploys
  /// instances whose TP groups span servers (SII-B: large models are
  /// "deployed across multiple GPU servers"; Fig. 1 profiles exactly that
  /// configuration). Setting this above the per-server GPU count mandates
  /// the cross-server regime; 1 leaves placement free.
  std::size_t min_p_tens = 1;
  std::size_t decode_batch_limit = 128;  ///< continuous-batching cap
  std::size_t prefill_token_budget = 16384;  ///< per-iteration token chunk
  std::size_t max_candi = 20; ///< candidate configurations evaluated
  std::size_t perturb_rounds = 5;
  /// Per-cluster GPU caps on candidate generation (0 = unbounded). The
  /// fleet planner uses these to steer an instance toward a smaller
  /// prefill (or decode) footprint when the fleet-aggregate service rates
  /// of the two stages drift apart (Taming-the-Chaos-style ratio control).
  std::size_t max_prefill_gpus = 0;
  std::size_t max_decode_gpus = 0;
  bool heterogeneous = true;  ///< NVLink paths + hierarchical schemes
  std::uint64_t seed = 7;
  coll::CostConfig comm_cost;
};

/// One tensor-parallel group (= one pipeline stage) of a cluster plan.
struct GroupPlan {
  std::vector<topo::NodeId> gpus;  ///< P_tens members
  coll::Scheme scheme = coll::Scheme::kRing;  ///< alpha/beta selection
  topo::NodeId ina_switch = topo::kInvalidNode;  ///< V_ina when INA
  bool hierarchical = false;
  Time step_latency = 0.0;  ///< one TP sync step (Eq. 7)
};

struct ClusterPlan {
  ParallelConfig parallel;
  std::vector<GroupPlan> stages;  ///< size = p_pipe, pipeline order
  Time t_net = 0.0;   ///< T_n for this cluster
  Time t_comp = 0.0;  ///< T_c for this cluster

  [[nodiscard]] std::vector<topo::NodeId> all_gpus() const;
};

struct PlanResult {
  bool feasible = false;
  std::string infeasible_reason;

  ClusterPlan prefill;
  ClusterPlan decode;

  Time t_prefill = 0.0;  ///< TTFT estimate (Eq. 3)
  Time t_decode = 0.0;   ///< TPOT estimate (Eq. 4)
  Time t_kv = 0.0;       ///< T_f (Eq. 14)
  Time t_serve = 0.0;
  std::size_t q_decode = 1;   ///< memory-feasible decode concurrency
  Rate service_rate = 0.0;  ///< min(prefill, decode) capacity (req/s)
  /// Per-stage service rates (mu_pre / mu_dec of the capacity model); the
  /// fleet planner balances these across replicated instances.
  Rate service_rate_prefill = 0.0;
  Rate service_rate_decode = 0.0;
  /// The K_in the capacity model was calibrated for; converts a live token
  /// backlog into "equivalent requests" (the fleet router's queue term).
  std::size_t planned_k_in = 0;
  /// The arrival rate (lambda, req/s) this plan was sized for. For fleet
  /// plans this is the PER-INSTANCE rate the fleet planner derived from its
  /// explicit fleet-wide rate — callers read it back instead of re-dividing.
  Rate planned_arrival_rate = 0.0;
  QueueEstimate queue;
  Rate throughput_h = 0.0;  ///< H = 1 / T_req

  // Solver telemetry. The solver itself is deterministic, so its effort is
  // reported in deterministic work units (candidates x perturbation
  // rounds), not wall-clock; benches that want wall time measure around
  // plan() themselves.
  std::size_t candidates_evaluated = 0;
  std::size_t perturbation_swaps = 0;
  std::size_t solve_work_units = 0;  ///< candidates * (1 + perturb rounds)
};

class OfflinePlanner {
 public:
  explicit OfflinePlanner(PlannerInputs inputs);

  /// Algorithm 1 end to end.
  [[nodiscard]] PlanResult plan();

  /// Candidate (P_tens^p, P_pipe^p, P_tens^d, P_pipe^d) generation
  /// (Alg. 1 `gen_tp_pp_candi`), exposed for tests.
  [[nodiscard]] std::vector<CandidateConfig> generate_candidates() const;

  /// The offline path stores (asynchronously precomputed). Heterogeneous
  /// when inputs.heterogeneous, Ethernet-only otherwise.
  [[nodiscard]] const topo::PathStore& paths() const;

 private:
  struct ClusterEstimate {
    bool feasible = false;
    std::string reason;
    ClusterPlan plan;
    std::size_t swaps = 0;
  };

  PlannerInputs in_;
  std::optional<topo::PathStore> paths_;
  /// Memoized per-source Dijkstra shared by every aggregation-switch
  /// election score_group() runs (one solve per distinct member, total).
  std::optional<topo::PathOracle> oracle_;

  /// `q_dec` sizes the decode cluster's batch-dependent terms (context
  /// tokens and sync volumes); ignored for prefill.
  [[nodiscard]] ClusterEstimate estimate_cluster(
      bool is_prefill, ParallelConfig parallel,
      const std::vector<topo::NodeId>& pool, Rng& rng,
      std::size_t q_dec = 1) const;

  [[nodiscard]] Time kv_transfer_latency(const ClusterPlan& prefill,
                                         const ClusterPlan& decode) const;

  /// Sync-step latency of a candidate group + its scheme choice
  /// (Alg. 2 `getlatency`): min of ring and INA estimates.
  [[nodiscard]] GroupPlan score_group(const std::vector<topo::NodeId>& gpus,
                                      Bytes step_volume) const;

  [[nodiscard]] double compute_scale(
      const std::vector<topo::NodeId>& gpus) const;
};

/// Pool split for a candidate: prefill prefers compute-strong servers, the
/// decode cluster takes the rest (paper SIII-B: prefill is compute-bound,
/// decode memory-bound). Returns {prefill_pool, decode_pool}; pools contain
/// only GPUs with memory_free >= m_req for the respective cluster.
struct PoolSplit {
  std::vector<topo::NodeId> prefill;
  std::vector<topo::NodeId> decode;
};

[[nodiscard]] PoolSplit split_pools(const topo::Graph& graph,
                                    Bytes m_req_prefill, Bytes m_req_decode,
                                    std::size_t prefill_count,
                                    std::size_t decode_count);

}  // namespace hero::planner
