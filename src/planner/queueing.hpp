// Request queueing model (paper SIII-C1).
//
// Arrivals are Poisson; service times are highly predictable for LLM
// inference, so the planner uses the Pollaczek-Khinchine mean-waiting-time
// form quoted in the paper:
//     T_queue = lambda * T_serve^2 / (2 * (1 - rho)),   rho = lambda*T_serve
// An overloaded system (rho >= 1) has unbounded queueing delay.
#pragma once

#include <limits>

#include "common/units.hpp"

namespace hero::planner {

struct QueueEstimate {
  double utilization = 0.0;  ///< rho
  Time queue_delay = 0.0;    ///< T_queue (infinity when rho >= 1)
  bool stable = true;
};

[[nodiscard]] inline QueueEstimate pollaczek_khinchine(Rate arrival_rate,
                                                       Time service_time) {
  QueueEstimate est;
  if (arrival_rate <= 0.0 || service_time <= 0.0) return est;
  est.utilization = arrival_rate * service_time;
  if (est.utilization >= 1.0) {
    est.stable = false;
    est.queue_delay = std::numeric_limits<Time>::infinity();
    return est;
  }
  est.queue_delay = arrival_rate * service_time * service_time /
                    (2.0 * (1.0 - est.utilization));
  return est;
}

}  // namespace hero::planner
