#include "serving/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "common/format.hpp"
#include "common/log.hpp"
#include "gpusim/gpu_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::serve {

struct ClusterSim::Stage {
  planner::GroupPlan plan;
  coll::GroupId group = 0;
  std::size_t layers = 0;
  std::size_t p_tens = 1;
  std::unique_ptr<gpu::KernelModel> kernel;
};

struct ClusterSim::ActiveRequest {
  wl::Request req;
  Time first_token = -1.0;
  Time finish = -1.0;
  std::size_t generated = 0;  ///< decode tokens produced (excl. first)
  Bytes kv_reserved = 0.0;
  /// Prefix tokens served from the KV cache (pinned arrival->retirement);
  /// they skip prefill compute, the prefill->decode KV transfer, and the
  /// decode-side reservation.
  std::size_t reuse_tokens = 0;
};

struct ClusterSim::PrefillBatch {
  std::vector<std::unique_ptr<ActiveRequest>> requests;
  std::size_t k_in = 0;
  std::size_t k_in2 = 0;
  std::size_t stage = 0;
  /// Outstanding pieces before the batch hands over to decode:
  /// the stage chain (1) plus one per KV transfer pair.
  std::size_t barrier = 0;
};

namespace {

/// Slowest member decides a stage's kernel pace.
gpu::GpuSpec slowest_spec(const topo::Graph& g,
                          const std::vector<topo::NodeId>& gpus) {
  gpu::GpuSpec worst;
  WorkRate worst_flops = std::numeric_limits<WorkRate>::infinity();
  for (topo::NodeId id : gpus) {
    gpu::GpuSpec s = gpu::spec_of(g.node(id).gpu.model);
    if (s.flops() < worst_flops) {
      worst_flops = s.flops();
      worst = s;
    }
  }
  return worst;
}

}  // namespace

ClusterSim::ClusterSim(net::FlowNetwork& network,
                       coll::CollectiveEngine& engine,
                       coll::CommScheduler& scheduler,
                       planner::PlanResult plan, ServingOptions options)
    : network_(&network), engine_(&engine), scheduler_(&scheduler),
      plan_(std::move(plan)), opts_(std::move(options)) {
  if (!plan_.feasible) {
    throw std::invalid_argument("ClusterSim: plan is infeasible");
  }
  setup_stages();

  // KV-cache budget: decode GPU memory minus the weight shards.
  const Bytes weights_per_gpu =
      opts_.model.param_bytes() /
      static_cast<double>(plan_.decode.parallel.gpus());
  for (topo::NodeId g : decode_gpus_) {
    kv_budget_ += std::max(
        Bytes{0.0},
        network_->graph().node(g).gpu.memory_free - weights_per_gpu);
  }

  if (opts_.prefix_block_tokens > 0) {
    kv::PrefixCacheOptions pc;
    pc.block_tokens = opts_.prefix_block_tokens;
    pc.bytes_per_token = opts_.model.kv_bytes_per_token();
    prefix_cache_ = std::make_unique<kv::PrefixCache>(pc);
  }
}

ClusterSim::~ClusterSim() = default;

sim::Simulator& ClusterSim::simulator() { return network_->simulator(); }

void ClusterSim::setup_stages() {
  auto build = [&](const planner::ClusterPlan& cluster,
                   std::vector<Stage>& stages,
                   std::vector<topo::NodeId>& gpus) {
    const std::size_t stage_layers =
        (opts_.model.layers + cluster.parallel.p_pipe - 1) /
        cluster.parallel.p_pipe;
    for (const planner::GroupPlan& gp : cluster.stages) {
      Stage stage;
      stage.plan = gp;
      stage.layers = stage_layers;
      stage.p_tens = std::max<std::size_t>(gp.gpus.size(), 1);
      stage.group = scheduler_->register_group(gp.gpus);
      stage.kernel = std::make_unique<gpu::KernelModel>(
          slowest_spec(network_->graph(), gp.gpus), opts_.model,
          opts_.kernel, opts_.seed + stages.size() + 17);
      gpus.insert(gpus.end(), gp.gpus.begin(), gp.gpus.end());
      stages.push_back(std::move(stage));
    }
  };
  build(plan_.prefill, prefill_stages_, prefill_gpus_);
  build(plan_.decode, decode_stages_, decode_gpus_);
  if (prefill_stages_.empty() || decode_stages_.empty()) {
    throw std::invalid_argument("ClusterSim: empty cluster plan");
  }
}

double ClusterSim::stage_scale(const Stage& stage) const {
  if (!opts_.compute_scale) return 1.0;
  double scale = 1.0;
  for (topo::NodeId g : stage.plan.gpus) {
    scale = std::max(scale, opts_.compute_scale(g));
  }
  HERO_INVARIANT(scale >= 1.0, "compute_scale produced speedup {}", scale);
  return scale;
}

KvSnapshot ClusterSim::kv() const {
  KvSnapshot snap;
  snap.used = kv_used_;
  snap.cached = prefix_cache_ ? prefix_cache_->bytes_used() : Bytes{0.0};
  snap.budget = kv_budget_;
  snap.bytes_per_token = opts_.model.kv_bytes_per_token();
  return snap;
}

std::size_t ClusterSim::effective_tokens(const ActiveRequest& ar) {
  return ar.req.input_tokens - ar.reuse_tokens;
}

void ClusterSim::set_prefix_change_hook(
    std::function<void(std::uint64_t, std::size_t)> hook) {
  prefix_hook_ = std::move(hook);
}

std::size_t ClusterSim::cached_prefix_tokens(std::uint64_t session) const {
  return prefix_cache_ ? prefix_cache_->cached_tokens(session) : 0;
}

void ClusterSim::pin_prefix(std::uint64_t session, std::size_t tokens) {
  HERO_REQUIRE(prefix_cache_ != nullptr,
               "pin_prefix on an instance without a prefix tier");
  prefix_cache_->touch(session);
  prefix_cache_->pin(session, tokens);
}

void ClusterSim::unpin_prefix(std::uint64_t session, std::size_t tokens) {
  HERO_REQUIRE(prefix_cache_ != nullptr,
               "unpin_prefix on an instance without a prefix tier");
  prefix_cache_->unpin(session, tokens);
}

void ClusterSim::adopt_prefix(std::uint64_t session, std::size_t tokens) {
  if (!prefix_cache_) return;
  std::vector<kv::CoverageChange> changes;
  const std::size_t covered =
      prefix_cache_->publish(session, tokens, kv_budget_ - kv_used_,
                             &changes);
  notify_prefix(changes);
  if (prefix_hook_) prefix_hook_(session, covered);
  record_kv(simulator().now());
}

void ClusterSim::retire_prefix_cache() {
  if (!prefix_cache_) return;
  prefix_hook_ = nullptr;  // the fleet purges the directory wholesale
  prefix_cache_->retire();
  record_kv(simulator().now());
}

void ClusterSim::notify_prefix(
    const std::vector<kv::CoverageChange>& changes) {
  if (!prefix_hook_) return;
  for (const kv::CoverageChange& c : changes) {
    prefix_hook_(c.stream, c.tokens);
  }
}

void ClusterSim::record_kv(Time now) {
  // KV reservations are released exactly once per retirement; drift in
  // either direction corrupts the admission gate and Fig. 10 accounting.
  // The prefix cache's blocks share the budget, so they count toward
  // utilization (cached == 0 keeps the arithmetic bit-identical to a
  // build without the tier).
  const Bytes cached =
      prefix_cache_ ? prefix_cache_->bytes_used() : Bytes{0.0};
  HERO_INVARIANT(kv_used_ >= -1e-6, "KV accounting underflow: {}", kv_used_);
  HERO_INVARIANT(kv_used_ + cached <= kv_budget_ + 1e-6,
                 "KV over-reserved: {} + {} cached of budget {}", kv_used_,
                 cached, kv_budget_);
  const double util =
      kv_budget_ > 0 ? (kv_used_ + cached) / kv_budget_ : 0.0;
  kv_util_.observe(now, util);
  if (kv_timeline_.empty() || kv_timeline_.back().utilization != util) {
    kv_timeline_.push_back(KvSample{now, util});
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->gauge("serve.kv_utilization").set(now, util);
  }
}

void ClusterSim::trace_request_end(const ActiveRequest& ar, Time now) {
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->async_end(now, ar.req.id, "request", strfmt("req{}", ar.req.id),
                  {obs::arg("ttft", ar.first_token - ar.req.arrival),
                   obs::arg("generated", ar.generated)});
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->counter("serve.retired").add(1);
  }
}

void ClusterSim::retire_request(std::unique_ptr<ActiveRequest> ar,
                                Time now) {
  ar->finish = now;
  kv_used_ -= ar->kv_reserved;
  trace_request_end(*ar, now);

  // Prefix tier: release the reuse pin, then publish the session's full
  // context (input + response) so the next turn finds it cached. The
  // cache footprint is capped at whatever the decode reservations leave.
  if (prefix_cache_ && ar->req.session_id != 0) {
    if (ar->reuse_tokens > 0) {
      prefix_cache_->unpin(ar->req.session_id, ar->reuse_tokens);
    }
    const std::size_t context =
        ar->req.input_tokens + ar->req.output_tokens;
    const std::size_t before =
        prefix_cache_->cached_tokens(ar->req.session_id);
    std::vector<kv::CoverageChange> changes;
    const std::size_t covered = prefix_cache_->publish(
        ar->req.session_id, context, kv_budget_ - kv_used_, &changes);
    notify_prefix(changes);
    if (covered > before) {
      prefix_stats_.published_tokens += covered - before;
    }
    if (covered != before && prefix_hook_) {
      prefix_hook_(ar->req.session_id, covered);
    }
  }

  retired_.push_back(std::move(ar));
}

void ClusterSim::on_arrival(wl::Request request) {
  auto ar = std::make_unique<ActiveRequest>();
  ar->req = request;
  log::debug("t={} arrival req {} in={} out={}", simulator().now(),
             request.id, request.input_tokens, request.output_tokens);
  const Time now = simulator().now();
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->async_begin(now, request.id, "request",
                    strfmt("req{}", request.id),
                    {obs::arg("input_tokens", request.input_tokens),
                     obs::arg("output_tokens", request.output_tokens)});
  }

  // Prefix tier: reuse the cached part of the session context. Reused
  // blocks are pinned until the request retires so admission-time
  // eviction can never pull them out from under an in-flight batch.
  if (prefix_cache_ && request.session_id != 0) {
    ++prefix_stats_.lookups;
    const std::size_t want =
        prefix_cache_->usable_tokens(request.prefix_tokens);
    const std::size_t reuse =
        std::min(want, prefix_cache_->cached_tokens(request.session_id));
    obs::EventTracer* tr = simulator().tracer();
    obs::MetricsRegistry* m = simulator().metrics();
    if (reuse > 0) {
      prefix_cache_->touch(request.session_id);
      prefix_cache_->pin(request.session_id, reuse);
      ar->reuse_tokens = reuse;
      ++prefix_stats_.hits;
      prefix_stats_.reused_tokens += reuse;
      if (tr) {
        tr->instant(now, tr->track("kv"), "kv", "kv.hit",
                    {obs::arg("session", request.session_id),
                     obs::arg("reused_tokens", reuse)});
      }
      if (m) {
        m->counter("kv.hits").add(1);
        m->counter("kv.reused_tokens")
            .add(static_cast<std::uint64_t>(reuse));
      }
    } else if (request.prefix_tokens > 0) {
      // The session has shareable context but this instance holds none
      // of it (cold, evicted, or sub-block): full prefill.
      ++prefix_stats_.recomputes;
      if (tr) {
        tr->instant(now, tr->track("kv"), "kv", "kv.recompute",
                    {obs::arg("session", request.session_id),
                     obs::arg("prefix_tokens", request.prefix_tokens)});
      }
      if (m) m->counter("kv.recomputes").add(1);
    }
    const std::size_t decided = prefix_stats_.hits + prefix_stats_.recomputes;
    if (m && decided > 0) {
      m->gauge("kv.hit_rate")
          .set(now, static_cast<double>(prefix_stats_.hits) /
                        static_cast<double>(decided));
    }
  }

  prefill_queue_.push_back(std::move(ar));
  ++submitted_;
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->counter("serve.arrivals").add(1);
    m->gauge("serve.prefill_queue")
        .set(now, static_cast<double>(prefill_queue_.size()));
  }
  try_start_prefill();
}

void ClusterSim::try_start_prefill() {
  if (prefill_running_ || prefill_queue_.empty()) return;

  auto batch = std::make_unique<PrefillBatch>();
  while (!prefill_queue_.empty()) {
    // Reused prefix tokens skip prefill: the batch is costed (and the
    // token budget charged) on what actually runs through the pipeline.
    const std::size_t next_tokens =
        effective_tokens(*prefill_queue_.front());
    if (!batch->requests.empty() &&
        batch->k_in + next_tokens > opts_.prefill_token_budget) {
      break;
    }
    batch->k_in += next_tokens;
    batch->k_in2 += next_tokens * next_tokens;
    batch->requests.push_back(std::move(prefill_queue_.front()));
    prefill_queue_.pop_front();
  }

  log::debug("t={} prefill batch start: {} reqs, k_in={}",
             simulator().now(), batch->requests.size(), batch->k_in);
  const Time now = simulator().now();
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->begin_span(now, tr->track("prefill"), "prefill", "batch",
                   {obs::arg("requests", batch->requests.size()),
                    obs::arg("k_in", batch->k_in)});
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->counter("serve.prefill_batches").add(1);
    m->gauge("serve.prefill_queue")
        .set(now, static_cast<double>(prefill_queue_.size()));
  }
  // Stage chain + per-pair KV transfers run to a joint barrier.
  batch->barrier = 1;
  prefill_running_ = std::move(batch);
  start_kv_transfers(*prefill_running_);
  run_prefill_stage(0);
}

void ClusterSim::start_kv_transfers(PrefillBatch& batch) {
  // Layer-streamed KV transfer modeled as one concurrent flow per
  // (prefill GPU -> paired decode GPU), overlapped with prefill compute.
  Bytes per_gpu = 0.0;
  for (const auto& ar : batch.requests) {
    // Only freshly prefilled tokens produce KV on the prefill side; the
    // reused prefix already lives in the decode cluster's cache.
    per_gpu += opts_.model.kv_transfer_bytes_per_gpu(
        effective_tokens(*ar), plan_.prefill.parallel.p_tens);
  }
  if (per_gpu <= 0.0 || prefill_gpus_.empty()) return;
  obs::EventTracer* tr = simulator().tracer();
  for (std::size_t i = 0; i < prefill_gpus_.size(); ++i) {
    const std::size_t j = i * decode_gpus_.size() / prefill_gpus_.size();
    const topo::Path path =
        scheduler_->unicast_path(prefill_gpus_[i], decode_gpus_[j]);
    ++batch.barrier;
    std::uint64_t span = 0;
    if (tr) {
      span = tr->next_async_id();
      tr->async_begin(
          simulator().now(), span, "kv", "kv_transfer",
          {obs::arg("bytes", per_gpu),
           obs::arg("src", network_->graph().node(prefill_gpus_[i]).name),
           obs::arg("dst", network_->graph().node(decode_gpus_[j]).name)});
    }
    net::TransferOptions opts;
    opts.pipelined = true;  // RDMA bulk stream, not per-hop store-and-forward
    opts.on_complete = [this, tr, span](net::TransferId) {
      if (tr) {
        tr->async_end(simulator().now(), span, "kv", "kv_transfer", {});
      }
      on_prefill_piece_done();
    };
    network_->start_transfer(path, per_gpu, std::move(opts));
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->counter("serve.kv_transfers")
        .add(static_cast<std::uint64_t>(prefill_gpus_.size()));
  }
}

void ClusterSim::run_prefill_stage(std::size_t stage_index) {
  Stage& stage = prefill_stages_[stage_index];
  PrefillBatch& batch = *prefill_running_;
  const Time compute =
      stage.kernel->prefill_time(batch.k_in, batch.k_in2, stage.layers,
                                 stage.p_tens) *
      stage_scale(stage);
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->begin_span(simulator().now(), tr->track("prefill"), "prefill",
                   strfmt("stage{}", stage_index),
                   {obs::arg("compute_s", compute),
                    obs::arg("k_in", batch.k_in)});
  }
  simulator().schedule_in(compute, [this, stage_index] {
    Stage& st = prefill_stages_[stage_index];
    PrefillBatch& b = *prefill_running_;
    const Bytes volume =
        opts_.model.iteration_sync_volume(std::max<std::size_t>(b.k_in, 1),
                                          st.layers);
    // Close the stage span (compute + sync), then step the chain or hit
    // the batch barrier.
    auto advance = [this, stage_index] {
      if (obs::EventTracer* tr = simulator().tracer()) {
        tr->end_span(simulator().now(), tr->track("prefill"), {});
      }
      if (stage_index + 1 < prefill_stages_.size()) {
        run_prefill_stage(stage_index + 1);
      } else {
        const Time now = simulator().now();
        for (auto& ar : prefill_running_->requests) {
          ar->first_token = now;
        }
        on_prefill_piece_done();
      }
    };
    if (st.p_tens <= 1) {
      // No tensor parallelism: nothing to synchronize.
      simulator().schedule_in(0.0, advance);
      return;
    }
    coll::AllReducePlan plan = scheduler_->all_reduce_plan(st.group, volume);
    engine_->all_reduce(std::move(plan),
                        [advance](const coll::AllReduceResult&) {
                          advance();
                        });
  });
}

void ClusterSim::on_prefill_piece_done() {
  PrefillBatch& batch = *prefill_running_;
  if (--batch.barrier != 0) return;
  log::debug("t={} prefill batch done ({} reqs)", simulator().now(),
             batch.requests.size());
  const Time now = simulator().now();
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->end_span(now, tr->track("prefill"),
                 {obs::arg("requests", batch.requests.size())});
  }
  // Prefill and KV transfer both finished: hand to decode.
  for (auto& ar : batch.requests) {
    decode_wait_queue_.push_back(std::move(ar));
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->gauge("serve.decode_wait")
        .set(now, static_cast<double>(decode_wait_queue_.size()));
  }
  prefill_running_.reset();
  try_admit_decode();
  try_start_prefill();
}

void ClusterSim::try_admit_decode() {
  const Time now = simulator().now();
  while (!decode_wait_queue_.empty()) {
    ActiveRequest& ar = *decode_wait_queue_.front();
    const std::size_t total_tokens =
        ar.req.input_tokens + std::max<std::size_t>(ar.req.output_tokens, 1);
    // Reused blocks are already resident (and charged) in the cache; the
    // reservation covers only the fresh part of the sequence.
    const Bytes need =
        kv().bytes_for_tokens(total_tokens - ar.reuse_tokens);
    Bytes cached = prefix_cache_ ? prefix_cache_->bytes_used() : Bytes{0.0};
    if (prefix_cache_ && kv_used_ + cached + need > kv_budget_) {
      // Reclaim unpinned cache blocks before letting a request queue on
      // memory: cached prefixes are an optimization, never a reason to
      // delay admission.
      std::vector<kv::CoverageChange> changes;
      prefix_cache_->evict((kv_used_ + cached + need) - kv_budget_,
                           &changes);
      notify_prefix(changes);
      cached = prefix_cache_->bytes_used();
    }
    if (kv_used_ + cached + need > kv_budget_) break;  // memory-gated

    auto owned = std::move(decode_wait_queue_.front());
    decode_wait_queue_.pop_front();
    owned->kv_reserved = need;
    kv_used_ += need;

    if (owned->req.output_tokens <= 1) {
      // The prefill token was the whole response.
      retire_request(std::move(owned), now);
    } else {
      decoding_.push_back(std::move(owned));
    }
  }
  record_kv(now);
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->gauge("serve.decode_wait")
        .set(now, static_cast<double>(decode_wait_queue_.size()));
    m->gauge("serve.decoding").set(now, static_cast<double>(decoding_.size()));
  }
  if (!decode_busy_ && !decoding_.empty()) start_decode_iteration();
}

void ClusterSim::start_decode_iteration() {
  decode_busy_ = true;
  log::debug("t={} decode iteration: {} active, kv={}%", simulator().now(),
             decoding_.size(),
             kv_budget_ > 0 ? 100.0 * kv_used_ / kv_budget_ : 0.0);
  const std::size_t batch_size =
      std::min(decoding_.size(), opts_.decode_batch_limit);
  std::size_t ctx = 0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    ctx += decoding_[i]->req.input_tokens + decoding_[i]->generated + 1;
  }
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->begin_span(simulator().now(), tr->track("decode"), "decode",
                   "iteration",
                   {obs::arg("batch", batch_size), obs::arg("ctx", ctx)});
  }
  if (obs::MetricsRegistry* m = simulator().metrics()) {
    m->counter("serve.decode_iterations").add(1);
  }

  // All pipeline stages run concurrently (steady-state pipelining).
  auto pending = std::make_shared<std::size_t>(decode_stages_.size());
  for (Stage& stage : decode_stages_) {
    const Time compute = stage.kernel->decode_time(batch_size, ctx,
                                                   stage.layers,
                                                   stage.p_tens) *
                         stage_scale(stage);
    simulator().schedule_in(compute, [this, &stage, batch_size, pending] {
      auto finish_piece = [this, batch_size, pending] {
        if (--*pending == 0) on_decode_iteration_done(batch_size);
      };
      if (stage.p_tens <= 1) {
        finish_piece();
        return;
      }
      const Bytes volume =
          opts_.model.iteration_sync_volume(batch_size, stage.layers);
      coll::AllReducePlan plan =
          scheduler_->all_reduce_plan(stage.group, volume);
      engine_->all_reduce(std::move(plan),
                          [finish_piece](const coll::AllReduceResult&) {
                            finish_piece();
                          });
    });
  }
}

void ClusterSim::on_decode_iteration_done(std::size_t batch_size) {
  const Time now = simulator().now();
  batch_size = std::min(batch_size, decoding_.size());
  for (std::size_t i = 0; i < batch_size; ++i) ++decoding_[i]->generated;

  // Retire finished requests (first token came from prefill, so a request
  // needs output_tokens - 1 decode steps).
  std::size_t retired_now = 0;
  for (std::size_t i = batch_size; i-- > 0;) {
    ActiveRequest& ar = *decoding_[i];
    if (ar.generated + 1 >= ar.req.output_tokens) {
      log::debug("t={} retire req {}", now, ar.req.id);
      ++retired_now;
      retire_request(std::move(decoding_[i]), now);
      decoding_.erase(decoding_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  if (obs::EventTracer* tr = simulator().tracer()) {
    tr->end_span(now, tr->track("decode"),
                 {obs::arg("retired", retired_now)});
  }
  record_kv(now);
  decode_busy_ = false;
  try_admit_decode();
  if (!decode_busy_ && !decoding_.empty()) start_decode_iteration();
}

void ClusterSim::begin() { record_kv(simulator().now()); }

void ClusterSim::submit(const wl::Request& request) { on_arrival(request); }

LoadSnapshot ClusterSim::load() const {
  LoadSnapshot snap;
  snap.prefill_requests =
      prefill_queue_.size() +
      (prefill_running_ ? prefill_running_->requests.size() : 0);
  snap.prefill_backlog_tokens = prefill_running_ ? prefill_running_->k_in : 0;
  for (const auto& ar : prefill_queue_) {
    snap.prefill_backlog_tokens += effective_tokens(*ar);
  }
  snap.decode_requests = decode_wait_queue_.size() + decoding_.size();
  snap.in_flight = submitted_ - retired_.size();
  return snap;
}

ServingReport ClusterSim::report(std::size_t expected) const {
  ServingReport report;
  report.submitted = submitted_;
  report.gpus_used = prefill_gpus_.size() + decode_gpus_.size();
  Time last_finish = 0.0;
  std::size_t within_sla = 0;
  HERO_INVARIANT(retired_.size() <= submitted_,
                 "retired {} requests of {} submitted", retired_.size(),
                 submitted_);
  for (const auto& ar : retired_) {
    if (ar->finish < 0) continue;
    ++report.completed;
    last_finish = std::max(last_finish, ar->finish);
    const Time ttft = ar->first_token - ar->req.arrival;
    // TTFT/TPOT accounting: the lifecycle timestamps must be causally
    // ordered (arrival <= first token <= finish) or the percentile stats
    // silently ingest garbage.
    HERO_INVARIANT(ttft >= 0.0, "req {}: first token {} before arrival {}",
                   ar->req.id, ar->first_token, ar->req.arrival);
    HERO_INVARIANT(ar->finish >= ar->first_token,
                   "req {}: finish {} before first token {}", ar->req.id,
                   ar->finish, ar->first_token);
    HERO_INVARIANT(ar->generated + 1 >= ar->req.output_tokens,
                   "req {}: retired after {} of {} tokens", ar->req.id,
                   ar->generated + 1, ar->req.output_tokens);
    report.ttft.add(raw(ttft));
    Time tpot = 0.0;
    if (ar->req.output_tokens > 1) {
      tpot = (ar->finish - ar->first_token) /
             static_cast<double>(ar->req.output_tokens - 1);
      report.tpot.add(raw(tpot));
    }
    if (ttft <= opts_.sla_ttft &&
        (ar->req.output_tokens <= 1 || tpot <= opts_.sla_tpot)) {
      ++within_sla;
    }
  }
  report.sla_attainment =
      expected == 0 ? 0.0
                    : static_cast<double>(within_sla) /
                          static_cast<double>(expected);
  report.makespan = last_finish;
  report.requests_per_second =
      last_finish > 0 ? static_cast<double>(report.completed) / last_finish
                      : 0.0;
  report.per_gpu_goodput =
      report.gpus_used > 0
          ? report.requests_per_second /
                static_cast<double>(report.gpus_used)
          : 0.0;
  report.kv_utilization_avg = kv_util_.average();
  report.kv_utilization_peak = kv_util_.peak();
  report.kv_timeline = kv_timeline_;
  return report;
}

std::vector<RetiredSample> ClusterSim::retired_samples() const {
  std::vector<RetiredSample> samples;
  samples.reserve(retired_.size());
  for (const auto& ar : retired_) {
    if (ar->finish < 0) continue;
    samples.push_back({ar->req.id, ar->req.arrival,
                       ar->first_token - ar->req.arrival, ar->finish});
  }
  return samples;
}

ServingReport ClusterSim::run(const wl::Trace& trace) {
  sim::Simulator& sim = simulator();
  const std::uint64_t ops_before = engine_->ops_completed;
  const std::uint64_t fb_before = engine_->fallbacks_taken;
  obs::EventTracer* tr = sim.tracer();
  const std::uint64_t tr_coll_before =
      tr ? tr->count("collective", obs::Phase::kAsyncEnd) : 0;
  const std::uint64_t tr_fb_before =
      tr ? tr->count("ina_fallback", obs::Phase::kInstant) : 0;
  begin();

  for (const wl::Request& r : trace) {
    sim.schedule(r.arrival, [this, r] { submit(r); });
  }

  while (retired_.size() < trace.size() && sim.now() < opts_.max_sim_time) {
    if (!sim.step()) break;
  }
  if (retired_.size() < trace.size()) {
    log::warn(
        "serving run incomplete: t={} retired={}/{} prefill_q={} "
        "prefill_running={} decode_wait={} decoding={} transfers={} "
        "pending_events={}",
        sim.now(), retired_.size(), trace.size(), prefill_queue_.size(),
        prefill_running_ != nullptr, decode_wait_queue_.size(),
        decoding_.size(), network_->active_transfers(),
        sim.pending_events());
    network_->debug_dump();
  }

  record_kv(sim.now());
  ServingReport report = this->report(trace.size());
  report.collectives = engine_->ops_completed - ops_before;
  report.ina_fallbacks = engine_->fallbacks_taken - fb_before;
  if (tr) {
    // The engine and the tracer count the same completions through
    // independent paths; a mismatch means instrumentation drift.
    report.trace_checked = true;
    report.trace_collectives =
        tr->count("collective", obs::Phase::kAsyncEnd) - tr_coll_before;
    report.trace_ina_fallbacks =
        tr->count("ina_fallback", obs::Phase::kInstant) - tr_fb_before;
    report.trace_consistent =
        report.trace_collectives == report.collectives &&
        report.trace_ina_fallbacks == report.ina_fallbacks;
    // The engine and tracer count the same completions through independent
    // paths; under HERO_VALIDATE instrumentation drift is fatal, not a
    // warning.
    HERO_INVARIANT(report.trace_consistent,
                   "engine/tracer drift: {} vs {} collectives, {} vs {} "
                   "fallbacks",
                   report.collectives, report.trace_collectives,
                   report.ina_fallbacks, report.trace_ina_fallbacks);
    if (!report.trace_consistent) {
      log::warn(
          "serving trace cross-check mismatch: engine collectives={} "
          "fallbacks={} vs tracer collectives={} fallbacks={}",
          report.collectives, report.ina_fallbacks, report.trace_collectives,
          report.trace_ina_fallbacks);
    }
  }
  return report;
}

}  // namespace hero::serve
