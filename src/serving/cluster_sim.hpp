// Disaggregated LLM serving cluster simulator (the role APEX plays in the
// paper's evaluation).
//
// Executes a request trace against a planner-produced deployment:
//   * iteration-level continuous batching (Orca-style) in both clusters;
//   * the prefill pipeline runs a batch through its stages sequentially;
//     each stage is KernelModel compute followed by one aggregated
//     tensor-parallel all-reduce whose scheme/paths come from the
//     CommScheduler (HeroServe online policy or a static baseline);
//   * KV caches stream to the paired decode GPUs concurrently with prefill
//     compute (layer-wise streaming, as disaggregated serving systems do);
//     a request enters decode when both prefill and its KV transfer finish;
//   * decode admission is gated by KV-cache memory (full-sequence
//     reservation); when memory is exhausted requests queue — the paper's
//     "insufficient memory => additional queuing delay";
//   * decode iterations run all pipeline stages concurrently (steady-state
//     pipelining); each iteration appends one token to every running
//     request.
//
// Metrics: per-request TTFT and TPOT, joint SLA attainment, KV-cache
// utilization over time (Fig. 10), aggregate goodput.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "collectives/comm_scheduler.hpp"
#include "collectives/engine.hpp"
#include "common/stats.hpp"
#include "gpusim/kernel_model.hpp"
#include "kvtier/prefix_cache.hpp"
#include "planner/planner.hpp"
#include "workload/trace.hpp"

namespace hero::serve {

struct ServingOptions {
  llm::ModelConfig model;
  Time sla_ttft = 2.5;
  Time sla_tpot = 0.15;
  /// Token budget of one prefill iteration (continuous-batching chunk).
  std::size_t prefill_token_budget = 16384;
  /// Maximum requests decoded per iteration.
  std::size_t decode_batch_limit = 128;
  /// Fraction of GPU memory reserved for weights (rest hosts KV cache);
  /// must match the planner's r_frac.
  double r_frac = 0.8;
  gpu::KernelModelOptions kernel;
  /// Token-block size of the prefix/KV cache tier. 0 disables the tier
  /// entirely: no cache is built, no prefix instants/metrics are emitted,
  /// and the simulation is byte-identical to a build without the tier.
  std::size_t prefix_block_tokens = 0;
  std::uint64_t seed = 1;
  /// Abort the run if simulated time exceeds this (hung/overloaded system).
  Time max_sim_time = 3600.0 * units::sec;
  /// Per-GPU compute slowdown hook (fault injection): returns the current
  /// multiplier (>= 1) applied to kernel times of stages containing the
  /// GPU; a stage runs at the pace of its slowest member. Null = 1.0
  /// everywhere, with zero per-iteration cost.
  std::function<double(topo::NodeId)> compute_scale;
};

/// One sample of decode-cluster KV occupancy (Fig. 10's time series).
struct KvSample {
  Time time = 0.0;
  double utilization = 0.0;
};

/// Point-in-time load of one serving instance — everything a router policy
/// or fleet aggregator reads, sampled in a single call (ClusterSim::load()).
struct LoadSnapshot {
  /// Requests waiting for or inside the prefill pipeline.
  std::size_t prefill_requests = 0;
  /// Input tokens queued ahead of a new arrival (incl. the running batch).
  std::size_t prefill_backlog_tokens = 0;
  /// Requests waiting for or holding decode slots.
  std::size_t decode_requests = 0;
  /// Submitted but not yet retired (the JSQ signal).
  std::size_t in_flight = 0;
};

/// Point-in-time KV-memory state of one instance, from ClusterSim::kv() —
/// the one place the budget, the decode reservations, and the prefix-cache
/// occupancy meet (replaces the old kv_used()/kv_budget()/
/// kv_bytes_per_request() accessor trio).
struct KvSnapshot {
  /// Reserved by running/admitted decode requests.
  Bytes used = 0;
  /// Held by the prefix cache (reclaimable except for pinned blocks).
  Bytes cached = 0;
  /// Decode-cluster KV budget (GPU memory minus weight shards).
  Bytes budget = 0;
  /// KV bytes of one token across all layers.
  Bytes bytes_per_token = 0;

  [[nodiscard]] Bytes free() const { return budget - used - cached; }
  [[nodiscard]] Bytes bytes_for_tokens(std::size_t tokens) const {
    return bytes_per_token * static_cast<double>(tokens);
  }
  [[nodiscard]] double utilization() const {
    return budget > 0 ? (used + cached) / budget : 0.0;
  }
};

/// Counters of the per-instance prefix tier (zero when disabled).
struct PrefixStats {
  std::size_t lookups = 0;     ///< session-carrying submissions
  std::size_t hits = 0;        ///< submissions that reused cached blocks
  std::size_t recomputes = 0;  ///< had a prefix, found nothing local
  std::size_t reused_tokens = 0;  ///< prefill tokens skipped via reuse
  std::size_t published_tokens = 0;  ///< coverage published at retirements
};

/// Per-request outcome of one retired (fully served) request, exported for
/// fleet-level windowed analysis — e.g. p99 TTFT inside a flash-crowd
/// burst, which aggregate percentiles over the whole run would wash out.
struct RetiredSample {
  std::uint64_t id = 0;
  Time arrival = 0.0;
  Time ttft = 0.0;
  Time finish = 0.0;
};

struct ServingReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  Percentiles ttft;
  Percentiles tpot;
  double sla_attainment = 0.0;  ///< fraction meeting both TTFT and TPOT SLAs
  Time makespan = 0.0;
  Rate requests_per_second = 0.0;
  Rate per_gpu_goodput = 0.0;  ///< the paper's scalability metric basis
  double kv_utilization_avg = 0.0;  ///< Fig. 10 metric
  double kv_utilization_peak = 0.0;
  std::vector<KvSample> kv_timeline;  ///< occupancy at every change point
  std::uint64_t collectives = 0;
  std::uint64_t ina_fallbacks = 0;
  std::size_t gpus_used = 0;
  /// Cross-check against the attached EventTracer (tentpole invariant):
  /// when a tracer is attached, `collectives`/`ina_fallbacks` (counted by
  /// the engine) must equal the number of collective spans / fallback
  /// instants the tracer recorded during this run.
  bool trace_checked = false;      ///< a tracer was attached to the run
  bool trace_consistent = true;    ///< engine counters == tracer totals
  std::uint64_t trace_collectives = 0;
  std::uint64_t trace_ina_fallbacks = 0;
};

class ClusterSim {
 public:
  ClusterSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
             coll::CommScheduler& scheduler, planner::PlanResult plan,
             ServingOptions options);

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;
  ~ClusterSim();

  /// Execute the trace to completion (or options.max_sim_time) and report.
  [[nodiscard]] ServingReport run(const wl::Trace& trace);

  // --- fleet-facing API ------------------------------------------------
  // FleetSim drives many ClusterSims on one shared simulator: it submits
  // routed requests itself and assembles per-instance reports at the end.
  // run() is implemented on top of these primitives.

  /// Record the initial KV-occupancy sample. Call once before submitting.
  void begin();
  /// Hand one request to this instance at the current simulated time.
  void submit(const wl::Request& request);
  [[nodiscard]] std::size_t submitted_count() const { return submitted_; }
  [[nodiscard]] std::size_t retired_count() const { return retired_.size(); }

  /// Metrics-only report over everything retired so far. `expected` is the
  /// SLA-attainment denominator (the requests this instance was meant to
  /// serve). Engine/tracer counter deltas are left zero — they are shared
  /// fleet-wide and only the single-instance run() can attribute them.
  [[nodiscard]] ServingReport report(std::size_t expected) const;

  /// Per-request (arrival, TTFT, finish) of every retired request, in
  /// retirement order. FleetSim pools and sorts these fleet-wide.
  [[nodiscard]] std::vector<RetiredSample> retired_samples() const;

  // --- load snapshot (router inputs) -----------------------------------
  /// One-call snapshot of this instance's live load. Router policies and
  /// FleetSim read the whole struct instead of a sprawl of accessors, so a
  /// policy can't mix signals sampled at different instants and a new
  /// signal is one field, not another method on every instance type.
  [[nodiscard]] LoadSnapshot load() const;
  /// One-call KV-memory snapshot (same point-query style as load()).
  [[nodiscard]] KvSnapshot kv() const;
  [[nodiscard]] const planner::PlanResult& plan() const { return plan_; }
  [[nodiscard]] const ServingOptions& options() const { return opts_; }
  [[nodiscard]] const std::vector<topo::NodeId>& prefill_gpu_ids() const {
    return prefill_gpus_;
  }
  [[nodiscard]] const std::vector<topo::NodeId>& decode_gpu_ids() const {
    return decode_gpus_;
  }

  // --- prefix/KV tier (enabled by options.prefix_block_tokens > 0) ------
  // The fleet layer mirrors each instance's cached coverage into the
  // shared PrefixDirectory through the change hook, pins blocks while a
  // cross-instance stream reads them, and adopts streamed-in coverage at
  // the destination before submitting the request.

  [[nodiscard]] bool prefix_enabled() const {
    return prefix_cache_ != nullptr;
  }
  [[nodiscard]] const PrefixStats& prefix_stats() const {
    return prefix_stats_;
  }
  /// Called with (stream, covered tokens) on every coverage change;
  /// 0 tokens = evicted. Not called after retire_prefix_cache().
  void set_prefix_change_hook(
      std::function<void(std::uint64_t, std::size_t)> hook);
  /// Block-aligned cached coverage of a session (0 when tier disabled).
  [[nodiscard]] std::size_t cached_prefix_tokens(std::uint64_t session) const;
  /// Pin/unpin a session's first `tokens` against eviction while a
  /// cross-instance stream reads them (balanced pairs; whole blocks).
  void pin_prefix(std::uint64_t session, std::size_t tokens);
  void unpin_prefix(std::uint64_t session, std::size_t tokens);
  /// Install streamed-in coverage for a session (block-floored, capacity
  /// permitting) as if it had been published locally.
  void adopt_prefix(std::uint64_t session, std::size_t tokens);
  /// Drain teardown: drop unpinned cache contents, refuse future
  /// publications, and silence the change hook — the fleet purges the
  /// directory wholesale instead.
  void retire_prefix_cache();

 private:
  struct Stage;
  struct ActiveRequest;
  struct PrefillBatch;

  net::FlowNetwork* network_;
  coll::CollectiveEngine* engine_;
  coll::CommScheduler* scheduler_;
  planner::PlanResult plan_;
  ServingOptions opts_;

  std::vector<Stage> prefill_stages_;
  std::vector<Stage> decode_stages_;
  std::vector<topo::NodeId> prefill_gpus_;
  std::vector<topo::NodeId> decode_gpus_;

  // Request flow.
  std::deque<std::unique_ptr<ActiveRequest>> prefill_queue_;
  std::unique_ptr<PrefillBatch> prefill_running_;
  std::deque<std::unique_ptr<ActiveRequest>> decode_wait_queue_;
  std::vector<std::unique_ptr<ActiveRequest>> decoding_;
  bool decode_busy_ = false;

  // KV memory accounting (whole decode cluster). Invariant:
  // kv_used_ + prefix-cache bytes <= kv_budget_.
  Bytes kv_budget_ = 0;
  Bytes kv_used_ = 0;
  TimeWeighted kv_util_;
  std::vector<KvSample> kv_timeline_;

  // Prefix/KV tier (null when options.prefix_block_tokens == 0).
  std::unique_ptr<kv::PrefixCache> prefix_cache_;
  std::function<void(std::uint64_t, std::size_t)> prefix_hook_;
  PrefixStats prefix_stats_;

  // Metrics.
  std::vector<std::unique_ptr<ActiveRequest>> retired_;
  std::size_t submitted_ = 0;

  [[nodiscard]] sim::Simulator& simulator();
  void setup_stages();
  void on_arrival(wl::Request request);
  void try_start_prefill();
  void run_prefill_stage(std::size_t stage_index);
  void on_prefill_piece_done();
  void start_kv_transfers(PrefillBatch& batch);
  void try_admit_decode();
  void start_decode_iteration();
  void on_decode_iteration_done(std::size_t batch_size);
  void record_kv(Time now);
  void trace_request_end(const ActiveRequest& ar, Time now);
  void retire_request(std::unique_ptr<ActiveRequest> ar, Time now);
  /// Forward coverage changes to the fleet hook (no-op when unset).
  void notify_prefix(const std::vector<kv::CoverageChange>& changes);
  /// Input tokens this request actually prefills (input minus reuse).
  [[nodiscard]] static std::size_t effective_tokens(const ActiveRequest& ar);
  /// Current fault-injection slowdown of a stage: max compute_scale over
  /// its member GPUs (tensor-parallel peers wait for the slowest shard).
  [[nodiscard]] double stage_scale(const Stage& stage) const;
};

}  // namespace hero::serve
