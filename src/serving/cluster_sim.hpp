// Disaggregated LLM serving cluster simulator (the role APEX plays in the
// paper's evaluation).
//
// Executes a request trace against a planner-produced deployment:
//   * iteration-level continuous batching (Orca-style) in both clusters;
//   * the prefill pipeline runs a batch through its stages sequentially;
//     each stage is KernelModel compute followed by one aggregated
//     tensor-parallel all-reduce whose scheme/paths come from the
//     CommScheduler (HeroServe online policy or a static baseline);
//   * KV caches stream to the paired decode GPUs concurrently with prefill
//     compute (layer-wise streaming, as disaggregated serving systems do);
//     a request enters decode when both prefill and its KV transfer finish;
//   * decode admission is gated by KV-cache memory (full-sequence
//     reservation); when memory is exhausted requests queue — the paper's
//     "insufficient memory => additional queuing delay";
//   * decode iterations run all pipeline stages concurrently (steady-state
//     pipelining); each iteration appends one token to every running
//     request.
//
// Metrics: per-request TTFT and TPOT, joint SLA attainment, KV-cache
// utilization over time (Fig. 10), aggregate goodput.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "collectives/comm_scheduler.hpp"
#include "collectives/engine.hpp"
#include "common/stats.hpp"
#include "gpusim/kernel_model.hpp"
#include "planner/planner.hpp"
#include "workload/trace.hpp"

namespace hero::serve {

struct ServingOptions {
  llm::ModelConfig model;
  Time sla_ttft = 2.5;
  Time sla_tpot = 0.15;
  /// Token budget of one prefill iteration (continuous-batching chunk).
  std::size_t prefill_token_budget = 16384;
  /// Maximum requests decoded per iteration.
  std::size_t decode_batch_limit = 128;
  /// Fraction of GPU memory reserved for weights (rest hosts KV cache);
  /// must match the planner's r_frac.
  double r_frac = 0.8;
  gpu::KernelModelOptions kernel;
  std::uint64_t seed = 1;
  /// Abort the run if simulated time exceeds this (hung/overloaded system).
  Time max_sim_time = 3600.0 * units::sec;
  /// Per-GPU compute slowdown hook (fault injection): returns the current
  /// multiplier (>= 1) applied to kernel times of stages containing the
  /// GPU; a stage runs at the pace of its slowest member. Null = 1.0
  /// everywhere, with zero per-iteration cost.
  std::function<double(topo::NodeId)> compute_scale;
};

/// One sample of decode-cluster KV occupancy (Fig. 10's time series).
struct KvSample {
  Time time = 0.0;
  double utilization = 0.0;
};

/// Point-in-time load of one serving instance — everything a router policy
/// or fleet aggregator reads, sampled in a single call (ClusterSim::load()).
struct LoadSnapshot {
  /// Requests waiting for or inside the prefill pipeline.
  std::size_t prefill_requests = 0;
  /// Input tokens queued ahead of a new arrival (incl. the running batch).
  std::size_t prefill_backlog_tokens = 0;
  /// Requests waiting for or holding decode slots.
  std::size_t decode_requests = 0;
  /// Submitted but not yet retired (the JSQ signal).
  std::size_t in_flight = 0;
  Bytes kv_used = 0;
  Bytes kv_budget = 0;
};

/// Per-request outcome of one retired (fully served) request, exported for
/// fleet-level windowed analysis — e.g. p99 TTFT inside a flash-crowd
/// burst, which aggregate percentiles over the whole run would wash out.
struct RetiredSample {
  std::uint64_t id = 0;
  Time arrival = 0.0;
  Time ttft = 0.0;
  Time finish = 0.0;
};

struct ServingReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  Percentiles ttft;
  Percentiles tpot;
  double sla_attainment = 0.0;  ///< fraction meeting both TTFT and TPOT SLAs
  Time makespan = 0.0;
  Rate requests_per_second = 0.0;
  Rate per_gpu_goodput = 0.0;  ///< the paper's scalability metric basis
  double kv_utilization_avg = 0.0;  ///< Fig. 10 metric
  double kv_utilization_peak = 0.0;
  std::vector<KvSample> kv_timeline;  ///< occupancy at every change point
  std::uint64_t collectives = 0;
  std::uint64_t ina_fallbacks = 0;
  std::size_t gpus_used = 0;
  /// Cross-check against the attached EventTracer (tentpole invariant):
  /// when a tracer is attached, `collectives`/`ina_fallbacks` (counted by
  /// the engine) must equal the number of collective spans / fallback
  /// instants the tracer recorded during this run.
  bool trace_checked = false;      ///< a tracer was attached to the run
  bool trace_consistent = true;    ///< engine counters == tracer totals
  std::uint64_t trace_collectives = 0;
  std::uint64_t trace_ina_fallbacks = 0;
};

class ClusterSim {
 public:
  ClusterSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
             coll::CommScheduler& scheduler, planner::PlanResult plan,
             ServingOptions options);

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;
  ~ClusterSim();

  /// Execute the trace to completion (or options.max_sim_time) and report.
  [[nodiscard]] ServingReport run(const wl::Trace& trace);

  // --- fleet-facing API ------------------------------------------------
  // FleetSim drives many ClusterSims on one shared simulator: it submits
  // routed requests itself and assembles per-instance reports at the end.
  // run() is implemented on top of these primitives.

  /// Record the initial KV-occupancy sample. Call once before submitting.
  void begin();
  /// Hand one request to this instance at the current simulated time.
  void submit(const wl::Request& request);
  [[nodiscard]] std::size_t submitted_count() const { return submitted_; }
  [[nodiscard]] std::size_t retired_count() const { return retired_.size(); }

  /// Metrics-only report over everything retired so far. `expected` is the
  /// SLA-attainment denominator (the requests this instance was meant to
  /// serve). Engine/tracer counter deltas are left zero — they are shared
  /// fleet-wide and only the single-instance run() can attribute them.
  [[nodiscard]] ServingReport report(std::size_t expected) const;

  /// Per-request (arrival, TTFT, finish) of every retired request, in
  /// retirement order. FleetSim pools and sorts these fleet-wide.
  [[nodiscard]] std::vector<RetiredSample> retired_samples() const;

  // --- load snapshot (router inputs) -----------------------------------
  /// One-call snapshot of this instance's live load. Router policies and
  /// FleetSim read the whole struct instead of a sprawl of accessors, so a
  /// policy can't mix signals sampled at different instants and a new
  /// signal is one field, not another method on every instance type.
  [[nodiscard]] LoadSnapshot load() const;
  [[nodiscard]] Bytes kv_used() const { return kv_used_; }
  [[nodiscard]] Bytes kv_budget() const { return kv_budget_; }
  [[nodiscard]] const planner::PlanResult& plan() const { return plan_; }
  [[nodiscard]] const ServingOptions& options() const { return opts_; }
  [[nodiscard]] const std::vector<topo::NodeId>& prefill_gpu_ids() const {
    return prefill_gpus_;
  }
  [[nodiscard]] const std::vector<topo::NodeId>& decode_gpu_ids() const {
    return decode_gpus_;
  }

 private:
  struct Stage;
  struct ActiveRequest;
  struct PrefillBatch;

  net::FlowNetwork* network_;
  coll::CollectiveEngine* engine_;
  coll::CommScheduler* scheduler_;
  planner::PlanResult plan_;
  ServingOptions opts_;

  std::vector<Stage> prefill_stages_;
  std::vector<Stage> decode_stages_;
  std::vector<topo::NodeId> prefill_gpus_;
  std::vector<topo::NodeId> decode_gpus_;

  // Request flow.
  std::deque<std::unique_ptr<ActiveRequest>> prefill_queue_;
  std::unique_ptr<PrefillBatch> prefill_running_;
  std::deque<std::unique_ptr<ActiveRequest>> decode_wait_queue_;
  std::vector<std::unique_ptr<ActiveRequest>> decoding_;
  bool decode_busy_ = false;

  // KV memory accounting (whole decode cluster).
  Bytes kv_budget_ = 0;
  Bytes kv_used_ = 0;
  TimeWeighted kv_util_;
  std::vector<KvSample> kv_timeline_;

  // Metrics.
  std::vector<std::unique_ptr<ActiveRequest>> retired_;
  std::size_t submitted_ = 0;

  [[nodiscard]] sim::Simulator& simulator();
  void setup_stages();
  void on_arrival(wl::Request request);
  void try_start_prefill();
  void run_prefill_stage(std::size_t stage_index);
  void on_prefill_piece_done();
  void start_kv_transfers(PrefillBatch& batch);
  void try_admit_decode();
  void start_decode_iteration();
  void on_decode_iteration_done(std::size_t batch_size);
  void record_kv(Time now);
  void trace_request_end(const ActiveRequest& ar, Time now);

  [[nodiscard]] Bytes kv_bytes_per_request(std::size_t total_tokens) const;
  /// Current fault-injection slowdown of a stage: max compute_scale over
  /// its member GPUs (tensor-parallel peers wait for the slowest shard).
  [[nodiscard]] double stage_scale(const Stage& stage) const;
};

}  // namespace hero::serve
