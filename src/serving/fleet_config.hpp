// Consolidated fleet configuration: one struct describes the whole
// multi-instance serving deployment — fleet shape, dispatch policy, router
// cost weights, and the elastic-autoscaling controller knobs.
//
// This is the single user-facing fleet API (ExperimentConfig::fleet): it
// subsumes what used to be spread over planner::FleetPlannerInputs
// (instances, balance_stage_rates), serve::RouterConfig (policy, seed, cost
// weights) and the per-instance ServingOptions copies the fleet pipeline
// hand-rolled. The planner-facing FleetPlannerInputs still exists — the
// planner layer cannot depend on serving — but the core pipeline derives it
// from this struct, so every knob lives exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/units.hpp"

namespace hero::serve {

enum class RouterPolicy : std::uint8_t {
  kRoundRobin,
  kRandom,
  kShortestQueue,
  kHeroServe,
};

[[nodiscard]] const char* to_string(RouterPolicy policy);
/// Parse "rr" / "random" / "jsq" / "hero" (long names accepted too).
[[nodiscard]] std::optional<RouterPolicy> parse_router_policy(
    std::string_view name);

/// Knobs of the arrival-driven autoscaler (serve::FleetController). The
/// controller runs on a simulator timer: it EWMA-smooths the fleet arrival
/// rate observed at the router, compares demand against the live fleet's
/// aggregate service rate, and scales the instance count up (plan a replica
/// from the spare GPU pool, deploy after a warm-up delay) or down (drain a
/// victim, release its GPUs once the last in-flight request retires).
struct AutoscaleConfig {
  bool enabled = false;
  /// Controller tick period (simulated seconds).
  Time tick_period = 5.0;
  /// EWMA smoothing of the per-tick arrival-rate observation in (0, 1];
  /// 1 = trust the newest tick only.
  double ewma_alpha = 0.35;
  /// Plan so demand stays at this fraction of fleet service capacity —
  /// the SLA headroom a replica keeps for bursts within one tick.
  double target_utilization = 0.65;
  /// Hysteresis band: scale up when demand exceeds
  /// `scale_up_threshold * target_utilization * capacity`; scale down only
  /// when the post-removal fleet would still sit below
  /// `scale_down_threshold * target_utilization * (capacity - victim)`.
  /// The gap between the two is what keeps a flat trace action-free.
  double scale_up_threshold = 1.0;
  double scale_down_threshold = 0.7;
  /// Replica spin-up delay between planning a scale-up and the instance
  /// accepting traffic (model load + KV-cache allocation, simulated).
  Time warmup_delay = 15.0;
  /// Minimum simulated time between scaling decisions (either direction).
  Time cooldown = 10.0;
  std::size_t min_instances = 1;
  std::size_t max_instances = 64;
};

/// Controller activity totals, reported in FleetReport::autoscale (all
/// zero when autoscaling is off). Deterministic for a given seed.
struct AutoscaleStats {
  std::uint64_t ticks = 0;
  std::uint64_t scale_ups = 0;      ///< replicas deployed after warm-up
  std::uint64_t drains = 0;         ///< victims taken out of dispatch
  std::uint64_t releases = 0;       ///< drained replicas' GPU pools returned
  std::uint64_t plan_failures = 0;  ///< spare pool could not fit a replica
  double rate_estimate = 0.0;       ///< final EWMA fleet arrival rate (req/s)
  std::size_t peak_instances = 0;   ///< max simultaneously live instances
};

struct FleetConfig {
  // --- fleet shape ------------------------------------------------------
  /// Replicas packed before serving starts (the static fleet size, and the
  /// elastic fleet's starting point).
  std::size_t instances = 1;
  /// Cap the overprovisioned stage of later replicas so spare GPUs flow to
  /// the lagging stage (planner::FleetPlannerInputs::balance_stage_rates).
  bool balance_stage_rates = true;
  /// Prefer packing each replica onto a single GPU hardware class (mixed
  /// A100/V100/L40 pools), so every replica gets the stage shape its
  /// silicon supports instead of cloning one plan
  /// (planner::FleetPlannerInputs::uniform_hardware_pools).
  bool uniform_hardware_pools = true;

  // --- router (formerly serve::RouterConfig) ----------------------------
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// Seed of the router's own RNG (the `random` policy's only state).
  std::uint64_t router_seed = 1;
  /// Weights of the two HeroServe cost terms (queue delay, KV transfer).
  double queue_weight = 1.0;
  double kv_weight = 1.0;
  /// Marginal TPOT interference charged per occupied decode lane, as a
  /// fraction of a full 1/mu_dec serialization step (decode lanes run
  /// concurrently; a new batch member only stretches the shared step).
  double decode_interference = 0.1;
  /// Fraction of the request's predicted decode residence (output tokens x
  /// the instance's planned TPOT) charged to the cost. Tilts long-output
  /// requests toward fast-decode plans when queue signals are flat — the
  /// drain-tail regime — without overriding backlog under load.
  double completion_weight = 0.01;
  /// Fold the prefix/KV tier into hero dispatch: probe the per-instance
  /// caches and the fleet PrefixDirectory, discount holders' cost by the
  /// reused work, and stream blocks across the fabric when that beats
  /// recomputing them. Off = prefix-blind dispatch (instances still reuse
  /// whatever happens to be cached locally). Irrelevant when the tier
  /// itself is disabled (ServingOptions::prefix_block_tokens == 0).
  bool prefix_affinity = true;

  // --- elastic autoscaling ----------------------------------------------
  AutoscaleConfig autoscale;
};

}  // namespace hero::serve
