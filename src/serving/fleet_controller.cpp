#include "serving/fleet_controller.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::serve {

FleetController::FleetController(FleetSim& fleet,
                                 planner::PlannerInputs replica_inputs)
    : fleet_(&fleet), base_inputs_(std::move(replica_inputs)),
      pristine_(fleet.network().graph()), spare_(fleet.network().graph()) {
  HERO_REQUIRE(base_inputs_.latency != nullptr,
               "FleetController: replica_inputs.latency required");
  const AutoscaleConfig& cfg = fleet_->config().autoscale;
  HERO_REQUIRE(cfg.tick_period > 0.0, "autoscale tick_period must be > 0");
  HERO_REQUIRE(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
               "autoscale ewma_alpha must be in (0, 1]");
  HERO_REQUIRE(cfg.min_instances >= 1, "autoscale min_instances must be >= 1");
  // The starting fleet owns its GPUs: take them out of the spare pool so a
  // scale-up replica can only claim genuinely free hardware.
  for (std::size_t i = 0; i < fleet_->instance_count(); ++i) {
    planner::claim_plan(spare_, fleet_->instance(i).plan());
  }
  stats_.peak_instances = fleet_->instance_count();
}

void FleetController::start() {
  sim::Simulator& sim = fleet_->network().simulator();
  observe_gauge(sim.now());
  sim.schedule_in(fleet_->config().autoscale.tick_period,
                  [this] { tick(); });
}

std::size_t FleetController::spare_gpu_count() const {
  std::size_t n = 0;
  for (topo::NodeId g : spare_.gpus()) {
    if (spare_.node(g).gpu.memory_free > 0.0) ++n;
  }
  return n;
}

Rate FleetController::live_capacity() const {
  Rate capacity = pending_capacity_;
  const Router& router = fleet_->router();
  for (std::size_t i = 0; i < fleet_->instance_count(); ++i) {
    if (router.is_active(i)) {
      capacity += fleet_->instance(i).plan().service_rate;
    }
  }
  return capacity;
}

std::size_t FleetController::live_count() const {
  return fleet_->router().active_count() + pending_deploys_;
}

void FleetController::observe_gauge(Time now) {
  if (obs::MetricsRegistry* m = fleet_->network().simulator().metrics()) {
    m->gauge("fleet.live_instances")
        .set(now, static_cast<double>(fleet_->router().active_count()));
  }
}

void FleetController::reap_drained() {
  sim::Simulator& sim = fleet_->network().simulator();
  std::vector<std::size_t> still_draining;
  still_draining.reserve(draining_.size());
  for (std::size_t id : draining_) {
    // A victim is reapable only once its last in-flight request retired
    // AND no cross-instance prefix stream still reads from (or writes to)
    // its KV memory.
    if (fleet_->instance(id).load().in_flight > 0 ||
        fleet_->stream_busy(id) > 0) {
      still_draining.push_back(id);
      continue;
    }
    // The replica leaves the router for good; mark_released purges its
    // prefix-directory entries BEFORE release_plan returns the GPUs to the
    // spare pool (tier drain-consistency ordering).
    fleet_->router().remove_instance(id);
    fleet_->mark_released(id);
    planner::release_plan(spare_, pristine_, fleet_->instance(id).plan());
    ++stats_.releases;
    if (obs::EventTracer* tr = sim.tracer()) {
      tr->instant(sim.now(), tr->track("fleet"), "fleet", "release",
                  {obs::arg("instance", id)});
    }
    log::debug("t={} autoscale release instance {}", sim.now(), id);
  }
  draining_ = std::move(still_draining);
}

void FleetController::scale_up(Time now) {
  const AutoscaleConfig& cfg = fleet_->config().autoscale;
  sim::Simulator& sim = fleet_->network().simulator();

  // Size the replica for its share of smoothed demand once it has joined.
  planner::PlannerInputs inputs = base_inputs_;
  inputs.graph = &spare_;
  inputs.arrival_rate =
      std::max(rate_ewma_ / static_cast<double>(live_count() + 1), 1e-6);
  inputs.seed = base_inputs_.seed + fleet_->instance_count();
  planner::PlanResult plan = planner::plan_replica(
      inputs, fleet_->config().uniform_hardware_pools);
  if (!plan.feasible) {
    ++stats_.plan_failures;
    log::debug("t={} autoscale plan failure: {}", now,
               plan.infeasible_reason);
    return;
  }

  // Claim immediately — the GPUs are committed the moment the scale-up is
  // decided, and the warm-up window bills to gpu_hours via the deploy time.
  planner::claim_plan(spare_, plan);
  pending_capacity_ += plan.service_rate;
  ++pending_deploys_;
  last_action_ = now;
  sim.schedule_in(cfg.warmup_delay, [this, plan = std::move(plan)] {
    sim::Simulator& s = fleet_->network().simulator();
    pending_capacity_ -= plan.service_rate;
    HERO_INVARIANT(pending_deploys_ > 0, "deploy without pending slot");
    --pending_deploys_;
    fleet_->add_instance(plan);
    ++stats_.scale_ups;
    stats_.peak_instances =
        std::max(stats_.peak_instances, fleet_->router().active_count());
    if (obs::EventTracer* tr = s.tracer()) {
      tr->instant(s.now(), tr->track("fleet"), "fleet", "scale_up",
                  {obs::arg("instance", fleet_->instance_count() - 1),
                   obs::arg("gpus", plan.prefill.all_gpus().size() +
                                        plan.decode.all_gpus().size())});
    }
    observe_gauge(s.now());
    log::debug("t={} autoscale deploy instance {}", s.now(),
               fleet_->instance_count() - 1);
  });
}

void FleetController::scale_down(Time now) {
  const Router& router = fleet_->router();
  // Victim: the active replica with the fewest in-flight requests (least
  // work to drain); ties go to the HIGHEST id so the newest replica
  // retires first and the starting fleet is the last to shrink.
  std::size_t victim = fleet_->instance_count();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < fleet_->instance_count(); ++i) {
    if (!router.is_active(i)) continue;
    const std::size_t in_flight = fleet_->instance(i).load().in_flight;
    if (in_flight <= best) {
      best = in_flight;
      victim = i;
    }
  }
  if (victim == fleet_->instance_count()) return;

  fleet_->router().drain_instance(victim);
  draining_.push_back(victim);
  ++stats_.drains;
  last_action_ = now;
  sim::Simulator& sim = fleet_->network().simulator();
  if (obs::EventTracer* tr = sim.tracer()) {
    tr->instant(now, tr->track("fleet"), "fleet", "drain",
                {obs::arg("instance", victim),
                 obs::arg("in_flight", best)});
  }
  observe_gauge(now);
  log::debug("t={} autoscale drain instance {} (in_flight={})", now, victim,
             best);
}

void FleetController::tick() {
  const AutoscaleConfig& cfg = fleet_->config().autoscale;
  sim::Simulator& sim = fleet_->network().simulator();
  const Time now = sim.now();
  ++stats_.ticks;

  // 1. Arrival-rate observation: dispatches since the previous tick.
  const std::uint64_t dispatched = fleet_->router().dispatched_total();
  const double observed =
      static_cast<double>(dispatched - last_dispatched_) /
      raw(cfg.tick_period);
  last_dispatched_ = dispatched;
  if (!ewma_primed_) {
    rate_ewma_ = observed;
    ewma_primed_ = true;
  } else {
    rate_ewma_ =
        cfg.ewma_alpha * observed + (1.0 - cfg.ewma_alpha) * rate_ewma_;
  }
  stats_.rate_estimate = rate_ewma_;

  // 2. Finish any drains whose last request retired.
  reap_drained();

  // 3. Scaling decision inside the hysteresis band, rate-limited by the
  // cooldown so one burst maps to one action, not one per tick.
  const bool cooled = now - last_action_ >= cfg.cooldown;
  const Rate capacity = live_capacity();
  const std::size_t live = live_count();
  const double target = cfg.target_utilization;
  if (cooled && live < cfg.max_instances &&
      rate_ewma_ > cfg.scale_up_threshold * target * raw(capacity)) {
    scale_up(now);
  } else if (cooled && live > cfg.min_instances && draining_.empty() &&
             pending_deploys_ == 0) {
    // Only shrink when the post-removal fleet would still run comfortably
    // under target — the gap to the scale-up threshold is the hysteresis
    // band that keeps a flat trace action-free.
    std::size_t cheapest = fleet_->instance_count();
    Rate cheapest_rate = 0.0;
    for (std::size_t i = 0; i < fleet_->instance_count(); ++i) {
      if (!fleet_->router().is_active(i)) continue;
      const Rate r = fleet_->instance(i).plan().service_rate;
      if (cheapest == fleet_->instance_count() || r < cheapest_rate) {
        cheapest = i;
        cheapest_rate = r;
      }
    }
    const Rate after = capacity - cheapest_rate;
    if (cheapest != fleet_->instance_count() && after > 0.0 &&
        rate_ewma_ <
            cfg.scale_down_threshold * target * raw(after)) {
      scale_down(now);
    }
  }

  observe_gauge(now);
  sim.schedule_in(cfg.tick_period, [this] { tick(); });
}

}  // namespace hero::serve
