// Arrival-driven fleet autoscaler (ROADMAP item 1; Taming-the-Chaos /
// HexGen-2 style coordinated scaling for disaggregated serving).
//
// The controller runs on a simulator timer inside a FleetSim run. Each
// tick it:
//   1. observes the fleet arrival rate from the router's dispatch counter
//      (requests dispatched this tick / tick period) and EWMA-smooths it;
//   2. reaps drained replicas whose last in-flight request retired —
//      removing them from the router for good and releasing their GPUs
//      back to the spare pool (planner::release_plan against a pristine
//      copy of the topology);
//   3. compares smoothed demand against the live fleet's aggregate
//      service rate: above the scale-up threshold it plans ONE new replica
//      from the spare pool (planner::plan_replica — heterogeneous pools
//      give the replica the stage shape its silicon supports), claims the
//      GPUs immediately, and deploys after a configurable warm-up delay;
//      below the scale-down threshold (hysteresis band) it drains the
//      active replica with the fewest in-flight requests (ties: highest
//      id, so the newest replica goes first);
//   4. records a "fleet.live_instances" gauge point and scale_up / drain /
//      release trace instants.
//
// Everything is driven by simulator time and router counters — no wall
// clock, no ambient randomness — so autoscaled runs are byte-identical
// across reruns (a CI gate).
#pragma once

#include <vector>

#include "planner/fleet.hpp"
#include "serving/fleet_sim.hpp"

namespace hero::serve {

class FleetController {
 public:
  /// `replica_inputs` is the planning template for scale-up replicas; its
  /// graph/arrival_rate/seed are overwritten per replan, and its latency
  /// model must outlive the controller. The FleetSim must already hold the
  /// statically deployed starting instances — the controller claims their
  /// GPUs out of its spare pool at construction. Reads every knob from
  /// fleet.config().autoscale.
  FleetController(FleetSim& fleet, planner::PlannerInputs replica_inputs);

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Schedule the first tick (config.autoscale.tick_period from now).
  /// Ticks reschedule themselves; FleetSim::run's count-driven exit
  /// condition ends the run with the next tick still pending.
  void start();

  [[nodiscard]] const AutoscaleStats& stats() const { return stats_; }
  /// GPUs currently in the spare pool (unclaimed by any live replica or
  /// pending warm-up); exposed for the drain-accounting tests.
  [[nodiscard]] std::size_t spare_gpu_count() const;
  /// Instances draining right now (removed from dispatch, not yet reaped).
  [[nodiscard]] std::size_t draining_count() const {
    return draining_.size();
  }

 private:
  FleetSim* fleet_;
  planner::PlannerInputs base_inputs_;
  /// The topology exactly as handed over — release restores from here.
  topo::Graph pristine_;
  /// Free pool: live/warming replicas' GPUs have memory_free == 0.
  topo::Graph spare_;
  AutoscaleStats stats_;
  double rate_ewma_ = 0.0;
  bool ewma_primed_ = false;
  std::uint64_t last_dispatched_ = 0;
  /// Time of the last scaling decision (hysteresis cooldown anchor);
  /// negative infinity substitute so the first tick may act.
  Time last_action_ = -1.0e18 * units::sec;
  std::vector<std::size_t> draining_;
  /// Service capacity already bought but still warming up; counted toward
  /// fleet capacity so one burst doesn't trigger a scale-up every tick of
  /// the warm-up window.
  Rate pending_capacity_ = 0.0;
  std::size_t pending_deploys_ = 0;

  void tick();
  void reap_drained();
  /// Aggregate service rate of dispatchable replicas (active, not
  /// draining) plus warming-up capacity.
  [[nodiscard]] Rate live_capacity() const;
  [[nodiscard]] std::size_t live_count() const;
  void scale_up(Time now);
  void scale_down(Time now);
  void observe_gauge(Time now);
};

}  // namespace hero::serve
