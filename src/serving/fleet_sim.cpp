#include "serving/fleet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/format.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace hero::serve {

FleetSim::FleetSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
                   coll::CommScheduler& scheduler, FleetConfig config,
                   ServingOptions base_serving)
    : network_(&network), engine_(&engine), scheduler_(&scheduler),
      base_serving_(std::move(base_serving)),
      router_(network, std::move(config)) {}

void FleetSim::set_deploy_hooks(std::function<void(std::size_t)> before,
                                std::function<void(std::size_t)> after) {
  deploy_before_ = std::move(before);
  deploy_after_ = std::move(after);
}

ClusterSim& FleetSim::add_instance(planner::PlanResult plan) {
  const std::size_t id = instances_.size();
  if (deploy_before_) deploy_before_(id);
  ServingOptions options = base_serving_;
  // Decorrelate per-instance randomness without correlating adjacent
  // instances (7919 = the 1000th prime; same derivation PR 4 used).
  options.seed = base_serving_.seed + id * 7919;

  InstanceLifetime life;
  life.deployed = network_->simulator().now();
  life.gpus = plan.prefill.all_gpus().size() + plan.decode.all_gpus().size();

  instances_.push_back(std::make_unique<ClusterSim>(
      *network_, *engine_, *scheduler_, std::move(plan),
      std::move(options)));
  lifetimes_.push_back(life);
  router_.add_instance(*instances_.back());
  if (running_) instances_.back()->begin();
  if (deploy_after_) deploy_after_(id);
  return *instances_.back();
}

void FleetSim::mark_released(std::size_t id) {
  InstanceLifetime& life = lifetimes_.at(id);
  HERO_REQUIRE(life.released < 0, "instance {} released twice", id);
  life.released = network_->simulator().now();
}

std::size_t FleetSim::total_retired() const {
  std::size_t total = 0;
  for (const auto& inst : instances_) total += inst->retired_count();
  return total;
}

FleetReport FleetSim::run(const wl::Trace& trace) {
  HERO_REQUIRE(!instances_.empty(), "FleetSim::run: no instances deployed");
  sim::Simulator& sim = network_->simulator();
  const std::uint64_t ops_before = engine_->ops_completed;
  const std::uint64_t fb_before = engine_->fallbacks_taken;
  obs::EventTracer* tr = sim.tracer();
  const std::uint64_t tr_coll_before =
      tr ? tr->count("collective", obs::Phase::kAsyncEnd) : 0;
  const std::uint64_t tr_fb_before =
      tr ? tr->count("ina_fallback", obs::Phase::kInstant) : 0;

  running_ = true;
  const Time max_sim_time = base_serving_.max_sim_time;
  for (auto& inst : instances_) inst->begin();

  for (const wl::Request& r : trace) {
    sim.schedule(r.arrival, [this, r, tr] {
      // Dispatch happens at the arrival instant against the fleet's live
      // state (queue depths and residual bandwidth as of *now*).
      const std::size_t id = router_.route(r);
      if (tr) {
        tr->instant(network_->simulator().now(), tr->track("router"),
                    "router", "route",
                    {obs::arg("req", r.id), obs::arg("instance", id)});
      }
      instances_[id]->submit(r);
    });
  }

  // Count-driven exit: autoscaler ticks keep the event queue non-empty
  // forever, so the loop ends on the retired count, not queue exhaustion.
  while (total_retired() < trace.size() && sim.now() < max_sim_time) {
    if (!sim.step()) break;
  }
  running_ = false;
  if (total_retired() < trace.size()) {
    log::warn("fleet run incomplete: t={} retired={}/{} instances={}",
              sim.now(), total_retired(), trace.size(), instances_.size());
    network_->debug_dump();
  }

  FleetReport fleet;
  fleet.dispatched = router_.dispatched();
  fleet.lifetimes = lifetimes_;
  ServingReport& agg = fleet.aggregate;
  double within_sla = 0.0;
  Bytes kv_budget_total = 0.0;
  Bytes kv_avg_weighted = 0.0;
  for (auto& inst : instances_) {
    inst->begin();  // close the KV-occupancy time series at `now`
    ServingReport rep = inst->report(inst->submitted_count());
    agg.submitted += rep.submitted;
    agg.completed += rep.completed;
    agg.gpus_used += rep.gpus_used;
    agg.makespan = std::max(agg.makespan, rep.makespan);
    agg.ttft.merge(rep.ttft);
    agg.tpot.merge(rep.tpot);
    // report() normalized attainment by this instance's own submissions;
    // recover the absolute count so the fleet number is exact.
    within_sla += std::round(rep.sla_attainment *
                             static_cast<double>(rep.submitted));
    agg.kv_utilization_peak =
        std::max(agg.kv_utilization_peak, rep.kv_utilization_peak);
    const LoadSnapshot load = inst->load();
    kv_avg_weighted += rep.kv_utilization_avg * load.kv_budget;
    kv_budget_total += load.kv_budget;
    for (RetiredSample s : inst->retired_samples()) {
      fleet.samples.push_back(s);
    }
    fleet.per_instance.push_back(std::move(rep));
  }
  std::sort(fleet.samples.begin(), fleet.samples.end(),
            [](const RetiredSample& a, const RetiredSample& b) {
              if (a.arrival < b.arrival) return true;
              if (b.arrival < a.arrival) return false;
              return a.id < b.id;
            });
  agg.sla_attainment =
      trace.empty() ? 0.0 : within_sla / static_cast<double>(trace.size());
  agg.requests_per_second =
      agg.makespan > 0
          ? static_cast<double>(agg.completed) / agg.makespan
          : 0.0;
  agg.per_gpu_goodput =
      agg.gpus_used > 0 ? agg.requests_per_second /
                              static_cast<double>(agg.gpus_used)
                        : 0.0;
  agg.kv_utilization_avg =
      kv_budget_total > 0 ? kv_avg_weighted / kv_budget_total : 0.0;

  // GPU-hours: each instance holds its GPUs from deployment until its
  // drain completed (released) or the run ended — a never-released replica
  // is paid for through the whole run, which is exactly the static fleet's
  // bill and what the elastic fleet undercuts.
  const Time end_of_run = sim.now();
  for (const InstanceLifetime& life : lifetimes_) {
    const Time held =
        (life.released < 0 ? end_of_run : life.released) - life.deployed;
    fleet.gpu_hours +=
        static_cast<double>(life.gpus) * std::max(0.0, raw(held)) / 3600.0;
  }

  // Engine counters are shared across instances; only fleet-wide deltas
  // are attributable.
  agg.collectives = engine_->ops_completed - ops_before;
  agg.ina_fallbacks = engine_->fallbacks_taken - fb_before;
  if (tr) {
    agg.trace_checked = true;
    agg.trace_collectives =
        tr->count("collective", obs::Phase::kAsyncEnd) - tr_coll_before;
    agg.trace_ina_fallbacks =
        tr->count("ina_fallback", obs::Phase::kInstant) - tr_fb_before;
    agg.trace_consistent =
        agg.trace_collectives == agg.collectives &&
        agg.trace_ina_fallbacks == agg.ina_fallbacks;
    HERO_INVARIANT(agg.trace_consistent,
                   "engine/tracer drift: {} vs {} collectives, {} vs {} "
                   "fallbacks",
                   agg.collectives, agg.trace_collectives, agg.ina_fallbacks,
                   agg.trace_ina_fallbacks);
  }

  if (!fleet.dispatched.empty()) {
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t d : fleet.dispatched) {
      total += d;
      peak = std::max(peak, d);
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(fleet.dispatched.size());
    fleet.dispatch_imbalance =
        mean > 0 ? static_cast<double>(peak) / mean - 1.0 : 0.0;
  }
  return fleet;
}

}  // namespace hero::serve
