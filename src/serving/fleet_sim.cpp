#include "serving/fleet_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/format.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hero::serve {

FleetSim::FleetSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
                   coll::CommScheduler& scheduler, FleetConfig config,
                   ServingOptions base_serving)
    : network_(&network), engine_(&engine), scheduler_(&scheduler),
      base_serving_(std::move(base_serving)),
      router_(network, std::move(config)) {}

void FleetSim::set_deploy_hooks(std::function<void(std::size_t)> before,
                                std::function<void(std::size_t)> after) {
  deploy_before_ = std::move(before);
  deploy_after_ = std::move(after);
}

ClusterSim& FleetSim::add_instance(planner::PlanResult plan) {
  const std::size_t id = instances_.size();
  if (deploy_before_) deploy_before_(id);
  ServingOptions options = base_serving_;
  // Decorrelate per-instance randomness without correlating adjacent
  // instances (7919 = the 1000th prime; same derivation PR 4 used).
  options.seed = base_serving_.seed + id * 7919;

  InstanceLifetime life;
  life.deployed = network_->simulator().now();
  life.gpus = plan.prefill.all_gpus().size() + plan.decode.all_gpus().size();

  instances_.push_back(std::make_unique<ClusterSim>(
      *network_, *engine_, *scheduler_, std::move(plan),
      std::move(options)));
  lifetimes_.push_back(life);
  stream_busy_.push_back(0);
  // The instance's cache mirrors its coverage into the fleet directory.
  instances_.back()->set_prefix_change_hook(
      [this, id](std::uint64_t stream, std::size_t tokens) {
        directory_.update(stream, id, tokens);
      });
  router_.add_instance(*instances_.back());
  if (running_) instances_.back()->begin();
  if (deploy_after_) deploy_after_(id);
  return *instances_.back();
}

void FleetSim::mark_released(std::size_t id) {
  InstanceLifetime& life = lifetimes_.at(id);
  HERO_REQUIRE(life.released < 0, "instance {} released twice", id);
  // Drain consistency (prefix tier): the cache retires and the directory
  // forgets this instance before the caller hands its GPUs back, so no
  // later dispatch can price a stream from released memory.
  HERO_REQUIRE(stream_busy_.at(id) == 0,
               "instance {} released with {} prefix streams in flight", id,
               stream_busy_.at(id));
  instances_.at(id)->retire_prefix_cache();
  directory_.purge_instance(id);
  HERO_INVARIANT(!directory_.instance_has_entries(id),
                 "released instance {} still indexed by the directory", id);
  life.released = network_->simulator().now();
}

std::size_t FleetSim::total_retired() const {
  std::size_t total = 0;
  for (const auto& inst : instances_) total += inst->retired_count();
  return total;
}

void FleetSim::dispatch(const wl::Request& request) {
  sim::Simulator& sim = network_->simulator();
  ArrivalContext ctx = router_.make_context(request);

  // Prefix affinity: fold the per-instance caches and the fleet directory
  // into the context so the hero cost can discount holders and the router
  // can quote a cross-instance stream.
  if (prefix_tier_enabled() && router_.config().prefix_affinity &&
      router_.config().policy == RouterPolicy::kHeroServe &&
      request.session_id != 0 && request.prefix_tokens > 0) {
    const std::size_t bt = base_serving_.prefix_block_tokens;
    const std::size_t usable = request.prefix_tokens / bt * bt;
    if (usable > 0) {
      ctx.prefix_tokens = usable;
      for (std::size_t i = 0; i < instances_.size(); ++i) {
        ctx.probes[i].prefix_tokens = std::min(
            usable, instances_[i]->cached_prefix_tokens(request.session_id));
      }
      if (const auto best = directory_.best(request.session_id)) {
        ctx.prefix_instance = best->instance;
        ctx.prefix_tokens = std::min(usable, best->tokens);
      }
    }
  }

  const RouteDecision decision = router_.route(ctx);
  if (obs::EventTracer* tr = sim.tracer()) {
    tr->instant(sim.now(), tr->track("router"), "router", "route",
                {obs::arg("req", request.id),
                 obs::arg("instance", decision.instance)});
  }
  if (decision.prefix == PrefixAction::kStream) {
    start_prefix_stream(decision, request);
  } else {
    instances_[decision.instance]->submit(request);
  }
}

void FleetSim::start_prefix_stream(const RouteDecision& decision,
                                   const wl::Request& request) {
  sim::Simulator& sim = network_->simulator();
  const std::size_t from = decision.stream_from;
  const std::size_t to = decision.instance;
  const std::size_t tokens = decision.reuse_tokens;

  // Pin the source blocks for the duration of the stream; both endpoints
  // count as stream-busy so a drain cannot release either mid-transfer.
  instances_.at(from)->pin_prefix(request.session_id, tokens);
  ++stream_busy_.at(from);
  ++stream_busy_.at(to);
  ++streams_total_;
  stream_bytes_total_ += decision.stream_bytes;

  if (obs::EventTracer* tr = sim.tracer()) {
    tr->instant(sim.now(), tr->track("kv"), "kv", "kv.stream",
                {obs::arg("session", request.session_id),
                 obs::arg("from", from), obs::arg("to", to),
                 obs::arg("tokens", tokens),
                 obs::arg("bytes", decision.stream_bytes)});
  }
  if (obs::MetricsRegistry* m = sim.metrics()) {
    m->counter("kv.streams").add(1);
    m->counter("kv.stream_bytes")
        .add(static_cast<std::uint64_t>(raw(decision.stream_bytes)));
  }

  const auto& sdec = instances_[from]->decode_gpu_ids();
  const auto& ddec = instances_[to]->decode_gpu_ids();
  if (sdec.empty() || ddec.empty() || decision.stream_bytes <= 0.0) {
    // Nothing to move (degenerate plan); complete synchronously.
    finish_prefix_stream(from, to, request, tokens);
    return;
  }
  // One pipelined flow per source decode GPU to its paired destination
  // GPU — the same sharding the router's quote priced.
  const Bytes per_src =
      decision.stream_bytes / static_cast<double>(sdec.size());
  auto barrier = std::make_shared<std::size_t>(sdec.size());
  for (std::size_t i = 0; i < sdec.size(); ++i) {
    const std::size_t j = i * ddec.size() / sdec.size();
    const topo::Path path = scheduler_->unicast_path(sdec[i], ddec[j]);
    net::TransferOptions topts;
    topts.pipelined = true;  // RDMA bulk stream
    topts.on_complete = [this, barrier, from, to, request,
                         tokens](net::TransferId) {
      if (--*barrier != 0) return;
      finish_prefix_stream(from, to, request, tokens);
    };
    network_->start_transfer(path, per_src, std::move(topts));
  }
}

void FleetSim::finish_prefix_stream(std::size_t from, std::size_t to,
                                    const wl::Request& request,
                                    std::size_t tokens) {
  instances_.at(from)->unpin_prefix(request.session_id, tokens);
  // Adoption publishes the streamed coverage at the destination (capacity
  // permitting) and mirrors it into the directory, so the submit below
  // finds it as a local hit — and the *next* turn of the session routes
  // to `to` directly.
  instances_.at(to)->adopt_prefix(request.session_id, tokens);
  HERO_INVARIANT(stream_busy_.at(from) > 0 && stream_busy_.at(to) > 0,
                 "prefix stream {} -> {} finished without busy marks", from,
                 to);
  --stream_busy_.at(from);
  --stream_busy_.at(to);
  instances_.at(to)->submit(request);
}

FleetReport FleetSim::run(const wl::Trace& trace) {
  HERO_REQUIRE(!instances_.empty(), "FleetSim::run: no instances deployed");
  sim::Simulator& sim = network_->simulator();
  const std::uint64_t ops_before = engine_->ops_completed;
  const std::uint64_t fb_before = engine_->fallbacks_taken;
  obs::EventTracer* tr = sim.tracer();
  const std::uint64_t tr_coll_before =
      tr ? tr->count("collective", obs::Phase::kAsyncEnd) : 0;
  const std::uint64_t tr_fb_before =
      tr ? tr->count("ina_fallback", obs::Phase::kInstant) : 0;

  running_ = true;
  const Time max_sim_time = base_serving_.max_sim_time;
  for (auto& inst : instances_) inst->begin();

  for (const wl::Request& r : trace) {
    // Dispatch happens at the arrival instant against the fleet's live
    // state (queue depths and residual bandwidth as of *now*).
    sim.schedule(r.arrival, [this, r] { dispatch(r); });
  }

  // Count-driven exit: autoscaler ticks keep the event queue non-empty
  // forever, so the loop ends on the retired count, not queue exhaustion.
  while (total_retired() < trace.size() && sim.now() < max_sim_time) {
    if (!sim.step()) break;
  }
  running_ = false;
  if (total_retired() < trace.size()) {
    log::warn("fleet run incomplete: t={} retired={}/{} instances={}",
              sim.now(), total_retired(), trace.size(), instances_.size());
    network_->debug_dump();
  }

  FleetReport fleet;
  fleet.dispatched = router_.dispatched();
  fleet.lifetimes = lifetimes_;
  ServingReport& agg = fleet.aggregate;
  double within_sla = 0.0;
  Bytes kv_budget_total = 0.0;
  Bytes kv_avg_weighted = 0.0;
  for (auto& inst : instances_) {
    inst->begin();  // close the KV-occupancy time series at `now`
    ServingReport rep = inst->report(inst->submitted_count());
    agg.submitted += rep.submitted;
    agg.completed += rep.completed;
    agg.gpus_used += rep.gpus_used;
    agg.makespan = std::max(agg.makespan, rep.makespan);
    agg.ttft.merge(rep.ttft);
    agg.tpot.merge(rep.tpot);
    // report() normalized attainment by this instance's own submissions;
    // recover the absolute count so the fleet number is exact.
    within_sla += std::round(rep.sla_attainment *
                             static_cast<double>(rep.submitted));
    agg.kv_utilization_peak =
        std::max(agg.kv_utilization_peak, rep.kv_utilization_peak);
    const KvSnapshot kv = inst->kv();
    kv_avg_weighted += rep.kv_utilization_avg * kv.budget;
    kv_budget_total += kv.budget;
    const PrefixStats& ps = inst->prefix_stats();
    fleet.prefix.lookups += ps.lookups;
    fleet.prefix.hits += ps.hits;
    fleet.prefix.recomputes += ps.recomputes;
    fleet.prefix.reused_tokens += ps.reused_tokens;
    fleet.prefix.published_tokens += ps.published_tokens;
    for (RetiredSample s : inst->retired_samples()) {
      fleet.samples.push_back(s);
    }
    fleet.per_instance.push_back(std::move(rep));
  }
  std::sort(fleet.samples.begin(), fleet.samples.end(),
            [](const RetiredSample& a, const RetiredSample& b) {
              if (a.arrival < b.arrival) return true;
              if (b.arrival < a.arrival) return false;
              return a.id < b.id;
            });
  agg.sla_attainment =
      trace.empty() ? 0.0 : within_sla / static_cast<double>(trace.size());
  agg.requests_per_second =
      agg.makespan > 0
          ? static_cast<double>(agg.completed) / agg.makespan
          : 0.0;
  agg.per_gpu_goodput =
      agg.gpus_used > 0 ? agg.requests_per_second /
                              static_cast<double>(agg.gpus_used)
                        : 0.0;
  agg.kv_utilization_avg =
      kv_budget_total > 0 ? kv_avg_weighted / kv_budget_total : 0.0;
  fleet.prefix_streams = streams_total_;
  fleet.prefix_stream_bytes = stream_bytes_total_;

  // GPU-hours: each instance holds its GPUs from deployment until its
  // drain completed (released) or the run ended — a never-released replica
  // is paid for through the whole run, which is exactly the static fleet's
  // bill and what the elastic fleet undercuts.
  const Time end_of_run = sim.now();
  for (const InstanceLifetime& life : lifetimes_) {
    const Time held =
        (life.released < 0 ? end_of_run : life.released) - life.deployed;
    fleet.gpu_hours +=
        static_cast<double>(life.gpus) * std::max(0.0, raw(held)) / 3600.0;
  }

  // Engine counters are shared across instances; only fleet-wide deltas
  // are attributable.
  agg.collectives = engine_->ops_completed - ops_before;
  agg.ina_fallbacks = engine_->fallbacks_taken - fb_before;
  if (tr) {
    agg.trace_checked = true;
    agg.trace_collectives =
        tr->count("collective", obs::Phase::kAsyncEnd) - tr_coll_before;
    agg.trace_ina_fallbacks =
        tr->count("ina_fallback", obs::Phase::kInstant) - tr_fb_before;
    agg.trace_consistent =
        agg.trace_collectives == agg.collectives &&
        agg.trace_ina_fallbacks == agg.ina_fallbacks;
    HERO_INVARIANT(agg.trace_consistent,
                   "engine/tracer drift: {} vs {} collectives, {} vs {} "
                   "fallbacks",
                   agg.collectives, agg.trace_collectives, agg.ina_fallbacks,
                   agg.trace_ina_fallbacks);
  }

  if (!fleet.dispatched.empty()) {
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t d : fleet.dispatched) {
      total += d;
      peak = std::max(peak, d);
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(fleet.dispatched.size());
    fleet.dispatch_imbalance =
        mean > 0 ? static_cast<double>(peak) / mean - 1.0 : 0.0;
  }
  return fleet;
}

}  // namespace hero::serve
