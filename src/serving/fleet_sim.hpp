// Multi-instance serving simulator: N replicated (prefill, decode)
// ClusterSim instances behind one Router, all driven by the one shared
// sim::Simulator. Instances share the flow network (so cross-instance KV
// and collective traffic genuinely contend on rack uplinks), the obs sink,
// the collective engine, and — through the simulator — the fault injector.
//
// FleetSim owns the dispatch loop: each trace arrival is routed at its
// arrival instant against the fleet's *current* state, then submitted to
// the chosen instance. The fleet is elastic — instances can be deployed
// mid-run (FleetController scale-up) and drained/released; FleetSim tracks
// each instance's deploy/release lifetime so reports can integrate
// GPU-hours, the autoscaling bench's cost metric. Reports aggregate the
// per-instance distributions (pooled percentiles, fleet goodput) next to
// each instance's own numbers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "serving/cluster_sim.hpp"
#include "serving/router.hpp"

namespace hero::serve {

/// Deploy/release window of one instance (simulated seconds).
struct InstanceLifetime {
  Time deployed = 0.0;
  Time released = -1.0;  ///< -1 = still live when the run ended
  std::size_t gpus = 0;
};

struct FleetReport {
  ServingReport aggregate;  ///< pooled over all instances
  std::vector<ServingReport> per_instance;
  std::vector<std::uint64_t> dispatched;  ///< router decisions per instance
  /// max/mean - 1 over per-instance dispatch counts (0 = perfectly even).
  double dispatch_imbalance = 0.0;
  /// Integral of (live GPUs) dt over the run, in GPU-hours — what an
  /// elastic fleet saves by releasing drained replicas' GPUs.
  double gpu_hours = 0.0;
  std::vector<InstanceLifetime> lifetimes;
  /// Every retired request fleet-wide, sorted by (arrival, id) — windowed
  /// latency analysis (flash-crowd recovery) reads these.
  std::vector<RetiredSample> samples;
  /// Controller activity (all zero when autoscaling is off); filled in by
  /// the caller that owns the FleetController.
  AutoscaleStats autoscale;
};

class FleetSim {
 public:
  /// All instances share `scheduler` (per-instance group tables) and derive
  /// their ServingOptions from `base_serving` (per-instance seeds are
  /// decorrelated internally) — the per-instance options duplication the
  /// FleetConfig consolidation deleted.
  FleetSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
           coll::CommScheduler& scheduler, FleetConfig config,
           ServingOptions base_serving);

  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  /// Bracket every instance deployment: `before(id)` runs just ahead of the
  /// ClusterSim construction (heroserve scopes hero-scheduler group names
  /// per instance there), `after(id)` once the instance is registered.
  /// Applies to mid-run scale-ups too.
  void set_deploy_hooks(std::function<void(std::size_t)> before,
                        std::function<void(std::size_t)> after);

  /// Deploy one planned instance and add it to the dispatch set. Callable
  /// mid-run: the instance joins at the current simulated time and its
  /// lifetime starts there.
  ClusterSim& add_instance(planner::PlanResult plan);

  /// Record that `id`'s GPUs were returned to the spare pool (closes its
  /// lifetime for the GPU-hours integral). The FleetController calls this
  /// when a drained instance retires its last in-flight request.
  void mark_released(std::size_t id);

  /// Route + serve the whole trace on the shared simulator.
  [[nodiscard]] FleetReport run(const wl::Trace& trace);

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] const FleetConfig& config() const {
    return router_.config();
  }
  [[nodiscard]] net::FlowNetwork& network() { return *network_; }
  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] ClusterSim& instance(std::size_t id) {
    return *instances_.at(id);
  }
  [[nodiscard]] const std::vector<InstanceLifetime>& lifetimes() const {
    return lifetimes_;
  }

 private:
  net::FlowNetwork* network_;
  coll::CollectiveEngine* engine_;
  coll::CommScheduler* scheduler_;
  ServingOptions base_serving_;
  Router router_;
  std::vector<std::unique_ptr<ClusterSim>> instances_;
  std::vector<InstanceLifetime> lifetimes_;
  std::function<void(std::size_t)> deploy_before_;
  std::function<void(std::size_t)> deploy_after_;
  bool running_ = false;

  [[nodiscard]] std::size_t total_retired() const;
};

}  // namespace hero::serve
