// Multi-instance serving simulator: N replicated (prefill, decode)
// ClusterSim instances behind one Router, all driven by the one shared
// sim::Simulator. Instances share the flow network (so cross-instance KV
// and collective traffic genuinely contend on rack uplinks), the obs sink,
// the collective engine, and — through the simulator — the fault injector.
//
// FleetSim owns the dispatch loop: each trace arrival is routed at its
// arrival instant against the fleet's *current* state, then submitted to
// the chosen instance. The fleet is elastic — instances can be deployed
// mid-run (FleetController scale-up) and drained/released; FleetSim tracks
// each instance's deploy/release lifetime so reports can integrate
// GPU-hours, the autoscaling bench's cost metric. Reports aggregate the
// per-instance distributions (pooled percentiles, fleet goodput) next to
// each instance's own numbers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kvtier/directory.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/router.hpp"

namespace hero::serve {

/// Deploy/release window of one instance (simulated seconds).
struct InstanceLifetime {
  Time deployed = 0.0;
  Time released = -1.0;  ///< -1 = still live when the run ended
  std::size_t gpus = 0;
};

struct FleetReport {
  ServingReport aggregate;  ///< pooled over all instances
  std::vector<ServingReport> per_instance;
  std::vector<std::uint64_t> dispatched;  ///< router decisions per instance
  /// max/mean - 1 over per-instance dispatch counts (0 = perfectly even).
  double dispatch_imbalance = 0.0;
  /// Integral of (live GPUs) dt over the run, in GPU-hours — what an
  /// elastic fleet saves by releasing drained replicas' GPUs.
  double gpu_hours = 0.0;
  std::vector<InstanceLifetime> lifetimes;
  /// Every retired request fleet-wide, sorted by (arrival, id) — windowed
  /// latency analysis (flash-crowd recovery) reads these.
  std::vector<RetiredSample> samples;
  /// Controller activity (all zero when autoscaling is off); filled in by
  /// the caller that owns the FleetController.
  AutoscaleStats autoscale;
  /// Prefix/KV tier totals (all zero when the tier is disabled).
  PrefixStats prefix;                  ///< summed over instances
  std::uint64_t prefix_streams = 0;    ///< cross-instance block streams
  Bytes prefix_stream_bytes = 0.0;     ///< bytes those streams moved
};

class FleetSim {
 public:
  /// All instances share `scheduler` (per-instance group tables) and derive
  /// their ServingOptions from `base_serving` (per-instance seeds are
  /// decorrelated internally) — the per-instance options duplication the
  /// FleetConfig consolidation deleted.
  FleetSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
           coll::CommScheduler& scheduler, FleetConfig config,
           ServingOptions base_serving);

  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  /// Bracket every instance deployment: `before(id)` runs just ahead of the
  /// ClusterSim construction (heroserve scopes hero-scheduler group names
  /// per instance there), `after(id)` once the instance is registered.
  /// Applies to mid-run scale-ups too.
  void set_deploy_hooks(std::function<void(std::size_t)> before,
                        std::function<void(std::size_t)> after);

  /// Deploy one planned instance and add it to the dispatch set. Callable
  /// mid-run: the instance joins at the current simulated time and its
  /// lifetime starts there.
  ClusterSim& add_instance(planner::PlanResult plan);

  /// Record that `id`'s GPUs were returned to the spare pool (closes its
  /// lifetime for the GPU-hours integral). The FleetController calls this
  /// when a drained instance retires its last in-flight request — BEFORE
  /// planner::release_plan hands the GPUs back, because this is also where
  /// the prefix tier's drain consistency is enforced: the instance's cache
  /// retires and every one of its PrefixDirectory entries is purged, so
  /// the router can never price a stream from released memory.
  void mark_released(std::size_t id);

  /// Route + serve the whole trace on the shared simulator.
  [[nodiscard]] FleetReport run(const wl::Trace& trace);

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] const FleetConfig& config() const {
    return router_.config();
  }
  [[nodiscard]] net::FlowNetwork& network() { return *network_; }
  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] ClusterSim& instance(std::size_t id) {
    return *instances_.at(id);
  }
  [[nodiscard]] const std::vector<InstanceLifetime>& lifetimes() const {
    return lifetimes_;
  }

  // --- prefix/KV tier ---------------------------------------------------
  [[nodiscard]] bool prefix_tier_enabled() const {
    return base_serving_.prefix_block_tokens > 0;
  }
  [[nodiscard]] const kv::PrefixDirectory& directory() const {
    return directory_;
  }
  /// In-flight cross-instance prefix streams touching `id` (as source or
  /// destination). A draining instance must not be released while > 0.
  [[nodiscard]] std::size_t stream_busy(std::size_t id) const {
    return stream_busy_.at(id);
  }
  /// Route one request against the fleet's live state and execute the
  /// decision (direct submit, or prefix stream then submit). run() calls
  /// this per arrival; exposed so tests can drive single dispatches.
  void dispatch(const wl::Request& request);

 private:
  net::FlowNetwork* network_;
  coll::CollectiveEngine* engine_;
  coll::CommScheduler* scheduler_;
  ServingOptions base_serving_;
  Router router_;
  std::vector<std::unique_ptr<ClusterSim>> instances_;
  std::vector<InstanceLifetime> lifetimes_;
  std::function<void(std::size_t)> deploy_before_;
  std::function<void(std::size_t)> deploy_after_;
  bool running_ = false;

  // Prefix/KV tier state (inert when the tier is disabled).
  kv::PrefixDirectory directory_;
  std::vector<std::size_t> stream_busy_;
  std::uint64_t streams_total_ = 0;
  Bytes stream_bytes_total_ = 0.0;

  [[nodiscard]] std::size_t total_retired() const;
  /// Execute a kStream decision: pin at the source, move the blocks as
  /// pipelined fabric flows, adopt at the destination, then submit.
  void start_prefix_stream(const RouteDecision& decision,
                           const wl::Request& request);
  void finish_prefix_stream(std::size_t from, std::size_t to,
                            const wl::Request& request,
                            std::size_t tokens);
};

}  // namespace hero::serve
