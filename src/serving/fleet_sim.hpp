// Multi-instance serving simulator: N replicated (prefill, decode)
// ClusterSim instances behind one Router, all driven by the one shared
// sim::Simulator. Instances share the flow network (so cross-instance KV
// and collective traffic genuinely contend on rack uplinks), the obs sink,
// the collective engine, and — through the simulator — the fault injector.
//
// FleetSim owns the dispatch loop: each trace arrival is routed at its
// arrival instant against the fleet's *current* state, then submitted to
// the chosen instance. Reports aggregate the per-instance distributions
// (pooled percentiles, fleet goodput) next to each instance's own numbers.
#pragma once

#include <memory>
#include <vector>

#include "serving/cluster_sim.hpp"
#include "serving/router.hpp"

namespace hero::serve {

struct FleetReport {
  ServingReport aggregate;  ///< pooled over all instances
  std::vector<ServingReport> per_instance;
  std::vector<std::uint64_t> dispatched;  ///< router decisions per instance
  /// max/mean - 1 over per-instance dispatch counts (0 = perfectly even).
  double dispatch_imbalance = 0.0;
};

class FleetSim {
 public:
  FleetSim(net::FlowNetwork& network, coll::CollectiveEngine& engine,
           RouterConfig router_config);

  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  /// Deploy one planned instance. The scheduler reference must outlive the
  /// fleet; instances may share one scheduler (per-instance group tables)
  /// or bring their own.
  ClusterSim& add_instance(coll::CommScheduler& scheduler,
                           planner::PlanResult plan, ServingOptions options);

  /// Route + serve the whole trace on the shared simulator.
  [[nodiscard]] FleetReport run(const wl::Trace& trace);

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] ClusterSim& instance(std::size_t id) {
    return *instances_.at(id);
  }

 private:
  net::FlowNetwork* network_;
  coll::CollectiveEngine* engine_;
  Router router_;
  std::vector<std::unique_ptr<ClusterSim>> instances_;

  [[nodiscard]] std::size_t total_retired() const;
};

}  // namespace hero::serve
