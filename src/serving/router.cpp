#include "serving/router.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "topology/paths.hpp"

namespace hero::serve {

const char* to_string(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "rr";
    case RouterPolicy::kRandom: return "random";
    case RouterPolicy::kShortestQueue: return "jsq";
    case RouterPolicy::kHeroServe: return "hero";
  }
  return "?";
}

std::optional<RouterPolicy> parse_router_policy(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return RouterPolicy::kRoundRobin;
  }
  if (name == "random") return RouterPolicy::kRandom;
  if (name == "jsq" || name == "shortest-queue") {
    return RouterPolicy::kShortestQueue;
  }
  if (name == "hero" || name == "heroserve") return RouterPolicy::kHeroServe;
  return std::nullopt;
}

Router::Router(net::FlowNetwork& network, FleetConfig config)
    : network_(&network), config_(std::move(config)),
      rng_(config_.router_seed) {}

std::size_t Router::add_instance(ClusterSim& instance) {
  Instance inst;
  inst.sim = &instance;
  // Static pairing paths: GPU i of the prefill cluster streams its KV shard
  // to decode GPU i * |dec| / |pre| (the serving simulator's mapping). The
  // route is the plain shortest path — the *load* is applied at dispatch
  // time through the fair-share bandwidth vector, so the estimate follows
  // congestion without perturbing any scheduler state.
  const auto& pre = instance.prefill_gpu_ids();
  const auto& dec = instance.decode_gpu_ids();
  inst.kv_paths.reserve(pre.size());
  for (std::size_t i = 0; i < pre.size() && !dec.empty(); ++i) {
    const std::size_t j = i * dec.size() / pre.size();
    auto path = topo::shortest_path(network_->graph(), pre[i], dec[j]);
    if (path) inst.kv_paths.push_back(std::move(*path));
  }
  instances_.push_back(std::move(inst));
  dispatched_.push_back(0);
  return instances_.size() - 1;
}

void Router::drain_instance(std::size_t id) {
  Instance& inst = instances_.at(id);
  HERO_REQUIRE(inst.state != State::kRemoved,
               "drain_instance: instance {} already removed", id);
  inst.state = State::kDraining;
}

void Router::remove_instance(std::size_t id) {
  Instance& inst = instances_.at(id);
  HERO_REQUIRE(inst.state == State::kDraining,
               "remove_instance: instance {} not draining", id);
  inst.state = State::kRemoved;
}

std::size_t Router::active_count() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_) {
    if (inst.state == State::kActive) ++n;
  }
  return n;
}

std::vector<std::size_t> Router::active_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].state == State::kActive) ids.push_back(i);
  }
  return ids;
}

double Router::cost_for(const Instance& inst,
                        const wl::Request& request) const {
  const ClusterSim& sim = *inst.sim;
  const planner::PlanResult& plan = sim.plan();
  const ServingOptions& opts = sim.options();
  const LoadSnapshot load = sim.load();

  // Queue-delay estimate from the live load snapshot, built to predict the
  // *TTFT* this request would see. The prefill backlog is token-weighted
  // (one K_in-sized prompt = one "equivalent request" of the capacity
  // model, so a burst of heavy prompts counts for what it costs, not how
  // many requests it is) and drains at the planned prefill rate. Decode
  // lanes run concurrently: an occupied lane delays nobody until the lanes
  // run out, so decode contributes only its overflow past the planned
  // batch limit — counting every decoding request at 1/mu would swamp the
  // backlog signal and steer whole bursts onto the instance with the
  // deepest prefill queue but one free lane. The estimate is continuous in
  // the backlog: plateaus of identical costs would collapse into the
  // lowest-id tie-break and funnel whole bursts to one instance.
  const double k_in = static_cast<double>(
      std::max<std::size_t>(plan.planned_k_in, 1));
  const Rate mu_pre = std::max(plan.service_rate_prefill, Rate{1e-9});
  const Rate mu_dec = std::max(plan.service_rate_decode, Rate{1e-9});
  const double backlog_reqs =
      static_cast<double>(load.prefill_backlog_tokens +
                          request.input_tokens) /
      k_in;
  const double decode_overflow =
      static_cast<double>(load.decode_requests + 1) -
      static_cast<double>(plan.q_decode);
  // Below the lane limit a decode occupant still costs a little: every
  // extra batch member stretches the whole batch's step time, so charge a
  // lightly-weighted interference term. It spreads near-tie traffic off
  // the momentarily-cheapest instance (shallower batches, better TPOT and
  // drain tail) but stays an order of magnitude under the serialization
  // reading (1/mu_dec each), which would swamp the prefill-backlog signal.
  const Time queue_s =
      backlog_reqs / mu_pre + std::max(0.0, decode_overflow) / mu_dec +
      config_.decode_interference *
          static_cast<double>(load.decode_requests) / mu_dec;

  // Decode-completion term: the request's predicted decode residence at the
  // instance's planned TPOT (plans differ — a decode pool with more tensor
  // parallelism steps faster). Down-weighted so it decides placement only
  // when the load signals are flat: the fleet's drain tail is set by where
  // the last long-output requests land, and parking one on the slowest
  // decoder stretches the makespan long after every queue has emptied.
  const Time completion_s = config_.completion_weight *
                            static_cast<double>(request.output_tokens) *
                            plan.t_decode;

  // KV-transfer latency over the current flow network: the request's
  // per-GPU KV shard across the worst pairing path at the rate a new flow
  // would be admitted at (pipelined stream: PathEstimate's post-admission
  // fair share + fixed hop latencies). Fair share — not residual: under
  // max-min sharing a saturated link admits a new flow at C/(n+1) by
  // squeezing the others, while its residual reads zero, which would send
  // every instance's estimate to infinity at once and collapse the
  // comparison into the lowest-id tie-break — the exact herding the cost
  // model exists to prevent.
  Time kv_s = 0.0;
  const Bytes bytes = opts.model.kv_transfer_bytes_per_gpu(
      request.input_tokens, plan.prefill.parallel.p_tens);
  for (const topo::Path& path : inst.kv_paths) {
    if (path.edges.empty()) continue;  // co-located pair
    const net::PathEstimate est = network_->estimate_path(path);
    const Time latency =
        (est.fair_share > 0 ? bytes / est.fair_share
                            : std::numeric_limits<Time>::infinity()) +
        est.latency;
    kv_s = std::max(kv_s, latency);
  }

  return raw(config_.queue_weight * queue_s + completion_s +
             config_.kv_weight * kv_s);
}

double Router::cost(std::size_t id, const wl::Request& request) const {
  return cost_for(instances_.at(id), request);
}

std::size_t Router::route(const wl::Request& request) {
  const std::vector<std::size_t> active = active_ids();
  if (active.empty()) {
    throw std::logic_error("Router::route: no active instances");
  }
  std::size_t pick = active.front();
  switch (config_.policy) {
    case RouterPolicy::kRoundRobin:
      // Rotate over the *current* dispatch set; the rotation counter keeps
      // advancing across membership changes, so dispatch stays even and
      // deterministic as instances come and go.
      pick = active[next_rr_ % active.size()];
      ++next_rr_;
      break;
    case RouterPolicy::kRandom:
      pick = active[static_cast<std::size_t>(
          rng_.uniform_int(active.size()))];
      break;
    case RouterPolicy::kShortestQueue: {
      // In-flight requests; ties break toward the lowest instance id
      // (strict <), so dispatch is reproducible and order-independent.
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (std::size_t i : active) {
        const std::size_t in_flight = instances_[i].sim->load().in_flight;
        if (in_flight < best) {
          best = in_flight;
          pick = i;
        }
      }
      break;
    }
    case RouterPolicy::kHeroServe: {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i : active) {
        const double c = cost_for(instances_[i], request);
        if (c < best) {  // strict: identical costs keep the lowest id
          best = c;
          pick = i;
        }
      }
      break;
    }
  }
  ++dispatched_[pick];
  ++dispatched_total_;
  if (obs::MetricsRegistry* m = network_->simulator().metrics()) {
    m->counter("router.dispatched").add(1);
  }
  return pick;
}

}  // namespace hero::serve
