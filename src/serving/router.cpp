#include "serving/router.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "topology/paths.hpp"

namespace hero::serve {

const char* to_string(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "rr";
    case RouterPolicy::kRandom: return "random";
    case RouterPolicy::kShortestQueue: return "jsq";
    case RouterPolicy::kHeroServe: return "hero";
  }
  return "?";
}

std::optional<RouterPolicy> parse_router_policy(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return RouterPolicy::kRoundRobin;
  }
  if (name == "random") return RouterPolicy::kRandom;
  if (name == "jsq" || name == "shortest-queue") {
    return RouterPolicy::kShortestQueue;
  }
  if (name == "hero" || name == "heroserve") return RouterPolicy::kHeroServe;
  return std::nullopt;
}

const char* to_string(PrefixAction action) {
  switch (action) {
    case PrefixAction::kNone: return "none";
    case PrefixAction::kHit: return "hit";
    case PrefixAction::kStream: return "stream";
    case PrefixAction::kRecompute: return "recompute";
  }
  return "?";
}

Router::Router(net::FlowNetwork& network, FleetConfig config)
    : network_(&network), config_(std::move(config)),
      rng_(config_.router_seed) {}

std::size_t Router::add_instance(ClusterSim& instance) {
  Instance inst;
  inst.sim = &instance;
  // Static pairing paths: GPU i of the prefill cluster streams its KV shard
  // to decode GPU i * |dec| / |pre| (the serving simulator's mapping). The
  // route is the plain shortest path — the *load* is applied at dispatch
  // time through the fair-share bandwidth vector, so the estimate follows
  // congestion without perturbing any scheduler state.
  const auto& pre = instance.prefill_gpu_ids();
  const auto& dec = instance.decode_gpu_ids();
  inst.kv_paths.reserve(pre.size());
  for (std::size_t i = 0; i < pre.size() && !dec.empty(); ++i) {
    const std::size_t j = i * dec.size() / pre.size();
    auto path = topo::shortest_path(network_->graph(), pre[i], dec[j]);
    if (path) inst.kv_paths.push_back(std::move(*path));
  }
  instances_.push_back(std::move(inst));
  dispatched_.push_back(0);
  return instances_.size() - 1;
}

void Router::drain_instance(std::size_t id) {
  Instance& inst = instances_.at(id);
  HERO_REQUIRE(inst.state != State::kRemoved,
               "drain_instance: instance {} already removed", id);
  inst.state = State::kDraining;
}

void Router::remove_instance(std::size_t id) {
  Instance& inst = instances_.at(id);
  HERO_REQUIRE(inst.state == State::kDraining,
               "remove_instance: instance {} not draining", id);
  inst.state = State::kRemoved;
}

std::size_t Router::active_count() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_) {
    if (inst.state == State::kActive) ++n;
  }
  return n;
}

std::vector<std::size_t> Router::active_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].state == State::kActive) ids.push_back(i);
  }
  return ids;
}

ArrivalContext Router::make_context(const wl::Request& request) const {
  ArrivalContext ctx;
  ctx.request = request;
  ctx.now = network_->simulator().now();
  ctx.probes.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    InstanceProbe probe;
    probe.active = inst.state == State::kActive;
    probe.load = inst.sim->load();
    probe.kv = inst.sim->kv();
    if (config_.policy == RouterPolicy::kHeroServe) {
      probe.kv_path_estimates.reserve(inst.kv_paths.size());
      for (const topo::Path& path : inst.kv_paths) {
        if (path.edges.empty()) continue;  // co-located pair
        probe.kv_path_estimates.push_back(network_->estimate_path(path));
      }
    }
    ctx.probes.push_back(std::move(probe));
  }
  return ctx;
}

double Router::cost_for(const Instance& inst, const InstanceProbe& probe,
                        const wl::Request& request) const {
  const ClusterSim& sim = *inst.sim;
  const planner::PlanResult& plan = sim.plan();
  const ServingOptions& opts = sim.options();
  const LoadSnapshot& load = probe.load;
  // Prefix affinity: the probe's cached coverage is work this instance
  // would not redo — subtract it from the prefill and KV-transfer terms
  // (0 everywhere when the tier is off, leaving the cost untouched).
  const std::size_t fresh_tokens = request.input_tokens - probe.prefix_tokens;

  // Queue-delay estimate from the live load snapshot, built to predict the
  // *TTFT* this request would see. The prefill backlog is token-weighted
  // (one K_in-sized prompt = one "equivalent request" of the capacity
  // model, so a burst of heavy prompts counts for what it costs, not how
  // many requests it is) and drains at the planned prefill rate. Decode
  // lanes run concurrently: an occupied lane delays nobody until the lanes
  // run out, so decode contributes only its overflow past the planned
  // batch limit — counting every decoding request at 1/mu would swamp the
  // backlog signal and steer whole bursts onto the instance with the
  // deepest prefill queue but one free lane. The estimate is continuous in
  // the backlog: plateaus of identical costs would collapse into the
  // lowest-id tie-break and funnel whole bursts to one instance.
  const double k_in = static_cast<double>(
      std::max<std::size_t>(plan.planned_k_in, 1));
  const Rate mu_pre = std::max(plan.service_rate_prefill, Rate{1e-9});
  const Rate mu_dec = std::max(plan.service_rate_decode, Rate{1e-9});
  const double backlog_reqs =
      static_cast<double>(load.prefill_backlog_tokens + fresh_tokens) /
      k_in;
  const double decode_overflow =
      static_cast<double>(load.decode_requests + 1) -
      static_cast<double>(plan.q_decode);
  // Below the lane limit a decode occupant still costs a little: every
  // extra batch member stretches the whole batch's step time, so charge a
  // lightly-weighted interference term. It spreads near-tie traffic off
  // the momentarily-cheapest instance (shallower batches, better TPOT and
  // drain tail) but stays an order of magnitude under the serialization
  // reading (1/mu_dec each), which would swamp the prefill-backlog signal.
  const Time queue_s =
      backlog_reqs / mu_pre + std::max(0.0, decode_overflow) / mu_dec +
      config_.decode_interference *
          static_cast<double>(load.decode_requests) / mu_dec;

  // Decode-completion term: the request's predicted decode residence at the
  // instance's planned TPOT (plans differ — a decode pool with more tensor
  // parallelism steps faster). Down-weighted so it decides placement only
  // when the load signals are flat: the fleet's drain tail is set by where
  // the last long-output requests land, and parking one on the slowest
  // decoder stretches the makespan long after every queue has emptied.
  const Time completion_s = config_.completion_weight *
                            static_cast<double>(request.output_tokens) *
                            plan.t_decode;

  // KV-transfer latency over the current flow network: the request's
  // per-GPU KV shard across the worst pairing path at the rate a new flow
  // would be admitted at (pipelined stream: PathEstimate's post-admission
  // fair share + fixed hop latencies). Fair share — not residual: under
  // max-min sharing a saturated link admits a new flow at C/(n+1) by
  // squeezing the others, while its residual reads zero, which would send
  // every instance's estimate to infinity at once and collapse the
  // comparison into the lowest-id tie-break — the exact herding the cost
  // model exists to prevent.
  Time kv_s = 0.0;
  const Bytes bytes = opts.model.kv_transfer_bytes_per_gpu(
      fresh_tokens, plan.prefill.parallel.p_tens);
  for (const net::PathEstimate& est : probe.kv_path_estimates) {
    const Time latency =
        (est.fair_share > 0 ? bytes / est.fair_share
                            : std::numeric_limits<Time>::infinity()) +
        est.latency;
    kv_s = std::max(kv_s, latency);
  }

  return raw(config_.queue_weight * queue_s + completion_s +
             config_.kv_weight * kv_s);
}

double Router::cost(std::size_t id, const ArrivalContext& ctx) const {
  return cost_for(instances_.at(id), ctx.probes.at(id), ctx.request);
}

Time Router::recompute_quote(std::size_t id, std::size_t tokens) const {
  const planner::PlanResult& plan = instances_.at(id).sim->plan();
  // Planned prefill token throughput: mu_pre requests/s of K_in tokens
  // each. The quote is what prefilling the prefix from scratch costs the
  // target — the bar a fabric stream has to beat.
  const double k_in = static_cast<double>(
      std::max<std::size_t>(plan.planned_k_in, 1));
  const Rate mu_pre = std::max(plan.service_rate_prefill, Rate{1e-9});
  return static_cast<double>(tokens) / (raw(mu_pre) * k_in);
}

Time Router::stream_quote(std::size_t from, std::size_t to,
                          std::size_t tokens, Bytes* bytes) const {
  const ClusterSim& src = *instances_.at(from).sim;
  const ClusterSim& dst = *instances_.at(to).sim;
  const auto& sdec = src.decode_gpu_ids();
  const auto& ddec = dst.decode_gpu_ids();
  const Bytes total =
      src.options().model.kv_bytes_per_token() * static_cast<double>(tokens);
  if (bytes) *bytes = total;
  if (sdec.empty() || ddec.empty()) {
    return std::numeric_limits<Time>::infinity();
  }
  // The blocks are sharded over the source's decode GPUs; each shard rides
  // its own flow to the paired destination GPU (i -> i * |dst| / |src|,
  // the same mapping every KV stream in the simulator uses). The quote is
  // the slowest shard at live admission rates.
  const Bytes per_src = total / static_cast<double>(sdec.size());
  Time worst = 0.0;
  for (std::size_t i = 0; i < sdec.size(); ++i) {
    const std::size_t j = i * ddec.size() / sdec.size();
    const auto path = topo::shortest_path(network_->graph(), sdec[i],
                                          ddec[j]);
    if (!path) return std::numeric_limits<Time>::infinity();
    if (path->edges.empty()) continue;  // same GPU (cannot happen cross-instance)
    const net::PathEstimate est = network_->estimate_path(*path);
    if (est.fair_share <= 0) return std::numeric_limits<Time>::infinity();
    worst = std::max(worst, per_src / est.fair_share + est.latency);
  }
  return worst;
}

RouteDecision Router::route(const ArrivalContext& ctx) {
  HERO_REQUIRE(ctx.probes.size() == instances_.size(),
               "Router::route: context has {} probes for {} instances",
               ctx.probes.size(), instances_.size());
  const std::vector<std::size_t> active = active_ids();
  if (active.empty()) {
    throw std::logic_error("Router::route: no active instances");
  }
  std::size_t pick = active.front();
  switch (config_.policy) {
    case RouterPolicy::kRoundRobin:
      // Rotate over the *current* dispatch set; the rotation counter keeps
      // advancing across membership changes, so dispatch stays even and
      // deterministic as instances come and go.
      pick = active[next_rr_ % active.size()];
      ++next_rr_;
      break;
    case RouterPolicy::kRandom:
      pick = active[static_cast<std::size_t>(
          rng_.uniform_int(active.size()))];
      break;
    case RouterPolicy::kShortestQueue: {
      // In-flight requests; ties break toward the lowest instance id
      // (strict <), so dispatch is reproducible and order-independent.
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (std::size_t i : active) {
        const std::size_t in_flight = ctx.probes[i].load.in_flight;
        if (in_flight < best) {
          best = in_flight;
          pick = i;
        }
      }
      break;
    }
    case RouterPolicy::kHeroServe: {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i : active) {
        const double c = cost_for(instances_[i], ctx.probes[i], ctx.request);
        if (c < best) {  // strict: identical costs keep the lowest id
          best = c;
          pick = i;
        }
      }
      break;
    }
  }

  RouteDecision decision;
  decision.instance = pick;

  // Settle the prefix action. The picked instance's own coverage wins
  // outright (free reuse); otherwise a directory holder elsewhere offers a
  // fabric stream, taken only when moving the blocks beats recomputing
  // them at the target's planned prefill rate.
  if (ctx.prefix_tokens > 0) {
    const InstanceProbe& probe = ctx.probes[pick];
    if (probe.prefix_tokens > 0) {
      decision.prefix = PrefixAction::kHit;
      decision.reuse_tokens = probe.prefix_tokens;
    } else if (ctx.prefix_instance != kNoInstance &&
               ctx.prefix_instance != pick) {
      decision.recompute_s = recompute_quote(pick, ctx.prefix_tokens);
      decision.stream_s = stream_quote(ctx.prefix_instance, pick,
                                       ctx.prefix_tokens,
                                       &decision.stream_bytes);
      if (decision.stream_s < decision.recompute_s) {
        decision.prefix = PrefixAction::kStream;
        decision.stream_from = ctx.prefix_instance;
        decision.reuse_tokens = ctx.prefix_tokens;
      } else {
        decision.prefix = PrefixAction::kRecompute;
        decision.stream_bytes = 0.0;
      }
    } else {
      // Nobody holds it (or only the pick "would" but its cache says no):
      // plain cold prefill.
      decision.prefix = PrefixAction::kRecompute;
    }
  }

  ++dispatched_[pick];
  ++dispatched_total_;
  if (obs::MetricsRegistry* m = network_->simulator().metrics()) {
    m->counter("router.dispatched").add(1);
  }
  return decision;
}

}  // namespace hero::serve
