// Cluster-level request router for multi-instance serving.
//
// A fleet runs N replicated (prefill, decode) instances behind one
// dispatcher; the router picks the instance for each arriving request.
// Policies:
//   * round-robin   — classic stateless rotation;
//   * random        — seeded uniform choice (baseline for the bench);
//   * shortest-queue — fewest in-flight requests (JSQ);
//   * hero          — Eq. 16-style cost: estimated queue delay from the
//     instance's live load snapshot, the request's predicted decode
//     residence at the instance's planned TPOT, and the KV-transfer
//     latency of this request over the *current* flow network (NetKV-style
//     decode-aware selection). Cross-rack instances whose prefill->decode
//     KV pairs ride congested oversubscribed uplinks price themselves out.
//
// Everything is deterministic under a fixed seed: ties are broken by the
// lowest instance id, and the only randomness is the router's own Rng.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "netsim/flownet.hpp"
#include "serving/cluster_sim.hpp"
#include "workload/trace.hpp"

namespace hero::serve {

enum class RouterPolicy : std::uint8_t {
  kRoundRobin,
  kRandom,
  kShortestQueue,
  kHeroServe,
};

[[nodiscard]] const char* to_string(RouterPolicy policy);
/// Parse "rr" / "random" / "jsq" / "hero" (long names accepted too).
[[nodiscard]] std::optional<RouterPolicy> parse_router_policy(
    std::string_view name);

struct RouterConfig {
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  std::uint64_t seed = 1;
  /// Weights of the two HeroServe cost terms (queue delay, KV transfer).
  double queue_weight = 1.0;
  double kv_weight = 1.0;
  /// Marginal TPOT interference charged per occupied decode lane, as a
  /// fraction of a full 1/mu_dec serialization step (decode lanes run
  /// concurrently; a new batch member only stretches the shared step).
  double decode_interference = 0.1;
  /// Fraction of the request's predicted decode residence (output tokens x
  /// the instance's planned TPOT) charged to the cost. Tilts long-output
  /// requests toward fast-decode plans when queue signals are flat — the
  /// drain-tail regime — without overriding backlog under load.
  double completion_weight = 0.01;
};

class Router {
 public:
  Router(net::FlowNetwork& network, RouterConfig config);

  /// Register an instance; returns its id (assignment order). The KV term
  /// uses the instance's static prefill->decode pairing paths (same i ->
  /// i * |dec| / |pre| mapping the serving simulator streams over), probed
  /// against the network's live link state via estimate_path() at dispatch
  /// time.
  std::size_t add_instance(ClusterSim& instance);

  /// Pick the instance for `request` (does not submit it).
  [[nodiscard]] std::size_t route(const wl::Request& request);

  /// HeroServe dispatch cost of `request` on instance `id` right now;
  /// exposed for tests and the bench harness.
  [[nodiscard]] double cost(std::size_t id, const wl::Request& request) const;

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  /// Requests dispatched per instance so far.
  [[nodiscard]] const std::vector<std::uint64_t>& dispatched() const {
    return dispatched_;
  }

 private:
  struct Instance {
    ClusterSim* sim = nullptr;
    /// Static shortest paths of the KV pairing (one per prefill GPU).
    std::vector<topo::Path> kv_paths;
  };

  net::FlowNetwork* network_;
  RouterConfig config_;
  Rng rng_;
  std::vector<Instance> instances_;
  std::vector<std::uint64_t> dispatched_;
  std::size_t next_rr_ = 0;

  [[nodiscard]] double cost_for(const Instance& inst,
                                const wl::Request& request) const;
};

}  // namespace hero::serve
