// Cluster-level request router for multi-instance serving.
//
// A fleet runs N replicated (prefill, decode) instances behind one
// dispatcher; the router picks the instance for each arriving request.
// Policies:
//   * round-robin   — classic stateless rotation;
//   * random        — seeded uniform choice (baseline for the bench);
//   * shortest-queue — fewest in-flight requests (JSQ);
//   * hero          — Eq. 16-style cost: estimated queue delay from the
//     instance's live load snapshot, the request's predicted decode
//     residence at the instance's planned TPOT, and the KV-transfer
//     latency of this request over the *current* flow network (NetKV-style
//     decode-aware selection). Cross-rack instances whose prefill->decode
//     KV pairs ride congested oversubscribed uplinks price themselves out.
//
// The dispatch set is elastic: instances can be added mid-run (autoscaler
// scale-up) and taken out in two steps — drain_instance() stops dispatch
// while in-flight requests finish, remove_instance() retires the drained
// slot for good. Instance ids are stable for the whole run (dead slots are
// never reused), so per-instance counters and reports stay attributable.
//
// Everything is deterministic under a fixed seed: ties are broken by the
// lowest instance id, and the only randomness is the router's own Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netsim/flownet.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/fleet_config.hpp"
#include "workload/trace.hpp"

namespace hero::serve {

class Router {
 public:
  /// The router reads the FleetConfig's dispatch fields (policy,
  /// router_seed, cost weights); the fleet-shape and autoscale fields
  /// belong to FleetSim / FleetController.
  Router(net::FlowNetwork& network, FleetConfig config);

  /// Register an instance; returns its id (assignment order). Callable
  /// mid-run — a scaled-up replica joins the dispatch set at the instant
  /// it is added. The KV term uses the instance's static prefill->decode
  /// pairing paths (same i -> i * |dec| / |pre| mapping the serving
  /// simulator streams over), probed against the network's live link state
  /// via estimate_path() at dispatch time.
  std::size_t add_instance(ClusterSim& instance);

  /// Stop dispatching to `id` (in-flight requests keep running). No-op on
  /// an already-draining instance; must not be called on a removed one.
  void drain_instance(std::size_t id);
  /// Retire a drained instance for good. The id stays allocated (counters
  /// keep their slot) but the instance never re-enters the dispatch set.
  void remove_instance(std::size_t id);

  [[nodiscard]] bool is_active(std::size_t id) const {
    return instances_.at(id).state == State::kActive;
  }
  [[nodiscard]] bool is_draining(std::size_t id) const {
    return instances_.at(id).state == State::kDraining;
  }
  /// Instances currently eligible for dispatch.
  [[nodiscard]] std::size_t active_count() const;

  /// Pick the instance for `request` (does not submit it). Only active
  /// instances are considered; throws when the dispatch set is empty.
  [[nodiscard]] std::size_t route(const wl::Request& request);

  /// HeroServe dispatch cost of `request` on instance `id` right now;
  /// exposed for tests and the bench harness.
  [[nodiscard]] double cost(std::size_t id, const wl::Request& request) const;

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// Requests dispatched per instance so far (dead slots keep their tally).
  [[nodiscard]] const std::vector<std::uint64_t>& dispatched() const {
    return dispatched_;
  }
  /// Total requests dispatched across all instances — the autoscaler's
  /// arrival-rate observable.
  [[nodiscard]] std::uint64_t dispatched_total() const {
    return dispatched_total_;
  }

 private:
  enum class State : std::uint8_t { kActive, kDraining, kRemoved };

  struct Instance {
    ClusterSim* sim = nullptr;
    /// Static shortest paths of the KV pairing (one per prefill GPU).
    std::vector<topo::Path> kv_paths;
    State state = State::kActive;
  };

  net::FlowNetwork* network_;
  FleetConfig config_;
  Rng rng_;
  std::vector<Instance> instances_;
  std::vector<std::uint64_t> dispatched_;
  std::uint64_t dispatched_total_ = 0;
  std::size_t next_rr_ = 0;

  [[nodiscard]] double cost_for(const Instance& inst,
                                const wl::Request& request) const;
  /// Ids of active instances, ascending (the dispatch set of one route()).
  [[nodiscard]] std::vector<std::size_t> active_ids() const;
};

}  // namespace hero::serve
