// Cluster-level request router for multi-instance serving.
//
// A fleet runs N replicated (prefill, decode) instances behind one
// dispatcher; the router picks the instance for each arriving request.
// Policies:
//   * round-robin   — classic stateless rotation;
//   * random        — seeded uniform choice (baseline for the bench);
//   * shortest-queue — fewest in-flight requests (JSQ);
//   * hero          — Eq. 16-style cost: estimated queue delay from the
//     instance's live load snapshot, the request's predicted decode
//     residence at the instance's planned TPOT, and the KV-transfer
//     latency of this request over the *current* flow network (NetKV-style
//     decode-aware selection). Cross-rack instances whose prefill->decode
//     KV pairs ride congested oversubscribed uplinks price themselves out.
//     With the prefix/KV tier enabled, the cost prices prefix affinity in
//     naturally: an instance holding the request's cached prefix prefills
//     (and streams) only the fresh tokens, so its backlog and KV terms
//     shrink by exactly the reused work.
//
// Every dispatch starts from one ArrivalContext — the request plus a
// same-instant probe of every instance (load snapshot, KV snapshot, live
// path estimates) and the fleet directory's best prefix holder. route()
// consumes the context and returns a RouteDecision: the chosen instance
// plus the prefix action — reuse in place (kHit), stream the blocks from
// the holder over the fabric (kStream, priced against recomputing them at
// the target's prefill rate), or recompute (kRecompute). The fleet layer
// executes the decision; the router never mutates instance state.
//
// The dispatch set is elastic: instances can be added mid-run (autoscaler
// scale-up) and taken out in two steps — drain_instance() stops dispatch
// while in-flight requests finish, remove_instance() retires the drained
// slot for good. Instance ids are stable for the whole run (dead slots are
// never reused), so per-instance counters and reports stay attributable.
//
// Everything is deterministic under a fixed seed: ties are broken by the
// lowest instance id, and the only randomness is the router's own Rng.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "netsim/flownet.hpp"
#include "serving/cluster_sim.hpp"
#include "serving/fleet_config.hpp"
#include "workload/trace.hpp"

namespace hero::serve {

/// "No instance" sentinel (prefix holder / stream source fields).
inline constexpr std::size_t kNoInstance =
    std::numeric_limits<std::size_t>::max();

/// Same-instant probe of one instance, taken by Router::make_context().
struct InstanceProbe {
  bool active = false;  ///< eligible for dispatch right now
  LoadSnapshot load;
  KvSnapshot kv;
  /// Live estimates of the instance's static prefill->decode pairing
  /// paths (co-located pairs omitted). Sampled only for the hero policy.
  std::vector<net::PathEstimate> kv_path_estimates;
  /// Block-aligned tokens of the request's prefix this instance has cached
  /// (0 unless the fleet fills it from the per-instance caches).
  std::size_t prefix_tokens = 0;
};

/// Everything one dispatch decision reads, sampled at the arrival instant.
/// The fleet layer builds it (make_context + directory lookup), the router
/// consumes it; tests can synthesize or perturb one directly.
struct ArrivalContext {
  wl::Request request;
  Time now = 0.0;
  /// One probe per registered instance (dead slots stay inactive).
  std::vector<InstanceProbe> probes;
  /// Best prefix holder fleet-wide per the directory (kNoInstance = none).
  std::size_t prefix_instance = kNoInstance;
  /// Block-aligned shareable prefix tokens of this request (0 = tier off,
  /// sessionless request, or sub-block prefix).
  std::size_t prefix_tokens = 0;
};

/// What the router decided to do about the request's cached prefix.
enum class PrefixAction : std::uint8_t {
  kNone,       ///< no shareable prefix in play
  kHit,        ///< target instance already holds the prefix
  kStream,     ///< pull blocks from stream_from before submitting
  kRecompute,  ///< prefill from scratch (cold, or streaming loses)
};

[[nodiscard]] const char* to_string(PrefixAction action);

struct RouteDecision {
  std::size_t instance = 0;  ///< dispatch target
  PrefixAction prefix = PrefixAction::kNone;
  /// Tokens reused (kHit) or streamed (kStream).
  std::size_t reuse_tokens = 0;
  /// Stream source instance (kStream only).
  std::size_t stream_from = kNoInstance;
  /// Total KV bytes a kStream moves across the fabric.
  Bytes stream_bytes = 0.0;
  /// The quote that settled stream-vs-recompute (kStream/kRecompute).
  Time stream_s = 0.0;
  Time recompute_s = 0.0;
};

class Router {
 public:
  /// The router reads the FleetConfig's dispatch fields (policy,
  /// router_seed, cost weights); the fleet-shape and autoscale fields
  /// belong to FleetSim / FleetController.
  Router(net::FlowNetwork& network, FleetConfig config);

  /// Register an instance; returns its id (assignment order). Callable
  /// mid-run — a scaled-up replica joins the dispatch set at the instant
  /// it is added. The KV term uses the instance's static prefill->decode
  /// pairing paths (same i -> i * |dec| / |pre| mapping the serving
  /// simulator streams over), probed against the network's live link state
  /// via estimate_path() at dispatch time.
  std::size_t add_instance(ClusterSim& instance);

  /// Stop dispatching to `id` (in-flight requests keep running). No-op on
  /// an already-draining instance; must not be called on a removed one.
  void drain_instance(std::size_t id);
  /// Retire a drained instance for good. The id stays allocated (counters
  /// keep their slot) but the instance never re-enters the dispatch set.
  void remove_instance(std::size_t id);

  [[nodiscard]] bool is_active(std::size_t id) const {
    return instances_.at(id).state == State::kActive;
  }
  [[nodiscard]] bool is_draining(std::size_t id) const {
    return instances_.at(id).state == State::kDraining;
  }
  /// Instances currently eligible for dispatch.
  [[nodiscard]] std::size_t active_count() const;

  /// Probe every instance at the current instant (loads, KV snapshots,
  /// and — for the hero policy — live path estimates). The caller layers
  /// prefix information on top before routing: per-probe cached tokens
  /// and the directory's best holder.
  [[nodiscard]] ArrivalContext make_context(const wl::Request& request) const;

  /// Pick the instance for the context's request (does not submit it) and
  /// settle the prefix action. Only active instances are considered;
  /// throws when the dispatch set is empty.
  [[nodiscard]] RouteDecision route(const ArrivalContext& ctx);

  /// HeroServe dispatch cost of the context's request on instance `id`;
  /// exposed for tests and the bench harness.
  [[nodiscard]] double cost(std::size_t id, const ArrivalContext& ctx) const;

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// Requests dispatched per instance so far (dead slots keep their tally).
  [[nodiscard]] const std::vector<std::uint64_t>& dispatched() const {
    return dispatched_;
  }
  /// Total requests dispatched across all instances — the autoscaler's
  /// arrival-rate observable.
  [[nodiscard]] std::uint64_t dispatched_total() const {
    return dispatched_total_;
  }

 private:
  enum class State : std::uint8_t { kActive, kDraining, kRemoved };

  struct Instance {
    ClusterSim* sim = nullptr;
    /// Static shortest paths of the KV pairing (one per prefill GPU).
    std::vector<topo::Path> kv_paths;
    State state = State::kActive;
  };

  net::FlowNetwork* network_;
  FleetConfig config_;
  Rng rng_;
  std::vector<Instance> instances_;
  std::vector<std::uint64_t> dispatched_;
  std::uint64_t dispatched_total_ = 0;
  std::size_t next_rr_ = 0;

  [[nodiscard]] double cost_for(const Instance& inst,
                                const InstanceProbe& probe,
                                const wl::Request& request) const;
  /// Ids of active instances, ascending (the dispatch set of one route()).
  [[nodiscard]] std::vector<std::size_t> active_ids() const;
  /// Quote streaming `tokens` of KV from `from`'s decode GPUs to `to`'s
  /// over the live fabric (worst pairing path; infinity when unreachable).
  [[nodiscard]] Time stream_quote(std::size_t from, std::size_t to,
                                  std::size_t tokens, Bytes* bytes) const;
  /// Quote recomputing `tokens` at `id`'s planned prefill token rate.
  [[nodiscard]] Time recompute_quote(std::size_t id,
                                     std::size_t tokens) const;
};

}  // namespace hero::serve
