#include "switchsim/aggregator.hpp"

#include <stdexcept>

namespace hero::sw {

AggregatorPool::AggregatorPool(std::uint32_t total_slots,
                               std::uint32_t entry_values,
                               FixedPointFormat fmt)
    : total_slots_(total_slots), entry_values_(entry_values), fmt_(fmt) {
  if (total_slots == 0 || entry_values == 0) {
    throw std::invalid_argument("AggregatorPool: zero-sized pool/entry");
  }
}

bool AggregatorPool::install(AggregatorKey key, std::uint32_t fanin) {
  if (fanin == 0) throw std::invalid_argument("install: fanin == 0");
  if (table_.contains(key)) return true;  // idempotent re-install
  if (slots_in_use() >= total_slots_) return false;
  AggregatorSlot slot;
  slot.value.assign(entry_values_, 0);
  slot.fanin = fanin;
  slot.seen.assign(fanin, false);
  table_.emplace(key, std::move(slot));
  return true;
}

void AggregatorPool::recycle(AggregatorKey key) { table_.erase(key); }

ContributeResult AggregatorPool::contribute(
    AggregatorKey key, WorkerId worker,
    std::span<const std::int32_t> values) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    ++packets_missed;
    return ContributeResult::kNoSlot;
  }
  AggregatorSlot& slot = it->second;
  if (worker >= slot.fanin) {
    throw std::invalid_argument("contribute: worker id >= fanin");
  }
  if (values.size() > slot.value.size()) {
    throw std::invalid_argument("contribute: payload wider than slot");
  }
  if (slot.seen[worker]) {
    ++duplicates_dropped;
    return ContributeResult::kDuplicate;
  }
  slot.seen[worker] = true;
  ++slot.count;
  aggregate_into(std::span<std::int32_t>(slot.value.data(), values.size()),
                 values);
  ++packets_aggregated;
  return slot.count == slot.fanin ? ContributeResult::kCompleted
                                  : ContributeResult::kAccepted;
}

std::optional<std::vector<std::int32_t>> AggregatorPool::read(
    AggregatorKey key) const {
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::vector<double>> AggregatorPool::read_decoded(
    AggregatorKey key) const {
  auto raw = read(key);
  if (!raw) return std::nullopt;
  return decode_vector(*raw, fmt_);
}

}  // namespace hero::sw
