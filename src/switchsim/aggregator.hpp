// Functional model of the programmable switch's INA data plane (paper SIV).
//
// "The aggregation memory space is organized as a pool of fixed-size
//  aggregator slots across multiple switch pipelines. aggregation_table is
//  an exact-match table with keys based on the port and an aggregator ID
//  ... The value field stores a partially aggregated vector (whose elements
//  are represented as fixed-point integers) and a counter indicating the
//  number of contributions received."
//
// This module reproduces that mechanism bit-for-bit at the slot level:
// fixed-point saturating aggregation, contribution counters with duplicate
// suppression (a retransmitted packet must not be double-counted), and an
// exact-match table mapping (job, chunk) keys to slots. The *timing* of INA
// traffic is handled separately by SwitchAgent + the flow network; this class
// answers "what value comes out and when is a chunk complete".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/fixed_point.hpp"

namespace hero::sw {

using JobId = std::uint64_t;
using WorkerId = std::uint32_t;

struct AggregatorKey {
  JobId job = 0;
  std::uint32_t chunk = 0;

  bool operator==(const AggregatorKey&) const = default;
};

struct AggregatorKeyHash {
  std::size_t operator()(const AggregatorKey& k) const {
    return std::hash<std::uint64_t>{}(k.job * 0x9e3779b97f4a7c15ull + k.chunk);
  }
};

/// Result of offering a contribution to the data plane.
enum class ContributeResult : std::uint8_t {
  kAccepted,    ///< folded into the slot, more contributions pending
  kCompleted,   ///< this contribution completed the aggregation
  kDuplicate,   ///< worker already contributed to this chunk (retransmit)
  kNoSlot,      ///< exact-match miss and pool exhausted (ATP: forward to PS)
};

struct AggregatorSlot {
  std::vector<std::int32_t> value;
  std::uint32_t fanin = 0;
  std::uint32_t count = 0;
  std::vector<bool> seen;  ///< per-worker contribution bitmap
};

class AggregatorPool {
 public:
  /// `total_slots`: pool size (switch SRAM budget); `entry_values`: vector
  /// width of one slot (the paper's M_ina in elements).
  AggregatorPool(std::uint32_t total_slots, std::uint32_t entry_values,
                 FixedPointFormat fmt = {});

  /// Install an exact-match entry for (job, chunk) expecting `fanin`
  /// contributions from workers [0, fanin). Fails (returns false) when the
  /// pool is exhausted.
  bool install(AggregatorKey key, std::uint32_t fanin);

  /// Remove an entry, freeing its slot. No-op when absent.
  void recycle(AggregatorKey key);

  /// Offer worker `worker`'s contribution (already fixed-point encoded by
  /// the NIC/host). Values shorter than the entry width are zero-padded,
  /// longer ones rejected via std::invalid_argument.
  ContributeResult contribute(AggregatorKey key, WorkerId worker,
                              std::span<const std::int32_t> values);

  /// Read a completed (or partial) aggregate; nullopt on exact-match miss.
  [[nodiscard]] std::optional<std::vector<std::int32_t>> read(
      AggregatorKey key) const;

  /// Decode a completed aggregate back to floats.
  [[nodiscard]] std::optional<std::vector<double>> read_decoded(
      AggregatorKey key) const;

  [[nodiscard]] std::uint32_t total_slots() const { return total_slots_; }
  [[nodiscard]] std::uint32_t slots_in_use() const {
    return static_cast<std::uint32_t>(table_.size());
  }
  [[nodiscard]] std::uint32_t entry_values() const { return entry_values_; }
  [[nodiscard]] FixedPointFormat format() const { return fmt_; }

  // --- hardware counters (control plane polls these) ---
  std::uint64_t packets_aggregated = 0;
  std::uint64_t packets_missed = 0;     ///< exact-match misses (kNoSlot)
  std::uint64_t duplicates_dropped = 0;

 private:
  std::uint32_t total_slots_;
  std::uint32_t entry_values_;
  FixedPointFormat fmt_;
  std::unordered_map<AggregatorKey, AggregatorSlot, AggregatorKeyHash> table_;
};

}  // namespace hero::sw
