#include "switchsim/ina_transport.hpp"

#include <algorithm>
#include <stdexcept>

namespace hero::sw {

InaTransport::InaTransport(AggregatorPool& pool, JobId job,
                           std::vector<std::vector<double>> workers,
                           InaTransportOptions opts, std::uint64_t seed)
    : pool_(&pool), job_(job), workers_(std::move(workers)), opts_(opts),
      rng_(seed) {
  if (workers_.empty()) {
    throw std::invalid_argument("InaTransport: no workers");
  }
  length_ = workers_.front().size();
  for (const auto& w : workers_) {
    if (w.size() != length_) {
      throw std::invalid_argument("InaTransport: ragged worker tensors");
    }
  }
  const std::size_t entry = pool_->entry_values();
  chunks_ = (length_ + entry - 1) / entry;
  if (opts_.window_slots == 0) {
    throw std::invalid_argument("InaTransport: zero window");
  }
}

std::vector<double> InaTransport::reference() const {
  std::vector<double> out(length_, 0.0);
  for (const auto& w : workers_) {
    for (std::size_t i = 0; i < length_; ++i) out[i] += w[i];
  }
  return out;
}

InaTransportStats InaTransport::run() {
  InaTransportStats stats;
  const std::size_t entry = pool_->entry_values();
  const auto fanin = static_cast<std::uint32_t>(workers_.size());

  result_.assign(length_, 0.0);
  std::vector<bool> chunk_done(chunks_, false);
  // Per (chunk, worker): has the worker's contribution been accepted?
  std::vector<std::vector<bool>> acked(
      chunks_, std::vector<bool>(workers_.size(), false));

  // Pre-encode worker chunks once (the NIC-side fixed-point conversion).
  std::vector<std::vector<std::vector<std::int32_t>>> encoded(
      workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    encoded[w].resize(chunks_);
    for (std::size_t c = 0; c < chunks_; ++c) {
      const std::size_t begin = c * entry;
      const std::size_t end = std::min(begin + entry, length_);
      encoded[w][c] = encode_vector(
          std::span<const double>(workers_[w].data() + begin, end - begin),
          opts_.format);
    }
  }

  std::size_t next_chunk = 0;           // next chunk to admit to the window
  std::vector<std::size_t> window;      // chunks currently holding slots

  while (stats.rounds < opts_.max_rounds) {
    ++stats.rounds;

    // Refill the window (the sender's slot allocation; exact-match entries
    // are installed through the control-plane API).
    while (window.size() < opts_.window_slots && next_chunk < chunks_) {
      const AggregatorKey key{job_, static_cast<std::uint32_t>(next_chunk)};
      if (!pool_->install(key, fanin)) break;  // pool shared with others
      window.push_back(next_chunk);
      ++next_chunk;
    }
    if (window.empty()) {
      if (next_chunk >= chunks_) break;  // all chunks drained
      continue;  // pool exhausted by other tenants; retry
    }

    // One protocol round: every worker (re)transmits its unacked packets
    // for every window chunk.
    for (std::size_t c : window) {
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (acked[c][w]) continue;
        ++stats.packets_sent;
        if (rng_.bernoulli(opts_.packet_loss)) {
          ++stats.packets_lost;
          continue;  // lost on the wire; retransmitted next round
        }
        const AggregatorKey key{job_, static_cast<std::uint32_t>(c)};
        const ContributeResult r = pool_->contribute(
            key, static_cast<WorkerId>(w), encoded[w][c]);
        switch (r) {
          case ContributeResult::kAccepted:
          case ContributeResult::kCompleted:
            acked[c][w] = true;
            break;
          case ContributeResult::kDuplicate:
            // A retransmit raced the (lost) ack; idempotent by design.
            ++stats.duplicates_suppressed;
            acked[c][w] = true;
            break;
          case ContributeResult::kNoSlot:
            break;  // evicted; retried after re-install
        }
      }
    }

    // Completed chunks multicast back and recycle their slots.
    std::vector<std::size_t> still_pending;
    for (std::size_t c : window) {
      const bool complete =
          std::all_of(acked[c].begin(), acked[c].end(),
                      [](bool b) { return b; });
      if (!complete) {
        still_pending.push_back(c);
        continue;
      }
      const AggregatorKey key{job_, static_cast<std::uint32_t>(c)};
      const auto decoded = pool_->read_decoded(key);
      const std::size_t begin = c * entry;
      for (std::size_t i = 0;
           i < decoded->size() && begin + i < length_; ++i) {
        result_[begin + i] = (*decoded)[i];
      }
      pool_->recycle(key);
      chunk_done[c] = true;
    }
    window.swap(still_pending);

    // Count retransmissions: every packet beyond one per (chunk, worker).
    if (window.empty() && next_chunk >= chunks_) break;
  }

  stats.completed = std::all_of(chunk_done.begin(), chunk_done.end(),
                                [](bool b) { return b; });
  const std::uint64_t minimum =
      static_cast<std::uint64_t>(chunks_) * workers_.size();
  stats.retransmissions =
      stats.packets_sent > minimum ? stats.packets_sent - minimum : 0;
  return stats;
}

}  // namespace hero::sw
