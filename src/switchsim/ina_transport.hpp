// Packet-level INA transport: the functional SwitchML/ATP wire protocol on
// top of the aggregator pool.
//
// The DES engine (collectives/) models *when* an in-network all-reduce
// finishes; this module models *what the data plane actually computes*,
// packet by packet: tensors are split into aggregator-entry-sized chunks,
// workers stream them through a bounded slot window, the switch folds each
// contribution with fixed-point saturating arithmetic and multicasts the
// completed chunk back, and lost packets are retransmitted with duplicate
// suppression (the per-worker `seen` bitmap keeps retransmits idempotent —
// the property SwitchML's protocol depends on).
//
// Used by tests to verify numerical correctness of the INA path end to end
// and by the quickstart documentation as the "what the P4 program does"
// reference; it is deterministic for a given seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "switchsim/aggregator.hpp"

namespace hero::sw {

struct InaTransportOptions {
  std::uint32_t window_slots = 32;    ///< aggregator slots the job may hold
  double packet_loss = 0.0;           ///< per-packet loss probability
  std::uint32_t max_rounds = 10000;   ///< safety bound on protocol rounds
  FixedPointFormat format;
};

struct InaTransportStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint32_t rounds = 0;
  bool completed = false;
};

/// One all-reduce job over the packetized protocol.
class InaTransport {
 public:
  /// `pool` provides the switch slots (shared with other jobs); `workers`
  /// vectors must all have equal length.
  InaTransport(AggregatorPool& pool, JobId job,
               std::vector<std::vector<double>> workers,
               InaTransportOptions opts = {}, std::uint64_t seed = 1);

  /// Run the protocol to completion (or until max_rounds). Returns per-run
  /// statistics; results are readable afterwards.
  InaTransportStats run();

  /// The aggregated tensor every worker holds after run().
  [[nodiscard]] const std::vector<double>& result() const { return result_; }

  /// Reference result (plain double summation) for verification.
  [[nodiscard]] std::vector<double> reference() const;

  [[nodiscard]] std::size_t chunk_count() const { return chunks_; }

 private:
  AggregatorPool* pool_;
  JobId job_;
  std::vector<std::vector<double>> workers_;
  InaTransportOptions opts_;
  Rng rng_;
  std::size_t length_ = 0;
  std::size_t chunks_ = 0;
  std::vector<double> result_;
};

}  // namespace hero::sw
