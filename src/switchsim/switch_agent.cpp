#include "switchsim/switch_agent.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/check.hpp"

namespace hero::sw {

SwitchAgent::SwitchAgent(sim::Simulator& simulator, topo::NodeId node,
                         std::uint32_t total_slots,
                         std::uint32_t entry_values)
    : sim_(&simulator), node_(node), total_slots_(total_slots),
      pool_(std::max<std::uint32_t>(total_slots, 1), entry_values) {}

Admission SwitchAgent::reserve(JobId job, std::uint32_t slots,
                               bool queue_if_full,
                               std::function<void()> on_grant) {
  if (slots == 0) throw std::invalid_argument("reserve: slots == 0");
  slots = std::min(slots, total_slots_);
  if (granted_.contains(job)) {
    throw std::logic_error("reserve: job already holds slots");
  }
  if (in_use_ + slots <= total_slots_ && queue_.empty()) {
    grant(job, slots, std::move(on_grant));
    ++jobs_granted;
    return Admission::kGranted;
  }
  if (queue_if_full) {
    queue_.push_back(Pending{job, slots, std::move(on_grant)});
    ++jobs_queued;
    return Admission::kQueued;
  }
  ++jobs_rejected;
  return Admission::kRejected;
}

void SwitchAgent::grant(JobId job, std::uint32_t slots,
                        std::function<void()> on_grant) {
  in_use_ += slots;
  // Slot refcount: grants must never oversubscribe the aggregator pool
  // (reserve() clamps and admit_from_queue() checks fit before calling).
  HERO_INVARIANT(in_use_ <= total_slots_,
                 "switch {}: {} slots in use of {}", node_, in_use_,
                 total_slots_);
  granted_.emplace(job, slots);
  if (on_grant) sim_->schedule_in(0.0, std::move(on_grant));
}

void SwitchAgent::release(JobId job) {
  auto it = granted_.find(job);
  if (it == granted_.end()) return;
  HERO_INVARIANT(in_use_ >= it->second,
                 "switch {}: releasing {} slots with only {} in use", node_,
                 it->second, in_use_);
  in_use_ -= it->second;
  granted_.erase(it);
  admit_from_queue();
}

void SwitchAgent::abandon(JobId job) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Pending& p) { return p.job == job; });
  if (it != queue_.end()) queue_.erase(it);
}

void SwitchAgent::admit_from_queue() {
  while (!queue_.empty() &&
         in_use_ + queue_.front().slots <= total_slots_) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    grant(p.job, p.slots, std::move(p.on_grant));
    ++jobs_granted;
  }
}

SwitchRegistry::SwitchRegistry(sim::Simulator& simulator,
                               const topo::Graph& graph,
                               std::uint32_t entry_values)
    : sim_(&simulator), graph_(&graph), entry_values_(entry_values) {}

SwitchAgent& SwitchRegistry::agent(topo::NodeId node) {
  if (!graph_->is_switch(node)) {
    throw std::invalid_argument("SwitchRegistry: node is not a switch");
  }
  auto it = agents_.find(node);
  if (it == agents_.end()) {
    const std::int32_t slots = graph_->node(node).agg_slots;
    it = agents_
             .emplace(node, std::make_unique<SwitchAgent>(
                                *sim_, node,
                                static_cast<std::uint32_t>(
                                    std::max<std::int32_t>(slots, 1)),
                                entry_values_))
             .first;
  }
  return *it->second;
}

}  // namespace hero::sw
