// Timing/admission model of a programmable switch's aggregation resources,
// plus its control plane.
//
// Where AggregatorPool answers "what value does the data plane compute",
// SwitchAgent answers "when can a collective *use* the switch". Each INA
// all-reduce job reserves a window of aggregator slots for its streaming
// chunks. When the pool is exhausted:
//   * synchronous INA (SwitchML-style) queues the job until slots free up;
//   * asynchronous INA (ATP-style) rejects it, and the caller falls back to
//     end-host (PS) aggregation — the paper's "best-effort" behaviour.
// This is exactly the mechanism by which bursty traffic collapses INA
// throughput in homogeneous deployments (paper SII-C / [22]).
//
// The control-plane face ("central scheduler uniformly allocates and
// recycles aggregator slots", SIV) exposes allocation plus hardware-counter
// polling.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "netsim/sim.hpp"
#include "switchsim/aggregator.hpp"
#include "topology/graph.hpp"

namespace hero::sw {

enum class Admission : std::uint8_t { kGranted, kQueued, kRejected };

class SwitchAgent {
 public:
  SwitchAgent(sim::Simulator& simulator, topo::NodeId node,
              std::uint32_t total_slots, std::uint32_t entry_values = 64);

  SwitchAgent(const SwitchAgent&) = delete;
  SwitchAgent& operator=(const SwitchAgent&) = delete;

  /// Reserve `slots` aggregator slots for a job.
  ///  * kGranted  — slots reserved; on_grant invoked asynchronously (next
  ///                event) so callers get uniform callback ordering.
  ///  * kQueued   — (queue_if_full) job waits; on_grant fires when a
  ///                release makes room. FIFO order.
  ///  * kRejected — (!queue_if_full) pool exhausted; caller must fall back.
  Admission reserve(JobId job, std::uint32_t slots, bool queue_if_full,
                    std::function<void()> on_grant);

  /// Release a job's slots (idempotent); admits queued jobs that now fit.
  void release(JobId job);

  /// Drop a queued (not yet granted) job, e.g. the caller timed out.
  void abandon(JobId job);

  [[nodiscard]] std::uint32_t slots_in_use() const { return in_use_; }
  [[nodiscard]] std::uint32_t slots_total() const { return total_slots_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] topo::NodeId node() const { return node_; }

  /// The functional data plane behind this agent (shared slot budget is
  /// enforced by this class; the pool validates per-chunk behaviour).
  [[nodiscard]] AggregatorPool& pool() { return pool_; }

  // --- hardware counters ---
  std::uint64_t jobs_granted = 0;
  std::uint64_t jobs_queued = 0;
  std::uint64_t jobs_rejected = 0;

 private:
  struct Pending {
    JobId job = 0;
    std::uint32_t slots = 0;
    std::function<void()> on_grant;
  };

  sim::Simulator* sim_;
  topo::NodeId node_;
  std::uint32_t total_slots_;
  std::uint32_t in_use_ = 0;
  std::unordered_map<JobId, std::uint32_t> granted_;
  std::deque<Pending> queue_;
  AggregatorPool pool_;

  void admit_from_queue();
  void grant(JobId job, std::uint32_t slots, std::function<void()> on_grant);
};

/// Owns one SwitchAgent per switch node of a topology; lazily constructed.
class SwitchRegistry {
 public:
  SwitchRegistry(sim::Simulator& simulator, const topo::Graph& graph,
                 std::uint32_t entry_values = 64);

  /// Agent for a switch node (throws if `node` is not a switch).
  [[nodiscard]] SwitchAgent& agent(topo::NodeId node);

 private:
  sim::Simulator* sim_;
  const topo::Graph* graph_;
  std::uint32_t entry_values_;
  std::unordered_map<topo::NodeId, std::unique_ptr<SwitchAgent>> agents_;
};

}  // namespace hero::sw
