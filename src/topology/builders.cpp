#include "topology/builders.hpp"

#include <array>
#include <vector>

#include "common/format.hpp"

namespace hero::topo {
namespace {

/// Intra-server clique among the GPUs of one server. With NVLink every
/// pair gets the full-bandwidth edge; with PCIe (SVII future work) the
/// server splits into two NUMA domains (first half / second half of the
/// GPUs) and cross-NUMA pairs pay the bandwidth/latency penalty. Intra-
/// server edges keep LinkKind::kNvLink so routing constraints treat PCIe
/// exactly like an (inferior) NVLink fabric.
void add_nvlink_mesh(Graph& g, const std::vector<NodeId>& gpus,
                     const LinkSpec& links) {
  const std::size_t numa_split = (gpus.size() + 1) / 2;
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    for (std::size_t j = i + 1; j < gpus.size(); ++j) {
      Bandwidth bw = links.nvlink;
      Time latency = links.nvlink_latency;
      if (links.intra_link == IntraLink::kPcie) {
        bw = links.pcie;
        latency = links.pcie_latency;
        const bool cross_numa = (i < numa_split) != (j < numa_split);
        if (cross_numa) {
          bw *= links.cross_numa_bw_factor;
          latency *= links.cross_numa_latency_factor;
        }
      }
      g.add_edge(gpus[i], gpus[j], LinkKind::kNvLink, bw, latency);
    }
  }
}

}  // namespace

Graph make_fig2_example(const LinkSpec& links) {
  Graph g;
  const NodeId gn1 = g.add_gpu("GN1", GpuModel::kA100_40, 40 * units::GB, 0);
  const NodeId gn2 = g.add_gpu("GN2", GpuModel::kA100_40, 40 * units::GB, 0);
  const NodeId gn3 = g.add_gpu("GN3", GpuModel::kA100_40, 40 * units::GB, 1);
  const NodeId gn4 = g.add_gpu("GN4", GpuModel::kA100_40, 40 * units::GB, 1);

  const NodeId s1 = g.add_switch("S1", NodeKind::kCoreSwitch,
                                 links.switch_agg_slots);
  const NodeId s2 = g.add_switch("S2", NodeKind::kAccessSwitch,
                                 links.switch_agg_slots);
  const NodeId s3 = g.add_switch("S3", NodeKind::kAccessSwitch,
                                 links.switch_agg_slots);

  add_nvlink_mesh(g, {gn1, gn2}, links);
  add_nvlink_mesh(g, {gn3, gn4}, links);

  // Cross-connected NICs (2tracks wiring): within each server, one GPU
  // uplinks to each access switch.
  g.add_edge(gn1, s3, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  g.add_edge(gn2, s2, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  g.add_edge(gn3, s2, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  g.add_edge(gn4, s3, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  g.add_edge(s2, s1, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  g.add_edge(s3, s1, LinkKind::kEthernet, links.ethernet,
             links.ethernet_latency);
  return g;
}

Graph make_testbed(const TestbedOptions& opts) {
  Graph g;
  const NodeId sw0 = g.add_switch("sw0", NodeKind::kAccessSwitch,
                                  opts.links.switch_agg_slots);
  const NodeId sw1 = g.add_switch("sw1", NodeKind::kAccessSwitch,
                                  opts.links.switch_agg_slots);
  // Inter-switch trunk (2x100G).
  g.add_edge(sw0, sw1, LinkKind::kEthernet, 2.0 * opts.links.ethernet,
             opts.links.ethernet_latency);

  const std::array<NodeId, 2> switches{sw0, sw1};
  for (std::int32_t server = 0; server < 4; ++server) {
    const bool is_a100 = server < 2;
    std::vector<NodeId> gpus;
    gpus.reserve(opts.gpus_per_server);
    for (std::int32_t i = 0; i < opts.gpus_per_server; ++i) {
      const NodeId gpu = g.add_gpu(
          strfmt("w{}g{}", server, i),
          is_a100 ? GpuModel::kA100_40 : GpuModel::kV100_32,
          is_a100 ? opts.a100_memory : opts.v100_memory, server);
      gpus.push_back(gpu);
      // Cross-connected uplinks: GPU i goes to switch (i % 2).
      g.add_edge(gpu, switches[static_cast<std::size_t>(i % 2)],
                 LinkKind::kEthernet, opts.links.ethernet,
                 opts.links.ethernet_latency);
    }
    add_nvlink_mesh(g, gpus, opts.links);
  }

  // PS host (DS-ATP fallback aggregator) dual-homed; traffic-replay host.
  const NodeId ps = g.add_server("ps");
  g.add_edge(ps, sw0, LinkKind::kEthernet, opts.links.ethernet,
             opts.links.ethernet_latency);
  g.add_edge(ps, sw1, LinkKind::kEthernet, opts.links.ethernet,
             opts.links.ethernet_latency);
  const NodeId traffic = g.add_server("traffic");
  g.add_edge(traffic, sw0, LinkKind::kEthernet, opts.links.ethernet,
             opts.links.ethernet_latency);
  g.add_edge(traffic, sw1, LinkKind::kEthernet, opts.links.ethernet,
             opts.links.ethernet_latency);
  return g;
}

Graph make_tracks_cluster(const TracksOptions& opts) {
  if (opts.tracks <= 0 || opts.servers_per_pod <= 0 || opts.servers <= 0 ||
      opts.gpus_per_server <= 0 || opts.core_switches <= 0) {
    throw std::invalid_argument("make_tracks_cluster: sizes must be positive");
  }
  Graph g;

  std::vector<NodeId> cores;
  cores.reserve(opts.core_switches);
  for (std::int32_t c = 0; c < opts.core_switches; ++c) {
    cores.push_back(g.add_switch(strfmt("core{}", c),
                                 NodeKind::kCoreSwitch,
                                 opts.links.switch_agg_slots));
  }

  const std::int32_t pods =
      (opts.servers + opts.servers_per_pod - 1) / opts.servers_per_pod;
  std::int32_t server_id = 0;
  for (std::int32_t pod = 0; pod < pods; ++pod) {
    std::vector<NodeId> access;
    access.reserve(opts.tracks);
    for (std::int32_t t = 0; t < opts.tracks; ++t) {
      const NodeId sw = g.add_switch(strfmt("p{}a{}", pod, t),
                                     NodeKind::kAccessSwitch,
                                     opts.links.switch_agg_slots);
      access.push_back(sw);
      for (NodeId core : cores) {
        g.add_edge(sw, core, LinkKind::kEthernet, opts.links.ethernet,
                   opts.links.ethernet_latency);
      }
    }
    for (std::int32_t s = 0;
         s < opts.servers_per_pod && server_id < opts.servers; ++s) {
      std::vector<NodeId> gpus;
      gpus.reserve(opts.gpus_per_server);
      for (std::int32_t i = 0; i < opts.gpus_per_server; ++i) {
        const NodeId gpu =
            g.add_gpu(strfmt("s{}g{}", server_id, i), opts.gpu_model,
                      opts.gpu_memory, server_id);
        gpus.push_back(gpu);
        g.add_edge(gpu, access[static_cast<std::size_t>(i % opts.tracks)],
                   LinkKind::kEthernet, opts.links.ethernet,
                   opts.links.ethernet_latency);
      }
      add_nvlink_mesh(g, gpus, opts.links);
      ++server_id;
    }
  }
  return g;
}

Graph make_fleet_cluster(const FleetClusterOptions& opts) {
  if (opts.racks <= 0 || opts.servers_per_rack <= 0 ||
      opts.gpus_per_server <= 0 || opts.core_switches <= 0 ||
      opts.oversubscription < 1.0) {
    throw std::invalid_argument(
        "make_fleet_cluster: sizes must be positive and "
        "oversubscription >= 1");
  }
  Graph g;

  std::vector<NodeId> cores;
  cores.reserve(opts.core_switches);
  for (std::int32_t c = 0; c < opts.core_switches; ++c) {
    cores.push_back(g.add_switch(strfmt("core{}", c), NodeKind::kCoreSwitch,
                                 opts.links.switch_agg_slots));
  }

  // Each rack's aggregate NIC bandwidth, cut by the oversubscription factor
  // and split evenly over the core uplinks.
  const Bandwidth rack_nic_bw =
      static_cast<double>(opts.servers_per_rack * opts.gpus_per_server) *
      opts.links.ethernet;
  const Bandwidth uplink_bw =
      rack_nic_bw / (opts.oversubscription *
                     static_cast<double>(opts.core_switches));

  std::int32_t server_id = 0;
  for (std::int32_t r = 0; r < opts.racks; ++r) {
    const NodeId tor = g.add_switch(strfmt("rack{}", r),
                                    NodeKind::kAccessSwitch,
                                    opts.links.switch_agg_slots);
    for (NodeId core : cores) {
      g.add_edge(tor, core, LinkKind::kEthernet, uplink_bw,
                 opts.links.ethernet_latency);
    }
    // Heterogeneous fleets rack whole hardware classes: rack r's servers
    // all carry rack_hardware[r % size] (uniform model/memory when unset).
    GpuModel rack_model = opts.gpu_model;
    Bytes rack_memory = opts.gpu_memory;
    if (!opts.rack_hardware.empty()) {
      const auto& hw = opts.rack_hardware[static_cast<std::size_t>(r) %
                                          opts.rack_hardware.size()];
      rack_model = hw.model;
      rack_memory = hw.memory;
    }
    for (std::int32_t s = 0; s < opts.servers_per_rack; ++s) {
      std::vector<NodeId> gpus;
      gpus.reserve(opts.gpus_per_server);
      for (std::int32_t i = 0; i < opts.gpus_per_server; ++i) {
        const NodeId gpu =
            g.add_gpu(strfmt("s{}g{}", server_id, i), rack_model,
                      rack_memory, server_id);
        gpus.push_back(gpu);
        g.add_edge(gpu, tor, LinkKind::kEthernet, opts.links.ethernet,
                   opts.links.ethernet_latency);
      }
      add_nvlink_mesh(g, gpus, opts.links);
      ++server_id;
    }
  }
  return g;
}

}  // namespace hero::topo
