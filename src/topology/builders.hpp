// Topology builders for the paper's experimental setups.
//
//  * make_fig2_example   — the 2-GPU-per-server motivating example of Fig. 2.
//  * make_testbed        — the Fig. 6 testbed: four 4-GPU workers (2x A100-40,
//                          2x V100-32), a PS host, a traffic host, and two
//                          Tofino access switches, NICs cross-connected
//                          (2tracks).
//  * make_tracks_cluster — the simulation pods of SV: 8-GPU A100 servers in
//                          pods of `servers_per_pod` sharing `tracks` access
//                          switches, access switches wired to a core layer
//                          (2tracks and 8tracks configurations).
#pragma once

#include "topology/graph.hpp"

namespace hero::topo {

/// Intra-server interconnect technology. kPcie models the paper's SVII
/// future-work scenario: servers without NVLink fall back to PCIe 4.0 x16,
/// with a cross-NUMA penalty when the two GPUs hang off different root
/// complexes (half bandwidth, doubled latency).
enum class IntraLink : std::uint8_t { kNvLink, kPcie };

/// Default physical constants; overridable per builder call.
struct LinkSpec {
  Bandwidth nvlink = 600.0 * units::GBps;     ///< A100 NVLink aggregate
  Bandwidth ethernet = 100.0 * units::Gbps;   ///< ConnectX-6 port
  Time nvlink_latency = 0.5 * units::us;
  Time ethernet_latency = 1.0 * units::us;
  std::int32_t switch_agg_slots = 128;        ///< aggregator slots per switch

  IntraLink intra_link = IntraLink::kNvLink;
  Bandwidth pcie = 32.0 * units::GBps;        ///< PCIe 4.0 x16 effective
  Time pcie_latency = 2.0 * units::us;
  double cross_numa_bw_factor = 0.5;          ///< UPI/xGMI hop penalty
  double cross_numa_latency_factor = 2.0;
};

/// Fig. 2: two dual-GPU servers with cross-connected NICs. GN1/GN2 share
/// NVLink in server 0 (GN1's NIC uplinks to access switch S3, GN2's to S2);
/// GN3/GN4 share NVLink in server 1 (GN3 -> S2, GN4 -> S3). Both access
/// switches uplink to core S1. For the group {GN1, GN3} the only common
/// Ethernet-only aggregation point is the core S1 (two 100G hops each,
/// ~160 us for 1 MB); with NVLink forwarding GN1 reaches S2 through GN2 in
/// one Ethernet hop (~90 us) — the paper's motivating arithmetic.
[[nodiscard]] Graph make_fig2_example(const LinkSpec& links = {});

struct TestbedOptions {
  LinkSpec links;
  std::int32_t gpus_per_server = 4;
  Bytes a100_memory = 40.0 * units::GB;
  Bytes v100_memory = 32.0 * units::GB;
};

/// Fig. 6 testbed: servers w0,w1 are A100-40 and w2,w3 are V100-32, each GPU
/// NVLink-meshed within its server, each GPU's 100G port cross-connected so
/// GPU i uplinks to switch sw{i % 2} (2tracks high-availability wiring).
/// Also adds the PS host (on both switches) used by DS-ATP's fallback and a
/// traffic-replay host.
[[nodiscard]] Graph make_testbed(const TestbedOptions& opts = {});

struct TracksOptions {
  LinkSpec links;
  std::int32_t servers = 12;          ///< total GPU servers
  std::int32_t gpus_per_server = 8;   ///< A100 DGX-style nodes
  std::int32_t tracks = 2;            ///< access switches per pod
  std::int32_t servers_per_pod = 6;   ///< 6 for 2tracks, 16 for 8tracks (SV)
  std::int32_t core_switches = 3;
  GpuModel gpu_model = GpuModel::kA100_40;
  Bytes gpu_memory = 40.0 * units::GB;
};

/// x-tracks simulation pods: within a pod, GPU i of every server uplinks to
/// pod access switch (i % tracks); every access switch connects to every
/// core switch. GPUs in one server form an NVLink clique.
[[nodiscard]] Graph make_tracks_cluster(const TracksOptions& opts = {});

struct FleetClusterOptions {
  LinkSpec links;
  std::int32_t racks = 4;             ///< R racks, one ToR switch each
  std::int32_t servers_per_rack = 4;  ///< S servers under each ToR
  std::int32_t gpus_per_server = 8;
  std::int32_t core_switches = 2;
  /// Rack uplink oversubscription: the ToR->core capacity is the rack's
  /// aggregate GPU NIC bandwidth divided by this factor (split evenly over
  /// the core switches). 1.0 = full bisection; datacenter racks typically
  /// run 2:1-4:1, which is what makes cross-rack KV traffic interesting.
  double oversubscription = 4.0;
  GpuModel gpu_model = GpuModel::kA100_80;
  Bytes gpu_memory = 80.0 * units::GB;
  /// Heterogeneous pools: when non-empty, rack r gets rack_hardware[r %
  /// size] instead of the uniform gpu_model/gpu_memory above — whole racks
  /// of one hardware class, the way mixed fleets are actually racked.
  struct RackHardware {
    GpuModel model = GpuModel::kA100_80;
    Bytes memory = 80.0 * units::GB;
  };
  std::vector<RackHardware> rack_hardware;
};

/// Rack-scale fleet fabric for multi-instance serving: R racks of S
/// NVLink-clique servers, every GPU uplinked to its rack's ToR switch, ToRs
/// wired to every core switch over oversubscribed uplinks. Server naming
/// continues the s{}g{} idiom; ToRs are "rack{}", cores "core{}".
[[nodiscard]] Graph make_fleet_cluster(const FleetClusterOptions& opts = {});

}  // namespace hero::topo
