#include "topology/graph.hpp"

namespace hero::topo {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kGpu: return "gpu";
    case NodeKind::kServer: return "server";
    case NodeKind::kAccessSwitch: return "access-switch";
    case NodeKind::kCoreSwitch: return "core-switch";
  }
  return "?";
}

const char* to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kNvLink: return "nvlink";
    case LinkKind::kEthernet: return "ethernet";
  }
  return "?";
}

const char* to_string(GpuModel model) {
  switch (model) {
    case GpuModel::kA100_40: return "A100-40GB";
    case GpuModel::kA100_80: return "A100-80GB";
    case GpuModel::kV100_32: return "V100-32GB";
    case GpuModel::kL40_48: return "L40-48GB";
    case GpuModel::kH100_80: return "H100-80GB";
    case GpuModel::kL4_24: return "L4-24GB";
  }
  return "?";
}

NodeId Graph::add_gpu(std::string name, GpuModel model, Bytes memory,
                      std::int32_t server) {
  Node n;
  n.kind = NodeKind::kGpu;
  n.name = std::move(name);
  n.gpu = GpuInfo{model, memory, memory, server};
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Graph::add_server(std::string name) {
  Node n;
  n.kind = NodeKind::kServer;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Graph::add_switch(std::string name, NodeKind kind,
                         std::int32_t agg_slots) {
  if (kind != NodeKind::kAccessSwitch && kind != NodeKind::kCoreSwitch) {
    throw std::invalid_argument("add_switch: kind must be a switch kind");
  }
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.agg_slots = agg_slots;
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId Graph::add_edge(NodeId a, NodeId b, LinkKind kind, Bandwidth capacity,
                       Time latency) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("add_edge: node id out of range");
  }
  if (a == b) throw std::invalid_argument("add_edge: self loop");
  if (capacity <= 0) throw std::invalid_argument("add_edge: capacity <= 0");
  edges_.push_back(Edge{a, b, kind, capacity, latency});
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[a].push_back(Adjacency{b, id});
  adjacency_[b].push_back(Adjacency{a, id});
  return id;
}

NodeId Graph::other_end(EdgeId edge_id, NodeId from) const {
  const Edge& e = edge(edge_id);
  if (e.a == from) return e.b;
  if (e.b == from) return e.a;
  throw std::invalid_argument("other_end: node not on edge");
}

std::vector<NodeId> Graph::gpus() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kGpu) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Graph::switches() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (is_switch(i)) out.push_back(i);
  }
  return out;
}

std::vector<std::vector<NodeId>> Graph::gpus_by_server() const {
  std::int32_t max_server = -1;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kGpu) max_server = std::max(max_server, n.gpu.server);
  }
  std::vector<std::vector<NodeId>> out(static_cast<std::size_t>(max_server + 1));
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kGpu && n.gpu.server >= 0) {
      out[static_cast<std::size_t>(n.gpu.server)].push_back(i);
    }
  }
  return out;
}

NodeId Graph::find(std::string_view name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return kInvalidNode;
}

}  // namespace hero::topo
