// Heterogeneous cluster topology graph (paper SIII-B, Fig. 4/Fig. 6).
//
// Nodes are GPUs, plain servers (parameter server / traffic hosts), access
// switches, and core switches. Edges are either NVLink (intra-server,
// ~600 GB/s on A100) or Ethernet (inter-server, 100 Gbps per port). The graph
// is undirected; each edge is full duplex with `capacity` bytes/s available
// independently in each direction.
//
// This is the `G = <V, E>` of Table I: planner and online scheduler both
// operate on this structure, and the flow-level network simulator executes
// transfers over it.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hero::topo {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

enum class NodeKind : std::uint8_t {
  kGpu,           ///< GPU + its RDMA NIC (GPUDirect collapses them)
  kServer,        ///< GPU-less host (parameter server, traffic generator)
  kAccessSwitch,  ///< ToR / access programmable switch
  kCoreSwitch,    ///< core programmable switch
};

enum class LinkKind : std::uint8_t { kNvLink, kEthernet };

/// GPU hardware model; the roofline specs live in gpusim.
enum class GpuModel : std::uint8_t {
  kA100_40,
  kA100_80,
  kV100_32,
  kL40_48,
  kH100_80,
  kL4_24,
};

[[nodiscard]] const char* to_string(NodeKind kind);
[[nodiscard]] const char* to_string(LinkKind kind);
[[nodiscard]] const char* to_string(GpuModel model);

/// Per-GPU attributes tracked in the topology: which physical server it sits
/// in (NVLink domain) and how much HBM is free for model weights + KV cache.
struct GpuInfo {
  GpuModel model = GpuModel::kA100_40;
  Bytes memory_capacity = 0;  ///< total HBM
  Bytes memory_free = 0;      ///< `M_g` of Table I (updated as instances load)
  std::int32_t server = -1;   ///< NVLink domain id
};

struct Node {
  NodeKind kind = NodeKind::kGpu;
  std::string name;
  GpuInfo gpu;                 ///< valid iff kind == kGpu
  std::int32_t agg_slots = 0;  ///< aggregator slots (switches only)
};

struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LinkKind kind = LinkKind::kEthernet;
  Bandwidth capacity = 0;  ///< `C(e)` of Table I, per direction
  Time latency = 0;        ///< fixed per-hop forwarding latency
};

/// An adjacency entry: the neighbouring node and the connecting edge.
struct Adjacency {
  NodeId peer = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

class Graph {
 public:
  NodeId add_gpu(std::string name, GpuModel model, Bytes memory,
                 std::int32_t server);
  NodeId add_server(std::string name);
  NodeId add_switch(std::string name, NodeKind kind,
                    std::int32_t agg_slots = 0);
  EdgeId add_edge(NodeId a, NodeId b, LinkKind kind, Bandwidth capacity,
                  Time latency = 1.0 * units::us);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] Node& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(id); }
  [[nodiscard]] Edge& edge(EdgeId id) { return edges_.at(id); }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId id) const {
    return adjacency_.at(id);
  }

  /// Given an edge and the node a transfer leaves from, the node it reaches.
  [[nodiscard]] NodeId other_end(EdgeId edge, NodeId from) const;

  /// All GPU node ids, in insertion order.
  [[nodiscard]] std::vector<NodeId> gpus() const;
  /// All switch node ids (access + core).
  [[nodiscard]] std::vector<NodeId> switches() const;
  /// GPUs grouped by server id; index = server id.
  [[nodiscard]] std::vector<std::vector<NodeId>> gpus_by_server() const;

  [[nodiscard]] bool is_gpu(NodeId id) const {
    return node(id).kind == NodeKind::kGpu;
  }
  [[nodiscard]] bool is_switch(NodeId id) const {
    const NodeKind k = node(id).kind;
    return k == NodeKind::kAccessSwitch || k == NodeKind::kCoreSwitch;
  }

  /// Find a node by name (linear scan; intended for tests/examples).
  [[nodiscard]] NodeId find(std::string_view name) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace hero::topo
