#include "topology/paths.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <unordered_map>

namespace hero::topo {

// Single-source Dijkstra result, shared by the one-shot queries and the
// memoizing PathOracle (which is why it is not in the anonymous namespace).
struct detail::Sssp {
  // prev[(node, via)] = (prev_node, prev_via, edge)
  struct Prev {
    NodeId node = kInvalidNode;
    std::uint8_t via = 0;
    EdgeId edge = kInvalidEdge;
  };
  std::vector<std::array<Time, 2>> dist;
  std::vector<std::array<Prev, 2>> prev;
};

namespace {

using SearchResult = detail::Sssp;

Bandwidth edge_bandwidth(const Graph& g, EdgeId e,
                         std::span<const Bandwidth> residual) {
  if (!residual.empty()) return residual[e];
  return g.edge(e).capacity;
}

// Dijkstra over (node, arrived-via-NVLink) states so the GPU-relay rule can
// be enforced: leaving an interior GPU requires the incoming or outgoing hop
// to be NVLink.
struct State {
  Time dist = 0.0;
  NodeId node = kInvalidNode;
  std::uint8_t via_nvlink = 0;  // 1 if the edge that reached `node` was NVLink
  bool operator>(const State& o) const { return dist > o.dist; }
};

SearchResult dijkstra(const Graph& g, NodeId src, const PathOptions& opts,
                      std::span<const double> edge_weight_scale) {
  const Time inf = std::numeric_limits<Time>::infinity();
  SearchResult r;
  r.dist.assign(g.node_count(), {inf, inf});
  r.prev.assign(g.node_count(), {});

  std::priority_queue<State, std::vector<State>, std::greater<>> pq;
  r.dist[src][0] = 0.0;
  pq.push(State{0.0, src, 0});

  while (!pq.empty()) {
    const State cur = pq.top();
    pq.pop();
    if (cur.dist > r.dist[cur.node][cur.via_nvlink]) continue;

    const Node& n = g.node(cur.node);
    const bool is_source = cur.node == src;
    // Plain servers never relay traffic.
    if (!is_source && n.kind == NodeKind::kServer) continue;

    for (const Adjacency& adj : g.neighbors(cur.node)) {
      const Edge& e = g.edge(adj.edge);
      if (e.kind == LinkKind::kNvLink && !opts.constraints.allow_nvlink)
        continue;
      if (e.kind == LinkKind::kEthernet && !opts.constraints.allow_ethernet)
        continue;
      // GPU relay rule: an interior GPU must touch NVLink on one side.
      if (!is_source && n.kind == NodeKind::kGpu && cur.via_nvlink == 0 &&
          e.kind != LinkKind::kNvLink) {
        continue;
      }
      const Bandwidth bw = edge_bandwidth(g, adj.edge, opts.residual_bw);
      if (bw <= 0) continue;
      Time w = opts.ref_bytes / bw + e.latency;
      if (!edge_weight_scale.empty()) w *= edge_weight_scale[adj.edge];
      const Time nd = cur.dist + w;
      const std::uint8_t via = e.kind == LinkKind::kNvLink ? 1 : 0;
      if (nd < r.dist[adj.peer][via]) {
        r.dist[adj.peer][via] = nd;
        r.prev[adj.peer][via] = SearchResult::Prev{cur.node, cur.via_nvlink,
                                                   adj.edge};
        pq.push(State{nd, adj.peer, via});
      }
    }
  }
  return r;
}

std::optional<Path> extract_path(const SearchResult& r, NodeId src,
                                 NodeId dst) {
  const std::uint8_t best_via =
      r.dist[dst][0] <= r.dist[dst][1] ? std::uint8_t{0} : std::uint8_t{1};
  if (r.dist[dst][best_via] == std::numeric_limits<Time>::infinity()) {
    return std::nullopt;
  }
  Path p;
  NodeId node = dst;
  std::uint8_t via = best_via;
  while (node != src) {
    const auto& prev = r.prev[node][via];
    p.nodes.push_back(node);
    p.edges.push_back(prev.edge);
    const NodeId pn = prev.node;
    via = prev.via;
    node = pn;
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  return p;
}

}  // namespace

Time Path::latency(const Graph& g, Bytes bytes,
                   std::span<const Bandwidth> residual_bw) const {
  Time total = 0.0;
  for (EdgeId e : edges) {
    const Bandwidth bw = edge_bandwidth(g, e, residual_bw);
    total += transfer_time(bytes, bw) + g.edge(e).latency;
  }
  return total;
}

Bandwidth Path::bottleneck(const Graph& g,
                           std::span<const Bandwidth> residual_bw) const {
  Bandwidth min_bw = std::numeric_limits<Bandwidth>::infinity();
  for (EdgeId e : edges) {
    min_bw = std::min(min_bw, edge_bandwidth(g, e, residual_bw));
  }
  return edges.empty() ? 0.0 : min_bw;
}

bool Path::uses_nvlink(const Graph& g) const {
  return std::any_of(edges.begin(), edges.end(), [&](EdgeId e) {
    return g.edge(e).kind == LinkKind::kNvLink;
  });
}

namespace {

/// Direct NVLink edge between src and dst, if any.
std::optional<Path> direct_nvlink(const Graph& g, NodeId src, NodeId dst) {
  for (const Adjacency& adj : g.neighbors(src)) {
    if (adj.peer == dst && g.edge(adj.edge).kind == LinkKind::kNvLink) {
      return Path{{src, dst}, {adj.edge}};
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const PathOptions& opts) {
  if (src == dst) return Path{{src}, {}};
  const SearchResult r = dijkstra(g, src, opts, {});
  std::optional<Path> found = extract_path(r, src, dst);
  if (!opts.constraints.allow_nvlink && opts.constraints.allow_nvlink_direct) {
    if (auto direct = direct_nvlink(g, src, dst)) {
      if (!found ||
          direct->latency(g, opts.ref_bytes, opts.residual_bw) <
              found->latency(g, opts.ref_bytes, opts.residual_bw)) {
        return direct;
      }
    }
  }
  return found;
}

PathOracle::PathOracle(const Graph& g, const PathOptions& opts)
    : graph_(&g), opts_(opts) {
  // Snapshot residual bandwidth so the oracle stays valid after caller
  // mutations (same contract as PathStore).
  residual_copy_.assign(opts.residual_bw.begin(), opts.residual_bw.end());
  opts_.residual_bw = residual_copy_;
  cache_.resize(g.node_count());
}

PathOracle::~PathOracle() = default;
PathOracle::PathOracle(PathOracle&&) noexcept = default;
PathOracle& PathOracle::operator=(PathOracle&&) noexcept = default;

const detail::Sssp& PathOracle::solved(NodeId src) const {
  std::unique_ptr<detail::Sssp>& slot = cache_[src];
  if (!slot) {
    slot = std::make_unique<detail::Sssp>(dijkstra(*graph_, src, opts_, {}));
  }
  return *slot;
}

std::optional<Path> PathOracle::path(NodeId src, NodeId dst) const {
  // Mirrors shortest_path() exactly (bit-identical paths), with the
  // per-source Dijkstra answered from the cache.
  if (src == dst) return Path{{src}, {}};
  std::optional<Path> found = extract_path(solved(src), src, dst);
  if (!opts_.constraints.allow_nvlink &&
      opts_.constraints.allow_nvlink_direct) {
    if (auto direct = direct_nvlink(*graph_, src, dst)) {
      if (!found ||
          direct->latency(*graph_, opts_.ref_bytes, opts_.residual_bw) <
              found->latency(*graph_, opts_.ref_bytes, opts_.residual_bw)) {
        return direct;
      }
    }
  }
  return found;
}

Time PathOracle::latency(NodeId src, NodeId dst, Bytes bytes) const {
  const std::optional<Path> p = path(src, dst);
  if (!p) return std::numeric_limits<Time>::infinity();
  return p->latency(*graph_, bytes, opts_.residual_bw);
}

std::size_t PathOracle::sources_solved() const {
  std::size_t n = 0;
  for (const auto& slot : cache_) n += slot != nullptr;
  return n;
}

std::vector<Path> alternate_paths(const Graph& g, NodeId src, NodeId dst,
                                  std::size_t k, const PathOptions& opts) {
  std::vector<Path> result;
  if (k == 0) return result;
  std::vector<double> scale(g.edge_count(), 1.0);
  constexpr double kPenalty = 4.0;
  for (std::size_t round = 0; round < 2 * k && result.size() < k; ++round) {
    const SearchResult r = dijkstra(g, src, opts, scale);
    auto path = extract_path(r, src, dst);
    if (!path) break;
    const bool duplicate =
        std::any_of(result.begin(), result.end(),
                    [&](const Path& p) { return p.edges == path->edges; });
    for (EdgeId e : path->edges) scale[e] *= kPenalty;
    if (!duplicate) result.push_back(std::move(*path));
  }
  return result;
}

PathStore::PathStore(const Graph& g, std::vector<NodeId> terminals,
                     const PathOptions& opts)
    : graph_(&g), terminals_(std::move(terminals)) {
  // Snapshot residual bandwidth so the store stays valid after caller
  // mutations.
  residual_copy_.assign(opts.residual_bw.begin(), opts.residual_bw.end());

  terminal_index_.assign(g.node_count(), -1);
  for (std::size_t i = 0; i < terminals_.size(); ++i) {
    terminal_index_[terminals_[i]] = static_cast<std::int32_t>(i);
  }
  const bool direct_override = !opts.constraints.allow_nvlink &&
                               opts.constraints.allow_nvlink_direct;
  paths_.assign(terminals_.size(), {});
  for (std::size_t i = 0; i < terminals_.size(); ++i) {
    paths_[i].assign(terminals_.size(), std::nullopt);
    const SearchResult r = dijkstra(g, terminals_[i], opts, {});
    for (std::size_t j = 0; j < terminals_.size(); ++j) {
      if (i == j) {
        paths_[i][j] = Path{{terminals_[i]}, {}};
        continue;
      }
      paths_[i][j] = extract_path(r, terminals_[i], terminals_[j]);
      if (direct_override) {
        if (auto direct = direct_nvlink(g, terminals_[i], terminals_[j])) {
          if (!paths_[i][j] ||
              direct->latency(g, opts.ref_bytes, residual_copy_) <
                  paths_[i][j]->latency(g, opts.ref_bytes, residual_copy_)) {
            paths_[i][j] = std::move(direct);
          }
        }
      }
    }
  }
}

std::size_t PathStore::index_of(NodeId node) const {
  if (node >= terminal_index_.size() || terminal_index_[node] < 0) {
    throw std::out_of_range("PathStore: node is not a terminal");
  }
  return static_cast<std::size_t>(terminal_index_[node]);
}

bool PathStore::reachable(NodeId src, NodeId dst) const {
  return paths_[index_of(src)][index_of(dst)].has_value();
}

const Path& PathStore::path(NodeId src, NodeId dst) const {
  const auto& p = paths_[index_of(src)][index_of(dst)];
  if (!p) throw std::out_of_range("PathStore: unreachable pair");
  return *p;
}

Time PathStore::latency(NodeId src, NodeId dst, Bytes bytes) const {
  return path(src, dst).latency(*graph_, bytes, residual_copy_);
}

}  // namespace hero::topo
