// Shortest-path machinery (paper Alg. 2 lines 1-3: "gen_latency_matrix /
// store_shortest_path, alg=dijkstra").
//
// Path latency follows the paper's store-and-forward model (Eq. 10 and the
// Fig. 2 walk-through): a D-byte transfer over path e_1..e_n costs
// sum_n (D / B(e_n) + hop_latency(e_n)). Routing respects the physical
// forwarding rules of the testbed:
//   * switches forward anything;
//   * plain servers never relay;
//   * a GPU relays traffic only if the relay enters or leaves over NVLink
//     (a GPU forwarding a peer's tensor out of its own NIC -- the
//     heterogeneous trick of Fig. 2(b)). Ethernet-in/Ethernet-out GPU
//     relaying is forbidden for every scheme.
// Homogeneous baselines (DistServe / DS-ATP / DS-SwitchML) set
// `allow_nvlink = false`, which restricts them to pure Ethernet routes.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "topology/graph.hpp"

namespace hero::topo {

struct PathConstraints {
  bool allow_nvlink = true;
  bool allow_ethernet = true;
  /// When allow_nvlink is false, still permit a *single direct* NVLink edge
  /// between the two endpoints. This is NCCL reality for the homogeneous
  /// baselines: intra-node legs always ride NVLink, but multi-hop NVLink
  /// forwarding (detouring through a peer GPU's NIC — HeroServe's trick)
  /// stays forbidden.
  bool allow_nvlink_direct = false;
};

struct PathOptions {
  /// Reference transfer size used to weigh bandwidth against fixed hop
  /// latency during route search.
  Bytes ref_bytes = 1.0 * units::MiB;
  PathConstraints constraints;
  /// Optional per-edge residual bandwidth `B(e)` (Table I); when empty the
  /// static capacity `C(e)` is used.
  std::span<const Bandwidth> residual_bw = {};
};

struct Path {
  std::vector<NodeId> nodes;  ///< src .. dst (size = edges.size() + 1)
  std::vector<EdgeId> edges;

  [[nodiscard]] bool empty() const { return edges.empty(); }
  [[nodiscard]] std::size_t hops() const { return edges.size(); }
  [[nodiscard]] NodeId src() const { return nodes.front(); }
  [[nodiscard]] NodeId dst() const { return nodes.back(); }

  /// Store-and-forward latency of a `bytes` transfer (Eq. 10).
  [[nodiscard]] Time latency(const Graph& g, Bytes bytes,
                             std::span<const Bandwidth> residual_bw = {}) const;
  /// Minimum bandwidth along the path.
  [[nodiscard]] Bandwidth bottleneck(
      const Graph& g, std::span<const Bandwidth> residual_bw = {}) const;
  /// True if the path uses at least one NVLink edge.
  [[nodiscard]] bool uses_nvlink(const Graph& g) const;
};

/// Single-pair shortest path; nullopt when unreachable under the constraints.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId src,
                                                NodeId dst,
                                                const PathOptions& opts = {});

/// Up to k edge-diverse routes between src and dst, cheapest first, found by
/// iterative edge-penalty re-search. The first entry is the true shortest
/// path. Used to populate the online scheduler's policy alternatives.
[[nodiscard]] std::vector<Path> alternate_paths(const Graph& g, NodeId src,
                                                NodeId dst, std::size_t k,
                                                const PathOptions& opts = {});

namespace detail {
struct Sssp;  // single-source Dijkstra result (defined in paths.cpp)
}  // namespace detail

/// Memoized single-source shortest-path queries over a fixed graph and
/// options. The Dijkstra underneath shortest_path() is target-independent,
/// so one solve per distinct source answers every (src, dst) query with a
/// path bit-identical to a fresh shortest_path() call. Turns the planner's
/// group-scoring loop from one Dijkstra per (member, switch) probe into one
/// per distinct member. Only valid while the graph outlives the oracle;
/// `opts.residual_bw` is snapshotted at construction.
class PathOracle {
 public:
  explicit PathOracle(const Graph& g, const PathOptions& opts = {});
  ~PathOracle();
  PathOracle(PathOracle&&) noexcept;
  PathOracle& operator=(PathOracle&&) noexcept;

  /// Same contract as shortest_path(g, src, dst, opts).
  [[nodiscard]] std::optional<Path> path(NodeId src, NodeId dst) const;
  /// Eq. 10 latency of a `bytes` transfer along path(src, dst); infinity
  /// when the pair is unreachable under the constraints.
  [[nodiscard]] Time latency(NodeId src, NodeId dst, Bytes bytes) const;
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  /// Distinct sources solved so far (cache effectiveness / tests).
  [[nodiscard]] std::size_t sources_solved() const;

 private:
  const Graph* graph_;
  PathOptions opts_;
  std::vector<Bandwidth> residual_copy_;
  mutable std::vector<std::unique_ptr<detail::Sssp>> cache_;  // per source

  [[nodiscard]] const detail::Sssp& solved(NodeId src) const;
};

/// All-pairs shortest paths among `terminals` (the planner's offline
/// `P_(k,a)` path store and `D_(i,j)` latency matrix).
class PathStore {
 public:
  PathStore(const Graph& g, std::vector<NodeId> terminals,
            const PathOptions& opts = {});

  [[nodiscard]] bool reachable(NodeId src, NodeId dst) const;
  /// Throws std::out_of_range when src/dst is not a terminal or unreachable.
  [[nodiscard]] const Path& path(NodeId src, NodeId dst) const;
  /// Store-and-forward latency for a transfer of `bytes` (Eq. 10) along the
  /// stored shortest path.
  [[nodiscard]] Time latency(NodeId src, NodeId dst, Bytes bytes) const;
  [[nodiscard]] std::span<const NodeId> terminals() const {
    return terminals_;
  }

 private:
  const Graph* graph_;
  std::vector<NodeId> terminals_;
  std::vector<std::int32_t> terminal_index_;  // node id -> index or -1
  std::vector<std::vector<std::optional<Path>>> paths_;
  std::vector<Bandwidth> residual_copy_;

  [[nodiscard]] std::size_t index_of(NodeId node) const;
};

}  // namespace hero::topo
