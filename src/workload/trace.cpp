#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace hero::wl {
namespace {

std::size_t sample_length(Rng& rng, double mu, double sigma, std::size_t lo,
                          std::size_t hi) {
  const double v = rng.lognormal(mu, sigma);
  const auto len = static_cast<std::size_t>(std::llround(v));
  return std::clamp(len, lo, hi);
}

}  // namespace

LengthDistribution sharegpt_lengths() {
  LengthDistribution d;
  d.input_mu = std::log(250.0);
  d.input_sigma = 0.9;
  d.input_min = 8;
  d.input_max = 2048;
  d.output_mu = std::log(180.0);
  d.output_sigma = 0.7;
  d.output_min = 8;
  d.output_max = 1024;
  return d;
}

LengthDistribution longbench_lengths() {
  LengthDistribution d;
  d.input_mu = std::log(7000.0);
  d.input_sigma = 0.5;
  d.input_min = 1024;
  d.input_max = 16384;
  d.output_mu = std::log(80.0);
  d.output_sigma = 0.5;
  d.output_min = 16;
  d.output_max = 256;
  return d;
}

Trace generate_trace(const TraceOptions& opts) {
  if (opts.rate <= 0.0) throw std::invalid_argument("generate_trace: rate");
  Rng rng(opts.seed);

  // Bursty: two-state MMPP preserving the requested mean rate.
  const double f = std::clamp(opts.burst_fraction, 0.01, 0.99);
  const Rate high_rate = opts.rate * std::max(opts.burst_multiplier, 1.0);
  Rate low_rate =
      (opts.rate - f * high_rate) / (1.0 - f);
  low_rate = std::max(low_rate, 0.05 * opts.rate);

  Trace trace;
  trace.reserve(opts.count);
  Time now = 0.0;
  bool in_burst = false;
  Time state_until = 0.0;
  if (opts.bursty) {
    state_until = rng.exponential(raw(1.0 / ((1.0 - f) / f *
                                              opts.burst_mean_duration)));
  }

  for (std::size_t i = 0; i < opts.count; ++i) {
    if (opts.bursty) {
      while (now >= state_until) {
        in_burst = !in_burst;
        const Time mean_sojourn = in_burst
                                      ? opts.burst_mean_duration
                                      : (1.0 - f) / f *
                                            opts.burst_mean_duration;
        state_until += rng.exponential(raw(1.0 / mean_sojourn));
      }
      now += rng.exponential(raw(in_burst ? high_rate : low_rate));
    } else {
      now += rng.exponential(raw(opts.rate));
    }
    Request r;
    r.id = i;
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.lengths.input_mu,
                                   opts.lengths.input_sigma,
                                   opts.lengths.input_min,
                                   opts.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.lengths.output_mu,
                                    opts.lengths.output_sigma,
                                    opts.lengths.output_min,
                                    opts.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

Trace generate_diurnal_trace(const DiurnalOptions& opts) {
  if (opts.base.rate <= 0.0 || opts.period <= 0.0) {
    throw std::invalid_argument("generate_diurnal_trace: rate/period");
  }
  if (opts.amplitude < 0.0 || opts.amplitude >= 1.0) {
    throw std::invalid_argument("generate_diurnal_trace: amplitude in [0,1)");
  }
  Rng rng(opts.base.seed);
  const Rate peak = opts.base.rate * (1.0 + opts.amplitude);

  Trace trace;
  trace.reserve(opts.base.count);
  Time now = 0.0;
  while (trace.size() < opts.base.count) {
    // Thinning: candidate arrivals at the peak rate, accepted with
    // probability rate(t) / peak.
    now += rng.exponential(raw(peak));
    const Rate rate_now =
        opts.base.rate *
        (1.0 + opts.amplitude *
                   std::sin(2.0 * 3.14159265358979323846 * now /
                            opts.period));
    if (!rng.bernoulli(rate_now / peak)) continue;
    Request r;
    r.id = trace.size();
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.base.lengths.input_mu,
                                   opts.base.lengths.input_sigma,
                                   opts.base.lengths.input_min,
                                   opts.base.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.base.lengths.output_mu,
                                    opts.base.lengths.output_sigma,
                                    opts.base.lengths.output_min,
                                    opts.base.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

Trace generate_flash_crowd_trace(const FlashCrowdOptions& opts) {
  if (opts.base.rate <= 0.0 || opts.burst_duration <= 0.0) {
    throw std::invalid_argument(
        "generate_flash_crowd_trace: rate/burst_duration");
  }
  if (opts.burst_multiplier < 1.0) {
    throw std::invalid_argument(
        "generate_flash_crowd_trace: burst_multiplier >= 1");
  }
  Rng rng(opts.base.seed);
  const Time burst_end = opts.burst_start + opts.burst_duration;
  const Rate peak = opts.base.rate * opts.burst_multiplier;

  Trace trace;
  trace.reserve(opts.base.count);
  Time now = 0.0;
  while (trace.size() < opts.base.count) {
    // Thinning against the burst rate: exact for the piecewise-constant
    // step without special-casing the boundary crossings.
    now += rng.exponential(raw(peak));
    const bool in_burst = now >= opts.burst_start && now < burst_end;
    if (!in_burst && !rng.bernoulli(1.0 / opts.burst_multiplier)) continue;
    Request r;
    r.id = trace.size();
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.base.lengths.input_mu,
                                   opts.base.lengths.input_sigma,
                                   opts.base.lengths.input_min,
                                   opts.base.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.base.lengths.output_mu,
                                    opts.base.lengths.output_sigma,
                                    opts.base.lengths.output_min,
                                    opts.base.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

Trace generate_multiturn_trace(const MultiturnOptions& opts) {
  if (opts.base.rate <= 0.0) {
    throw std::invalid_argument("generate_multiturn_trace: rate");
  }
  if (opts.mean_turns < 1.0) {
    throw std::invalid_argument("generate_multiturn_trace: mean_turns >= 1");
  }
  if (opts.multi_turn_fraction < 0.0 || opts.multi_turn_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_multiturn_trace: multi_turn_fraction in [0,1]");
  }
  if (opts.think_mean <= 0.0) {
    throw std::invalid_argument("generate_multiturn_trace: think_mean");
  }
  Rng rng(opts.base.seed);

  // Sessions arrive so that the *request* rate matches base.rate in
  // expectation: expected turns per session is a mix of one-shots and
  // geometric multi-turn sessions.
  const double expected_turns =
      (1.0 - opts.multi_turn_fraction) +
      opts.multi_turn_fraction * opts.mean_turns;
  const Rate session_rate = opts.base.rate / expected_turns;
  const double continue_p =
      opts.mean_turns > 1.0 ? 1.0 - 1.0 / opts.mean_turns : 0.0;

  Trace trace;
  trace.reserve(opts.base.count + opts.base.count / 4);
  Time session_clock = 0.0;
  std::uint64_t session_id = 0;
  while (trace.size() < opts.base.count) {
    session_clock += rng.exponential(raw(session_rate));
    ++session_id;
    const bool multi_turn = rng.bernoulli(opts.multi_turn_fraction);

    Time now = session_clock;
    std::size_t context = 0;  // accumulated shareable prefix
    for (std::size_t turn = 0;; ++turn) {
      const std::size_t user = sample_length(rng, opts.base.lengths.input_mu,
                                             opts.base.lengths.input_sigma,
                                             opts.base.lengths.input_min,
                                             opts.base.lengths.input_max);
      Request r;
      r.arrival = now;
      r.session_id = session_id;
      r.prefix_tokens = context;
      r.input_tokens =
          context + user + (turn == 0 ? opts.system_prompt_tokens : 0);
      r.output_tokens = sample_length(rng, opts.base.lengths.output_mu,
                                      opts.base.lengths.output_sigma,
                                      opts.base.lengths.output_min,
                                      opts.base.lengths.output_max);
      trace.push_back(r);

      context = r.input_tokens + r.output_tokens;
      if (!multi_turn || context > opts.max_context_tokens ||
          !rng.bernoulli(continue_p)) {
        break;
      }
      now += rng.exponential(raw(1.0 / opts.think_mean));
    }
  }

  // Sessions were emitted whole, so interleave and trim to the requested
  // count. stable_sort keeps within-session turn order on (impossible in
  // practice, but deterministic) arrival ties.
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  trace.resize(opts.base.count);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i].id = i;
  return trace;
}

WorkloadEstimator::WorkloadEstimator(std::size_t window)
    : input_len_(window), input_len_sq_(window), output_len_(window) {}

void WorkloadEstimator::observe(const Request& request) {
  const double in = static_cast<double>(request.input_tokens);
  input_len_.add(in);
  input_len_sq_.add(in * in);
  output_len_.add(static_cast<double>(request.output_tokens));
  ++observed_;
}

std::size_t WorkloadEstimator::k_in(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * input_len_.value()));
}

std::size_t WorkloadEstimator::k_in2(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * input_len_sq_.value()));
}

std::size_t WorkloadEstimator::k_out(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * output_len_.value()));
}

TraceStats summarize(const Trace& trace) {
  TraceStats stats;
  stats.count = trace.size();
  if (trace.empty()) return stats;
  double in = 0.0, out = 0.0, prefix = 0.0;
  std::set<std::uint64_t> sessions;
  for (const Request& r : trace) {
    in += static_cast<double>(r.input_tokens);
    out += static_cast<double>(r.output_tokens);
    prefix += static_cast<double>(r.prefix_tokens);
    if (r.session_id != 0) sessions.insert(r.session_id);
  }
  stats.mean_input = in / static_cast<double>(trace.size());
  stats.mean_output = out / static_cast<double>(trace.size());
  stats.sessions = sessions.size();
  stats.shareable_fraction = in > 0.0 ? prefix / in : 0.0;
  const Time makespan = trace.back().arrival - trace.front().arrival;
  stats.mean_rate = makespan > 0
                        ? static_cast<double>(trace.size() - 1) / makespan
                        : 0.0;
  return stats;
}

}  // namespace hero::wl
