#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hero::wl {
namespace {

std::size_t sample_length(Rng& rng, double mu, double sigma, std::size_t lo,
                          std::size_t hi) {
  const double v = rng.lognormal(mu, sigma);
  const auto len = static_cast<std::size_t>(std::llround(v));
  return std::clamp(len, lo, hi);
}

}  // namespace

LengthDistribution sharegpt_lengths() {
  LengthDistribution d;
  d.input_mu = std::log(250.0);
  d.input_sigma = 0.9;
  d.input_min = 8;
  d.input_max = 2048;
  d.output_mu = std::log(180.0);
  d.output_sigma = 0.7;
  d.output_min = 8;
  d.output_max = 1024;
  return d;
}

LengthDistribution longbench_lengths() {
  LengthDistribution d;
  d.input_mu = std::log(7000.0);
  d.input_sigma = 0.5;
  d.input_min = 1024;
  d.input_max = 16384;
  d.output_mu = std::log(80.0);
  d.output_sigma = 0.5;
  d.output_min = 16;
  d.output_max = 256;
  return d;
}

Trace generate_trace(const TraceOptions& opts) {
  if (opts.rate <= 0.0) throw std::invalid_argument("generate_trace: rate");
  Rng rng(opts.seed);

  // Bursty: two-state MMPP preserving the requested mean rate.
  const double f = std::clamp(opts.burst_fraction, 0.01, 0.99);
  const Rate high_rate = opts.rate * std::max(opts.burst_multiplier, 1.0);
  Rate low_rate =
      (opts.rate - f * high_rate) / (1.0 - f);
  low_rate = std::max(low_rate, 0.05 * opts.rate);

  Trace trace;
  trace.reserve(opts.count);
  Time now = 0.0;
  bool in_burst = false;
  Time state_until = 0.0;
  if (opts.bursty) {
    state_until = rng.exponential(raw(1.0 / ((1.0 - f) / f *
                                              opts.burst_mean_duration)));
  }

  for (std::size_t i = 0; i < opts.count; ++i) {
    if (opts.bursty) {
      while (now >= state_until) {
        in_burst = !in_burst;
        const Time mean_sojourn = in_burst
                                      ? opts.burst_mean_duration
                                      : (1.0 - f) / f *
                                            opts.burst_mean_duration;
        state_until += rng.exponential(raw(1.0 / mean_sojourn));
      }
      now += rng.exponential(raw(in_burst ? high_rate : low_rate));
    } else {
      now += rng.exponential(raw(opts.rate));
    }
    Request r;
    r.id = i;
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.lengths.input_mu,
                                   opts.lengths.input_sigma,
                                   opts.lengths.input_min,
                                   opts.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.lengths.output_mu,
                                    opts.lengths.output_sigma,
                                    opts.lengths.output_min,
                                    opts.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

Trace generate_diurnal_trace(const DiurnalOptions& opts) {
  if (opts.base.rate <= 0.0 || opts.period <= 0.0) {
    throw std::invalid_argument("generate_diurnal_trace: rate/period");
  }
  if (opts.amplitude < 0.0 || opts.amplitude >= 1.0) {
    throw std::invalid_argument("generate_diurnal_trace: amplitude in [0,1)");
  }
  Rng rng(opts.base.seed);
  const Rate peak = opts.base.rate * (1.0 + opts.amplitude);

  Trace trace;
  trace.reserve(opts.base.count);
  Time now = 0.0;
  while (trace.size() < opts.base.count) {
    // Thinning: candidate arrivals at the peak rate, accepted with
    // probability rate(t) / peak.
    now += rng.exponential(raw(peak));
    const Rate rate_now =
        opts.base.rate *
        (1.0 + opts.amplitude *
                   std::sin(2.0 * 3.14159265358979323846 * now /
                            opts.period));
    if (!rng.bernoulli(rate_now / peak)) continue;
    Request r;
    r.id = trace.size();
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.base.lengths.input_mu,
                                   opts.base.lengths.input_sigma,
                                   opts.base.lengths.input_min,
                                   opts.base.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.base.lengths.output_mu,
                                    opts.base.lengths.output_sigma,
                                    opts.base.lengths.output_min,
                                    opts.base.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

Trace generate_flash_crowd_trace(const FlashCrowdOptions& opts) {
  if (opts.base.rate <= 0.0 || opts.burst_duration <= 0.0) {
    throw std::invalid_argument(
        "generate_flash_crowd_trace: rate/burst_duration");
  }
  if (opts.burst_multiplier < 1.0) {
    throw std::invalid_argument(
        "generate_flash_crowd_trace: burst_multiplier >= 1");
  }
  Rng rng(opts.base.seed);
  const Time burst_end = opts.burst_start + opts.burst_duration;
  const Rate peak = opts.base.rate * opts.burst_multiplier;

  Trace trace;
  trace.reserve(opts.base.count);
  Time now = 0.0;
  while (trace.size() < opts.base.count) {
    // Thinning against the burst rate: exact for the piecewise-constant
    // step without special-casing the boundary crossings.
    now += rng.exponential(raw(peak));
    const bool in_burst = now >= opts.burst_start && now < burst_end;
    if (!in_burst && !rng.bernoulli(1.0 / opts.burst_multiplier)) continue;
    Request r;
    r.id = trace.size();
    r.arrival = now;
    r.input_tokens = sample_length(rng, opts.base.lengths.input_mu,
                                   opts.base.lengths.input_sigma,
                                   opts.base.lengths.input_min,
                                   opts.base.lengths.input_max);
    r.output_tokens = sample_length(rng, opts.base.lengths.output_mu,
                                    opts.base.lengths.output_sigma,
                                    opts.base.lengths.output_min,
                                    opts.base.lengths.output_max);
    trace.push_back(r);
  }
  return trace;
}

WorkloadEstimator::WorkloadEstimator(std::size_t window)
    : input_len_(window), input_len_sq_(window), output_len_(window) {}

void WorkloadEstimator::observe(const Request& request) {
  const double in = static_cast<double>(request.input_tokens);
  input_len_.add(in);
  input_len_sq_.add(in * in);
  output_len_.add(static_cast<double>(request.output_tokens));
  ++observed_;
}

std::size_t WorkloadEstimator::k_in(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * input_len_.value()));
}

std::size_t WorkloadEstimator::k_in2(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * input_len_sq_.value()));
}

std::size_t WorkloadEstimator::k_out(std::size_t batch) const {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(batch) * output_len_.value()));
}

TraceStats summarize(const Trace& trace) {
  TraceStats stats;
  stats.count = trace.size();
  if (trace.empty()) return stats;
  double in = 0.0, out = 0.0;
  for (const Request& r : trace) {
    in += static_cast<double>(r.input_tokens);
    out += static_cast<double>(r.output_tokens);
  }
  stats.mean_input = in / static_cast<double>(trace.size());
  stats.mean_output = out / static_cast<double>(trace.size());
  const Time makespan = trace.back().arrival - trace.front().arrival;
  stats.mean_rate = makespan > 0
                        ? static_cast<double>(trace.size() - 1) / makespan
                        : 0.0;
  return stats;
}

}  // namespace hero::wl
