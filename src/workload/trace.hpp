// Inference request traces (paper SV "Model and workloads setup").
//
// The paper replays ShareGPT (chatbot) and LongBench (summarization)
// requests and, because those datasets carry no timestamps, draws arrival
// times from a Poisson process at a configurable rate. We reproduce that
// setup synthetically: per-dataset token-length distributions (lognormal,
// clamped to the datasets' observed ranges) plus Poisson — or optionally
// bursty Markov-modulated Poisson — arrivals. Burstiness matters: it is the
// regime where homogeneous INA collapses (SII-C) and HeroServe's online
// scheduler earns its keep.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hero::wl {

struct Request {
  std::uint64_t id = 0;
  Time arrival = 0.0;
  std::size_t input_tokens = 0;
  std::size_t output_tokens = 0;
  /// Conversation session of a multi-turn trace. 0 = sessionless: the
  /// prefix/KV tier ignores the request entirely.
  std::uint64_t session_id = 0;
  /// Leading tokens of input_tokens that are the session's accumulated
  /// context (system prompt + prior turns, the shareable prefix); the
  /// remainder is the new user turn. Always < input_tokens.
  std::size_t prefix_tokens = 0;
};

using Trace = std::vector<Request>;

/// Clamped lognormal over request lengths.
struct LengthDistribution {
  double input_mu = 5.5;
  double input_sigma = 1.0;
  std::size_t input_min = 4;
  std::size_t input_max = 2048;
  double output_mu = 5.1;
  double output_sigma = 0.8;
  std::size_t output_min = 4;
  std::size_t output_max = 1024;
};

/// Chatbot lengths in the spirit of ShareGPT: median prompt ~250 tokens,
/// heavy right tail, replies a couple hundred tokens.
[[nodiscard]] LengthDistribution sharegpt_lengths();

/// Summarization lengths in the spirit of LongBench: prompts of several
/// thousand tokens, short generated summaries.
[[nodiscard]] LengthDistribution longbench_lengths();

struct TraceOptions {
  Rate rate = 1.0;          ///< mean arrivals per second (lambda of Table I)
  std::size_t count = 100;  ///< number of requests
  LengthDistribution lengths;
  std::uint64_t seed = 42;

  /// Markov-modulated burstiness: a fraction of time runs at
  /// `burst_multiplier` x rate, the rest at a reduced rate preserving the
  /// mean. Plain Poisson when disabled.
  bool bursty = false;
  double burst_multiplier = 3.0;
  double burst_fraction = 0.2;
  Time burst_mean_duration = 5.0;  ///< mean sojourn in the bursty state
};

[[nodiscard]] Trace generate_trace(const TraceOptions& opts);

/// Diurnal (time-of-day) rate modulation: a sinusoidal envelope over the
/// base rate, as production serving traces exhibit. `period` is the cycle
/// length in simulated seconds and `amplitude` in [0, 1) the peak-to-mean
/// swing; the mean rate is preserved. Arrivals are a non-homogeneous
/// Poisson process sampled by thinning.
struct DiurnalOptions {
  TraceOptions base;
  Time period = 600.0;
  double amplitude = 0.5;
};

[[nodiscard]] Trace generate_diurnal_trace(const DiurnalOptions& opts);

/// Flash crowd: a step burst on top of steady background traffic. The rate
/// runs at `base.rate` until `burst_start`, jumps to `burst_multiplier` x
/// the base rate for `burst_duration` seconds, then falls back — the
/// viral-moment trace an autoscaler must absorb (and recover p99 TTFT
/// from) within the window. Piecewise-homogeneous Poisson, seeded through
/// hero::Rng like every other generator.
struct FlashCrowdOptions {
  TraceOptions base;
  Time burst_start = 60.0;
  Time burst_duration = 60.0;
  double burst_multiplier = 4.0;
};

[[nodiscard]] Trace generate_flash_crowd_trace(const FlashCrowdOptions& opts);

/// Multi-turn chatbot sessions (the prefix/KV-tier workload): every session
/// opens with a system prompt, and each follow-up turn resubmits the whole
/// accumulated context (prior inputs + responses) plus a fresh user turn —
/// so `prefix_tokens` of each follow-up is exactly the context a cache that
/// saw the previous turn retire can reuse. Sessions arrive as a Poisson
/// process; turns within a session are spaced by exponential think time.
struct MultiturnOptions {
  /// rate = mean *request* arrivals per second (sessions arrive at
  /// rate / mean_turns); count, lengths (per-turn user input + response
  /// lengths) and seed as usual. Burstiness fields are ignored.
  TraceOptions base;
  /// System-prompt tokens prepended to every session's first turn.
  std::size_t system_prompt_tokens = 256;
  /// Mean turns per multi-turn session (geometric, >= 1).
  double mean_turns = 4.0;
  /// Fraction of sessions that get follow-up turns at all; the rest are
  /// one-shot (0.0 makes the whole trace prefix-free in practice).
  double multi_turn_fraction = 1.0;
  /// Mean think time between a session's turns (simulated seconds). Keep
  /// well above typical request completion so follow-ups find their
  /// context already cached.
  Time think_mean = 30.0;
  /// A session ends once its accumulated context would exceed this.
  std::size_t max_context_tokens = 8192;
};

[[nodiscard]] Trace generate_multiturn_trace(const MultiturnOptions& opts);

/// Moving-average workload estimator (paper SIII-B: "we utilize state
/// information collected by the online scheduler module and apply a moving
/// average method to dynamically update K_in and K_out"). Feeds the
/// planner's K_in / K_out / K_in2 inputs for a hypothetical batch size Q.
class WorkloadEstimator {
 public:
  explicit WorkloadEstimator(std::size_t window = 64);

  void observe(const Request& request);

  [[nodiscard]] std::size_t observed() const { return observed_; }
  /// Estimated total input tokens of a Q-request batch (K_in).
  [[nodiscard]] std::size_t k_in(std::size_t batch) const;
  /// Estimated sum of squared input lengths (K_in2).
  [[nodiscard]] std::size_t k_in2(std::size_t batch) const;
  /// Estimated total output tokens of a Q-request batch (K_out).
  [[nodiscard]] std::size_t k_out(std::size_t batch) const;

 private:
  MovingAverage input_len_;
  MovingAverage input_len_sq_;
  MovingAverage output_len_;
  std::size_t observed_ = 0;
};

/// Summary statistics of a trace (tests / harness reporting).
struct TraceStats {
  double mean_input = 0.0;
  double mean_output = 0.0;
  Rate mean_rate = 0.0;  ///< count / makespan
  std::size_t count = 0;
  std::size_t sessions = 0;  ///< distinct non-zero session ids
  /// sum(prefix_tokens) / sum(input_tokens): the fraction of all prefill
  /// work that is a previously-served context (the KV tier's upper bound).
  double shareable_fraction = 0.0;
};

[[nodiscard]] TraceStats summarize(const Trace& trace);

}  // namespace hero::wl
