#include "workload/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/format.hpp"

namespace hero::wl {

Trace read_trace_csv(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim whitespace.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string body = line.substr(begin, end - begin + 1);
    if (body.empty() || body[0] == '#') continue;
    // Skip a header row.
    if (body.find("arrival") != std::string::npos) continue;

    std::istringstream row(body);
    std::string cell;
    double fields[5] = {0, 0, 0, 0, 0};
    int parsed = 0;
    while (parsed < 5 && std::getline(row, cell, ',')) {
      try {
        fields[parsed] = std::stod(cell);
      } catch (const std::exception&) {
        throw std::runtime_error(
            strfmt("trace csv line {}: bad number '{}'", line_no, cell));
      }
      ++parsed;
    }
    // Legacy rows carry 3 fields; session-annotated rows carry 5
    // (session_id, prefix_tokens).
    if (parsed != 3 && parsed != 5) {
      throw std::runtime_error(
          strfmt("trace csv line {}: expected 3 or 5 fields", line_no));
    }
    for (int f = 0; f < parsed; ++f) {
      if (fields[f] < 0) {
        throw std::runtime_error(
            strfmt("trace csv line {}: negative value", line_no));
      }
    }
    Request r;
    r.arrival = fields[0];
    r.input_tokens = static_cast<std::size_t>(fields[1]);
    r.output_tokens = static_cast<std::size_t>(fields[2]);
    r.session_id = static_cast<std::uint64_t>(fields[3]);
    r.prefix_tokens = static_cast<std::size_t>(fields[4]);
    if (r.prefix_tokens >= r.input_tokens && r.prefix_tokens != 0) {
      throw std::runtime_error(
          strfmt("trace csv line {}: prefix_tokens >= input_tokens",
                 line_no));
    }
    trace.push_back(r);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i].id = i;
  return trace;
}

Trace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read trace file: " + path);
  return read_trace_csv(in);
}

void write_trace_csv(std::ostream& out, const Trace& trace) {
  // Sessionless traces keep the legacy 3-column format byte-for-byte;
  // session columns appear only when some request carries one.
  const bool sessions =
      std::any_of(trace.begin(), trace.end(),
                  [](const Request& r) { return r.session_id != 0; });
  out << std::setprecision(17);  // lossless double round-trip
  out << "# HeroServe request trace\n";
  if (sessions) {
    out << "arrival_s,input_tokens,output_tokens,session_id,prefix_tokens\n";
  } else {
    out << "arrival_s,input_tokens,output_tokens\n";
  }
  for (const Request& r : trace) {
    out << r.arrival << ',' << r.input_tokens << ',' << r.output_tokens;
    if (sessions) out << ',' << r.session_id << ',' << r.prefix_tokens;
    out << '\n';
  }
}

void save_trace_csv(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  write_trace_csv(out, trace);
}

Trace rescale_rate(Trace trace, Rate rate) {
  if (trace.size() < 2 || rate <= 0) return trace;
  const Time span = trace.back().arrival - trace.front().arrival;
  if (span <= 0) return trace;
  const Rate current = static_cast<double>(trace.size() - 1) / span;
  const double scale = current / rate;
  const Time origin = trace.front().arrival;
  for (Request& r : trace) {
    r.arrival = origin + (r.arrival - origin) * scale;
  }
  return trace;
}

}  // namespace hero::wl
