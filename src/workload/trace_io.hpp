// Trace file I/O: load and save request traces in a simple CSV format, so
// real production traces (ShareGPT / LongBench exports, Azure LLM traces,
// ...) can be replayed through the simulator instead of the synthetic
// generators.
//
// Format: one request per line, header optional:
//     arrival_s,input_tokens,output_tokens[,session_id,prefix_tokens]
// The two session columns (multi-turn traces for the prefix/KV tier) are
// written only when some request carries a non-zero session_id, so
// sessionless traces round-trip byte-identically with the legacy 3-column
// files. Lines starting with '#' are comments. Requests are sorted by
// arrival on load and re-numbered sequentially.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace hero::wl {

/// Parse a trace from a stream. Throws std::runtime_error on malformed
/// rows (with the offending line number).
[[nodiscard]] Trace read_trace_csv(std::istream& in);

/// Load from a file path. Throws std::runtime_error when unreadable.
[[nodiscard]] Trace load_trace_csv(const std::string& path);

/// Serialize with a header comment.
void write_trace_csv(std::ostream& out, const Trace& trace);

/// Save to a file path. Throws std::runtime_error when unwritable.
void save_trace_csv(const std::string& path, const Trace& trace);

/// Rescale a trace's arrival times so its mean rate becomes `rate`
/// (requests/s). Useful for replaying one recorded trace across the rate
/// sweep of a scalability experiment. Traces with fewer than 2 requests
/// are returned unchanged.
[[nodiscard]] Trace rescale_rate(Trace trace, Rate rate);

}  // namespace hero::wl
