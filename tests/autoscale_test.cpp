// Elastic-fleet autoscaler tests: scale-up fires on a flash crowd, a drain
// returns exactly the victim's GPUs to the spare pool, the hysteresis band
// keeps a flat trace action-free, and autoscaled runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/heroserve.hpp"
#include "serving/fleet_controller.hpp"

namespace hero {
namespace {

ExperimentConfig autoscale_config() {
  ExperimentConfig cfg;
  cfg.topology = topo::make_fleet_cluster();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 2.0;  // expected fleet rate (planner sizing)
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.fleet.instances = 1;
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;
  cfg.fleet.autoscale.enabled = true;
  cfg.fleet.autoscale.tick_period = 2.0;
  cfg.fleet.autoscale.warmup_delay = 4.0;
  cfg.fleet.autoscale.cooldown = 4.0;
  return cfg;
}

wl::Trace flash_trace() {
  wl::FlashCrowdOptions opts;
  opts.base.rate = 1.0;
  opts.base.count = 150;
  opts.base.seed = 17;
  opts.base.lengths = wl::sharegpt_lengths();
  opts.burst_start = 10.0;
  opts.burst_duration = 40.0;
  opts.burst_multiplier = 8.0;
  return wl::generate_flash_crowd_trace(opts);
}

TEST(Autoscale, ScaleUpFiresOnFlashCrowd) {
  const ExperimentConfig cfg = autoscale_config();
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg, flash_trace());
  ASSERT_TRUE(r.ok()) << r.plan.infeasible_reason;
  const serve::AutoscaleStats& st = r.report.autoscale;
  EXPECT_GT(st.ticks, 0u);
  EXPECT_GE(st.scale_ups, 1u) << "8x burst never triggered a scale-up";
  EXPECT_GE(st.peak_instances, 2u);
  EXPECT_GT(st.rate_estimate, 0.0);
  // Scaled-up replicas show up as extra lifetimes starting mid-run.
  ASSERT_GT(r.report.lifetimes.size(), 1u);
  EXPECT_GT(raw(r.report.lifetimes.back().deployed), 0.0);
  // Every submitted request was served despite the membership changes.
  EXPECT_EQ(r.report.aggregate.completed, 150u);
}

TEST(Autoscale, DrainReleasesExactlyTheVictimsGpus) {
  const topo::Graph graph = topo::make_fleet_cluster();
  const llm::ModelConfig model = llm::opt_66b();

  planner::FleetPlannerInputs in;
  in.base.graph = &graph;
  in.base.model = model;
  in.base.latency = &fitted_model(model);
  in.base.k_in = 256;
  in.base.k_in2 = 256 * 256 * 2;
  in.base.k_out = 200;
  in.base.seed = 5;
  in.instances = 2;
  in.fleet_arrival_rate = 2.0;
  planner::FleetPlan plan = planner::FleetPlanner(in).plan();
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;

  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches, coll::EngineConfig{});
  baselines::StaticCommScheduler scheduler(
      network, baselines::BaselineKind::kDistServe);

  serve::FleetConfig fc;
  fc.policy = serve::RouterPolicy::kRoundRobin;
  fc.autoscale.enabled = true;
  fc.autoscale.tick_period = 2.0;
  fc.autoscale.cooldown = 2.0;
  fc.autoscale.min_instances = 1;
  serve::ServingOptions opts;
  opts.model = model;
  serve::FleetSim fleet(network, engine, scheduler, fc, opts);
  for (const planner::PlanResult& p : plan.instances) {
    fleet.add_instance(p);
  }
  serve::FleetController controller(fleet, in.base);
  const std::size_t spare_before = controller.spare_gpu_count();

  // A trickle far below capacity: the controller must drain one replica
  // (min_instances stops it from going further).
  wl::TraceOptions trace_opts;
  trace_opts.rate = 0.2;
  trace_opts.count = 12;
  trace_opts.seed = 3;
  trace_opts.lengths = wl::sharegpt_lengths();
  const wl::Trace trace = wl::generate_trace(trace_opts);

  controller.start();
  scheduler.start();
  const serve::FleetReport report = fleet.run(trace);

  const serve::AutoscaleStats& st = controller.stats();
  ASSERT_GE(st.drains, 1u);
  EXPECT_EQ(st.releases, st.drains) << "a drain never completed";
  EXPECT_EQ(st.scale_ups, 0u);
  EXPECT_EQ(controller.draining_count(), 0u);

  // The spare pool grew by exactly the released instances' GPU counts.
  std::size_t released_gpus = 0;
  for (const serve::InstanceLifetime& life : report.lifetimes) {
    if (life.released >= 0) released_gpus += life.gpus;
  }
  EXPECT_GT(released_gpus, 0u);
  EXPECT_EQ(controller.spare_gpu_count(), spare_before + released_gpus);
  // Nothing was lost in the handover.
  EXPECT_EQ(report.aggregate.completed, trace.size());
  // Released GPUs stopped billing before the run ended.
  EXPECT_LT(report.gpu_hours,
            static_cast<double>(plan.gpus_used) *
                raw(report.aggregate.makespan) / 3600.0);
}

TEST(Autoscale, HysteresisKeepsFlatTraceActionFree) {
  const topo::Graph graph = topo::make_fleet_cluster();
  const llm::ModelConfig model = llm::opt_66b();

  planner::FleetPlannerInputs in;
  in.base.graph = &graph;
  in.base.model = model;
  in.base.latency = &fitted_model(model);
  in.base.k_in = 256;
  in.base.k_in2 = 256 * 256 * 2;
  in.base.k_out = 200;
  in.base.seed = 5;
  in.instances = 2;
  in.fleet_arrival_rate = 2.0;
  planner::FleetPlan plan = planner::FleetPlanner(in).plan();
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;

  sim::Simulator simulator;
  net::FlowNetwork network(simulator, graph);
  sw::SwitchRegistry switches(simulator, graph);
  coll::CollectiveEngine engine(network, switches, coll::EngineConfig{});
  baselines::StaticCommScheduler scheduler(
      network, baselines::BaselineKind::kDistServe);

  serve::FleetConfig fc;
  fc.policy = serve::RouterPolicy::kRoundRobin;
  fc.autoscale.enabled = true;
  fc.autoscale.tick_period = 10.0;
  fc.autoscale.cooldown = 10.0;
  // Slow smoothing so the post-trace drain tail (a few zero-observation
  // ticks while the last decodes finish) can't decay the estimate out of
  // the band — the test isolates the hysteresis thresholds themselves.
  fc.autoscale.ewma_alpha = 0.1;
  // plan.service_rate is the planner's capacity-model ceiling, well above
  // the simulator's realized throughput; widen the band downward so the
  // offered flat rate sits inside it (scale-down fires under ~2.1 req/s,
  // scale-up over ~43 req/s for this fleet).
  fc.autoscale.scale_down_threshold = 0.1;
  serve::ServingOptions opts;
  opts.model = model;
  serve::FleetSim fleet(network, engine, scheduler, fc, opts);
  for (const planner::PlanResult& p : plan.instances) {
    fleet.add_instance(p);
  }
  serve::FleetController controller(fleet, in.base);

  // Flat demand in the middle of the hysteresis band: above the
  // scale-down threshold, below the scale-up threshold, and low enough
  // that the fleet genuinely keeps up (short drain tail).
  const double mid_rate = 4.0;
  wl::TraceOptions trace_opts;
  trace_opts.rate = mid_rate;
  trace_opts.count =
      static_cast<std::size_t>(std::llround(mid_rate * 60.0));
  trace_opts.seed = 8;
  trace_opts.lengths = wl::sharegpt_lengths();
  const wl::Trace trace = wl::generate_trace(trace_opts);

  controller.start();
  scheduler.start();
  const serve::FleetReport report = fleet.run(trace);

  EXPECT_GT(controller.stats().ticks, 2u);
  EXPECT_EQ(controller.stats().scale_ups, 0u)
      << "flat trace triggered a scale-up";
  EXPECT_EQ(controller.stats().drains, 0u)
      << "flat trace triggered a drain";
  EXPECT_EQ(report.aggregate.completed, trace.size());
}

TEST(Autoscale, RerunsAreIdentical) {
  const ExperimentConfig cfg = autoscale_config();
  const wl::Trace trace = flash_trace();
  const FleetExperimentResult a =
      run_fleet_experiment(SystemKind::kHeroServe, cfg, trace);
  const FleetExperimentResult b =
      run_fleet_experiment(SystemKind::kHeroServe, cfg, trace);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.report.dispatched, b.report.dispatched);
  EXPECT_EQ(a.report.autoscale.ticks, b.report.autoscale.ticks);
  EXPECT_EQ(a.report.autoscale.scale_ups, b.report.autoscale.scale_ups);
  EXPECT_EQ(a.report.autoscale.drains, b.report.autoscale.drains);
  EXPECT_EQ(a.report.autoscale.releases, b.report.autoscale.releases);
  EXPECT_EQ(a.report.autoscale.peak_instances,
            b.report.autoscale.peak_instances);
  EXPECT_DOUBLE_EQ(a.report.autoscale.rate_estimate,
                   b.report.autoscale.rate_estimate);
  EXPECT_DOUBLE_EQ(a.report.gpu_hours, b.report.gpu_hours);
  EXPECT_DOUBLE_EQ(raw(a.report.aggregate.makespan),
                   raw(b.report.aggregate.makespan));
  EXPECT_DOUBLE_EQ(a.report.aggregate.ttft.p99(),
                   b.report.aggregate.ttft.p99());
  ASSERT_EQ(a.report.samples.size(), b.report.samples.size());
  for (std::size_t i = 0; i < a.report.samples.size(); ++i) {
    EXPECT_EQ(a.report.samples[i].id, b.report.samples[i].id);
    EXPECT_DOUBLE_EQ(raw(a.report.samples[i].ttft),
                     raw(b.report.samples[i].ttft));
  }
}

}  // namespace
}  // namespace hero
