// Tests for the HERO_INVARIANT / HERO_REQUIRE runtime-check subsystem.
//
// The same binary is built twice in CI: default (checks compiled out) and
// the `validate` preset (checks fatal unless a handler is installed).
// Tests here cover both modes — mode-specific expectations key off
// hero::check::enabled().
#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

struct Captured {
  std::string kind;
  std::string file;
  std::string condition;
  std::string message;
  int line = 0;
  int count = 0;
};

Captured g_cap;

void record_failure(const char* kind, const char* file, int line,
                    const char* condition, const std::string& message) {
  g_cap.kind = kind;
  g_cap.file = file;
  g_cap.line = line;
  g_cap.condition = condition;
  g_cap.message = message;
  ++g_cap.count;
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_cap = {};
    hero::check::set_failure_handler(&record_failure);
  }
  void TearDown() override { hero::check::set_failure_handler(nullptr); }
};

TEST_F(CheckTest, FailDispatchesToHandlerWithDetails) {
  // fail() is ordinary code, present in every build mode.
  const auto before = hero::check::failures_observed();
  hero::check::fail("invariant", "somefile.cpp", 42, "x > 0",
                    "x was -3");
  EXPECT_EQ(g_cap.count, 1);
  EXPECT_EQ(g_cap.kind, "invariant");
  EXPECT_EQ(g_cap.file, "somefile.cpp");
  EXPECT_EQ(g_cap.line, 42);
  EXPECT_EQ(g_cap.condition, "x > 0");
  EXPECT_EQ(g_cap.message, "x was -3");
  EXPECT_EQ(hero::check::failures_observed(), before + 1);
}

TEST_F(CheckTest, PassingCheckNeverFires) {
  HERO_INVARIANT(2 + 2 == 4, "arithmetic broke");
  HERO_REQUIRE(true);
  EXPECT_EQ(g_cap.count, 0);
}

TEST_F(CheckTest, ConditionEvaluatedOnlyUnderValidate) {
  // Release builds must pay nothing: the condition is type-checked via
  // sizeof() but never evaluated, so the side effect below runs exactly
  // zero times. Under HERO_VALIDATE it runs once.
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  HERO_INVARIANT(bump(), "never fails");
  EXPECT_EQ(calls, hero::check::enabled() ? 1 : 0);
  EXPECT_EQ(g_cap.count, 0);
}

TEST_F(CheckTest, FailingInvariantReportsConditionAndMessage) {
  if (!hero::check::enabled()) {
    GTEST_SKIP() << "checks compiled out (build with --preset validate)";
  }
  const auto before = hero::check::failures_observed();
  const int x = -3;
  HERO_INVARIANT(x >= 0, "x went negative: {}", x);
  ASSERT_EQ(g_cap.count, 1);
  EXPECT_EQ(g_cap.kind, "invariant");
  EXPECT_NE(g_cap.condition.find("x >= 0"), std::string::npos);
  EXPECT_EQ(g_cap.message, "x went negative: -3");
  EXPECT_NE(g_cap.file.find("check_test"), std::string::npos);
  EXPECT_GT(g_cap.line, 0);
  EXPECT_EQ(hero::check::failures_observed(), before + 1);
}

TEST_F(CheckTest, FailingRequireUsesRequireKind) {
  if (!hero::check::enabled()) {
    GTEST_SKIP() << "checks compiled out (build with --preset validate)";
  }
  HERO_REQUIRE(1 + 1 == 3);
  ASSERT_EQ(g_cap.count, 1);
  EXPECT_EQ(g_cap.kind, "require");
  EXPECT_TRUE(g_cap.message.empty());
}

TEST_F(CheckTest, HandlerSwapRestoresDefault) {
  // nullptr restores the fatal default; we only verify the setter accepts
  // it and that our recording handler stops receiving failures... by not
  // failing anything afterwards (the default aborts).
  hero::check::set_failure_handler(nullptr);
  hero::check::set_failure_handler(&record_failure);
  hero::check::fail("require", "f.cpp", 1, "c", "");
  EXPECT_EQ(g_cap.count, 1);
}

}  // namespace
