// Tests for collective cost models (Eq. 8-11) and the execution engine:
// ring, INA (sync/async with fallback), and hierarchical all-reduce.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/engine.hpp"
#include "netsim/flownet.hpp"
#include "topology/builders.hpp"

namespace hero::coll {
namespace {

using topo::GpuModel;
using topo::LinkKind;
using topo::NodeId;
using topo::NodeKind;

struct Fixture {
  topo::Graph graph;
  sim::Simulator simulator;
  std::unique_ptr<net::FlowNetwork> network;
  std::unique_ptr<sw::SwitchRegistry> switches;
  std::unique_ptr<CollectiveEngine> engine;

  explicit Fixture(topo::Graph g, EngineConfig cfg = {})
      : graph(std::move(g)) {
    network = std::make_unique<net::FlowNetwork>(simulator, graph);
    switches = std::make_unique<sw::SwitchRegistry>(simulator, graph);
    engine = std::make_unique<CollectiveEngine>(*network, *switches, cfg);
  }

  Router router(bool nvlink = true) const {
    return shortest_path_router(graph, topo::PathConstraints{nvlink, true});
  }
};

/// Star: n GPUs on one access switch, optional PS.
topo::Graph star_graph(int n, bool with_ps = false, int agg_slots = 64) {
  topo::Graph g;
  const NodeId sw = g.add_switch("sw", NodeKind::kAccessSwitch, agg_slots);
  for (int i = 0; i < n; ++i) {
    const NodeId gpu = g.add_gpu("g" + std::to_string(i), GpuModel::kA100_40,
                                 40 * units::GB, i);
    g.add_edge(gpu, sw, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  }
  if (with_ps) {
    const NodeId ps = g.add_server("ps");
    g.add_edge(ps, sw, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  }
  return g;
}

// --- cost models ---

TEST(CostModel, RingFormulaEq11) {
  // 2 (P-1) * (V/P) / B.
  const Time t = ring_all_reduce_latency(4, 8.0 * units::MB,
                                         100.0 * units::Gbps);
  EXPECT_NEAR(raw(t), raw(2.0 * 3.0 * (2.0 * units::MB / (12.5e9))), 1e-12);
}

TEST(CostModel, RingDegenerateCases) {
  EXPECT_DOUBLE_EQ(raw(ring_all_reduce_latency(1, 1e6, 1e9)), raw(0.0));
  EXPECT_DOUBLE_EQ(raw(ring_all_reduce_latency(4, 0.0, 1e9)), raw(0.0));
  EXPECT_TRUE(std::isinf(raw(ring_all_reduce_latency(4, 1e6, 0.0))));
}

TEST(CostModel, RingOnPathsUsesWorstNeighbor) {
  const topo::Graph g = star_graph(3);
  const Router route = shortest_path_router(g);
  std::vector<topo::Path> ring;
  const auto gpus = g.gpus();
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    ring.push_back(route(gpus[i], gpus[(i + 1) % gpus.size()]));
  }
  // Each neighbor path is 2 hops; chunk = V/3; steps = 4.
  const Bytes v = 3.0 * units::MB;
  const Time t = ring_all_reduce_latency_on_paths(g, ring, v);
  EXPECT_NEAR(raw(t), raw(4.0 * 2.0 * (units::MB / 12.5e9)), 1e-9);
}

TEST(CostModel, InaOnPathsEq8) {
  const topo::Graph g = star_graph(3);
  const Router route = shortest_path_router(g);
  const NodeId sw = g.find("sw");
  std::vector<topo::Path> up, down;
  for (NodeId gpu : g.gpus()) {
    up.push_back(route(gpu, sw));
    down.push_back(route(sw, gpu));
  }
  CostConfig cfg;
  const Time t =
      ina_all_reduce_latency_on_paths(g, up, down, 1.0 * units::MB, cfg);
  // 1 hop up (80us) + 1us agg + 1 hop down (80us).
  EXPECT_NEAR(raw(t), raw(161.0 * units::us), 1e-9);
}

TEST(CostModel, HierarchicalAddsLocalAndBroadcast) {
  const std::size_t sizes[] = {4, 2};
  const Time wide = 100.0 * units::us;
  const Time t = hierarchical_latency(4.0 * units::MB, sizes,
                                      600.0 * units::GBps, wide);
  // local ring (4 GPUs): 6 * 1MB / 600GBps = 10us; bcast 4MB/600GBps ~ 6.7us
  EXPECT_GT(t, wide);
  EXPECT_LT(t, wide + 20.0 * units::us);
}

/// Eq. 11 consistency between the closed form and the DES ring executor.
class RingSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeTest, EngineMatchesClosedForm) {
  const int p = GetParam();
  Fixture f(star_graph(p));
  const Bytes volume = 4.0 * units::MB;
  AllReducePlan plan = make_ring_plan(f.graph.gpus(), volume, f.router());

  Time done = -1;
  f.engine->all_reduce(std::move(plan), [&](const AllReduceResult& r) {
    done = r.end;
  });
  f.simulator.run();
  // Every ring hop crosses the shared star switch: at any step, each of the
  // p uplinks carries one chunk up and one down; per-link both directions
  // are independent, so a step costs 2 hops of chunk serialization.
  const Time expected =
      2.0 * (p - 1) * 2.0 * (volume / p / (100.0 * units::Gbps / 8 * 8));
  EXPECT_NEAR(raw(done), raw(expected), raw(expected * 0.05 + 2e-6));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeTest, ::testing::Values(2, 3, 4, 8));

// --- engine: INA ---

TEST(Engine, InaSyncPhases) {
  Fixture f(star_graph(3));
  AllReducePlan plan = make_ina_plan(f.graph.gpus(), 1.0 * units::MB,
                                     f.graph.find("sw"), Scheme::kInaSync,
                                     f.router());
  AllReduceResult result;
  bool done = false;
  f.engine->all_reduce(std::move(plan), [&](const AllReduceResult& r) {
    result = r;
    done = true;
  });
  f.simulator.run();
  ASSERT_TRUE(done);
  // Collection: all three 1MB flows in parallel on separate uplinks: 80us.
  EXPECT_NEAR(raw(result.collected - result.start),
              raw(80.0 * units::us),
              raw(1.0 * units::us));
  // Distribution adds agg (1us) + 80us.
  EXPECT_NEAR(raw(result.end - result.start),
              raw(161.0 * units::us),
              raw(2.0 * units::us));
  EXPECT_FALSE(result.used_fallback);
}

TEST(Engine, InaReleasesSlotsAfterOp) {
  Fixture f(star_graph(3));
  AllReducePlan plan = make_ina_plan(f.graph.gpus(), 1.0 * units::MB,
                                     f.graph.find("sw"), Scheme::kInaSync,
                                     f.router());
  f.engine->all_reduce(std::move(plan), nullptr);
  f.simulator.run();
  EXPECT_EQ(f.switches->agent(f.graph.find("sw")).slots_in_use(), 0u);
}

TEST(Engine, InaSyncQueuesUnderSlotPressure) {
  // Pool of 40 slots, jobs of 32: second job waits for the first.
  Fixture f(star_graph(4, false, 40));
  const auto gpus = f.graph.gpus();
  std::vector<NodeId> g1{gpus[0], gpus[1]}, g2{gpus[2], gpus[3]};
  Time done1 = -1, done2 = -1;
  f.engine->all_reduce(
      make_ina_plan(g1, 1.0 * units::MB, f.graph.find("sw"),
                    Scheme::kInaSync, f.router(), topo::kInvalidNode,
                    /*slots=*/32),
      [&](const AllReduceResult& r) { done1 = r.end; });
  f.engine->all_reduce(
      make_ina_plan(g2, 1.0 * units::MB, f.graph.find("sw"),
                    Scheme::kInaSync, f.router(), topo::kInvalidNode,
                    /*slots=*/32),
      [&](const AllReduceResult& r) { done2 = r.end; });
  f.simulator.run();
  ASSERT_GT(done1, 0);
  ASSERT_GT(done2, 0);
  // Serialized: second op roughly doubles.
  EXPECT_GT(done2, done1 + 100.0 * units::us);
}

TEST(Engine, InaAsyncFallsBackToPs) {
  Fixture f(star_graph(4, /*with_ps=*/true, /*agg_slots=*/40));
  const auto gpus = f.graph.gpus();
  std::vector<NodeId> g1{gpus[0], gpus[1]}, g2{gpus[2], gpus[3]};
  const NodeId ps = f.graph.find("ps");
  AllReduceResult r1, r2;
  f.engine->all_reduce(
      make_ina_plan(g1, 1.0 * units::MB, f.graph.find("sw"),
                    Scheme::kInaAsync, f.router(), ps, /*slots=*/32),
      [&](const AllReduceResult& r) { r1 = r; });
  f.engine->all_reduce(
      make_ina_plan(g2, 1.0 * units::MB, f.graph.find("sw"),
                    Scheme::kInaAsync, f.router(), ps, /*slots=*/32),
      [&](const AllReduceResult& r) { r2 = r; });
  f.simulator.run();
  EXPECT_FALSE(r1.used_fallback);
  EXPECT_TRUE(r2.used_fallback);
  EXPECT_EQ(f.engine->fallbacks_taken, 1u);
  // The fallback path crosses two hops (gpu->sw->ps) plus host aggregation,
  // so it is strictly slower than in-switch aggregation.
  EXPECT_GT(r2.end - r2.start, r1.end - r1.start);
}

TEST(Engine, InaAsyncWithoutFallbackThrowsOnRejection) {
  Fixture f(star_graph(4, false, 40));
  const auto gpus = f.graph.gpus();
  f.engine->all_reduce(
      make_ina_plan({gpus[0], gpus[1]}, 1.0 * units::MB, f.graph.find("sw"),
                    Scheme::kInaAsync, f.router(), topo::kInvalidNode,
                    /*slots=*/32),
      nullptr);
  EXPECT_THROW(
      f.engine->all_reduce(
          make_ina_plan({gpus[2], gpus[3]}, 1.0 * units::MB,
                        f.graph.find("sw"), Scheme::kInaAsync, f.router(),
                        topo::kInvalidNode, /*slots=*/32),
          nullptr),
      std::invalid_argument);
}

// --- engine: hierarchical ---

TEST(Engine, HierarchicalGroupsByServer) {
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());
  const Router route = shortest_path_router(g);
  const AllReducePlan plan =
      make_hierarchical_plan(g, members, 1.0 * units::MB, Scheme::kRing,
                             route);
  ASSERT_EQ(plan.local_groups.size(), 2u);
  EXPECT_EQ(plan.local_groups[0].size(), 4u);
  EXPECT_EQ(plan.wide_members.size(), 2u);
  // Leaders come one per server.
  EXPECT_NE(g.node(plan.wide_members[0]).gpu.server,
            g.node(plan.wide_members[1]).gpu.server);
}

TEST(Engine, HierarchicalFasterThanFlatOnTestbed) {
  // 8 GPUs across 2 servers: NVLink-local reduction + 2-leader Ethernet
  // exchange beats an 8-member Ethernet ring.
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());

  Time hier_done = -1, flat_done = -1;
  {
    Fixture f(g);
    f.engine->all_reduce(
        make_hierarchical_plan(f.graph, members, 16.0 * units::MB,
                               Scheme::kRing, f.router()),
        [&](const AllReduceResult& r) { hier_done = r.latency(); });
    f.simulator.run();
  }
  {
    Fixture f(g);
    f.engine->all_reduce(
        make_ring_plan(members, 16.0 * units::MB, f.router(false)),
        [&](const AllReduceResult& r) { flat_done = r.latency(); });
    f.simulator.run();
  }
  ASSERT_GT(hier_done, 0);
  ASSERT_GT(flat_done, 0);
  EXPECT_LT(hier_done, flat_done);
}

TEST(Engine, RankAggregationOracleOverloadMatchesGraphOverload) {
  // The caller-owned-oracle fast path must elect identical switches in
  // identical order to the per-call graph overload.
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  for (const bool hetero : {true, false}) {
    topo::PathOptions opts;
    opts.constraints =
        topo::PathConstraints{hetero, true, /*allow_nvlink_direct=*/!hetero};
    const topo::PathOracle oracle(g, opts);
    for (std::size_t server = 0; server < by_server.size(); ++server) {
      std::vector<NodeId> members = by_server[server];
      if (server + 1 < by_server.size()) {
        members.insert(members.end(), by_server[server + 1].begin(),
                       by_server[server + 1].end());
      }
      EXPECT_EQ(rank_aggregation_switches(oracle, members, 2),
                rank_aggregation_switches(g, members, opts.constraints, 2));
    }
  }
}

TEST(Engine, HierarchicalInaIsSharded) {
  // SwitchML sharding: the INA wide phase carries every member with a 1/g
  // payload fraction, not just per-server leaders with full payloads.
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());
  const Router route = shortest_path_router(g);
  const auto ranked =
      rank_aggregation_switches(g, members, topo::PathConstraints{}, 1);
  const AllReducePlan plan = make_hierarchical_plan(
      g, members, 8.0 * units::MB, Scheme::kInaSync, route, ranked.front());
  ASSERT_EQ(plan.wide_members.size(), 8u);
  ASSERT_EQ(plan.wide_scale.size(), 8u);
  for (double scale : plan.wide_scale) EXPECT_DOUBLE_EQ(scale, 0.25);
  EXPECT_EQ(plan.up_paths.size(), 8u);
}

TEST(Engine, ShardedInaFasterThanLeaderSizedTraffic) {
  // The sharded wide phase moves V/4 per NIC over 8 NICs instead of V per
  // leader over 2 NICs: roughly 4x less serialization on the bottleneck.
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());

  Fixture f(g);
  const auto ranked = rank_aggregation_switches(
      f.graph, members, topo::PathConstraints{}, 1);
  Time sharded = -1;
  f.engine->all_reduce(
      make_hierarchical_plan(f.graph, members, 32.0 * units::MB,
                             Scheme::kInaSync, f.router(), ranked.front()),
      [&](const AllReduceResult& r) { sharded = r.latency(); });
  f.simulator.run();

  Fixture f2(g);
  Time flat = -1;
  f2.engine->all_reduce(
      make_ina_plan(members, 32.0 * units::MB, ranked.front(),
                    Scheme::kInaSync, f2.router()),
      [&](const AllReduceResult& r) { flat = r.latency(); });
  f2.simulator.run();

  ASSERT_GT(sharded, 0);
  ASSERT_GT(flat, 0);
  EXPECT_LT(sharded, 0.6 * flat);
}

TEST(Engine, SingleMemberCompletesImmediately) {
  Fixture f(star_graph(2));
  bool done = false;
  f.engine->all_reduce(
      make_ring_plan({f.graph.gpus()[0]}, 1.0 * units::MB, f.router()),
      [&](const AllReduceResult&) { done = true; });
  f.simulator.run();
  EXPECT_TRUE(done);
}

TEST(Engine, TransferDeliversCallback) {
  Fixture f(star_graph(2));
  const Router route = f.router();
  Time done = -1;
  f.engine->transfer(route(f.graph.gpus()[0], f.graph.gpus()[1]),
                     1.0 * units::MB, [&] { done = f.simulator.now(); });
  f.simulator.run();
  EXPECT_NEAR(raw(done), raw(160.0 * units::us), raw(1.0 * units::us));
}

TEST(Engine, OpsCompletedCounter) {
  Fixture f(star_graph(3));
  for (int i = 0; i < 3; ++i) {
    f.engine->all_reduce(
        make_ring_plan(f.graph.gpus(), 1.0 * units::MB, f.router()),
        nullptr);
  }
  f.simulator.run();
  EXPECT_EQ(f.engine->ops_completed, 3u);
}

// --- plan builders ---

TEST(PlanBuilders, RingPathsConnectSuccessiveMembers) {
  const topo::Graph g = star_graph(4);
  const AllReducePlan plan =
      make_ring_plan(g.gpus(), 1.0, shortest_path_router(g));
  ASSERT_EQ(plan.ring_paths.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.ring_paths[i].src(), plan.wide_members[i]);
    EXPECT_EQ(plan.ring_paths[i].dst(), plan.wide_members[(i + 1) % 4]);
  }
}

TEST(PlanBuilders, InaPlanValidation) {
  const topo::Graph g = star_graph(2);
  EXPECT_THROW(make_ina_plan(g.gpus(), 1.0, g.find("sw"), Scheme::kRing,
                             shortest_path_router(g)),
               std::invalid_argument);
}

TEST(PlanBuilders, DirectNvlinkPathRequiresEdge) {
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  EXPECT_NO_THROW(direct_nvlink_path(g, by_server[0][0], by_server[0][1]));
  EXPECT_THROW(direct_nvlink_path(g, by_server[0][0], by_server[1][0]),
               std::invalid_argument);
}

TEST(RankSwitches, PrefersNearestWithSlots) {
  const topo::Graph g = topo::make_fig2_example();
  // For {GN2, GN3} (both uplink S2), S2 must rank first.
  const auto ranked = rank_aggregation_switches(
      g, {g.find("GN2"), g.find("GN3")}, topo::PathConstraints{}, 3);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0], g.find("S2"));
}

TEST(RankSwitches, SkipsSwitchesWithoutSlots) {
  topo::Graph g;
  const NodeId gpu = g.add_gpu("g", GpuModel::kA100_40, 1, 0);
  const NodeId s0 = g.add_switch("s0", NodeKind::kAccessSwitch, 0);
  const NodeId s1 = g.add_switch("s1", NodeKind::kAccessSwitch, 8);
  g.add_edge(gpu, s0, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s0, s1, LinkKind::kEthernet, 100 * units::Gbps);
  const auto ranked =
      rank_aggregation_switches(g, {gpu}, topo::PathConstraints{}, 5);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], s1);
}

TEST(SchemeToString, Names) {
  EXPECT_STREQ(to_string(Scheme::kRing), "ring");
  EXPECT_STREQ(to_string(Scheme::kInaSync), "ina-sync");
  EXPECT_STREQ(to_string(Scheme::kInaAsync), "ina-async");
}

}  // namespace
}  // namespace hero::coll
