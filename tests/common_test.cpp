// Unit tests for the common utilities: RNG, statistics, fixed point,
// formatting, tables, and unit conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/fixed_point.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hero {
namespace {

// --- units ---

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(raw(100.0 * units::Gbps), 12.5e9);  // 100 Gbit/s = 12.5 GB/s
  EXPECT_DOUBLE_EQ(raw(600.0 * units::GBps), 600e9);
  EXPECT_DOUBLE_EQ(raw(1.0 * units::MiB), 1048576.0);
}

TEST(Units, TransferTime) {
  // 1 MB over 100 Gbps is 80 us (the Fig. 2 per-hop number).
  EXPECT_NEAR(raw(transfer_time(1.0 * units::MB, 100.0 * units::Gbps)),
              raw(80.0 * units::us), 1e-12);
}

TEST(Units, TransferOverDeadLinkNeverCompletes) {
  // Regression: a zero-bandwidth link used to "complete" transfers in 0 s,
  // silently pricing dead paths as free. It must be infinitely slow.
  EXPECT_TRUE(std::isinf(raw(transfer_time(123.0 * units::B, Bandwidth{0.0}))));
  EXPECT_GT(transfer_time(1.0 * units::B, Bandwidth{0.0}),
            transfer_time(1.0 * units::GiB, 1.0 * units::bps));
  EXPECT_TRUE(
      std::isinf(raw(transfer_time(1.0 * units::MiB, -1.0 * units::GBps))));
}

// --- rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntZeroIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.08);
  EXPECT_NEAR(s.stddev(), 2.0, 0.08);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  Percentiles p;
  for (int i = 0; i < 20000; ++i) p.add(rng.lognormal(std::log(100.0), 0.5));
  EXPECT_NEAR(p.median(), 100.0, 5.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexEmptyOrNonpositive) {
  Rng rng(29);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

// --- Summary ---

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombined) {
  Summary a, b, all;
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

// --- Percentiles ---

TEST(Percentiles, ExactQuantiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.p90(), 90.1, 1e-9);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
}

TEST(Percentiles, FractionBelow) {
  Percentiles p;
  for (int i = 1; i <= 10; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.fraction_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(p.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.fraction_below(10.0), 1.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
  EXPECT_DOUBLE_EQ(p.fraction_below(1.0), 0.0);
}

TEST(Percentiles, AddAfterQuantileStillSorted) {
  Percentiles p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.median(), 5.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

// --- Ewma ---

TEST(Ewma, FirstObservationSeeds) {
  Ewma e(0.5);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, SmoothsTowardNewValues) {
  Ewma e(0.5);
  e.observe(0.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

// --- TimeWeighted ---

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.observe(0.0, 1.0);
  tw.observe(1.0, 3.0);  // value was 1.0 on [0,1)
  tw.observe(3.0, 0.0);  // value was 3.0 on [1,3)
  EXPECT_DOUBLE_EQ(tw.average(), (1.0 * 1.0 + 3.0 * 2.0) / 3.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 3.0);
  EXPECT_DOUBLE_EQ(tw.current(), 0.0);
}

TEST(TimeWeighted, SingleObservationAverageIsValue) {
  TimeWeighted tw;
  tw.observe(5.0, 2.0);
  EXPECT_DOUBLE_EQ(tw.average(), 2.0);
}

// --- Histogram ---

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // clamps to 0
  h.add(100.0); // clamps to 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RejectsDegenerateShapes) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- MovingAverage ---

TEST(MovingAverage, WindowedMean) {
  MovingAverage ma(3);
  ma.add(1.0);
  EXPECT_DOUBLE_EQ(ma.value(), 1.0);
  ma.add(2.0);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.value(), 2.0);
  ma.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(ma.value(), 5.0);
}

TEST(MovingAverage, RejectsZeroWindow) {
  EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

// --- fixed point ---

TEST(FixedPoint, RoundTripSmallValues) {
  FixedPointFormat fmt;
  for (double v : {0.0, 1.0, -1.0, 0.5, 3.14159, -123.456}) {
    EXPECT_NEAR(from_fixed(to_fixed(v, fmt), fmt), v, 1.0 / fmt.scale());
  }
}

TEST(FixedPoint, EncodeSaturates) {
  FixedPointFormat fmt{16};
  EXPECT_EQ(to_fixed(1e12, fmt), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(to_fixed(-1e12, fmt), std::numeric_limits<std::int32_t>::min());
}

TEST(FixedPoint, SaturatingAdd) {
  EXPECT_EQ(saturating_add(1, 2), 3);
  EXPECT_EQ(saturating_add(std::numeric_limits<std::int32_t>::max(), 1),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(saturating_add(std::numeric_limits<std::int32_t>::min(), -1),
            std::numeric_limits<std::int32_t>::min());
}

TEST(FixedPoint, VectorAggregationMatchesFloatSum) {
  FixedPointFormat fmt;
  Rng rng(43);
  std::vector<double> a(32), b(32), c(32);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
    c[i] = rng.normal();
  }
  auto acc = encode_vector(a, fmt);
  aggregate_into(acc, encode_vector(b, fmt));
  aggregate_into(acc, encode_vector(c, fmt));
  const auto sum = decode_vector(acc, fmt);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(sum[i], a[i] + b[i] + c[i], 3.0 / fmt.scale());
  }
}

TEST(FixedPoint, AggregateSizeMismatchThrows) {
  std::vector<std::int32_t> a(4, 0), b(5, 0);
  EXPECT_THROW(aggregate_into(a, b), std::invalid_argument);
}

/// Precision property across fixed-point formats.
class FixedPointFormatTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointFormatTest, QuantizationErrorBounded) {
  const FixedPointFormat fmt{GetParam()};
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    EXPECT_LE(std::abs(from_fixed(to_fixed(v, fmt), fmt) - v),
              0.5 / fmt.scale() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(FracBits, FixedPointFormatTest,
                         ::testing::Values(8, 12, 16, 20));

// --- format ---

TEST(Format, ReplacesPlaceholders) {
  EXPECT_EQ(strfmt("a={} b={}", 1, "x"), "a=1 b=x");
}

TEST(Format, LiteralBraces) {
  EXPECT_EQ(strfmt("{{}} {}", 5), "{} 5");
}

TEST(Format, ExtraArgumentsDropped) {
  EXPECT_EQ(strfmt("only {}", 1, 2, 3), "only 1");
}

TEST(Format, MissingArgumentsLeaveTail) {
  EXPECT_EQ(strfmt("a={} b={}", 1), "a=1 b={}");
}

// --- table ---

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row_values("y", {2.5}, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| x"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  // Header, 2 rows, 3 separators = 6 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

}  // namespace
}  // namespace hero
