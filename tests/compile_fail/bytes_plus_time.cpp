// Compile-fail fixture: adding bytes to seconds has no dimension, so
// under -DHERO_STRONG_UNITS this translation unit must NOT compile
// (Quantity's hidden-friend operator+ only accepts its own dimension).
// The CTest registered in tests/CMakeLists.txt runs the compiler with
// -fsyntax-only and WILL_FAIL; control_ok.cpp is the positive control
// proving the invocation itself is sound.
#include "common/units.hpp"

#if !defined(HERO_STRONG_UNITS)
// In the plain-double build everything is double and this file would
// compile, inverting the WILL_FAIL expectation; the harness always
// defines HERO_STRONG_UNITS, but keep the guard honest.
#error "this fixture is only meaningful with -DHERO_STRONG_UNITS"
#endif

double nonsense() {
  hero::Bytes data = 4096.0 * hero::units::B;
  hero::Time latency = 1.0 * hero::units::ms;
  return hero::raw(data + latency);  // must not compile: Bytes + Time
}
