// Positive control for the compile-fail harness: identical shape to
// bytes_plus_time.cpp but dimensionally sound, so it MUST compile under
// -DHERO_STRONG_UNITS. If this control fails, the harness (include
// paths, standard flag, strong-units define) is broken — not the
// dimension system.
#include "common/units.hpp"

#if !defined(HERO_STRONG_UNITS)
#error "this fixture is only meaningful with -DHERO_STRONG_UNITS"
#endif

double sensible() {
  hero::Bytes data = 4096.0 * hero::units::B;
  hero::Bandwidth bw = 100.0 * hero::units::Gbps;
  hero::Time latency = data / bw + 1.0 * hero::units::ms;
  return hero::raw(latency);
}
