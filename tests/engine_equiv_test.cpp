// Equivalence gate for the incremental max-min engine: the dirty-set solve
// must be *bitwise* identical to the whole-fabric solve — completion times,
// event counts, delivered bytes, serving reports — across seeds, fault
// plans, and fleet scale. Also exercises the HERO_VALIDATE-style cross-check
// (set_solve_validation) end to end: zero mismatches on a stressed run.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/heroserve.hpp"
#include "netsim/flownet.hpp"
#include "topology/builders.hpp"

namespace hero {
namespace {

using net::FlowNetwork;
using net::TransferId;
using net::TransferOptions;

/// One scripted flow workload on the testbed: staggered starts, mixed
/// store-and-forward / pipelined / weighted flows, mid-run cancels and a
/// link degradation. Scripted up front so both engines replay the exact
/// same byte stream.
struct FlowScript {
  struct Entry {
    Time at = 0.0;
    topo::Path path;
    Bytes bytes = 0.0;
    bool pipelined = false;
    double weight = 1.0;
  };
  std::vector<Entry> entries;
  std::vector<std::pair<Time, std::size_t>> cancels;  // (time, entry index)
};

FlowScript make_script(const topo::Graph& g, std::uint64_t seed) {
  FlowScript script;
  const auto gpus = g.gpus();
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const topo::NodeId src = gpus[rng.uniform_int(gpus.size())];
    topo::NodeId dst = gpus[rng.uniform_int(gpus.size())];
    if (src == dst) continue;
    auto p = topo::shortest_path(g, src, dst);
    if (!p || p->empty()) continue;
    FlowScript::Entry e;
    e.at = rng.uniform(0.0, raw(200.0 * units::us));
    e.path = *p;
    e.bytes = rng.uniform(0.05, 4.0) * units::MB;
    e.pipelined = rng.uniform(0.0, 1.0) < 0.3;
    e.weight = rng.uniform(0.0, 1.0) < 0.2 ? 2.0 : 1.0;
    script.entries.push_back(std::move(e));
  }
  // Cancel every 7th entry shortly after its start.
  for (std::size_t i = 3; i < script.entries.size(); i += 7) {
    script.cancels.emplace_back(script.entries[i].at + 20.0 * units::us, i);
  }
  return script;
}

struct Replay {
  std::vector<std::pair<TransferId, Time>> completions;
  std::vector<Bytes> delivered;  // per directed link
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  net::FlowNetStats stats;
};

Replay replay(const topo::Graph& g, const FlowScript& script,
              bool full_solve, bool validate = false) {
  sim::Simulator simulator;
  FlowNetwork netw(simulator, g);
  netw.set_full_solve(full_solve);
  if (validate) netw.set_solve_validation(true);

  Replay out;
  std::vector<TransferId> started(script.entries.size(),
                                  net::kInvalidTransfer);
  for (std::size_t i = 0; i < script.entries.size(); ++i) {
    const FlowScript::Entry& e = script.entries[i];
    simulator.schedule(e.at, [&, i] {
      TransferOptions opts;
      opts.pipelined = script.entries[i].pipelined;
      opts.weight = script.entries[i].weight;
      opts.on_complete = [&](TransferId id) {
        out.completions.emplace_back(id, simulator.now());
      };
      started[i] = netw.start_transfer(script.entries[i].path,
                                       script.entries[i].bytes,
                                       std::move(opts));
    });
  }
  for (const auto& [at, idx] : script.cancels) {
    simulator.schedule(at, [&, idx = idx] {
      if (started[idx] != net::kInvalidTransfer) {
        netw.cancel_transfer(started[idx]);
      }
    });
  }
  // Halve one edge mid-run, restore later: stresses forced refreshes.
  simulator.schedule(150.0 * units::us,
                     [&] { netw.set_link_degradation(0, 0.5); });
  simulator.schedule(400.0 * units::us,
                     [&] { netw.set_link_degradation(0, 1.0); });
  simulator.run();

  for (topo::EdgeId e = 0; e < g.edge_count(); ++e) {
    for (bool fwd : {true, false}) {
      out.delivered.push_back(
          netw.delivered_bytes(net::DirectedLink{e, fwd}));
    }
  }
  out.executed = simulator.executed_events();
  out.scheduled = simulator.scheduled_events();
  out.stats = netw.stats();
  EXPECT_EQ(netw.active_transfers(), 0u);
  return out;
}

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, FlowLevelBitwiseIdentical) {
  const topo::Graph g = topo::make_testbed();
  const FlowScript script = make_script(g, GetParam());
  ASSERT_GT(script.entries.size(), 20u);
  const Replay inc = replay(g, script, /*full_solve=*/false);
  const Replay full = replay(g, script, /*full_solve=*/true);

  // Completion order, ids, and times must match bit for bit — the
  // progress/reschedule-only-on-rate-change rule makes the two modes emit
  // identical event streams, not merely close ones.
  ASSERT_EQ(inc.completions.size(), full.completions.size());
  for (std::size_t i = 0; i < inc.completions.size(); ++i) {
    EXPECT_EQ(inc.completions[i].first, full.completions[i].first);
    EXPECT_EQ(inc.completions[i].second, full.completions[i].second)
        << "completion " << i << " diverged";
  }
  EXPECT_EQ(inc.delivered, full.delivered);
  EXPECT_EQ(inc.executed, full.executed);
  EXPECT_EQ(inc.scheduled, full.scheduled);
  // The incremental engine must actually be incremental: strictly fewer
  // per-flow solves than the full engine on the same run.
  EXPECT_LT(inc.stats.flows_solved, full.stats.flows_solved);
  EXPECT_EQ(inc.stats.flows_active, full.stats.flows_active);
}

TEST_P(EngineEquivalence, ValidationModeFindsNoMismatches) {
  const topo::Graph g = topo::make_testbed();
  const FlowScript script = make_script(g, GetParam());
  const Replay r =
      replay(g, script, /*full_solve=*/false, /*validate=*/true);
  EXPECT_GT(r.stats.validations, 0u);
  EXPECT_EQ(r.stats.mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Values(1u, 2u, 3u));

ExperimentConfig experiment_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 2.0;
  cfg.workload.count = 24;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = seed;
  cfg.serving.seed = seed;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  return cfg;
}

void expect_percentiles_identical(const Percentiles& a,
                                  const Percentiles& b) {
  ASSERT_EQ(a.count(), b.count());
  // EXPECT_EQ on doubles is exact comparison — bitwise, not approximate.
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.p90(), b.p90());
  EXPECT_EQ(a.p99(), b.p99());
  EXPECT_EQ(a.mean(), b.mean());
}

void expect_reports_identical(const serve::ServingReport& a,
                              const serve::ServingReport& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  expect_percentiles_identical(a.ttft, b.ttft);
  expect_percentiles_identical(a.tpot, b.tpot);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sla_attainment, b.sla_attainment);
  EXPECT_EQ(a.kv_utilization_avg, b.kv_utilization_avg);
}

class ExperimentEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExperimentEquivalence, ServingRunBitwiseIdentical) {
  ExperimentConfig cfg = experiment_config(GetParam());
  cfg.netsim.full_solve = false;
  const ExperimentResult inc = run_experiment(SystemKind::kHeroServe, cfg);
  cfg.netsim.full_solve = true;
  const ExperimentResult full = run_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(full.ok());
  expect_reports_identical(inc.report, full.report);
  EXPECT_EQ(inc.sim_stats.events_executed, full.sim_stats.events_executed);
  EXPECT_EQ(inc.sim_stats.events_scheduled, full.sim_stats.events_scheduled);
  EXPECT_EQ(inc.sim_stats.sim_seconds, full.sim_stats.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentEquivalence,
                         ::testing::Values(1u, 2u, 3u));

TEST(EngineEquivalenceChaos, FaultedRunBitwiseIdentical) {
  ExperimentConfig cfg = experiment_config(17);
  cfg.min_p_tens = 8;
  faults::FaultEvent ev;
  ev.kind = faults::FaultKind::kLinkFlap;
  ev.at = 2.0;
  ev.period = 4.0;
  ev.duration = 2.0;
  ev.count = 5;
  ev.target = "w0g1-sw1";
  ev.magnitude = 0.05;
  cfg.fault_plan.events.push_back(ev);

  cfg.netsim.full_solve = false;
  const ExperimentResult inc = run_experiment(SystemKind::kHeroServe, cfg);
  cfg.netsim.full_solve = true;
  const ExperimentResult full = run_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(full.ok());
  expect_reports_identical(inc.report, full.report);
  EXPECT_EQ(inc.sim_stats.events_executed, full.sim_stats.events_executed);
}

TEST(EngineEquivalenceFleet, FleetRunBitwiseIdentical) {
  ExperimentConfig cfg = experiment_config(11);
  cfg.topology = topo::make_fleet_cluster();
  cfg.fleet.instances = 2;
  cfg.fleet.policy = serve::RouterPolicy::kHeroServe;

  cfg.netsim.full_solve = false;
  const FleetExperimentResult inc =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  cfg.netsim.full_solve = true;
  const FleetExperimentResult full =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(inc.report.dispatched, full.report.dispatched);
  expect_reports_identical(inc.report.aggregate, full.report.aggregate);
  EXPECT_EQ(inc.sim_stats.events_executed, full.sim_stats.events_executed);
  EXPECT_EQ(inc.sim_stats.events_scheduled,
            full.sim_stats.events_scheduled);
}

}  // namespace
}  // namespace hero
