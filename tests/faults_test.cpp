// Tests for the deterministic fault-injection subsystem: plan parsing,
// each injector failure domain (links, switch slots, GPUs, controller
// sync), the adaptive INA -> ring fallback + re-promotion loop, and
// byte-level determinism of chaos runs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/heroserve.hpp"
#include "faults/injector.hpp"
#include "online/scheduler.hpp"
#include "topology/builders.hpp"

namespace hero::faults {
namespace {

using topo::NodeId;

NodeId node_named(const topo::Graph& g, const std::string& name) {
  for (NodeId id = 0; id < static_cast<NodeId>(g.node_count()); ++id) {
    if (g.node(id).name == name) return id;
  }
  ADD_FAILURE() << "no node named " << name;
  return topo::kInvalidNode;
}

// --- plan parsing ---

TEST(FaultPlanParse, ParsesEveryField) {
  const FaultPlan plan = parse_fault_plan(R"({"events": [
    {"kind": "link_flap", "at": 2.5, "duration": 1.0, "target": "w0g1-sw1",
     "magnitude": 0.05, "count": 4, "period": 3.0},
    {"kind": "slot_exhaust", "at": 1.0, "target": "sw0", "magnitude": 8}
  ]})");
  ASSERT_EQ(plan.events.size(), 2u);
  const FaultEvent& flap = plan.events[0];
  EXPECT_EQ(flap.kind, FaultKind::kLinkFlap);
  EXPECT_DOUBLE_EQ(raw(flap.at), raw(2.5));
  EXPECT_DOUBLE_EQ(raw(flap.duration), raw(1.0));
  EXPECT_EQ(flap.target, "w0g1-sw1");
  EXPECT_DOUBLE_EQ(flap.magnitude, 0.05);
  EXPECT_EQ(flap.count, 4u);
  EXPECT_DOUBLE_EQ(raw(flap.period), raw(3.0));
  const FaultEvent& slots = plan.events[1];
  EXPECT_EQ(slots.kind, FaultKind::kSlotExhaust);
  EXPECT_DOUBLE_EQ(raw(slots.duration), 0.0);  // default: permanent
  EXPECT_EQ(slots.count, 1u);
}

TEST(FaultPlanParse, EmptyEventsIsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan(R"({"events": []})").empty());
}

TEST(FaultPlanParse, RejectsMalformedPlans) {
  // Unknown top-level key.
  EXPECT_THROW(parse_fault_plan(R"({"bogus": []})"), std::runtime_error);
  // Unknown event key.
  EXPECT_THROW(
      parse_fault_plan(R"({"events": [{"kind": "gpu_slow", "when": 1}]})"),
      std::runtime_error);
  // Unknown kind.
  EXPECT_THROW(
      parse_fault_plan(R"({"events": [{"kind": "meteor_strike"}]})"),
      std::runtime_error);
  // Event without a kind.
  EXPECT_THROW(parse_fault_plan(R"({"events": [{"at": 1.0}]})"),
               std::runtime_error);
  // No events array at all.
  EXPECT_THROW(parse_fault_plan("{}"), std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW(parse_fault_plan(R"({"events": []} extra)"),
               std::runtime_error);
}

// --- injector failure domains ---

struct InjectorFixture {
  topo::Graph graph = topo::make_testbed();
  sim::Simulator simulator;
  net::FlowNetwork network{simulator, graph};
  sw::SwitchRegistry switches{simulator, graph};

  FaultEvent event(FaultKind kind, Time at, Time duration,
                   const std::string& target, double magnitude = 1.0) {
    FaultEvent ev;
    ev.kind = kind;
    ev.at = at;
    ev.duration = duration;
    ev.target = target;
    ev.magnitude = magnitude;
    return ev;
  }
};

TEST(FaultInjector, UnknownTargetThrowsOnArm) {
  InjectorFixture f;
  FaultPlan plan;
  plan.events.push_back(
      f.event(FaultKind::kGpuSlow, 0.0, 1.0, "no-such-gpu", 2.0));
  FaultInjector injector(f.network, plan, {});
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

TEST(FaultInjector, LinkFlapCyclesDegradation) {
  InjectorFixture f;
  const topo::EdgeId edge = [&] {
    const NodeId a = node_named(f.graph, "w0g1");
    const NodeId b = node_named(f.graph, "sw1");
    for (const topo::Adjacency& adj : f.graph.neighbors(a)) {
      if (adj.peer == b) return adj.edge;
    }
    return topo::kInvalidEdge;
  }();
  FaultPlan plan;
  FaultEvent ev =
      f.event(FaultKind::kLinkFlap, 1.0 * units::ms, 1.0 * units::ms,
              "w0g1-sw1", 0.25);
  ev.count = 3;
  ev.period = 2.0 * units::ms;
  plan.events.push_back(ev);
  FaultInjector injector(f.network, plan, {});
  injector.arm();

  EXPECT_DOUBLE_EQ(f.network.link_degradation(edge), 1.0);
  f.simulator.run_until(1.5 * units::ms);  // inside first down window
  EXPECT_DOUBLE_EQ(f.network.link_degradation(edge), 0.25);
  f.simulator.run_until(2.5 * units::ms);  // recovered half of the cycle
  EXPECT_DOUBLE_EQ(f.network.link_degradation(edge), 1.0);
  f.simulator.run_until(3.5 * units::ms);  // second down window
  EXPECT_DOUBLE_EQ(f.network.link_degradation(edge), 0.25);
  f.simulator.run_until(10.0 * units::ms);
  EXPECT_DOUBLE_EQ(f.network.link_degradation(edge), 1.0);
  EXPECT_EQ(injector.injected(), 3u);
  EXPECT_EQ(injector.recovered(), 3u);
}

TEST(FaultInjector, SlotExhaustSeizesAndReleasesPool) {
  InjectorFixture f;
  sw::SwitchAgent& agent = f.switches.agent(node_named(f.graph, "sw0"));
  ASSERT_GE(agent.slots_total(), 4u);
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kSlotExhaust, 1.0 * units::ms,
                                5.0 * units::ms, "sw0", 4.0));
  FaultInjector::Hooks hooks;
  hooks.switches = &f.switches;
  FaultInjector injector(f.network, plan, hooks);
  injector.arm();

  EXPECT_EQ(agent.slots_in_use(), 0u);
  f.simulator.run_until(2.0 * units::ms);
  EXPECT_EQ(agent.slots_in_use(), 4u);
  f.simulator.run_until(10.0 * units::ms);
  EXPECT_EQ(agent.slots_in_use(), 0u);
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.recovered(), 1u);
}

TEST(FaultInjector, SwitchRestartHoldsWholePool) {
  InjectorFixture f;
  sw::SwitchAgent& agent = f.switches.agent(node_named(f.graph, "sw1"));
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kSwitchRestart, 1.0 * units::ms,
                                5.0 * units::ms, "sw1"));
  FaultInjector::Hooks hooks;
  hooks.switches = &f.switches;
  FaultInjector injector(f.network, plan, hooks);
  injector.arm();

  f.simulator.run_until(2.0 * units::ms);  // idle pool drains immediately
  EXPECT_EQ(agent.slots_in_use(), agent.slots_total());
  f.simulator.run_until(10.0 * units::ms);
  EXPECT_EQ(agent.slots_in_use(), 0u);
}

TEST(FaultInjector, GpuStragglerScaleFollowsWindow) {
  InjectorFixture f;
  const NodeId gpu = node_named(f.graph, "w0g0");
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kGpuSlow, 1.0 * units::ms,
                                5.0 * units::ms, "w0g0", 2.5));
  FaultInjector injector(f.network, plan, {});
  injector.arm();

  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 1.0);
  f.simulator.run_until(2.0 * units::ms);
  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 2.5);
  f.simulator.run_until(10.0 * units::ms);
  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 1.0);
}

TEST(FaultInjector, OverlappingStragglersStrongestWins) {
  InjectorFixture f;
  const NodeId gpu = node_named(f.graph, "w1g2");
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kGpuSlow, 1.0 * units::ms,
                                9.0 * units::ms, "w1g2", 1.5));
  plan.events.push_back(f.event(FaultKind::kGpuSlow, 2.0 * units::ms,
                                2.0 * units::ms, "w1g2", 4.0));
  FaultInjector injector(f.network, plan, {});
  injector.arm();

  f.simulator.run_until(3.0 * units::ms);
  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 4.0);
  f.simulator.run_until(5.0 * units::ms);  // strong one recovered
  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 1.5);
  f.simulator.run_until(15.0 * units::ms);
  EXPECT_DOUBLE_EQ(injector.compute_scale(gpu), 1.0);
}

// --- adaptive reaction: INA -> ring fallback and re-promotion ---

struct AdaptiveFixture : InjectorFixture {
  online::OnlineConfig config;
  std::vector<NodeId> members;

  AdaptiveFixture() {
    config.sync_period = 10.0 * units::ms;
    const auto by_server = graph.gpus_by_server();
    members.insert(members.end(), by_server[0].begin(), by_server[0].end());
    members.insert(members.end(), by_server[1].begin(), by_server[1].end());
  }
};

TEST(AdaptiveReaction, SlotExhaustionFallsBackToRingThenRepromotes) {
  AdaptiveFixture f;
  online::OnlineScheduler sched(f.network, f.config);
  const online::GroupId gid = sched.register_group(
      "tp", online::build_policies(f.graph, f.members, {}));
  sched.attach_switches(&f.switches);

  // The cross-server group must have both INA and ring candidates.
  const online::PolicyTable& table = sched.table(gid);
  std::vector<std::size_t> ina;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.policy(i).plan.switch_node != topo::kInvalidNode) {
      ina.push_back(i);
    }
  }
  ASSERT_FALSE(ina.empty());
  ASSERT_LT(ina.size(), table.size());  // at least one non-INA alternative

  const Bytes bytes = 16 * units::MB;
  const std::size_t baseline = table.select(bytes, sched.config());

  // Seize every aggregation pool for 50 ms starting at t = 5 ms.
  FaultPlan plan;
  for (const char* sw : {"sw0", "sw1"}) {
    plan.events.push_back(f.event(FaultKind::kSlotExhaust, 5.0 * units::ms,
                                  50.0 * units::ms, sw, 4096.0));
  }
  FaultInjector::Hooks hooks;
  hooks.switches = &f.switches;
  hooks.online = &sched;
  FaultInjector injector(f.network, plan, hooks);
  injector.arm();
  sched.start();

  // During the window: every INA policy is surcharged out of Eq. 16 (cost
  // >= 1.0 decisively loses to any healthy policy) and selection lands on
  // a non-INA scheme.
  f.simulator.run_until(6.0 * units::ms);
  for (const std::size_t i : ina) {
    EXPECT_GE(table.policy(i).cost, 1.0) << table.policy(i).name;
  }
  const std::size_t during = table.select(bytes, sched.config());
  EXPECT_EQ(table.policy(during).plan.switch_node, topo::kInvalidNode);

  // After recovery the next controller tick re-syncs costs from (idle)
  // link measurements and the original choice is re-promoted.
  f.simulator.run_until(100.0 * units::ms);
  for (const std::size_t i : ina) {
    EXPECT_LT(table.policy(i).cost, 1.0) << table.policy(i).name;
  }
  EXPECT_EQ(table.select(bytes, sched.config()), baseline);
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.recovered(), 2u);
}

TEST(AdaptiveReaction, StaggeredSeizureLeavesHealthySwitchSelectable) {
  AdaptiveFixture f;
  online::OnlineScheduler sched(f.network, f.config);
  const online::GroupId gid = sched.register_group(
      "tp", online::build_policies(f.graph, f.members, {}));
  sched.attach_switches(&f.switches);
  const online::PolicyTable& table = sched.table(gid);

  const NodeId sw0 = node_named(f.graph, "sw0");
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kSlotExhaust, 5.0 * units::ms,
                                50.0 * units::ms, "sw0", 4096.0));
  FaultInjector::Hooks hooks;
  hooks.switches = &f.switches;
  hooks.online = &sched;
  FaultInjector injector(f.network, plan, hooks);
  injector.arm();
  sched.start();

  f.simulator.run_until(6.0 * units::ms);
  bool healthy_ina_cheap = false;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const online::Policy& p = table.policy(i);
    if (p.plan.switch_node == sw0) {
      EXPECT_GE(p.cost, 1.0) << p.name;  // seized switch surcharged
    } else if (p.plan.switch_node != topo::kInvalidNode) {
      healthy_ina_cheap = healthy_ina_cheap || p.cost < 1.0;
    }
  }
  // The other switch's INA policy stays viable: adaptation can keep
  // in-network aggregation instead of paying the ring detour.
  EXPECT_TRUE(healthy_ina_cheap);
  const std::size_t during = table.select(16 * units::MB, sched.config());
  EXPECT_NE(table.policy(during).plan.switch_node, sw0);
}

// --- controller sync loss with exponential backoff ---

TEST(AdaptiveReaction, SyncLossBacksOffThenRecovers) {
  AdaptiveFixture f;
  online::OnlineScheduler sched(f.network, f.config);  // 10 ms period
  (void)sched.register_group(
      "tp", online::build_policies(f.graph, f.members, {}));

  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kSyncDrop, 25.0 * units::ms,
                                150.0 * units::ms, ""));
  FaultInjector::Hooks hooks;
  hooks.online = &sched;
  FaultInjector injector(f.network, plan, hooks);
  injector.arm();
  sched.start();

  // Healthy prefix: ticks at 0, 10, and 20 ms land before the drop at
  // 25 ms.
  f.simulator.run_until(22.0 * units::ms);
  const std::uint64_t healthy_ticks = sched.controller_ticks();
  EXPECT_EQ(healthy_ticks, 3u);
  EXPECT_EQ(sched.missed_syncs(), 0u);

  // While the channel is down the retries space out exponentially
  // (10 * 2^k ms), so only a handful of sync attempts fail.
  f.simulator.run_until(200.0 * units::ms);
  const std::uint64_t missed = sched.missed_syncs();
  EXPECT_GE(missed, 3u);
  EXPECT_LE(missed, 6u);

  // After recovery (t = 175 ms) the next retry succeeds and the regular
  // cadence resumes; no further syncs are missed.
  f.simulator.run_until(500.0 * units::ms);
  EXPECT_EQ(sched.missed_syncs(), missed);
  EXPECT_GT(sched.controller_ticks(), healthy_ticks + 10);
}

TEST(AdaptiveReaction, SyncFaultsNoOpWithoutOnlineScheduler) {
  // Static baselines have no sync channel; the events land (and count)
  // without any scheduler to disrupt.
  InjectorFixture f;
  FaultPlan plan;
  plan.events.push_back(f.event(FaultKind::kSyncDrop, 1.0 * units::ms,
                                2.0 * units::ms, ""));
  plan.events.push_back(f.event(FaultKind::kSyncDelay, 1.0 * units::ms,
                                2.0 * units::ms, "", 0.005));
  FaultInjector injector(f.network, plan, {});
  injector.arm();
  f.simulator.run_until(10.0 * units::ms);
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.recovered(), 2u);
}

// --- end-to-end chaos determinism ---

TEST(ChaosDeterminism, SameSeedSamePlanSameReport) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 2.0;
  cfg.workload.count = 15;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 23;
  cfg.serving.seed = 23;
  cfg.min_p_tens = 8;
  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = 1.0;
  flap.period = 2.0;
  flap.duration = 1.0;
  flap.count = 3;
  flap.target = "w0g1-sw1";
  flap.magnitude = 0.1;
  cfg.fault_plan.events.push_back(flap);

  const ExperimentResult a = run_experiment(SystemKind::kHeroServe, cfg);
  const ExperimentResult b = run_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a.report.completed, 0u);
  EXPECT_EQ(a.report.completed, b.report.completed);
  EXPECT_DOUBLE_EQ(raw(a.report.requests_per_second),
                   raw(b.report.requests_per_second));
  EXPECT_DOUBLE_EQ(a.report.ttft.p99(), b.report.ttft.p99());
  EXPECT_DOUBLE_EQ(a.report.tpot.p99(), b.report.tpot.p99());
  EXPECT_EQ(a.report.ina_fallbacks, b.report.ina_fallbacks);
}

}  // namespace
}  // namespace hero::faults
