// Fleet serving tests: the fleet planner packs disjoint replicas, the
// router is deterministic with stable lowest-id tie-breaking, and the
// fleet pipeline serves whole traces reproducibly.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "core/heroserve.hpp"

namespace hero {
namespace {

planner::PlannerInputs base_inputs(const topo::Graph& graph,
                                   const llm::ModelConfig& model) {
  planner::PlannerInputs in;
  in.graph = &graph;
  in.model = model;
  in.latency = &fitted_model(model);
  in.k_in = 256;
  in.k_in2 = 256 * 256 * 2;
  in.k_out = 200;
  in.arrival_rate = 2.0;
  in.seed = 5;
  return in;
}

std::vector<topo::NodeId> instance_gpus(const planner::PlanResult& plan) {
  std::vector<topo::NodeId> gpus = plan.prefill.all_gpus();
  const std::vector<topo::NodeId> dec = plan.decode.all_gpus();
  gpus.insert(gpus.end(), dec.begin(), dec.end());
  return gpus;
}

TEST(FleetPlanner, PacksDisjointInstances) {
  const topo::Graph graph = topo::make_fleet_cluster();
  planner::FleetPlannerInputs in;
  in.base = base_inputs(graph, llm::opt_66b());
  in.instances = 4;
  in.fleet_arrival_rate = 2.0;
  planner::FleetPlanner fleet(in);
  const planner::FleetPlan plan = fleet.plan();
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  ASSERT_EQ(plan.instances.size(), 4u);

  std::set<topo::NodeId> claimed;
  std::size_t total = 0;
  for (const planner::PlanResult& p : plan.instances) {
    ASSERT_TRUE(p.feasible);
    for (topo::NodeId g : instance_gpus(p)) {
      EXPECT_TRUE(claimed.insert(g).second)
          << "GPU " << g << " claimed by two instances";
      ++total;
    }
  }
  EXPECT_EQ(plan.gpus_used, total);
  EXPECT_GT(plan.service_rate_prefill, 0.0);
  EXPECT_GT(plan.service_rate_decode, 0.0);
  EXPECT_DOUBLE_EQ(raw(plan.service_rate),
                   raw(plan.instances[0].service_rate + plan.instances[1].service_rate + plan.instances[2].service_rate + plan.instances[3].service_rate));
}

TEST(FleetPlanner, ReportsWhichInstanceFailed) {
  // Two racks x one 8-GPU server cannot hold 64 replicas.
  topo::FleetClusterOptions opts;
  opts.racks = 2;
  opts.servers_per_rack = 1;
  const topo::Graph graph = topo::make_fleet_cluster(opts);
  planner::FleetPlannerInputs in;
  in.base = base_inputs(graph, llm::opt_66b());
  in.instances = 64;
  in.fleet_arrival_rate = 2.0;
  planner::FleetPlanner fleet(in);
  const planner::FleetPlan plan = fleet.plan();
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("instance"), std::string::npos);
  EXPECT_LT(plan.instances.size(), 64u);
}

TEST(FleetPlanner, DeterministicForSeed) {
  const topo::Graph graph = topo::make_fleet_cluster();
  planner::FleetPlannerInputs in;
  in.base = base_inputs(graph, llm::opt_66b());
  in.instances = 3;
  in.fleet_arrival_rate = 2.0;
  const planner::FleetPlan a = planner::FleetPlanner(in).plan();
  const planner::FleetPlan b = planner::FleetPlanner(in).plan();
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(instance_gpus(a.instances[i]), instance_gpus(b.instances[i]));
  }
}

TEST(RouterPolicy, ParseRoundTrips) {
  using serve::RouterPolicy;
  for (RouterPolicy p :
       {RouterPolicy::kRoundRobin, RouterPolicy::kRandom,
        RouterPolicy::kShortestQueue, RouterPolicy::kHeroServe}) {
    const auto parsed = serve::parse_router_policy(serve::to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(serve::parse_router_policy("nonsense").has_value());
}

/// Two idle single-server instances (one per rack). Greedy packing hands
/// instance 0 the larger decode pool (6 GPUs vs 4) — every other plan
/// dimension matches — so with the decode-completion term zeroed every
/// policy cost ties and the router must break toward the lowest instance
/// id, and keep doing so until load differentiates the instances.
class RouterTieBreak : public ::testing::Test {
 protected:
  void SetUp() override {
    topo::FleetClusterOptions opts;
    opts.racks = 2;
    opts.servers_per_rack = 1;
    graph_ = topo::make_fleet_cluster(opts);
    planner::FleetPlannerInputs in;
    in.base = base_inputs(graph_, llm::opt_66b());
    in.instances = 2;
    in.fleet_arrival_rate = 2.0;
    planner::FleetPlan plan = planner::FleetPlanner(in).plan();
    ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
    plan_ = std::move(plan);

    simulator_ = std::make_unique<sim::Simulator>();
    network_ = std::make_unique<net::FlowNetwork>(*simulator_, graph_);
    switches_ = std::make_unique<sw::SwitchRegistry>(*simulator_, graph_);
    engine_ = std::make_unique<coll::CollectiveEngine>(
        *network_, *switches_, coll::EngineConfig{});
    scheduler_ = std::make_unique<baselines::StaticCommScheduler>(
        *network_, baselines::BaselineKind::kDistServe);
  }

  std::unique_ptr<serve::FleetSim> make_fleet(
      serve::RouterPolicy policy,
      std::optional<double> completion_weight = std::nullopt,
      std::size_t prefix_block_tokens = 0) {
    serve::FleetConfig fc;
    fc.policy = policy;
    if (completion_weight) fc.completion_weight = *completion_weight;
    serve::ServingOptions opts;
    opts.model = llm::opt_66b();
    opts.prefix_block_tokens = prefix_block_tokens;
    auto fleet = std::make_unique<serve::FleetSim>(*network_, *engine_,
                                                   *scheduler_, fc, opts);
    for (const planner::PlanResult& p : plan_.instances) {
      fleet->add_instance(p);
    }
    return fleet;
  }

  static wl::Request request() {
    wl::Request r;
    r.id = 0;
    r.arrival = 0.0;
    r.input_tokens = 256;
    r.output_tokens = 64;
    return r;
  }

  topo::Graph graph_;
  planner::FleetPlan plan_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::FlowNetwork> network_;
  std::unique_ptr<sw::SwitchRegistry> switches_;
  std::unique_ptr<coll::CollectiveEngine> engine_;
  std::unique_ptr<baselines::StaticCommScheduler> scheduler_;
};

TEST_F(RouterTieBreak, HeroCostTiesResolveToLowestId) {
  // The decode-completion term alone tells the idle instances apart (their
  // planned TPOTs differ); zero it to force a genuine tie across every
  // remaining cost term.
  const auto fleet = make_fleet(serve::RouterPolicy::kHeroServe,
                                /*completion_weight=*/0.0);
  const wl::Request r = request();
  const serve::ArrivalContext ctx = fleet->router().make_context(r);
  EXPECT_DOUBLE_EQ(fleet->router().cost(0, ctx), fleet->router().cost(1, ctx));
  // Idle fleet: every route is a tie and must stick to instance 0.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
              0u);
  }
}

TEST_F(RouterTieBreak, HeroPrefersFasterDecodePlanWhenIdle) {
  // With the default completion weight, the idle cost prices the request's
  // predicted decode residence: instance 0's larger decode pool steps
  // faster, so it wins outright rather than by tie-break.
  const auto fleet = make_fleet(serve::RouterPolicy::kHeroServe);
  const wl::Request r = request();
  const serve::ArrivalContext ctx = fleet->router().make_context(r);
  EXPECT_LT(fleet->router().cost(0, ctx), fleet->router().cost(1, ctx));
  EXPECT_EQ(fleet->router().route(ctx).instance, 0u);
}

TEST_F(RouterTieBreak, ShortestQueueTiesResolveToLowestId) {
  const auto fleet = make_fleet(serve::RouterPolicy::kShortestQueue);
  const wl::Request r = request();
  EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
            0u);
  // Loading instance 0 breaks the tie the other way.
  fleet->instance(0).begin();
  fleet->instance(1).begin();
  fleet->instance(0).submit(r);
  EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
            1u);
}

TEST_F(RouterTieBreak, RoundRobinRotates) {
  const auto fleet = make_fleet(serve::RouterPolicy::kRoundRobin);
  const wl::Request r = request();
  EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
            0u);
  EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
            1u);
  EXPECT_EQ(fleet->router().route(fleet->router().make_context(r)).instance,
            0u);
  EXPECT_EQ(fleet->router().dispatched()[0], 2u);
  EXPECT_EQ(fleet->router().dispatched()[1], 1u);
}

// --- prefix/KV tier at fleet level ---

TEST_F(RouterTieBreak, AffinityRoutesFollowUpToTheHolder) {
  const auto fleet = make_fleet(serve::RouterPolicy::kHeroServe,
                                std::nullopt, /*prefix_block_tokens=*/128);
  fleet->instance(0).begin();
  fleet->instance(1).begin();
  // Instance 1 holds almost all of session 7's context; the affinity-aware
  // hero cost must prefer it even though instance 0 wins on an idle fleet.
  fleet->instance(1).adopt_prefix(7, 1920);
  ASSERT_EQ(fleet->instance(1).cached_prefix_tokens(7), 1920u);
  wl::Request r = request();
  r.session_id = 7;
  r.input_tokens = 2048;
  r.prefix_tokens = 1920;
  fleet->dispatch(r);
  EXPECT_EQ(fleet->router().dispatched()[0], 0u);
  EXPECT_EQ(fleet->router().dispatched()[1], 1u);
  EXPECT_EQ(fleet->instance(1).prefix_stats().hits, 1u);
  EXPECT_EQ(fleet->instance(1).prefix_stats().reused_tokens, 1920u);
}

TEST_F(RouterTieBreak, DrainPurgesDirectoryBeforeRelease) {
  const auto fleet = make_fleet(serve::RouterPolicy::kHeroServe,
                                std::nullopt, /*prefix_block_tokens=*/128);
  fleet->instance(0).adopt_prefix(7, 256);
  fleet->instance(1).adopt_prefix(7, 128);
  EXPECT_EQ(fleet->directory().tokens_at(7, 0), 256u);
  ASSERT_TRUE(fleet->directory().best(7).has_value());
  EXPECT_EQ(fleet->directory().best(7)->instance, 0u);

  // Drain and release instance 0 the way the controller does: the
  // directory must forget it the moment its GPUs could be handed back.
  fleet->router().drain_instance(0);
  ASSERT_EQ(fleet->stream_busy(0), 0u);
  fleet->router().remove_instance(0);
  fleet->mark_released(0);
  EXPECT_FALSE(fleet->directory().instance_has_entries(0));
  const auto best = fleet->directory().best(7);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->instance, 1u);
  EXPECT_EQ(best->tokens, 128u);
  // The retired cache refuses new coverage, so no stale re-publication can
  // resurrect the released instance in the directory.
  fleet->instance(0).adopt_prefix(9, 256);
  EXPECT_EQ(fleet->directory().tokens_at(9, 0), 0u);
}

TEST_F(RouterTieBreak, DirectoryMirrorsCachesAfterMultiturnRun) {
  const auto fleet = make_fleet(serve::RouterPolicy::kHeroServe,
                                std::nullopt, /*prefix_block_tokens=*/128);
  wl::MultiturnOptions mt;
  mt.base.rate = 1.0;
  mt.base.count = 24;
  mt.base.lengths = wl::sharegpt_lengths();
  mt.base.seed = 11;
  mt.mean_turns = 4.0;
  mt.think_mean = 45.0;
  const wl::Trace trace = wl::generate_multiturn_trace(mt);
  const serve::FleetReport rep = fleet->run(trace);
  EXPECT_EQ(rep.aggregate.completed, trace.size());
  EXPECT_GT(rep.prefix.lookups, 0u);
  EXPECT_GT(rep.prefix.published_tokens, 0u);
  // Directory consistency after publishes, evictions, and (possibly)
  // streams: the mirror agrees with every instance's cache for every
  // session the trace touched.
  std::set<std::uint64_t> sessions;
  for (const wl::Request& r : trace) sessions.insert(r.session_id);
  for (const std::uint64_t s : sessions) {
    for (std::size_t i = 0; i < fleet->instance_count(); ++i) {
      EXPECT_EQ(fleet->directory().tokens_at(s, i),
                fleet->instance(i).cached_prefix_tokens(s))
          << "session " << s << " instance " << i;
    }
  }
}

ExperimentConfig fleet_config(std::size_t instances,
                              serve::RouterPolicy policy) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_fleet_cluster();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 2.0;
  cfg.workload.count = 24;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 11;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  cfg.fleet.instances = instances;
  cfg.fleet.policy = policy;
  return cfg;
}

TEST(FleetExperiment, ServesWholeTraceAcrossInstances) {
  const ExperimentConfig cfg =
      fleet_config(2, serve::RouterPolicy::kHeroServe);
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(r.ok()) << r.plan.infeasible_reason;
  EXPECT_EQ(r.report.aggregate.submitted, 24u);
  EXPECT_EQ(r.report.aggregate.completed, 24u);
  ASSERT_EQ(r.report.per_instance.size(), 2u);
  ASSERT_EQ(r.report.dispatched.size(), 2u);
  EXPECT_EQ(r.report.dispatched[0] + r.report.dispatched[1], 24u);
  std::size_t per_instance_completed = 0;
  for (const serve::ServingReport& rep : r.report.per_instance) {
    per_instance_completed += rep.completed;
  }
  EXPECT_EQ(per_instance_completed, 24u);
}

TEST(FleetExperiment, DeterministicForSeed) {
  for (serve::RouterPolicy policy :
       {serve::RouterPolicy::kRandom, serve::RouterPolicy::kHeroServe}) {
    const ExperimentConfig cfg = fleet_config(2, policy);
    const FleetExperimentResult a =
        run_fleet_experiment(SystemKind::kHeroServe, cfg);
    const FleetExperimentResult b =
        run_fleet_experiment(SystemKind::kHeroServe, cfg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.report.dispatched, b.report.dispatched);
    EXPECT_DOUBLE_EQ(raw(a.report.aggregate.makespan),
                     raw(b.report.aggregate.makespan));
    EXPECT_DOUBLE_EQ(a.report.aggregate.ttft.p90(),
                     b.report.aggregate.ttft.p90());
  }
}

TEST(FleetExperiment, SimultaneousBurstDoesNotHerdToOneInstance) {
  // Regression: estimate_path on a saturated link used to report zero
  // admissible bandwidth for everyone, collapsing the hero cost to the
  // same infinity on every instance — and the tie-break then herded an
  // entire arrival burst onto instance 0. The post-admission fair share
  // (cap / (n + 1)) keeps the KV term finite and the queue terms rank the
  // instances apart.
  ExperimentConfig cfg = fleet_config(2, serve::RouterPolicy::kHeroServe);
  cfg.workload.rate = 5000.0;  // the whole trace lands near-simultaneously
  cfg.workload.count = 16;
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(r.ok()) << r.plan.infeasible_reason;
  ASSERT_EQ(r.report.dispatched.size(), 2u);
  EXPECT_EQ(r.report.dispatched[0] + r.report.dispatched[1], 16u);
  EXPECT_LT(r.report.dispatched[0], 16u)
      << "burst herded onto instance 0";
  EXPECT_GT(r.report.dispatched[0], 0u);
}

TEST(FleetExperiment, RoundRobinDispatchIsEven) {
  const ExperimentConfig cfg =
      fleet_config(2, serve::RouterPolicy::kRoundRobin);
  const FleetExperimentResult r =
      run_fleet_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.report.dispatched[0], 12u);
  EXPECT_EQ(r.report.dispatched[1], 12u);
  EXPECT_DOUBLE_EQ(r.report.dispatch_imbalance, 0.0);
}

}  // namespace
}  // namespace hero
