// Tests for the fluid flow network: store-and-forward hop semantics,
// max-min fair sharing, utilization monitoring, and failure injection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netsim/flownet.hpp"
#include "topology/builders.hpp"

namespace hero::net {
namespace {

using topo::Graph;
using topo::GpuModel;
using topo::LinkKind;
using topo::NodeId;
using topo::NodeKind;
using topo::Path;

struct Fixture {
  Graph graph;
  sim::Simulator simulator;
  std::unique_ptr<FlowNetwork> net;

  explicit Fixture(Graph g) : graph(std::move(g)) {
    net = std::make_unique<FlowNetwork>(simulator, graph);
  }
};

Graph two_hop_graph(Time hop_latency = 0.0) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId s = g.add_switch("s", NodeKind::kAccessSwitch);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 1);
  g.add_edge(a, s, LinkKind::kEthernet, 100 * units::Gbps, hop_latency);
  g.add_edge(s, b, LinkKind::kEthernet, 100 * units::Gbps, hop_latency);
  return g;
}

Path path_of(const Graph& g, std::string_view src, std::string_view dst) {
  auto p = topo::shortest_path(g, g.find(src), g.find(dst));
  EXPECT_TRUE(p.has_value());
  return *p;
}

TEST(FlowNetwork, SingleTransferStoreAndForwardTime) {
  Fixture f(two_hop_graph());
  Time done = -1;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done = f.simulator.now();
                        }});
  f.simulator.run();
  // Two sequential 80 us hops.
  EXPECT_NEAR(raw(done), raw(160.0 * units::us), 1e-9);
}

TEST(FlowNetwork, HopLatencyAdds) {
  Fixture f(two_hop_graph(1.0 * units::us));
  Time done = -1;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done = f.simulator.now();
                        }});
  f.simulator.run();
  EXPECT_NEAR(raw(done), raw(162.0 * units::us), 1e-9);
}

TEST(FlowNetwork, ZeroBytesCompletesImmediatelyButAsync) {
  Fixture f(two_hop_graph());
  bool done = false;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 0.0,
                        TransferOptions{[&](TransferId) { done = true; }});
  EXPECT_FALSE(done);  // asynchronous even for empty payloads
  f.simulator.run();
  EXPECT_TRUE(done);
}

TEST(FlowNetwork, EmptyPathCompletes) {
  Fixture f(two_hop_graph());
  bool done = false;
  f.net->start_transfer(Path{{f.graph.find("a")}, {}}, 5.0 * units::MB,
                        TransferOptions{[&](TransferId) { done = true; }});
  f.simulator.run();
  EXPECT_TRUE(done);
}

TEST(FlowNetwork, TwoFlowsShareLinkFairly) {
  Fixture f(two_hop_graph());
  const Path p = path_of(f.graph, "a", "b");
  std::vector<Time> done;
  for (int i = 0; i < 2; ++i) {
    f.net->start_transfer(p, 1.0 * units::MB,
                          TransferOptions{[&](TransferId) {
                            done.push_back(f.simulator.now());
                          }});
  }
  f.simulator.run();
  ASSERT_EQ(done.size(), 2u);
  // First hop shared: 160 us for both; second hop then shared again.
  // Both flows finish at 320 us (fair sharing all the way).
  EXPECT_NEAR(raw(done[1]), raw(320.0 * units::us), raw(1.0 * units::us));
}

TEST(FlowNetwork, WeightedSharing) {
  Fixture f(two_hop_graph());
  const Path p = path_of(f.graph, "a", "b");
  Time heavy_done = -1, light_done = -1;
  TransferOptions heavy;
  heavy.weight = 3.0;
  heavy.on_complete = [&](TransferId) { heavy_done = f.simulator.now(); };
  TransferOptions light;
  light.weight = 1.0;
  light.on_complete = [&](TransferId) { light_done = f.simulator.now(); };
  f.net->start_transfer(p, 1.0 * units::MB, std::move(heavy));
  f.net->start_transfer(p, 1.0 * units::MB, std::move(light));
  f.simulator.run();
  EXPECT_LT(heavy_done, light_done);
}

TEST(FlowNetwork, DisjointPathsDoNotInterfere) {
  // a-s-b and c-s2-d independent.
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId s = g.add_switch("s", NodeKind::kAccessSwitch);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 1);
  const NodeId c = g.add_gpu("c", GpuModel::kA100_40, 1, 2);
  const NodeId s2 = g.add_switch("s2", NodeKind::kAccessSwitch);
  const NodeId d = g.add_gpu("d", GpuModel::kA100_40, 1, 3);
  g.add_edge(a, s, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  g.add_edge(s, b, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  g.add_edge(c, s2, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  g.add_edge(s2, d, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  Fixture f(std::move(g));
  std::vector<Time> done;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done.push_back(f.simulator.now());
                        }});
  f.net->start_transfer(path_of(f.graph, "c", "d"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done.push_back(f.simulator.now());
                        }});
  f.simulator.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(raw(done[0]), raw(160.0 * units::us), 1e-9);
  EXPECT_NEAR(raw(done[1]), raw(160.0 * units::us), 1e-9);
}

TEST(FlowNetwork, CancelStopsTransfer) {
  Fixture f(two_hop_graph());
  bool done = false;
  const TransferId id =
      f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                            TransferOptions{[&](TransferId) { done = true; }});
  f.net->cancel_transfer(id);
  f.simulator.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(f.net->active_transfers(), 0u);
}

TEST(FlowNetwork, UtilizationReflectsActiveFlow) {
  Fixture f(two_hop_graph());
  f.net->start_transfer(path_of(f.graph, "a", "b"), 10.0 * units::MB, {});
  f.simulator.run_until(1.0 * units::us);
  // Flow occupies the first edge fully.
  EXPECT_NEAR(f.net->edge_utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(f.net->edge_utilization(1), 0.0, 1e-9);
}

TEST(FlowNetwork, EstimatePathResidualDropsUnderLoad) {
  Fixture f(two_hop_graph());
  const Path p = path_of(f.graph, "a", "b");
  const PathEstimate before = f.net->estimate_path(p);
  EXPECT_NEAR(raw(before.residual), raw(100 * units::Gbps), 1.0);
  EXPECT_NEAR(raw(before.fair_share), raw(100 * units::Gbps), 1.0);
  f.net->start_transfer(p, 10.0 * units::MB, {});
  f.simulator.run_until(1.0 * units::us);
  const PathEstimate during = f.net->estimate_path(p);
  EXPECT_NEAR(raw(during.residual), raw(0.0), 1.0);
  // Saturated link: a new flow would still be admitted at cap / (n + 1),
  // not at the zero residual (the burst-herding fix).
  EXPECT_NEAR(raw(during.fair_share), raw(50 * units::Gbps), 1.0);
  EXPECT_EQ(during.bottleneck_link, 0u);
}

TEST(FlowNetwork, EstimatePathEmptyPath) {
  Fixture f(two_hop_graph());
  const PathEstimate est = f.net->estimate_path(Path{{f.graph.find("a")}, {}});
  EXPECT_EQ(est.bottleneck_link, topo::kInvalidEdge);
  EXPECT_EQ(est.latency, 0.0);
  EXPECT_GT(est.fair_share, 1e30);
}

TEST(FlowNetwork, EstimatePathAccumulatesLatency) {
  Fixture f(two_hop_graph(1.0 * units::us));
  const PathEstimate est = f.net->estimate_path(path_of(f.graph, "a", "b"));
  EXPECT_NEAR(raw(est.latency), raw(2.0 * units::us), 1e-12);
}

TEST(FlowNetwork, EstimatePathIsDirectionAware) {
  // Load the a->b direction only; b->a must still look idle.
  Fixture f(two_hop_graph());
  f.net->start_transfer(path_of(f.graph, "a", "b"), 10.0 * units::MB, {});
  f.simulator.run_until(1.0 * units::us);
  const PathEstimate fwd = f.net->estimate_path(path_of(f.graph, "a", "b"));
  const PathEstimate rev = f.net->estimate_path(path_of(f.graph, "b", "a"));
  EXPECT_NEAR(raw(fwd.residual), raw(0.0), 1.0);
  EXPECT_NEAR(raw(rev.residual), raw(100 * units::Gbps), 1.0);
}

TEST(FlowNetwork, DeliveredBytesAccumulate) {
  Fixture f(two_hop_graph());
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB, {});
  f.simulator.run();
  const topo::Edge& e0 = f.graph.edge(0);
  const DirectedLink fwd{0, e0.a == f.graph.find("a")};
  EXPECT_NEAR(raw(f.net->delivered_bytes(fwd)), raw(1.0 * units::MB), 1.0);
}

TEST(FlowNetwork, LinkDegradationSlowsTransfer) {
  Fixture f(two_hop_graph());
  f.net->set_link_degradation(0, 0.5);
  Time done = -1;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done = f.simulator.now();
                        }});
  f.simulator.run();
  EXPECT_NEAR(raw(done), raw((160.0 + 80.0) * units::us), 1e-9);
}

TEST(FlowNetwork, DegradationValidation) {
  Fixture f(two_hop_graph());
  EXPECT_THROW(f.net->set_link_degradation(0, 0.0), std::invalid_argument);
  EXPECT_THROW(f.net->set_link_degradation(0, 1.5), std::invalid_argument);
}

TEST(FlowNetwork, MidFlightDegradationReschedules) {
  Fixture f(two_hop_graph());
  Time done = -1;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          done = f.simulator.now();
                        }});
  // Halve capacity halfway through the first hop.
  f.simulator.schedule(40.0 * units::us,
                       [&] { f.net->set_link_degradation(0, 0.5); });
  f.simulator.run();
  // First hop: 40us at full + 80us at half = 120us; second hop 80us.
  EXPECT_NEAR(raw(done), raw(200.0 * units::us), raw(1.0 * units::us));
}

TEST(FlowNetwork, NegativeBytesThrows) {
  Fixture f(two_hop_graph());
  EXPECT_THROW(
      f.net->start_transfer(path_of(f.graph, "a", "b"), -1.0, {}),
      std::invalid_argument);
}

/// Max-min property: with N flows crossing one shared hop, no link is
/// oversubscribed and total completion scales with N.
class FairShareTest : public ::testing::TestWithParam<int> {};

TEST_P(FairShareTest, NFlowsCompleteInProportionalTime) {
  const int n = GetParam();
  Fixture f(two_hop_graph());
  const Path p = path_of(f.graph, "a", "b");
  int completed = 0;
  Time last = 0;
  for (int i = 0; i < n; ++i) {
    f.net->start_transfer(p, 1.0 * units::MB,
                          TransferOptions{[&](TransferId) {
                            ++completed;
                            last = f.simulator.now();
                          }});
  }
  // Utilization never exceeds 1 while running.
  f.simulator.run_until(10.0 * units::us);
  for (topo::EdgeId e = 0; e < f.graph.edge_count(); ++e) {
    EXPECT_LE(f.net->edge_utilization(e), 1.0 + 1e-9);
  }
  f.simulator.run();
  EXPECT_EQ(completed, n);
  // All n share each hop: total time ~ 2 * n * 80us.
  EXPECT_NEAR(raw(last),
              raw(2.0 * n * 80.0 * units::us),
              raw(n * 2.0 * units::us));
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, FairShareTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(FlowNetwork, PipelinedTransferUsesBottleneckRate) {
  // Pipelined (RDMA-style) flows pay hop latencies once and stream at the
  // end-to-end bottleneck rate instead of store-and-forward per hop.
  Fixture f(two_hop_graph(1.0 * units::us));
  Time done = -1;
  net::TransferOptions opts;
  opts.pipelined = true;
  opts.on_complete = [&](TransferId) { done = f.simulator.now(); };
  f.net->start_transfer(path_of(f.graph, "a", "b"), 1.0 * units::MB,
                        std::move(opts));
  f.simulator.run();
  // 2 us total latency + 80 us at the 100 Gbps bottleneck.
  EXPECT_NEAR(raw(done), raw(82.0 * units::us), 1e-9);
}

TEST(FlowNetwork, PipelinedOccupiesAllHops) {
  Fixture f(two_hop_graph());
  net::TransferOptions opts;
  opts.pipelined = true;
  f.net->start_transfer(path_of(f.graph, "a", "b"), 10.0 * units::MB,
                        std::move(opts));
  f.simulator.run_until(1.0 * units::us);
  EXPECT_NEAR(f.net->edge_utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(f.net->edge_utilization(1), 1.0, 1e-9);
}

TEST(FlowNetwork, PipelinedSharesWithStoreAndForward) {
  // A pipelined flow and a SAF flow contending on hop 0 each get half.
  Fixture f(two_hop_graph());
  const Path p = path_of(f.graph, "a", "b");
  Time pipe_done = -1;
  net::TransferOptions pipe;
  pipe.pipelined = true;
  pipe.on_complete = [&](TransferId) { pipe_done = f.simulator.now(); };
  f.net->start_transfer(p, 1.0 * units::MB, std::move(pipe));
  f.net->start_transfer(p, 1.0 * units::MB, {});
  f.simulator.run();
  // The pipelined flow holds both hops at the fair-share rate; it cannot
  // finish before 160 us (half rate on the shared first hop).
  EXPECT_GT(pipe_done, 155.0 * units::us);
  EXPECT_EQ(f.net->active_transfers(), 0u);
}

TEST(FlowNetwork, PipelinedFasterThanStoreAndForwardOnLongPaths) {
  // 4-hop line: SAF pays 4x serialization, pipelined pays 1x.
  Graph g;
  std::vector<NodeId> nodes;
  nodes.push_back(g.add_gpu("src", GpuModel::kA100_40, 1, 0));
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(g.add_switch("s" + std::to_string(i),
                                 NodeKind::kAccessSwitch));
  }
  nodes.push_back(g.add_gpu("dst", GpuModel::kA100_40, 1, 1));
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    g.add_edge(nodes[i - 1], nodes[i], LinkKind::kEthernet,
               100 * units::Gbps, 0.0);
  }
  Fixture f(std::move(g));
  const Path p = path_of(f.graph, "src", "dst");
  Time saf = -1, pipe = -1;
  f.net->start_transfer(p, 1.0 * units::MB,
                        TransferOptions{[&](TransferId) {
                          saf = f.simulator.now();
                        }});
  f.simulator.run();
  net::TransferOptions opts;
  opts.pipelined = true;
  opts.on_complete = [&](TransferId) { pipe = f.simulator.now(); };
  const Time start = f.simulator.now();
  f.net->start_transfer(p, 1.0 * units::MB, std::move(opts));
  f.simulator.run();
  EXPECT_NEAR(raw(saf), raw(4.0 * 80.0 * units::us), 1e-9);
  EXPECT_NEAR(raw(pipe - start), raw(80.0 * units::us), 1e-9);
}

TEST(FlowNetwork, ManyRandomFlowsAllComplete) {
  // Stress the reallocation path on the full testbed topology.
  Fixture f(topo::make_testbed());
  const auto gpus = f.graph.gpus();
  Rng rng(99);
  int completed = 0;
  const int total = 60;
  for (int i = 0; i < total; ++i) {
    const NodeId src = gpus[rng.uniform_int(gpus.size())];
    NodeId dst = gpus[rng.uniform_int(gpus.size())];
    if (src == dst) dst = gpus[(rng.uniform_int(gpus.size() - 1) + 1 +
                                (src - gpus[0])) % gpus.size()];
    auto p = topo::shortest_path(f.graph, src, dst);
    if (!p || p->empty()) {
      ++completed;  // same node; nothing to move
      continue;
    }
    f.simulator.schedule(rng.uniform(0.0, raw(100.0 * units::us)), [&f, &completed,
                                                               path = *p,
                                                               bytes =
                                                                   rng.uniform(
                                                                       0.1, 4) *
                                                                   units::MB] {
      f.net->start_transfer(path, bytes, TransferOptions{[&](TransferId) {
                              ++completed;
                            }});
    });
  }
  f.simulator.run();
  EXPECT_EQ(completed, total);
  EXPECT_EQ(f.net->active_transfers(), 0u);
}

}  // namespace
}  // namespace hero::net
