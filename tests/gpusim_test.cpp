// Tests for GPU specs, the roofline kernel model, the least-squares solver,
// and the Eq. 12-13 profiling fit.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpusim/latency_model.hpp"

namespace hero::gpu {
namespace {

TEST(GpuSpec, DatasheetValues) {
  const GpuSpec a100 = spec_of(topo::GpuModel::kA100_40);
  EXPECT_EQ(a100.name, "A100-40GB");
  EXPECT_DOUBLE_EQ(a100.fp16_tflops, 312.0);
  EXPECT_DOUBLE_EQ(raw(a100.memory), raw(40.0 * units::GB));
  EXPECT_GT(a100.flops(), 1e14);

  const GpuSpec v100 = spec_of(topo::GpuModel::kV100_32);
  EXPECT_LT(v100.flops(), a100.flops());
  EXPECT_LT(v100.mem_bw(), a100.mem_bw());
}

KernelModel a100_model(double noise = 0.0) {
  KernelModelOptions opts;
  opts.noise_sigma = noise;
  return KernelModel(spec_of(topo::GpuModel::kA100_40), llm::opt_66b(), opts,
                     1);
}

TEST(KernelModel, PrefillScalesWithTokens) {
  const KernelModel hw = a100_model();
  const Time t1 = hw.prefill_time(1024, 1024 * 1024, 64, 4);
  const Time t2 = hw.prefill_time(2048, 2048 * 2048, 64, 4);
  EXPECT_GT(t2, 1.5 * t1);
}

TEST(KernelModel, PrefillScalesInverselyWithTp) {
  const KernelModel hw = a100_model();
  const Time t1 = hw.prefill_time(2048, 1 << 21, 64, 1);
  const Time t8 = hw.prefill_time(2048, 1 << 21, 64, 8);
  EXPECT_GT(t1, 4.0 * t8);
}

TEST(KernelModel, PrefillScalesWithLayers) {
  const KernelModel hw = a100_model();
  EXPECT_NEAR(raw(hw.prefill_time(2048, 1 << 21, 64, 4)),
              raw(2.0 * hw.prefill_time(2048, 1 << 21, 32, 4)),
              raw(0.1 * hw.prefill_time(2048, 1 << 21, 64, 4)));
}

TEST(KernelModel, ZeroWorkIsFree) {
  const KernelModel hw = a100_model();
  EXPECT_DOUBLE_EQ(raw(hw.prefill_time(0, 0, 64, 4)), raw(0.0));
  EXPECT_DOUBLE_EQ(raw(hw.decode_time(0, 100, 64, 4)), raw(0.0));
  EXPECT_DOUBLE_EQ(raw(hw.decode_time(4, 100, 0, 4)), raw(0.0));
}

TEST(KernelModel, DecodeIsMemoryBoundAtSmallBatch) {
  // Weight streaming dominates: batch 1 vs batch 8 differ by < 2x.
  const KernelModel hw = a100_model();
  const Time b1 = hw.decode_time(1, 512, 64, 4);
  const Time b8 = hw.decode_time(8, 4096, 64, 4);
  EXPECT_LT(b8, 2.0 * b1);
}

TEST(KernelModel, DecodeGrowsWithContext) {
  const KernelModel hw = a100_model();
  EXPECT_GT(hw.decode_time(8, 100000, 64, 4),
            hw.decode_time(8, 1000, 64, 4));
}

TEST(KernelModel, NoiseJittersResults) {
  const KernelModel hw = a100_model(0.05);
  const Time a = hw.prefill_time(2048, 1 << 21, 64, 4);
  const Time b = hw.prefill_time(2048, 1 << 21, 64, 4);
  EXPECT_NE(a, b);
  EXPECT_NEAR(raw(a), raw(b), raw(0.5 * a));
}

TEST(KernelModel, A100PrefillLatencyPlausible) {
  // OPT-66B, 2048-token prompt, TP=8: FLOPs ~ 2*2048*1.02e9*64 / 8 per GPU
  // => a few hundred ms on effective ~140 TFLOPS.
  const KernelModel hw = a100_model();
  const Time t = hw.prefill_time(2048, 2048 * 2048, 64, 8);
  EXPECT_GT(t, 50.0 * units::ms);
  EXPECT_LT(t, 1.0);
}

// --- least squares ---

TEST(LeastSquares, RecoversExactLinearModel) {
  // y = 2 x0 - 3 x1 + 0.5
  std::vector<double> rows, y;
  for (double x0 = 0; x0 < 4; ++x0) {
    for (double x1 = 0; x1 < 4; ++x1) {
      rows.insert(rows.end(), {x0, x1, 1.0});
      y.push_back(2.0 * x0 - 3.0 * x1 + 0.5);
    }
  }
  const auto beta = solve_least_squares(rows, y, 3);
  EXPECT_NEAR(beta[0], 2.0, 1e-9);
  EXPECT_NEAR(beta[1], -3.0, 1e-9);
  EXPECT_NEAR(beta[2], 0.5, 1e-9);
}

TEST(LeastSquares, HandlesWildlyDifferentColumnScales) {
  // Column magnitudes spanning 1e15 vs 1 (the Eq. 12 situation).
  std::vector<double> rows, y;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0.5, 2.0) * 1e15;
    const double b = rng.uniform(0.5, 2.0);
    rows.insert(rows.end(), {a, b});
    y.push_back(3e-15 * a + 0.25 * b);
  }
  const auto beta = solve_least_squares(rows, y, 2);
  EXPECT_NEAR(beta[0], 3e-15, 1e-18);
  EXPECT_NEAR(beta[1], 0.25, 1e-6);
}

TEST(LeastSquares, ValidatesShapes) {
  std::vector<double> rows{1.0, 2.0, 3.0};
  std::vector<double> y{1.0};
  EXPECT_THROW(solve_least_squares(rows, y, 2), std::invalid_argument);
  EXPECT_THROW(solve_least_squares(rows, y, 0), std::invalid_argument);
  // Singular: duplicated column.
  std::vector<double> srows{1.0, 1.0, 2.0, 2.0, 3.0, 3.0};
  std::vector<double> sy{1.0, 2.0, 3.0};
  EXPECT_THROW(solve_least_squares(srows, sy, 2), std::invalid_argument);
}

// --- profiling fit (Eq. 12-13) ---

TEST(ProfileFit, LowRelativeError) {
  const KernelModel hw = a100_model(0.02);
  const FitReport report = profile_and_fit(hw);
  EXPECT_GT(report.samples, 100u);
  EXPECT_LT(report.prefill_rel_err, 0.08);
  EXPECT_LT(report.decode_rel_err, 0.12);
  EXPECT_GT(report.prefill.c1, 0.0);
  EXPECT_GT(report.decode.c4, 0.0);
}

TEST(ProfileFit, PredictsHeldOutShapes) {
  const KernelModel hw = a100_model(0.0);
  const LatencyModel model = fit_latency_model(hw);
  // Shapes not on the profiling grid.
  const Time pred = model.prefill(3000, 3000 * 750, 48, 4);
  const Time truth = hw.prefill_time(3000, 3000 * 750, 48, 4);
  EXPECT_NEAR(raw(pred), raw(truth), raw(0.15 * truth));

  const Time dpred = model.decode(3000, 48, 4);
  const Time dtruth = hw.decode_time(4, 3000, 48, 4);
  EXPECT_NEAR(raw(dpred), raw(dtruth), raw(0.25 * dtruth));
}

TEST(LatencyModel, Eq12Eq13Structure) {
  // Latency is linear in the feature terms: doubling layers doubles the
  // layer-proportional parts.
  const KernelModel hw = a100_model(0.0);
  const LatencyModel model = fit_latency_model(hw);
  const Time full = model.prefill(2048, 1 << 21, 64, 4);
  const Time half = model.prefill(2048, 1 << 21, 32, 4);
  // T(L) = a*L + C3 with small C3: doubling layers roughly doubles latency.
  EXPECT_NEAR(raw(full), raw(2.0 * half), raw(0.1 * full));
  EXPECT_DOUBLE_EQ(raw(model.prefill(0, 0, 64, 4)), raw(0.0));
  EXPECT_DOUBLE_EQ(raw(model.decode(100, 0, 4)), raw(0.0));
}

TEST(LatencyModel, TpReducesPrefill) {
  const KernelModel hw = a100_model(0.0);
  const LatencyModel model = fit_latency_model(hw);
  EXPECT_GT(model.prefill(2048, 1 << 21, 64, 2),
            model.prefill(2048, 1 << 21, 64, 8));
}

}  // namespace
}  // namespace hero::gpu
