// End-to-end integration tests through the HeroServe facade: all four
// systems plan and serve; the paper's qualitative claims hold on small
// deterministic runs; failure injection behaves sanely.
#include <gtest/gtest.h>

#include "core/heroserve.hpp"

namespace hero {
namespace {

ExperimentConfig chatbot_config(double rate, std::size_t count) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = rate;
  cfg.workload.count = count;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 11;
  cfg.serving.sla_ttft = 2.5;
  cfg.serving.sla_tpot = 0.15;
  return cfg;
}

TEST(Experiment, AllSystemsServeTheTrace) {
  // Loose SLAs: this test is about end-to-end mechanics, not the knee.
  ExperimentConfig cfg = chatbot_config(1.0, 20);
  cfg.serving.sla_ttft = 5.0;
  cfg.serving.sla_tpot = 0.3;
  for (SystemKind kind : kAllSystems) {
    const ExperimentResult r = run_experiment(kind, cfg);
    ASSERT_TRUE(r.ok()) << to_string(kind) << ": "
                        << r.plan.infeasible_reason;
    EXPECT_EQ(r.report.completed, 20u) << to_string(kind);
    EXPECT_GT(r.report.sla_attainment, 0.5) << to_string(kind);
  }
}

TEST(Experiment, DeterministicForSeed) {
  const ExperimentConfig cfg = chatbot_config(1.0, 15);
  const ExperimentResult a = run_experiment(SystemKind::kHeroServe, cfg);
  const ExperimentResult b = run_experiment(SystemKind::kHeroServe, cfg);
  EXPECT_DOUBLE_EQ(raw(a.report.makespan), raw(b.report.makespan));
  EXPECT_DOUBLE_EQ(a.report.ttft.p90(), b.report.ttft.p90());
  EXPECT_EQ(a.report.collectives, b.report.collectives);
}

TEST(Experiment, HeroBeatsDistServeUnderLoad) {
  // The paper's gap shows where deployments must cross servers: OPT-175B
  // on 4-GPU servers (the Fig. 8 regime). On the 16-GPU testbed the
  // chatbot scenario admits stage-intra-server placements where all four
  // systems honestly tie; see EXPERIMENTS.md.
  topo::TracksOptions tracks;
  tracks.servers = 18;
  tracks.tracks = 2;
  tracks.servers_per_pod = 6;
  tracks.core_switches = 3;
  tracks.gpus_per_server = 4;
  ExperimentConfig cfg;
  cfg.topology = topo::make_tracks_cluster(tracks);
  cfg.serving.model = llm::opt_175b();
  cfg.workload.rate = 3.0;
  cfg.workload.count = 60;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 23;
  cfg.serving.sla_ttft = 4.0;
  cfg.serving.sla_tpot = 0.2;
  // The paper's deployment premise (SII-B, Fig. 1): instances span servers.
  cfg.min_p_tens = 8;
  const ExperimentResult hero =
      run_experiment(SystemKind::kHeroServe, cfg);
  const ExperimentResult dist =
      run_experiment(SystemKind::kDistServe, cfg);
  ASSERT_TRUE(hero.ok());
  ASSERT_TRUE(dist.ok());
  EXPECT_GT(hero.report.sla_attainment, dist.report.sla_attainment);
  EXPECT_LT(hero.report.ttft.p90(), dist.report.ttft.p90());
  EXPECT_LT(hero.report.tpot.p90(), dist.report.tpot.p90());
}

TEST(Experiment, HeroKeepsKvMemoryLower) {
  // Paper Fig. 10 mechanism: faster token turnaround drains KV sooner.
  const ExperimentConfig cfg = chatbot_config(4.0, 60);
  const ExperimentResult hero =
      run_experiment(SystemKind::kHeroServe, cfg);
  const ExperimentResult dist =
      run_experiment(SystemKind::kDistServe, cfg);
  ASSERT_TRUE(hero.ok() && dist.ok());
  EXPECT_LT(hero.report.kv_utilization_avg,
            dist.report.kv_utilization_avg * 1.05);
}

TEST(Experiment, InfeasibleSlaYieldsNotOk) {
  ExperimentConfig cfg = chatbot_config(1.0, 10);
  cfg.serving.sla_ttft = 1e-6;
  const ExperimentResult r = run_experiment(SystemKind::kHeroServe, cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.report.completed, 0u);
}

TEST(FindMaxRate, BracketsAttainmentTarget) {
  ExperimentConfig cfg = chatbot_config(1.0, 40);
  const RateSearchResult search =
      find_max_rate(SystemKind::kHeroServe, cfg, 0.25, 8.0, 0.9, 4);
  EXPECT_GT(search.max_rate, 0.0);
  EXPECT_LT(search.max_rate, 8.0);
  EXPECT_GE(search.at_max.report.sla_attainment, 0.9);
  EXPECT_GE(search.samples.size(), 2u);
}

TEST(FindMaxRate, ZeroWhenLowerBoundFails) {
  ExperimentConfig cfg = chatbot_config(1.0, 30);
  cfg.serving.sla_tpot = 1e-5;  // unattainable
  const RateSearchResult search =
      find_max_rate(SystemKind::kHeroServe, cfg, 0.25, 4.0, 0.9, 3);
  EXPECT_DOUBLE_EQ(search.max_rate, 0.0);
}

TEST(FailureInjection, DegradedUplinksHurtDistServeMoreThanHero) {
  // Halving a couple of Ethernet uplinks is routed around by HeroServe's
  // heterogeneous paths; DistServe's static Ethernet ring eats the loss.
  ExperimentConfig cfg = chatbot_config(2.0, 40);
  cfg.serving.sla_ttft = 5.0;  // headroom so every system still deploys
  // Degrade the first two GPU uplink edges (Ethernet).
  int degraded = 0;
  for (topo::EdgeId e = 0; e < cfg.topology.edge_count() && degraded < 2;
       ++e) {
    if (cfg.topology.edge(e).kind == topo::LinkKind::kEthernet &&
        cfg.topology.is_gpu(cfg.topology.edge(e).a)) {
      cfg.topology.edge(e).capacity *= 0.25;
      ++degraded;
    }
  }
  ASSERT_EQ(degraded, 2);
  const ExperimentResult hero =
      run_experiment(SystemKind::kHeroServe, cfg);
  const ExperimentResult dist =
      run_experiment(SystemKind::kDistServe, cfg);
  ASSERT_TRUE(hero.ok() && dist.ok());
  EXPECT_GE(hero.report.sla_attainment, dist.report.sla_attainment);
}

TEST(FittedModel, CachedPerModel) {
  const gpu::LatencyModel& a = fitted_model(llm::opt_66b());
  const gpu::LatencyModel& b = fitted_model(llm::opt_66b());
  EXPECT_EQ(&a, &b);
  const gpu::LatencyModel& c = fitted_model(llm::opt_13b());
  EXPECT_NE(&a, &c);
}

TEST(SystemKind, Names) {
  EXPECT_STREQ(to_string(SystemKind::kHeroServe), "HeroServe");
  EXPECT_STREQ(to_string(SystemKind::kDistServe), "DistServe");
  EXPECT_STREQ(to_string(SystemKind::kDsAtp), "DS-ATP");
  EXPECT_STREQ(to_string(SystemKind::kDsSwitchMl), "DS-SwitchML");
}

}  // namespace
}  // namespace hero
