// Tests for the hierarchical KV tier's building blocks: the per-instance
// PrefixCache (block coverage, LRU eviction, pins, publish capacity math,
// drain retirement) and the fleet-level PrefixDirectory mirror.
#include <gtest/gtest.h>

#include <vector>

#include "kvtier/directory.hpp"
#include "kvtier/prefix_cache.hpp"

namespace hero::kv {
namespace {

PrefixCache make_cache(std::size_t block_tokens = 64,
                       double bytes_per_token = 1024.0) {
  return PrefixCache(PrefixCacheOptions{block_tokens, bytes_per_token});
}

TEST(PrefixCache, PublishRoundsDownToWholeBlocks) {
  PrefixCache c = make_cache(64);
  // 200 tokens -> 3 blocks (192 tokens); the partial tail block is dropped.
  EXPECT_EQ(c.publish(1, 200, 1e12, nullptr), 192u);
  EXPECT_EQ(c.cached_tokens(1), 192u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 192.0 * 1024.0);
  EXPECT_EQ(c.usable_tokens(200), 192u);
  EXPECT_EQ(c.usable_tokens(63), 0u);
}

TEST(PrefixCache, PublishNeverShrinksCoverage) {
  PrefixCache c = make_cache(64);
  EXPECT_EQ(c.publish(1, 256, 1e12, nullptr), 256u);
  // Re-publishing a shorter context keeps the longer cached prefix.
  EXPECT_EQ(c.publish(1, 128, 1e12, nullptr), 256u);
  EXPECT_EQ(c.cached_tokens(1), 256u);
}

TEST(PrefixCache, PublishStopsAtCapacity) {
  PrefixCache c = make_cache(64, 1.0);  // 64 bytes per block
  // Capacity of 2.5 blocks: only 2 publish.
  EXPECT_EQ(c.publish(1, 640, 160.0, nullptr), 128u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 128.0);
}

TEST(PrefixCache, LruEvictionTakesColdestTailFirst) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 128, 1e12, nullptr);  // oldest
  c.publish(2, 128, 1e12, nullptr);
  c.touch(1);  // stream 2 is now the LRU victim
  std::vector<CoverageChange> changes;
  // Free one block: stream 2 loses its tail block.
  EXPECT_DOUBLE_EQ(raw(c.evict(64.0, &changes)), 64.0);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].stream, 2u);
  EXPECT_EQ(changes[0].tokens, 64u);
  EXPECT_EQ(c.cached_tokens(1), 128u);
  EXPECT_EQ(c.cached_tokens(2), 64u);
}

TEST(PrefixCache, FullyEvictedStreamReportsZeroCoverage) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 128, 1e12, nullptr);
  std::vector<CoverageChange> changes;
  c.evict(1e12, &changes);
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.back().tokens, 0u);
  EXPECT_EQ(c.cached_tokens(1), 0u);
  EXPECT_EQ(c.stream_count(), 0u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 0.0);
}

TEST(PrefixCache, PinnedBlocksSurviveEviction) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 256, 1e12, nullptr);
  c.pin(1, 128);  // first two blocks protected
  std::vector<CoverageChange> changes;
  // Ask for everything: only the unpinned tail (2 blocks) can go.
  EXPECT_DOUBLE_EQ(raw(c.evict(1e12, &changes)), 128.0);
  EXPECT_EQ(c.cached_tokens(1), 128u);
  c.unpin(1, 128);
  EXPECT_DOUBLE_EQ(raw(c.evict(1e12, &changes)), 128.0);
  EXPECT_EQ(c.cached_tokens(1), 0u);
}

TEST(PrefixCache, PinsBalanceAndNest) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 256, 1e12, nullptr);
  c.pin(1, 64);
  c.pin(1, 128);  // a longer pin protects everything below it
  EXPECT_EQ(c.pinned_count(), 2u);
  std::vector<CoverageChange> changes;
  EXPECT_DOUBLE_EQ(raw(c.evict(1e12, &changes)), 128.0);  // tail only
  c.unpin(1, 128);
  EXPECT_EQ(c.pinned_count(), 1u);
  // The 64-token pin still guards the first block.
  EXPECT_DOUBLE_EQ(raw(c.evict(1e12, &changes)), 64.0);
  EXPECT_EQ(c.cached_tokens(1), 64u);
  c.unpin(1, 64);
  EXPECT_EQ(c.pinned_count(), 0u);
}

TEST(PrefixCache, PublishEvictsOthersButNeverItself) {
  PrefixCache c = make_cache(64, 1.0);  // 64 bytes per block
  // Fill a 4-block budget with two cold streams.
  c.publish(1, 128, 256.0, nullptr);
  c.publish(2, 128, 256.0, nullptr);
  std::vector<CoverageChange> changes;
  // Stream 3 wants 3 blocks; the cache must evict cold tails to fit it
  // without ever counting stream 3 among the victims.
  EXPECT_EQ(c.publish(3, 192, 256.0, &changes), 192u);
  EXPECT_EQ(c.cached_tokens(3), 192u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 256.0);
  for (const CoverageChange& ch : changes) EXPECT_NE(ch.stream, 3u);
}

TEST(PrefixCache, PublishWithEverythingPinnedFitsWhatItCan) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 256, 256.0, nullptr);  // fills the 4-block budget
  c.pin(1, 256);
  // Nothing evictable: the new stream publishes zero blocks.
  EXPECT_EQ(c.publish(2, 128, 256.0, nullptr), 0u);
  EXPECT_EQ(c.cached_tokens(2), 0u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 256.0);
}

TEST(PrefixCache, RetireDropsUnpinnedAndRefusesPublishes) {
  PrefixCache c = make_cache(64, 1.0);
  c.publish(1, 128, 1e12, nullptr);
  c.publish(2, 128, 1e12, nullptr);
  c.pin(2, 64);
  const std::vector<CoverageChange> dropped = c.retire();
  // Stream 1 (unpinned) vanishes now; stream 2 lives until its unpin.
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].stream, 1u);
  EXPECT_EQ(dropped[0].tokens, 0u);
  EXPECT_TRUE(c.retired());
  EXPECT_EQ(c.cached_tokens(2), 128u);
  EXPECT_EQ(c.publish(3, 128, 1e12, nullptr), 0u);
  c.unpin(2, 64);
  EXPECT_EQ(c.cached_tokens(2), 0u);
  EXPECT_EQ(c.stream_count(), 0u);
  EXPECT_DOUBLE_EQ(raw(c.bytes_used()), 0.0);
}

// --- fleet directory ---

TEST(PrefixDirectory, BestPrefersLongestThenLowestId) {
  PrefixDirectory d;
  d.update(7, /*instance=*/2, 128);
  d.update(7, /*instance=*/0, 256);
  d.update(7, /*instance=*/1, 256);
  const auto best = d.best(7);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->instance, 0u);  // tie at 256 -> lowest id
  EXPECT_EQ(best->tokens, 256u);
  EXPECT_EQ(d.tokens_at(7, 2), 128u);
  EXPECT_EQ(d.tokens_at(7, 3), 0u);
  EXPECT_FALSE(d.best(8).has_value());
}

TEST(PrefixDirectory, ZeroTokensRemovesEntry) {
  PrefixDirectory d;
  d.update(7, 0, 128);
  EXPECT_EQ(d.entry_count(), 1u);
  d.update(7, 0, 0);
  EXPECT_EQ(d.entry_count(), 0u);
  EXPECT_EQ(d.stream_count(), 0u);
  EXPECT_FALSE(d.best(7).has_value());
  EXPECT_EQ(d.holders(7), nullptr);
}

TEST(PrefixDirectory, PurgeInstanceDropsAllItsEntries) {
  PrefixDirectory d;
  d.update(1, 0, 64);
  d.update(2, 0, 64);
  d.update(2, 1, 128);
  EXPECT_TRUE(d.instance_has_entries(0));
  EXPECT_EQ(d.purge_instance(0), 2u);
  EXPECT_FALSE(d.instance_has_entries(0));
  EXPECT_EQ(d.entry_count(), 1u);
  // Stream 1 lost its only holder; stream 2 keeps instance 1.
  EXPECT_FALSE(d.best(1).has_value());
  const auto best = d.best(2);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->instance, 1u);
  // Purging again is a no-op.
  EXPECT_EQ(d.purge_instance(0), 0u);
}

TEST(PrefixDirectory, UpdateOverwritesCoverage) {
  PrefixDirectory d;
  d.update(5, 1, 64);
  d.update(5, 1, 192);  // grow
  EXPECT_EQ(d.tokens_at(5, 1), 192u);
  EXPECT_EQ(d.entry_count(), 1u);
  d.update(5, 1, 64);  // shrink after eviction
  EXPECT_EQ(d.tokens_at(5, 1), 64u);
  const auto* holders = d.holders(5);
  ASSERT_NE(holders, nullptr);
  EXPECT_EQ(holders->size(), 1u);
}

}  // namespace
}  // namespace hero::kv
