// Fixture: a simulator dispatch entry point (ClusterSim is in
// hero-lint's entry-class table) whose step path crosses a TU boundary
// into helper_sink.cpp's wall-clock read. lint_test.cpp feeds both files
// to analyze_project and expects a transitive-wall-clock finding whose
// chain walks ClusterSim::step -> helper_tick.
#include "helper_sink.hpp"

struct ClusterSim {
  void step() { elapsed_ += helper_tick(); }
  double elapsed_ = 0.0;
};
