// Fixture: the sink TU. The direct wall-clock use is suppressed — the
// author "justified" it locally — but sinks are collected from the raw,
// pre-suppression findings, so dispatch reachability from
// entry_dispatch.cpp still surfaces it as transitive-wall-clock: being
// on the simulator's dispatch path is a different bug than the one the
// local allow() argued away.
#include "helper_sink.hpp"

#include <chrono>

double helper_tick() {
  // hero-lint: allow(wall-clock) — fixture: locally justified timing
  auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
