// Fixture header: declares the helper whose definition (helper_sink.cpp)
// hides a wall-clock read. Part of the cross-TU reachability fixture for
// lint_test.cpp — not production code.
#pragma once

double helper_tick();
