// Tests for the hero-lint rule engine (tools/lint): the per-file rules
// through lint_source(), and the v3 whole-program rules (call-graph
// reachability, layer DAG, include cycles, stale suppressions) through a
// ProjectIndex fed with in-memory files — exactly what the CLI
// exercises. The only disk fixtures are tests/lint_fixtures/ (a planted
// cross-TU wall-clock that must flip the gate) and the repo's real
// tools/lint/layers.txt (its syntax and acyclicity stay covered here).
#include "callgraph.hpp"
#include "index.hpp"
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using herolint::FileContext;
using herolint::Finding;

std::vector<Finding> lint(const std::string& src, bool library = true,
                          bool rng_module = false) {
  FileContext ctx;
  ctx.library = library;
  ctx.rng_module = rng_module;
  return herolint::lint_source("fixture.cpp", src, ctx);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintTest, CleanFileHasNoFindings) {
  const std::string src = R"cpp(
#include <map>
#include <vector>

struct Stats {
  double mean = 0.0;
  int samples = 0;
};

double total(const std::map<int, double>& m) {
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}
)cpp";
  EXPECT_TRUE(lint(src).empty());
}

TEST(LintTest, RangeForOverUnorderedContainerFires) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "unordered-iter"), 1);
  EXPECT_EQ(fs[0].line, 6);
}

TEST(LintTest, BeginEndOverUnorderedContainerFires) {
  const std::string src = R"cpp(
#include <unordered_set>
std::unordered_set<int> seen;
void drain(std::vector<int>& out) {
  out.assign(seen.begin(), seen.end());
}
)cpp";
  EXPECT_GE(count_rule(lint(src), "unordered-iter"), 1);
}

TEST(LintTest, FindEndSentinelComparisonDoesNotFire) {
  // `it == c.end()` after find() is a membership test, not a traversal.
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, int> cache;
bool hit(int k) {
  auto it = cache.find(k);
  if (it == cache.end()) return false;
  return it != cache.end();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unordered-iter"), 0);
}

TEST(LintTest, OrderedContainerIterationDoesNotFire) {
  const std::string src = R"cpp(
#include <map>
std::map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unordered-iter"), 0);
}

TEST(LintTest, WallClockSourcesFire) {
  const std::string src = R"cpp(
#include <chrono>
double now_s() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "wall-clock"), 1);
}

TEST(LintTest, AmbientRngFires) {
  const std::string src = R"cpp(
#include <random>
int roll() {
  static std::mt19937 gen{std::random_device{}()};
  return static_cast<int>(gen());
}
)cpp";
  EXPECT_GE(count_rule(lint(src), "ambient-rng"), 2);
}

TEST(LintTest, RngModuleIsExemptFromAmbientRng) {
  const std::string src = R"cpp(
#include <random>
std::mt19937 make_engine(unsigned seed) { return std::mt19937{seed}; }
)cpp";
  EXPECT_EQ(count_rule(lint(src, /*library=*/true, /*rng_module=*/true),
                       "ambient-rng"),
            0);
  EXPECT_GE(count_rule(lint(src), "ambient-rng"), 1);
}

TEST(LintTest, FloatEqualityFires) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
bool pending(double x) { return 0.5 != x; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 2);
}

TEST(LintTest, EpsilonComparisonDoesNotFire) {
  const std::string src = R"cpp(
bool near_one(double x) { return x >= 1.0 - 1e-9 && x <= 1.0 + 1e-9; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 0);
}

TEST(LintTest, IostreamOnlyFlaggedInLibraryCode) {
  const std::string src = R"cpp(
#include <iostream>
void hello() {}
)cpp";
  EXPECT_EQ(count_rule(lint(src, /*library=*/true), "iostream"), 1);
  EXPECT_EQ(count_rule(lint(src, /*library=*/false), "iostream"), 0);
}

TEST(LintTest, UninitStructMemberFires) {
  const std::string src = R"cpp(
struct Event {
  double at;
  int id;
  bool cancelled = false;
};
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "uninit-member"), 2);
}

TEST(LintTest, ClassAndEnumMembersAreNotFlagged) {
  // Classes establish invariants in constructors; enum class bodies are
  // not aggregates at all.
  const std::string src = R"cpp(
class Engine {
 public:
  explicit Engine(int n);
 private:
  double rate_;
  int count_;
};
enum class Scheme {
  kRing,
  kInaSync
};
)cpp";
  EXPECT_EQ(count_rule(lint(src), "uninit-member"), 0);
}

TEST(LintTest, TokensInCommentsAndStringsAreMasked) {
  const std::string src = R"cpp(
// steady_clock would be nondeterministic; rand() too.
/* for (auto& x : some_unordered) {} */
const char* kDoc = "uses std::mt19937 and x == 1.0 internally";
)cpp";
  EXPECT_TRUE(lint(src).empty());
}

TEST(LintTest, AllowSuppressesOnSameAndPreviousLine) {
  const std::string same = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
)cpp";
  EXPECT_TRUE(lint(same).empty());

  const std::string prev = R"cpp(
#include <chrono>
// hero-lint: allow(wall-clock)
auto t = std::chrono::steady_clock::now();
)cpp";
  EXPECT_TRUE(lint(prev).empty());
}

TEST(LintTest, AllowOfOtherRuleDoesNotSuppress) {
  const std::string src = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(ambient-rng)
)cpp";
  EXPECT_EQ(count_rule(lint(src), "wall-clock"), 1);
}

TEST(LintTest, AllowFileSuppressesRuleFileWide) {
  const std::string src = R"cpp(
// hero-lint: allow-file(float-equal)
bool a(double x) { return x == 1.0; }
bool b(double x) { return x != 2.0; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 0);
}

TEST(LintTest, ClassifyPathMatchesRepoConventions) {
  EXPECT_TRUE(herolint::classify_path("src/netsim/flownet.cpp").library);
  EXPECT_TRUE(herolint::classify_path("/root/repo/src/online/policy.cpp")
                  .library);
  EXPECT_FALSE(herolint::classify_path("tests/flownet_test.cpp").library);
  EXPECT_FALSE(herolint::classify_path("examples/quickstart.cpp").library);
  EXPECT_TRUE(herolint::classify_path("src/common/rng.hpp").rng_module);
  EXPECT_FALSE(herolint::classify_path("src/common/format.hpp").rng_module);
}

TEST(LintTest, RuleIdsAreStableAndSorted) {
  const auto& ids = herolint::rule_ids();
  EXPECT_EQ(ids.size(), 16u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (const std::string& id : ids) {
    EXPECT_FALSE(herolint::rule_summary(id).empty()) << id;
  }
  EXPECT_TRUE(herolint::rule_summary("no-such-rule").empty());
}

// --- v2 flow rules ----------------------------------------------------

TEST(LintTest, RawUnitLiteralFiresOnConversionFactorShapedInit) {
  const std::string src = R"cpp(
#include "common/units.hpp"
void f() {
  hero::Bandwidth bw = 12.5e9;
  hero::Bytes chunk = 4096.0;
}
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "raw-unit-literal"), 2);
}

TEST(LintTest, RawUnitLiteralAcceptsUnitsSpellingAndHumanScale) {
  const std::string src = R"cpp(
#include "common/units.hpp"
void f() {
  hero::Bandwidth bw = 100.0 * units::Gbps;
  hero::Time sla = 2.5;
  hero::Time zero = 0.0;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 0);
}

TEST(LintTest, RawUnitLiteralFiresOnAssignmentToo) {
  const std::string src = R"cpp(
void f() {
  Time deadline = 0.0;
  deadline = 3600.0;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 1);
}

TEST(LintTest, RawUnitLiteralIgnoresNonUnitTypes) {
  const std::string src = R"cpp(
void f() {
  double scale = 1e9;
  std::size_t tokens = 16384;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 0);
}

TEST(LintTest, MixedDimensionArithFires) {
  const std::string src = R"cpp(
void f(Bytes chunk, Time overhead) {
  auto nonsense = chunk + overhead;
}
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "mixed-dimension-arith"), 1);
}

TEST(LintTest, MixedDimensionCompoundAssignFires) {
  const std::string src = R"cpp(
void f(Time total, Bytes data) {
  total += data;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 1);
}

TEST(LintTest, SameDimensionArithDoesNotFire) {
  const std::string src = R"cpp(
void f(Time a, Time b) {
  Time total = a + b;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, MixedDimensionSkipsMultiplicativeTerms) {
  // `chunk / bottleneck + overhead` is (Bytes/Bandwidth) + Time ==
  // Time + Time: the ident left of `+` carries the whole term's
  // dimension, not its own.
  const std::string src = R"cpp(
Time latency(Bytes chunk, Bandwidth bottleneck, Time overhead) {
  double steps = 4.0;
  return steps * (chunk / bottleneck + overhead);
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, MixedDimensionSkipsMemberAccess) {
  const std::string src = R"cpp(
void f(Stats s, Bytes chunk) {
  auto x = s.chunk + chunk;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, UnconsumedEstimateFires) {
  const std::string src = R"cpp(
void f(Oracle& oracle, Sim& sim) {
  oracle.estimate_path(src, dst, bytes);
  sim.load();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unconsumed-estimate"), 2);
}

TEST(LintTest, ConsumedEstimateDoesNotFire) {
  const std::string src = R"cpp(
void f(Oracle& oracle, Sim& sim) {
  Time t = oracle.estimate_path(src, dst, bytes);
  auto snap = sim.load();
  if (oracle.estimate_path(src, dst, bytes) > t) return;
  use(sim.load());
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unconsumed-estimate"), 0);
}

TEST(LintTest, UnorderedIterToOutputFires) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
void dump(Tracer& tracer) {
  for (const auto& [id, r] : rates) {
    tracer.instant("rate", id);
  }
}
)cpp";
  const auto fs = lint(src);
  // The plain unordered-iter rule also fires; the output-flavored rule
  // adds the higher-severity byte-identity diagnosis.
  EXPECT_EQ(count_rule(fs, "unordered-iter-to-output"), 1);
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(LintTest, UnorderedIterWithoutSinkIsNotOutputFlavored) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "unordered-iter-to-output"), 0);
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(LintTest, SuppressedFindingsLandInReport) {
  const std::string src = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
bool done(double x) { return x == 1.0; }
)cpp";
  FileContext ctx;
  ctx.library = true;
  const herolint::LintReport report =
      herolint::lint_source_report("fixture.cpp", src, ctx);
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].rule, "wall-clock");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "float-equal");
}

TEST(LintTest, SarifReportIsWellFormed) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 1u);
  const std::string sarif = herolint::to_sarif(fs);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"float-equal\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
  EXPECT_NE(sarif.find("fixture.cpp"), std::string::npos);
  // The driver rules table documents every rule id.
  for (const std::string& id : herolint::rule_ids()) {
    EXPECT_NE(sarif.find("\"id\": \"" + id + "\""), std::string::npos) << id;
  }
}

TEST(LintTest, SarifEmptyFindingsIsStillARun) {
  const std::string sarif = herolint::to_sarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(LintTest, JsonReportContainsFindings) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 1u);
  const std::string json = herolint::to_json(fs);
  EXPECT_NE(json.find("\"fixture.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"float-equal\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
}

TEST(LintTest, FindingsSortedByLine) {
  const std::string src = R"cpp(
#include <chrono>
bool done(double x) { return x == 1.0; }
auto t = std::chrono::steady_clock::now();
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_LT(fs[0].line, fs[1].line);
  EXPECT_EQ(fs[0].rule, "float-equal");
  EXPECT_EQ(fs[1].rule, "wall-clock");
}

// --- v3 whole-program rules -------------------------------------------

using FileSet = std::vector<std::pair<std::string, std::string>>;

herolint::ProjectIndex make_index(const FileSet& files) {
  herolint::ProjectIndex index;
  for (const auto& [path, content] : files) index.add_file(path, content);
  return index;
}

herolint::LintReport analyze(const FileSet& files,
                             const std::string& layers = "") {
  herolint::ProjectIndex index = make_index(files);
  herolint::AnalyzeOptions opts;
  opts.layers_text = layers;
  opts.layers_path = "layers.txt";
  return herolint::analyze_project(index, opts);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(IndexTest, ExtractsFunctionsMethodsAndSpans) {
  herolint::ProjectIndex index = make_index({{"src/netsim/thing.cpp", R"cpp(
namespace hero {

double helper(double x) { return x * 2.0; }

struct Widget {
  void run() {
    helper(1.0);
    owner_->refresh(2.0);
  }
};

void Widget::stop() {
  helper(0.0);
}

}  // namespace hero
)cpp"}});
  const auto& fns = index.functions();
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_EQ(fns[0].display(), "helper");
  EXPECT_EQ(fns[1].display(), "Widget::run");
  EXPECT_EQ(fns[2].display(), "Widget::stop");
  // Line spans cover declarator through closing brace, so body lines map
  // back to their function.
  EXPECT_EQ(index.enclosing_function(0, 8), 1);   // inside Widget::run
  EXPECT_EQ(index.enclosing_function(0, 14), 2);  // inside Widget::stop
  EXPECT_EQ(index.enclosing_function(0, 17), -1);
  // Call sites carry member/qualifier structure.
  ASSERT_EQ(fns[1].calls.size(), 2u);
  EXPECT_EQ(fns[1].calls[0].name, "helper");
  EXPECT_FALSE(fns[1].calls[0].member);
  EXPECT_EQ(fns[1].calls[1].name, "refresh");
  EXPECT_TRUE(fns[1].calls[1].member);
}

TEST(IndexTest, MacroBodiesAreNotFunctions) {
  herolint::ProjectIndex index = make_index({{"src/common/m.hpp", R"cpp(
#define MAKE_THING(name) \
  Thing name() {         \
    return Thing{};      \
  }
int real_fn() { return 1; }
)cpp"}});
  ASSERT_EQ(index.functions().size(), 1u);
  EXPECT_EQ(index.functions()[0].name, "real_fn");
}

TEST(IndexTest, SubsystemOfMatchesRepoLayout) {
  EXPECT_EQ(herolint::subsystem_of("src/netsim/flownet.cpp"), "netsim");
  EXPECT_EQ(herolint::subsystem_of("/root/repo/src/online/policy.hpp"),
            "online");
  EXPECT_EQ(herolint::subsystem_of("tools/lint/lint_core.cpp"), "");
  EXPECT_EQ(herolint::subsystem_of("bench/bench_util.hpp"), "");
}

TEST(CallGraphTest, LinksCallsAcrossTranslationUnits) {
  herolint::ProjectIndex index = make_index({
      {"src/a.cpp", "void caller() { helper_tick(); }\n"},
      {"src/b.hpp", "double helper_tick();\n"},
      {"src/b.cpp", "double helper_tick() { return 1.0; }\n"},
  });
  const herolint::CallGraph graph = herolint::CallGraph::build(index);
  const std::vector<int> callers = index.functions_named("caller");
  const std::vector<int> helpers = index.functions_named("helper_tick");
  ASSERT_EQ(callers.size(), 1u);
  ASSERT_EQ(helpers.size(), 1u);  // the declaration is not a definition
  const auto& out = graph.out[static_cast<std::size_t>(callers[0])];
  EXPECT_NE(std::find(out.begin(), out.end(), helpers[0]), out.end());
}

TEST(CallGraphTest, EntryClassesAreSortedAndRecognized) {
  const auto& classes = herolint::entry_classes();
  EXPECT_TRUE(std::is_sorted(classes.begin(), classes.end()));
  herolint::FunctionDef fn;
  fn.name = "step";
  fn.class_name = "ClusterSim";
  EXPECT_TRUE(herolint::is_entry(fn));
  fn.class_name = "JsonReport";
  EXPECT_FALSE(herolint::is_entry(fn));
  fn.class_name.clear();
  EXPECT_FALSE(herolint::is_entry(fn));
}

TEST(TransitiveTest, WallClockAcrossTuReportsFullChain) {
  const herolint::LintReport report = analyze({
      {"src/core/sim.cpp",
       "struct Simulator {\n"
       "  void run_until() { helper_tick(); }\n"
       "};\n"},
      {"src/common/h.cpp",
       "#include <chrono>\n"
       "double helper_tick() {\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "  return static_cast<double>(t.time_since_epoch().count());\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(report.findings, "transitive-wall-clock"), 1);
  const auto it = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.rule == "transitive-wall-clock"; });
  // Reported at the sink, with the entry -> sink chain in the message.
  EXPECT_EQ(it->file, "src/common/h.cpp");
  EXPECT_EQ(it->line, 3);
  EXPECT_NE(it->message.find("reachable from simulator dispatch"),
            std::string::npos);
  EXPECT_NE(it->message.find("Simulator::run_until (src/core/sim.cpp:2)"),
            std::string::npos);
  EXPECT_NE(it->message.find("-> helper_tick (src/common/h.cpp:2)"),
            std::string::npos);
  // The direct finding also fires, in the same report.
  EXPECT_EQ(count_rule(report.findings, "wall-clock"), 1);
}

TEST(TransitiveTest, RngReachableFromDispatchFires) {
  const herolint::LintReport report = analyze({
      {"src/online/sched.cpp",
       "struct OnlineScheduler {\n"
       "  int place() { return jitter(); }\n"
       "};\n"},
      {"src/workload/jit.cpp",
       "#include <cstdlib>\n"
       "int jitter() { return rand(); }\n"},
  });
  EXPECT_EQ(count_rule(report.findings, "transitive-rng"), 1);
}

TEST(TransitiveTest, UnorderedIterReachableFromDispatchFires) {
  const herolint::LintReport report = analyze({
      {"src/core/fleet.cpp",
       "struct FleetSim {\n"
       "  double step() { return drain(); }\n"
       "};\n"},
      {"src/serving/agg.cpp",
       "#include <unordered_map>\n"
       "std::unordered_map<int, double> rates;\n"
       "double drain() {\n"
       "  double s = 0.0;\n"
       "  for (const auto& [k, v] : rates) s += v;\n"
       "  return s;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(report.findings, "transitive-unordered-iter"), 1);
}

TEST(TransitiveTest, UnreachableSinksDoNotFireTransitively) {
  // All three sink kinds exist, but nothing on the dispatch side calls
  // them: only the direct rules fire.
  const herolint::LintReport report = analyze({
      {"src/core/sim.cpp",
       "struct Simulator {\n"
       "  void run_until() { advance(); }\n"
       "};\n"
       "void advance() {}\n"},
      {"src/common/dead.cpp",
       "#include <chrono>\n"
       "#include <cstdlib>\n"
       "#include <unordered_map>\n"
       "std::unordered_map<int, double> rates;\n"
       "double orphan() {\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "  double s = static_cast<double>(rand());\n"
       "  for (const auto& [k, v] : rates) s += v;\n"
       "  return s + static_cast<double>(t.time_since_epoch().count());\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(report.findings, "transitive-wall-clock"), 0);
  EXPECT_EQ(count_rule(report.findings, "transitive-rng"), 0);
  EXPECT_EQ(count_rule(report.findings, "transitive-unordered-iter"), 0);
  EXPECT_EQ(count_rule(report.findings, "wall-clock"), 1);
  EXPECT_EQ(count_rule(report.findings, "ambient-rng"), 1);
  EXPECT_EQ(count_rule(report.findings, "unordered-iter"), 1);
}

TEST(TransitiveTest, StdQualifiedCallsDoNotCreateEdges) {
  // `std::clamp(...)` must not link to a same-named project function
  // containing a sink.
  const herolint::LintReport report = analyze({
      {"src/core/r.cpp",
       "#include <algorithm>\n"
       "struct Router {\n"
       "  int pick() { return std::clamp(1, 0, 2); }\n"
       "};\n"},
      {"src/common/c.cpp",
       "#include <chrono>\n"
       "int clamp(int v, int lo, int hi) {\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "  (void)t;\n"
       "  return v < lo ? lo : (v > hi ? hi : v);\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(report.findings, "transitive-wall-clock"), 0);
}

TEST(TransitiveTest, SuppressedSinkIsStillASink) {
  // A locally allowed wall-clock stays a call-graph sink: the transitive
  // finding needs its own allow(transitive-wall-clock) to be silenced.
  const herolint::LintReport report = analyze({
      {"src/core/sim.cpp",
       "struct Simulator {\n"
       "  void run_until() { helper_tick(); }\n"
       "};\n"},
      {"src/common/h.cpp",
       "#include <chrono>\n"
       "double helper_tick() {\n"
       "  // hero-lint: allow(wall-clock)\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "  return static_cast<double>(t.time_since_epoch().count());\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(report.findings, "wall-clock"), 0);
  EXPECT_EQ(count_rule(report.suppressed, "wall-clock"), 1);
  EXPECT_EQ(count_rule(report.findings, "transitive-wall-clock"), 1);
}

TEST(LayerTest, UndeclaredEdgeFires) {
  const std::string layers =
      "common:\nnetsim: common\ncollectives: common\n";
  const herolint::LintReport report = analyze(
      {{"src/collectives/engine.hpp", "#include \"netsim/flownet.hpp\"\n"},
       {"src/netsim/flownet.hpp", ""}},
      layers);
  ASSERT_EQ(count_rule(report.findings, "layer-violation"), 1);
  EXPECT_EQ(report.findings[0].file, "src/collectives/engine.hpp");
  EXPECT_EQ(report.findings[0].line, 1);
  EXPECT_NE(report.findings[0].message.find("collectives -> netsim"),
            std::string::npos);
}

TEST(LayerTest, DeclaredEdgeDoesNotFire) {
  const std::string layers =
      "common:\nnetsim: common\ncollectives: common netsim\n";
  const herolint::LintReport report = analyze(
      {{"src/collectives/engine.hpp", "#include \"netsim/flownet.hpp\"\n"},
       {"src/netsim/flownet.hpp", ""}},
      layers);
  EXPECT_EQ(count_rule(report.findings, "layer-violation"), 0);
}

TEST(LayerTest, SpecParseReportsMalformedAndCyclicGraphs) {
  const herolint::LayerSpec bad = herolint::LayerSpec::parse(
      "common\n"          // no colon
      "a: zzz\n"          // undeclared dep
      "a: common\n");     // duplicate subsystem
  EXPECT_EQ(bad.errors.size(), 3u);

  const herolint::LayerSpec cyclic =
      herolint::LayerSpec::parse("a: b\nb: a\n");
  EXPECT_TRUE(cyclic.errors.empty());
  EXPECT_FALSE(cyclic.cycle.empty());

  const herolint::LayerSpec good =
      herolint::LayerSpec::parse("# comment\ncommon:\nobs: common\n");
  EXPECT_TRUE(good.errors.empty());
  EXPECT_TRUE(good.cycle.empty());
  EXPECT_TRUE(good.declared("obs"));
  EXPECT_FALSE(good.declared("gpusim"));
}

TEST(LayerTest, RepoLayersFileIsWellFormedAndAcyclic) {
  const herolint::LayerSpec spec =
      herolint::LayerSpec::parse(slurp(LINT_LAYERS_FILE));
  EXPECT_TRUE(spec.errors.empty());
  EXPECT_TRUE(spec.cycle.empty());
  for (const char* sub : {"common", "netsim", "collectives", "online",
                          "planner", "serving", "core"}) {
    EXPECT_TRUE(spec.declared(sub)) << sub;
  }
}

TEST(LayerTest, DeletingAnEdgeFromRepoLayersFlipsTheGate) {
  // The repo DAG allows collectives -> netsim; cut that edge from the
  // real file's text and the same include becomes a violation.
  const FileSet files = {
      {"src/collectives/engine.hpp", "#include \"netsim/flownet.hpp\"\n"},
      {"src/netsim/flownet.hpp", ""}};
  const std::string full = slurp(LINT_LAYERS_FILE);
  EXPECT_EQ(count_rule(analyze(files, full).findings, "layer-violation"),
            0);

  std::istringstream in(full);
  std::string line, cut;
  while (std::getline(in, line)) {
    if (line.rfind("collectives:", 0) == 0) {
      std::size_t pos = line.find(" netsim");
      ASSERT_NE(pos, std::string::npos);
      line.erase(pos, 7);
    }
    cut += line + "\n";
  }
  EXPECT_EQ(count_rule(analyze(files, cut).findings, "layer-violation"),
            1);
}

TEST(IncludeCycleTest, MutualHeadersFireOnce) {
  const herolint::LintReport report = analyze({
      {"src/common/a.hpp", "#pragma once\n#include \"b.hpp\"\n"},
      {"src/common/b.hpp", "#pragma once\n#include \"a.hpp\"\n"},
  });
  ASSERT_EQ(count_rule(report.findings, "include-cycle"), 1);
  const auto it = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.rule == "include-cycle"; });
  EXPECT_NE(it->message.find("src/common/a.hpp"), std::string::npos);
  EXPECT_NE(it->message.find("src/common/b.hpp"), std::string::npos);
}

TEST(IncludeCycleTest, AcyclicChainDoesNotFire) {
  const herolint::LintReport report = analyze({
      {"src/common/a.hpp", "#include \"b.hpp\"\n"},
      {"src/common/b.hpp", "#include \"c.hpp\"\n"},
      {"src/common/c.hpp", ""},
  });
  EXPECT_EQ(count_rule(report.findings, "include-cycle"), 0);
}

TEST(StaleTest, UnusedAllowFires) {
  const herolint::LintReport report = analyze({{"src/common/x.cpp",
                                                R"cpp(
// hero-lint: allow(wall-clock)
double f() { return 1.0; }
)cpp"}});
  ASSERT_EQ(count_rule(report.findings, "stale-suppression"), 1);
  EXPECT_EQ(report.findings[0].line, 2);
  EXPECT_NE(report.findings[0].message.find("allow(wall-clock)"),
            std::string::npos);
}

TEST(StaleTest, UnknownRuleIsCalledOut) {
  const herolint::LintReport report = analyze(
      {{"src/common/x.cpp", "// hero-lint: allow(wallclock)\n"}});
  ASSERT_EQ(count_rule(report.findings, "stale-suppression"), 1);
  EXPECT_NE(report.findings[0].message.find("unknown rule 'wallclock'"),
            std::string::npos);
}

TEST(StaleTest, UsedAllowDoesNotFire) {
  const herolint::LintReport report = analyze({{"src/common/x.cpp",
                                                R"cpp(
#include <chrono>
// hero-lint: allow(wall-clock)
auto t = std::chrono::steady_clock::now();
)cpp"}});
  EXPECT_EQ(count_rule(report.findings, "stale-suppression"), 0);
  EXPECT_EQ(count_rule(report.suppressed, "wall-clock"), 1);
}

TEST(StaleTest, ProseMentionOfSyntaxIsNotASite) {
  // Docs quoting the `hero-lint: allow(...)` syntax mid-sentence are not
  // suppression sites, so they can never rot.
  const herolint::LintReport report = analyze(
      {{"src/common/x.cpp",
        "// Suppress with a `hero-lint: allow(wall-clock)` comment.\n"}});
  EXPECT_EQ(count_rule(report.findings, "stale-suppression"), 0);
}

TEST(FixtureTest, PlantedCrossTuWallClockFlipsTheGate) {
  const std::string dir = LINT_FIXTURE_DIR;
  const FileSet files = {
      {dir + "/entry_dispatch.cpp", slurp(dir + "/entry_dispatch.cpp")},
      {dir + "/helper_sink.hpp", slurp(dir + "/helper_sink.hpp")},
      {dir + "/helper_sink.cpp", slurp(dir + "/helper_sink.cpp")},
  };
  const herolint::LintReport report = analyze(files);
  // The gate (findings non-empty => exit 1) must flip...
  ASSERT_FALSE(report.findings.empty());
  // ...specifically on the transitive rule: the direct wall-clock is
  // allowed in the fixture, and that allow is used (not stale).
  ASSERT_EQ(count_rule(report.findings, "transitive-wall-clock"), 1);
  EXPECT_EQ(count_rule(report.findings, "wall-clock"), 0);
  EXPECT_EQ(count_rule(report.findings, "stale-suppression"), 0);
  EXPECT_EQ(count_rule(report.suppressed, "wall-clock"), 1);
  const Finding& f = report.findings[0];
  EXPECT_NE(f.message.find("ClusterSim::step"), std::string::npos);
  EXPECT_NE(f.message.find("-> helper_tick"), std::string::npos);
}

TEST(DotTest, GraphDumpsCoverEntriesSinksAndIncludeEdges) {
  herolint::ProjectIndex index = make_index({
      {"src/core/sim.cpp",
       "#include \"h.hpp\"\n"
       "struct Simulator {\n"
       "  void run_until() { helper_tick(); }\n"
       "};\n"},
      {"src/core/h.hpp",
       "#include <chrono>\n"
       "inline double helper_tick() {\n"
       "  return static_cast<double>(\n"
       "      std::chrono::steady_clock::now().time_since_epoch().count());\n"
       "}\n"},
  });
  const std::string calls = herolint::callgraph_dot(index);
  EXPECT_NE(calls.find("digraph herolint_calls"), std::string::npos);
  EXPECT_NE(calls.find("Simulator::run_until"), std::string::npos);
  EXPECT_NE(calls.find("shape=box"), std::string::npos);   // entry
  EXPECT_NE(calls.find("color=red"), std::string::npos);   // sink
  EXPECT_NE(calls.find(" -> "), std::string::npos);

  const std::string incs = herolint::include_dot(index);
  EXPECT_NE(incs.find("digraph herolint_includes"), std::string::npos);
  EXPECT_NE(incs.find("src/core/h.hpp"), std::string::npos);
  EXPECT_NE(incs.find(" -> "), std::string::npos);
}

}  // namespace
