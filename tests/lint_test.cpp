// Tests for the hero-lint rule engine (tools/lint/lint_core).
//
// Fixtures are in-memory source snippets run through lint_source(), so
// the tests exercise exactly what the CLI exercises without touching the
// filesystem or a binary path.
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using herolint::FileContext;
using herolint::Finding;

std::vector<Finding> lint(const std::string& src, bool library = true,
                          bool rng_module = false) {
  FileContext ctx;
  ctx.library = library;
  ctx.rng_module = rng_module;
  return herolint::lint_source("fixture.cpp", src, ctx);
}

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintTest, CleanFileHasNoFindings) {
  const std::string src = R"cpp(
#include <map>
#include <vector>

struct Stats {
  double mean = 0.0;
  int samples = 0;
};

double total(const std::map<int, double>& m) {
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}
)cpp";
  EXPECT_TRUE(lint(src).empty());
}

TEST(LintTest, RangeForOverUnorderedContainerFires) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "unordered-iter"), 1);
  EXPECT_EQ(fs[0].line, 6);
}

TEST(LintTest, BeginEndOverUnorderedContainerFires) {
  const std::string src = R"cpp(
#include <unordered_set>
std::unordered_set<int> seen;
void drain(std::vector<int>& out) {
  out.assign(seen.begin(), seen.end());
}
)cpp";
  EXPECT_GE(count_rule(lint(src), "unordered-iter"), 1);
}

TEST(LintTest, FindEndSentinelComparisonDoesNotFire) {
  // `it == c.end()` after find() is a membership test, not a traversal.
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, int> cache;
bool hit(int k) {
  auto it = cache.find(k);
  if (it == cache.end()) return false;
  return it != cache.end();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unordered-iter"), 0);
}

TEST(LintTest, OrderedContainerIterationDoesNotFire) {
  const std::string src = R"cpp(
#include <map>
std::map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unordered-iter"), 0);
}

TEST(LintTest, WallClockSourcesFire) {
  const std::string src = R"cpp(
#include <chrono>
double now_s() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "wall-clock"), 1);
}

TEST(LintTest, AmbientRngFires) {
  const std::string src = R"cpp(
#include <random>
int roll() {
  static std::mt19937 gen{std::random_device{}()};
  return static_cast<int>(gen());
}
)cpp";
  EXPECT_GE(count_rule(lint(src), "ambient-rng"), 2);
}

TEST(LintTest, RngModuleIsExemptFromAmbientRng) {
  const std::string src = R"cpp(
#include <random>
std::mt19937 make_engine(unsigned seed) { return std::mt19937{seed}; }
)cpp";
  EXPECT_EQ(count_rule(lint(src, /*library=*/true, /*rng_module=*/true),
                       "ambient-rng"),
            0);
  EXPECT_GE(count_rule(lint(src), "ambient-rng"), 1);
}

TEST(LintTest, FloatEqualityFires) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
bool pending(double x) { return 0.5 != x; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 2);
}

TEST(LintTest, EpsilonComparisonDoesNotFire) {
  const std::string src = R"cpp(
bool near_one(double x) { return x >= 1.0 - 1e-9 && x <= 1.0 + 1e-9; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 0);
}

TEST(LintTest, IostreamOnlyFlaggedInLibraryCode) {
  const std::string src = R"cpp(
#include <iostream>
void hello() {}
)cpp";
  EXPECT_EQ(count_rule(lint(src, /*library=*/true), "iostream"), 1);
  EXPECT_EQ(count_rule(lint(src, /*library=*/false), "iostream"), 0);
}

TEST(LintTest, UninitStructMemberFires) {
  const std::string src = R"cpp(
struct Event {
  double at;
  int id;
  bool cancelled = false;
};
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "uninit-member"), 2);
}

TEST(LintTest, ClassAndEnumMembersAreNotFlagged) {
  // Classes establish invariants in constructors; enum class bodies are
  // not aggregates at all.
  const std::string src = R"cpp(
class Engine {
 public:
  explicit Engine(int n);
 private:
  double rate_;
  int count_;
};
enum class Scheme {
  kRing,
  kInaSync
};
)cpp";
  EXPECT_EQ(count_rule(lint(src), "uninit-member"), 0);
}

TEST(LintTest, TokensInCommentsAndStringsAreMasked) {
  const std::string src = R"cpp(
// steady_clock would be nondeterministic; rand() too.
/* for (auto& x : some_unordered) {} */
const char* kDoc = "uses std::mt19937 and x == 1.0 internally";
)cpp";
  EXPECT_TRUE(lint(src).empty());
}

TEST(LintTest, AllowSuppressesOnSameAndPreviousLine) {
  const std::string same = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
)cpp";
  EXPECT_TRUE(lint(same).empty());

  const std::string prev = R"cpp(
#include <chrono>
// hero-lint: allow(wall-clock)
auto t = std::chrono::steady_clock::now();
)cpp";
  EXPECT_TRUE(lint(prev).empty());
}

TEST(LintTest, AllowOfOtherRuleDoesNotSuppress) {
  const std::string src = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(ambient-rng)
)cpp";
  EXPECT_EQ(count_rule(lint(src), "wall-clock"), 1);
}

TEST(LintTest, AllowFileSuppressesRuleFileWide) {
  const std::string src = R"cpp(
// hero-lint: allow-file(float-equal)
bool a(double x) { return x == 1.0; }
bool b(double x) { return x != 2.0; }
)cpp";
  EXPECT_EQ(count_rule(lint(src), "float-equal"), 0);
}

TEST(LintTest, ClassifyPathMatchesRepoConventions) {
  EXPECT_TRUE(herolint::classify_path("src/netsim/flownet.cpp").library);
  EXPECT_TRUE(herolint::classify_path("/root/repo/src/online/policy.cpp")
                  .library);
  EXPECT_FALSE(herolint::classify_path("tests/flownet_test.cpp").library);
  EXPECT_FALSE(herolint::classify_path("examples/quickstart.cpp").library);
  EXPECT_TRUE(herolint::classify_path("src/common/rng.hpp").rng_module);
  EXPECT_FALSE(herolint::classify_path("src/common/format.hpp").rng_module);
}

TEST(LintTest, RuleIdsAreStableAndSorted) {
  const auto& ids = herolint::rule_ids();
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (const std::string& id : ids) {
    EXPECT_FALSE(herolint::rule_summary(id).empty()) << id;
  }
  EXPECT_TRUE(herolint::rule_summary("no-such-rule").empty());
}

// --- v2 flow rules ----------------------------------------------------

TEST(LintTest, RawUnitLiteralFiresOnConversionFactorShapedInit) {
  const std::string src = R"cpp(
#include "common/units.hpp"
void f() {
  hero::Bandwidth bw = 12.5e9;
  hero::Bytes chunk = 4096.0;
}
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "raw-unit-literal"), 2);
}

TEST(LintTest, RawUnitLiteralAcceptsUnitsSpellingAndHumanScale) {
  const std::string src = R"cpp(
#include "common/units.hpp"
void f() {
  hero::Bandwidth bw = 100.0 * units::Gbps;
  hero::Time sla = 2.5;
  hero::Time zero = 0.0;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 0);
}

TEST(LintTest, RawUnitLiteralFiresOnAssignmentToo) {
  const std::string src = R"cpp(
void f() {
  Time deadline = 0.0;
  deadline = 3600.0;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 1);
}

TEST(LintTest, RawUnitLiteralIgnoresNonUnitTypes) {
  const std::string src = R"cpp(
void f() {
  double scale = 1e9;
  std::size_t tokens = 16384;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "raw-unit-literal"), 0);
}

TEST(LintTest, MixedDimensionArithFires) {
  const std::string src = R"cpp(
void f(Bytes chunk, Time overhead) {
  auto nonsense = chunk + overhead;
}
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "mixed-dimension-arith"), 1);
}

TEST(LintTest, MixedDimensionCompoundAssignFires) {
  const std::string src = R"cpp(
void f(Time total, Bytes data) {
  total += data;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 1);
}

TEST(LintTest, SameDimensionArithDoesNotFire) {
  const std::string src = R"cpp(
void f(Time a, Time b) {
  Time total = a + b;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, MixedDimensionSkipsMultiplicativeTerms) {
  // `chunk / bottleneck + overhead` is (Bytes/Bandwidth) + Time ==
  // Time + Time: the ident left of `+` carries the whole term's
  // dimension, not its own.
  const std::string src = R"cpp(
Time latency(Bytes chunk, Bandwidth bottleneck, Time overhead) {
  double steps = 4.0;
  return steps * (chunk / bottleneck + overhead);
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, MixedDimensionSkipsMemberAccess) {
  const std::string src = R"cpp(
void f(Stats s, Bytes chunk) {
  auto x = s.chunk + chunk;
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "mixed-dimension-arith"), 0);
}

TEST(LintTest, UnconsumedEstimateFires) {
  const std::string src = R"cpp(
void f(Oracle& oracle, Sim& sim) {
  oracle.estimate_path(src, dst, bytes);
  sim.load();
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unconsumed-estimate"), 2);
}

TEST(LintTest, ConsumedEstimateDoesNotFire) {
  const std::string src = R"cpp(
void f(Oracle& oracle, Sim& sim) {
  Time t = oracle.estimate_path(src, dst, bytes);
  auto snap = sim.load();
  if (oracle.estimate_path(src, dst, bytes) > t) return;
  use(sim.load());
}
)cpp";
  EXPECT_EQ(count_rule(lint(src), "unconsumed-estimate"), 0);
}

TEST(LintTest, UnorderedIterToOutputFires) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
void dump(Tracer& tracer) {
  for (const auto& [id, r] : rates) {
    tracer.instant("rate", id);
  }
}
)cpp";
  const auto fs = lint(src);
  // The plain unordered-iter rule also fires; the output-flavored rule
  // adds the higher-severity byte-identity diagnosis.
  EXPECT_EQ(count_rule(fs, "unordered-iter-to-output"), 1);
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(LintTest, UnorderedIterWithoutSinkIsNotOutputFlavored) {
  const std::string src = R"cpp(
#include <unordered_map>
std::unordered_map<int, double> rates;
double sum() {
  double s = 0.0;
  for (const auto& [id, r] : rates) s += r;
  return s;
}
)cpp";
  const auto fs = lint(src);
  EXPECT_EQ(count_rule(fs, "unordered-iter-to-output"), 0);
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1);
}

TEST(LintTest, SuppressedFindingsLandInReport) {
  const std::string src = R"cpp(
#include <chrono>
auto t = std::chrono::steady_clock::now();  // hero-lint: allow(wall-clock)
bool done(double x) { return x == 1.0; }
)cpp";
  FileContext ctx;
  ctx.library = true;
  const herolint::LintReport report =
      herolint::lint_source_report("fixture.cpp", src, ctx);
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].rule, "wall-clock");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "float-equal");
}

TEST(LintTest, SarifReportIsWellFormed) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 1u);
  const std::string sarif = herolint::to_sarif(fs);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"float-equal\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
  EXPECT_NE(sarif.find("fixture.cpp"), std::string::npos);
  // The driver rules table documents every rule id.
  for (const std::string& id : herolint::rule_ids()) {
    EXPECT_NE(sarif.find("\"id\": \"" + id + "\""), std::string::npos) << id;
  }
}

TEST(LintTest, SarifEmptyFindingsIsStillARun) {
  const std::string sarif = herolint::to_sarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(LintTest, JsonReportContainsFindings) {
  const std::string src = R"cpp(
bool done(double x) { return x == 1.0; }
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 1u);
  const std::string json = herolint::to_json(fs);
  EXPECT_NE(json.find("\"fixture.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"float-equal\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
}

TEST(LintTest, FindingsSortedByLine) {
  const std::string src = R"cpp(
#include <chrono>
bool done(double x) { return x == 1.0; }
auto t = std::chrono::steady_clock::now();
)cpp";
  const auto fs = lint(src);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_LT(fs[0].line, fs[1].line);
  EXPECT_EQ(fs[0].rule, "float-equal");
  EXPECT_EQ(fs[1].rule, "wall-clock");
}

}  // namespace
