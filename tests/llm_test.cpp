// Tests for model configurations and the Table-I data-volume arithmetic.
#include <gtest/gtest.h>

#include "llm/model.hpp"

namespace hero::llm {
namespace {

TEST(ModelConfig, Opt66bParameterCount) {
  const ModelConfig m = opt_66b();
  // ~66B parameters at FP16 => ~132 GB of weights.
  EXPECT_NEAR(raw(m.param_bytes() / 2.0), raw(66e9), 3e9);
  EXPECT_EQ(m.layers, 64u);
  EXPECT_EQ(m.hidden, 9216u);
  EXPECT_EQ(m.heads, 72u);
}

TEST(ModelConfig, Opt175bParameterCount) {
  const ModelConfig m = opt_175b();
  EXPECT_NEAR(raw(m.param_bytes() / 2.0), raw(175e9), 8e9);
}

TEST(ModelConfig, Llama70bParameterCount) {
  const ModelConfig m = llama3_70b();
  // The generic dense-transformer formula counts ~60B for LLaMA-3-70B's
  // shape (the real model's 70.6B includes GQA-specific and norm weights
  // the Table-I model does not track); what matters here is the order of
  // magnitude used for memory planning.
  EXPECT_NEAR(raw(m.param_bytes() / 2.0), raw(60e9), 5e9);
  EXPECT_EQ(m.ffn, 28672u);
}

TEST(ModelConfig, Opt13bParameterCount) {
  EXPECT_NEAR(raw(opt_13b().param_bytes() / 2.0), raw(13e9), 1e9);
}

TEST(ModelConfig, KvBytesPerToken) {
  const ModelConfig m = opt_66b();
  // 2 (K and V) * L * h * 2 bytes.
  EXPECT_DOUBLE_EQ(raw(m.kv_bytes_per_token()), raw(2.0 * 64 * 9216 * 2.0));
}

TEST(ModelConfig, SyncVolumeIsKinTimesHidden) {
  const ModelConfig m = opt_66b();
  // D_col(a) = D_col(f) = K_in * h elements, FP16.
  EXPECT_DOUBLE_EQ(raw(m.sync_volume_per_step(1000)), raw(1000.0 * 9216 * 2.0));
}

TEST(ModelConfig, IterationSyncVolumeTwoStepsPerLayer) {
  const ModelConfig m = opt_66b();
  EXPECT_DOUBLE_EQ(raw(m.iteration_sync_volume(1000, 8)),
                   raw(2.0 * 8 * m.sync_volume_per_step(1000)));
}

TEST(ModelConfig, KvTransferShardsByTensorWidth) {
  const ModelConfig m = opt_66b();
  EXPECT_DOUBLE_EQ(raw(m.kv_transfer_bytes_per_gpu(512, 4)),
                   raw(m.kv_bytes_per_token() * 512 / 4.0));
  // p_tens = 0 treated as 1.
  EXPECT_DOUBLE_EQ(raw(m.kv_transfer_bytes_per_gpu(512, 0)),
                   raw(m.kv_bytes_per_token() * 512));
}

TEST(ModelConfig, LargerModelsCostMore) {
  EXPECT_GT(opt_175b().param_bytes(), opt_66b().param_bytes());
  EXPECT_GT(opt_175b().kv_bytes_per_token(), opt_66b().kv_bytes_per_token());
  EXPECT_GT(opt_66b().param_bytes(), opt_13b().param_bytes());
}

}  // namespace
}  // namespace hero::llm
