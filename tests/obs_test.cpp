// Tests for the observability subsystem: span bookkeeping, Chrome
// trace-event JSON schema, metrics determinism across identical seeded
// runs, and the ServingReport-vs-tracer cross-check.
#include <gtest/gtest.h>

#include <memory>

#include "core/heroserve.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace hero::obs {
namespace {

TEST(EventTracer, SpansNestAndBalancePerTrack) {
  EventTracer tr;
  const TrackId prefill = tr.track("prefill");
  const TrackId decode = tr.track("decode");
  EXPECT_NE(prefill, decode);
  EXPECT_EQ(tr.track("prefill"), prefill);  // find-or-create is idempotent

  tr.begin_span(0.0, prefill, "prefill", "batch");
  tr.begin_span(0.1, prefill, "prefill", "stage0");
  EXPECT_EQ(tr.open_spans(prefill), 2u);
  EXPECT_EQ(tr.open_spans(decode), 0u);
  tr.end_span(0.2, prefill);
  tr.end_span(0.3, prefill);
  EXPECT_EQ(tr.open_spans(prefill), 0u);

  // Events come out in recording order with matched B/E phases.
  ASSERT_EQ(tr.event_count(), 4u);
  const auto& ev = tr.events();
  EXPECT_EQ(ev[0].phase, Phase::kSpanBegin);
  EXPECT_EQ(ev[1].phase, Phase::kSpanBegin);
  EXPECT_EQ(ev[2].phase, Phase::kSpanEnd);
  EXPECT_EQ(ev[3].phase, Phase::kSpanEnd);
  EXPECT_EQ(ev[1].name, "stage0");
  EXPECT_LE(ev[0].time, ev[1].time);
}

TEST(EventTracer, CountsByCategoryAndPhase) {
  EventTracer tr;
  const std::uint64_t a = tr.next_async_id();
  const std::uint64_t b = tr.next_async_id();
  EXPECT_NE(a, b);
  tr.async_begin(1.0, a, "collective", "ring");
  tr.async_begin(1.5, b, "collective", "ina");
  tr.async_end(2.0, a, "collective", "ring");
  tr.instant(2.5, 0, "ina_fallback", "switch-reject->host-ps");
  EXPECT_EQ(tr.count("collective", Phase::kAsyncBegin), 2u);
  EXPECT_EQ(tr.count("collective", Phase::kAsyncEnd), 1u);
  EXPECT_EQ(tr.count("ina_fallback", Phase::kInstant), 1u);
  EXPECT_EQ(tr.count("nope", Phase::kInstant), 0u);
}

TEST(EventTracer, ChromeTraceJsonSchema) {
  EventTracer tr;
  const TrackId t = tr.track("prefill");
  tr.begin_span(0.001, t, "prefill", "batch",
                {arg("requests", std::size_t{3}), arg("note", "a\"b")});
  tr.end_span(0.002, t);
  tr.async_begin(0.001, 7, "net.flow", "w0g0->sw0");
  tr.async_end(0.003, 7, "net.flow", "w0g0->sw0");
  tr.instant(0.002, t, "controller", "tick");
  tr.counter(0.004, "coll.inflight", 2.0);
  const std::string json = tr.chrome_trace_json();

  // Golden schema fragments: envelope, metadata thread names, phases,
  // microsecond timestamps, async correlation ids, instant scope, escaping.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"prefill\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);  // 1 ms -> us
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\":3"), std::string::npos);  // numeric arg
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);          // escaped quote
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.rfind("]}\n"), json.size() - 3);  // closed envelope
}

TEST(Metrics, GaugeTracksTimeWeightedStats) {
  Gauge g;
  g.set(0.0, 1.0);
  g.set(1.0, 3.0);
  g.set(3.0, 0.0);
  EXPECT_DOUBLE_EQ(g.current(), 0.0);
  EXPECT_DOUBLE_EQ(g.peak(), 3.0);
  // 1.0 for 1s, then 3.0 for 2s => average 7/3 over 3s.
  EXPECT_NEAR(g.average(), 7.0 / 3.0, 1e-12);
  EXPECT_EQ(g.timeline().size(), 3u);
}

TEST(Metrics, SnapshotIsSortedAndStable) {
  MetricsRegistry m;
  m.counter("z.last").add(2);
  m.counter("a.first").add(1);
  m.gauge("mid").set(0.0, 5.0);
  const MetricsSnapshot snap = m.snapshot(1.0);
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "mid");
  EXPECT_FALSE(snap.to_string().empty());
}

/// A ready-to-serve HeroServe deployment on the testbed with observability
/// attached (mirrors serving_test's fixture).
struct ObsServeFixture {
  topo::Graph graph = topo::make_testbed();
  llm::ModelConfig model = llm::opt_66b();
  planner::PlanResult plan;
  sim::Simulator simulator;
  EventTracer tracer;
  MetricsRegistry metrics;
  std::unique_ptr<net::FlowNetwork> network;
  std::unique_ptr<sw::SwitchRegistry> switches;
  std::unique_ptr<coll::CollectiveEngine> engine;
  std::unique_ptr<coll::CommScheduler> scheduler;

  ObsServeFixture() {
    planner::PlannerInputs in;
    in.graph = &graph;
    in.model = model;
    in.latency = &fitted_model(model);
    in.batch_q = 8;
    in.k_in = 2000;
    in.k_in2 = 600000;
    in.k_out = 1200;
    in.arrival_rate = 1.0;
    in.t_sla_prefill = 2.5;
    in.t_sla_decode = 0.15;
    in.heterogeneous = true;
    plan = planner::OfflinePlanner(in).plan();
    EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;

    simulator.attach(obs::Sink(&tracer, &metrics));
    network = std::make_unique<net::FlowNetwork>(simulator, graph);
    switches = std::make_unique<sw::SwitchRegistry>(simulator, graph);
    engine = std::make_unique<coll::CollectiveEngine>(*network, *switches);
    scheduler = std::make_unique<online::HeroCommScheduler>(*network);
  }

  serve::ServingReport run(double rate, std::size_t count) {
    serve::ServingOptions opts;
    opts.model = model;
    wl::TraceOptions w;
    w.rate = rate;
    w.count = count;
    w.lengths = wl::sharegpt_lengths();
    w.seed = 3;
    serve::ClusterSim sim(*network, *engine, *scheduler, plan, opts);
    scheduler->start();
    return sim.run(wl::generate_trace(w));
  }
};

TEST(ObsServing, ReportCrossChecksAgainstTracer) {
  ObsServeFixture f;
  const serve::ServingReport report = f.run(0.5, 10);
  EXPECT_EQ(report.completed, 10u);
  ASSERT_TRUE(report.trace_checked);
  EXPECT_TRUE(report.trace_consistent);
  EXPECT_GT(report.collectives, 0u);
  EXPECT_EQ(report.trace_collectives, report.collectives);
  EXPECT_EQ(report.trace_ina_fallbacks, report.ina_fallbacks);

  // The tentpole's span inventory: request lifecycles, prefill batches,
  // decode iterations, KV transfers, net flows, policy decisions, ticks.
  EXPECT_EQ(f.tracer.count("request", Phase::kAsyncEnd), 10u);
  EXPECT_GT(f.tracer.count("prefill", Phase::kSpanBegin), 0u);
  EXPECT_GT(f.tracer.count("decode", Phase::kSpanBegin), 0u);
  EXPECT_GT(f.tracer.count("kv", Phase::kAsyncEnd), 0u);
  EXPECT_GT(f.tracer.count("net.flow", Phase::kAsyncEnd), 0u);
  EXPECT_EQ(f.tracer.count("policy_decision", Phase::kInstant),
            report.collectives);
  EXPECT_GT(f.tracer.count("controller", Phase::kInstant), 0u);

  // Every nested span closed once the run drained.
  EXPECT_EQ(f.tracer.open_spans(f.tracer.track("prefill")), 0u);
  EXPECT_EQ(f.tracer.open_spans(f.tracer.track("decode")), 0u);

  // The metrics side sees the same counts as the tracer and the engine.
  const Counter* ops = f.metrics.find_counter("coll.ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->value(), report.collectives);
  EXPECT_NE(f.metrics.find_gauge("serve.kv_utilization"), nullptr);
  EXPECT_NE(f.metrics.find_counter("serve.arrivals"), nullptr);
}

TEST(ObsServing, IdenticalSeededRunsProduceIdenticalSnapshots) {
  auto run_once = [] {
    ObsServeFixture f;
    const serve::ServingReport report = f.run(0.8, 12);
    EXPECT_GT(report.completed, 0u);
    return std::make_pair(f.metrics.snapshot(0.0).to_string(),
                          f.tracer.chrome_trace_json());
  };
  const auto [metrics_a, trace_a] = run_once();
  const auto [metrics_b, trace_b] = run_once();
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
}

TEST(ObsServing, ExperimentConfigWiresTracerThrough) {
  ExperimentConfig cfg;
  cfg.topology = topo::make_testbed();
  cfg.serving.model = llm::opt_66b();
  cfg.workload.rate = 0.5;
  cfg.workload.count = 6;
  cfg.workload.lengths = wl::sharegpt_lengths();
  cfg.workload.seed = 5;

  EventTracer tracer;
  MetricsRegistry metrics;
  cfg.sink = Sink(&tracer, &metrics);
  const ExperimentResult r = run_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.report.trace_checked);
  EXPECT_TRUE(r.report.trace_consistent);
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_GT(metrics.size(), 0u);

  // Null sink = tracing off; the same experiment records nothing.
  cfg.sink = Sink();
  const ExperimentResult quiet = run_experiment(SystemKind::kHeroServe, cfg);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(quiet.report.trace_checked);
  EXPECT_EQ(quiet.report.collectives, r.report.collectives);
}

}  // namespace
}  // namespace hero::obs
