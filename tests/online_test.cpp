// Tests for the load-aware online scheduler: policy cost tables (Eq. 16),
// cost propagation (Eq. 17), the sharing-ratio penalty (Eq. 18), policy
// building, and the controller loop.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "online/scheduler.hpp"
#include "topology/builders.hpp"

namespace hero::online {
namespace {

using topo::NodeId;

/// Two policies over a diamond: left route and right route, optionally
/// overlapping on a shared trunk edge.
struct TableFixture {
  topo::Graph graph;
  std::vector<Policy> policies;

  TableFixture() {
    const NodeId a = graph.add_gpu("a", topo::GpuModel::kA100_40,
                                   40 * units::GB, 0);
    const NodeId s0 = graph.add_switch("s0", topo::NodeKind::kAccessSwitch,
                                       64);
    const NodeId s1 = graph.add_switch("s1", topo::NodeKind::kAccessSwitch,
                                       64);
    const NodeId b = graph.add_gpu("b", topo::GpuModel::kA100_40,
                                   40 * units::GB, 1);
    graph.add_edge(a, s0, topo::LinkKind::kEthernet, 100 * units::Gbps);
    graph.add_edge(s0, b, topo::LinkKind::kEthernet, 100 * units::Gbps);
    graph.add_edge(a, s1, topo::LinkKind::kEthernet, 50 * units::Gbps);
    graph.add_edge(s1, b, topo::LinkKind::kEthernet, 50 * units::Gbps);

    Policy left;
    left.name = "left";
    left.edges = {0, 1};
    Policy right;
    right.name = "right";
    right.edges = {2, 3};
    policies = {left, right};
  }
};

TEST(PolicyTable, SelectsLowestCost) {
  TableFixture f;
  f.policies[0].cost = 0.5;
  f.policies[1].cost = 0.1;
  PolicyTable table(std::move(f.policies), f.graph);
  EXPECT_EQ(table.select(0.0, OnlineConfig{}), 1u);
}

TEST(PolicyTable, DeltaPrefersHigherCapacityAtEqualCost) {
  // Equal b_c: the 100G route has the smaller delta for the same payload.
  TableFixture f;
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  EXPECT_EQ(table.select(8.0 * units::MB, cfg), 0u);
  EXPECT_LT(table.cost_of(0, 8.0 * units::MB, cfg),
            table.cost_of(1, 8.0 * units::MB, cfg));
}

TEST(PolicyTable, Eq16DeltaCapacityModel) {
  TableFixture f;
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.estimation_window = 0.1;
  // delta = D / (T_u * bottleneck) = 12.5MB / (0.1s * 12.5 GB/s) = 0.01.
  EXPECT_NEAR(table.cost_of(0, 12.5 * units::MB, cfg), 0.01, 1e-12);
}

TEST(PolicyTable, Eq16PaperLiteralModel) {
  TableFixture f;
  f.policies[0].cost = 0.2;
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.delta_model = DeltaModel::kPaperLiteral;
  cfg.estimation_window = 1.0;
  // J = b + D/(T_u * b) = 0.2 + 100/(1.0*0.2) = 500.2 (literal units).
  EXPECT_NEAR(table.cost_of(0, 100.0, cfg), 500.2, 1e-9);
}

TEST(PolicyTable, PaperLiteralFloorsCost) {
  TableFixture f;
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.delta_model = DeltaModel::kPaperLiteral;
  cfg.cost_floor = 1e-3;
  // b_c = 0 must not divide by zero.
  const double j = table.cost_of(0, 1.0, cfg);
  EXPECT_TRUE(std::isfinite(j));
}

TEST(PolicyTable, Eq17SelectedGetsDelta) {
  TableFixture f;
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.estimation_window = 0.1;
  table.apply_selection(0, 12.5 * units::MB, cfg);
  EXPECT_NEAR(table.policy(0).cost, 0.01, 1e-12);
  // Disjoint edges: zero penalty -> unselected cost unchanged.
  EXPECT_NEAR(table.policy(1).cost, 0.0, 1e-12);
  EXPECT_EQ(table.policy(0).times_selected, 1u);
}

TEST(PolicyTable, Eq17PenaltyPropagatesToSharingPolicies) {
  // Both policies share edge 0.
  TableFixture f;
  f.policies[1].edges = {0, 3};
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.gamma = 1.0;  // adopt sharing ratio immediately
  table.update_penalties(nullptr, cfg);
  // W(0 -> 1) = B(e0) / (B(e0) + B(e3)) = 100 / 150.
  EXPECT_NEAR(table.penalty(0, 1), 100.0 / 150.0, 1e-9);
  table.apply_selection(0, 12.5 * units::MB, cfg);
  EXPECT_NEAR(table.policy(1).cost, 0.01 * 100.0 / 150.0, 1e-9);
}

TEST(PolicyTable, Eq18GammaSmoothing) {
  TableFixture f;
  f.policies[1].edges = {0, 3};  // overlap
  PolicyTable table(std::move(f.policies), f.graph);
  OnlineConfig cfg;
  cfg.gamma = 0.5;
  // Construction already ran one full-gamma update... capture current, then
  // smooth toward the same ratio: value converges to W.
  const double before = table.penalty(0, 1);
  table.update_penalties(nullptr, cfg);
  const double after = table.penalty(0, 1);
  const double w = 100.0 / 150.0;
  EXPECT_NEAR(after, before + 0.5 * (w - before), 1e-9);
}

TEST(PolicyTable, SelfPenaltyIsOne) {
  TableFixture f;
  PolicyTable table(std::move(f.policies), f.graph);
  EXPECT_DOUBLE_EQ(table.penalty(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.penalty(1, 1), 1.0);
}

TEST(PolicyTable, EmptyPolicySetThrows) {
  TableFixture f;
  EXPECT_THROW(PolicyTable({}, f.graph), std::invalid_argument);
}

TEST(PolicyTable, SyncCostsFromNetworkUsesMeasuredUtilization) {
  TableFixture f;
  sim::Simulator simulator;
  net::FlowNetwork network(simulator, f.graph);
  PolicyTable table(std::move(f.policies), f.graph);

  // Saturate the left route.
  auto p = topo::shortest_path(f.graph, f.graph.find("a"),
                               f.graph.find("b"));
  ASSERT_TRUE(p.has_value());
  network.start_transfer(*p, 100.0 * units::MB, {});
  simulator.run_until(10.0 * units::us);
  table.sync_costs_from_network(network);
  EXPECT_GT(table.policy(0).cost, 0.9);
  EXPECT_NEAR(table.policy(1).cost, 0.0, 1e-9);
}

// --- policy building ---

TEST(BuildPolicies, HeroGetsHierarchicalInaAndRing) {
  const topo::Graph g = topo::make_testbed();
  const auto by_server = g.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());

  PolicyBuildOptions opts;
  opts.switch_candidates = 2;
  const auto policies = build_policies(g, members, opts);
  ASSERT_EQ(policies.size(), 3u);  // 2 INA switches + hier-ring
  int ina = 0, ring = 0;
  for (const Policy& p : policies) {
    EXPECT_FALSE(p.plan.local_groups.empty());  // hierarchical
    if (p.plan.scheme == coll::Scheme::kRing) {
      ++ring;
    } else {
      ++ina;
      EXPECT_NE(p.plan.switch_node, topo::kInvalidNode);
    }
  }
  EXPECT_EQ(ina, 2);
  EXPECT_EQ(ring, 1);
}

TEST(BuildPolicies, HomogeneousIsFlatEthernet) {
  const topo::Graph g = topo::make_testbed();
  PolicyBuildOptions opts;
  opts.heterogeneous = false;
  opts.include_ina = false;
  const auto gpus = g.gpus();
  const auto policies =
      build_policies(g, {gpus[0], gpus[1], gpus[4]}, opts);
  ASSERT_EQ(policies.size(), 1u);
  EXPECT_TRUE(policies[0].plan.local_groups.empty());
  EXPECT_EQ(policies[0].plan.scheme, coll::Scheme::kRing);
  for (topo::EdgeId e : policies[0].edges) {
    EXPECT_EQ(g.edge(e).kind, topo::LinkKind::kEthernet);
  }
}

TEST(BuildPolicies, EmptyGroupThrows) {
  const topo::Graph g = topo::make_testbed();
  EXPECT_THROW(build_policies(g, {}, {}), std::invalid_argument);
}

// --- scheduler ---

struct SchedFixture {
  topo::Graph graph = topo::make_testbed();
  sim::Simulator simulator;
  net::FlowNetwork network{simulator, graph};
};

TEST(OnlineScheduler, PlanStampsBytesAndUpdatesCosts) {
  SchedFixture f;
  OnlineScheduler sched(f.network);
  const auto by_server = f.graph.gpus_by_server();
  const GroupId gid = sched.register_group(
      "g", build_policies(f.graph, by_server[0], {}));
  const coll::AllReducePlan plan = sched.plan_all_reduce(gid, 4 * units::MB);
  EXPECT_DOUBLE_EQ(raw(plan.bytes), raw(4 * units::MB));
  std::uint64_t selections = 0;
  for (std::size_t i = 0; i < sched.table(gid).size(); ++i) {
    selections += sched.table(gid).policy(i).times_selected;
  }
  EXPECT_EQ(selections, 1u);
}

TEST(OnlineScheduler, RepeatedLoadRotatesAwayFromHotPolicy) {
  // Without controller recalibration, repeatedly charging one policy makes
  // an alternative cheaper eventually.
  SchedFixture f;
  OnlineScheduler sched(f.network);
  const auto by_server = f.graph.gpus_by_server();
  std::vector<NodeId> members;
  members.insert(members.end(), by_server[0].begin(), by_server[0].end());
  members.insert(members.end(), by_server[1].begin(), by_server[1].end());
  const GroupId gid = sched.register_group(
      "g", build_policies(f.graph, members, {}));
  std::set<std::string> used;
  for (int i = 0; i < 50; ++i) {
    (void)sched.plan_all_reduce(gid, 64 * units::MB);
    for (std::size_t p = 0; p < sched.table(gid).size(); ++p) {
      if (sched.table(gid).policy(p).times_selected > 0) {
        used.insert(sched.table(gid).policy(p).name);
      }
    }
  }
  EXPECT_GE(used.size(), 2u);
}

TEST(OnlineScheduler, ControllerTickRecalibratesCosts) {
  SchedFixture f;
  OnlineConfig cfg;
  cfg.sync_period = 10.0 * units::ms;
  OnlineScheduler sched(f.network, cfg);
  const auto by_server = f.graph.gpus_by_server();
  const GroupId gid = sched.register_group(
      "g", build_policies(f.graph, by_server[0], {}));
  // Inflate costs artificially; the controller resets them from (idle)
  // network measurements.
  sched.apply_cost_override(gid, 0, 99.0);
  sched.start();
  f.simulator.run_until(50.0 * units::ms);
  EXPECT_LT(sched.table(gid).policy(0).cost, 1.0);
}

TEST(OnlineScheduler, ControllerDelayDefersEq17) {
  SchedFixture f;
  OnlineConfig cfg;
  cfg.controller_delay = 5.0 * units::ms;
  OnlineScheduler sched(f.network, cfg);
  const auto by_server = f.graph.gpus_by_server();
  const GroupId gid = sched.register_group(
      "g", build_policies(f.graph, by_server[0], {}));
  (void)sched.plan_all_reduce(gid, 64 * units::MB);
  double cost_now = 0;
  for (std::size_t i = 0; i < sched.table(gid).size(); ++i) {
    cost_now += sched.table(gid).policy(i).cost;
  }
  EXPECT_DOUBLE_EQ(cost_now, 0.0);  // not yet applied
  f.simulator.run_until(10.0 * units::ms);
  double cost_later = 0;
  for (std::size_t i = 0; i < sched.table(gid).size(); ++i) {
    cost_later += sched.table(gid).policy(i).cost;
  }
  EXPECT_GT(cost_later, 0.0);
}

TEST(HeroCommScheduler, RegistersAndPlans) {
  SchedFixture f;
  HeroCommScheduler sched(f.network);
  const auto by_server = f.graph.gpus_by_server();
  const GroupId gid = sched.register_group(by_server[0]);
  const coll::AllReducePlan plan = sched.all_reduce_plan(gid, units::MB);
  EXPECT_DOUBLE_EQ(raw(plan.bytes), raw(units::MB));
  EXPECT_STREQ(sched.name(), "HeroServe");
}

TEST(HeroCommScheduler, UnicastPrefersUncongestedAlternate) {
  SchedFixture f;
  HeroCommScheduler sched(f.network);
  const auto gpus = f.graph.gpus();
  // Congest the default route, then ask for a path: the chosen route's
  // bottleneck must be the best available.
  const topo::Path base = sched.unicast_path(gpus[0], gpus[4]);
  f.network.start_transfer(base, 1.0 * units::GB, {});
  f.simulator.run_until(10.0 * units::us);
  const topo::Path rerouted = sched.unicast_path(gpus[0], gpus[4]);
  EXPECT_GT(f.network.estimate_path(rerouted).residual, 0.0);
  EXPECT_NE(rerouted.edges, base.edges);
}

}  // namespace
}  // namespace hero::online
