// Tests for shortest paths, routing constraints (the GPU-relay rule), path
// latency math — including the paper's Fig. 2 numbers — and the PathStore.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "topology/builders.hpp"
#include "topology/paths.hpp"

namespace hero::topo {
namespace {

Graph line_graph() {
  // gpu0 - sw0 - sw1 - gpu1, 100 Gbps everywhere, 1 us hops.
  Graph g;
  const NodeId g0 = g.add_gpu("g0", GpuModel::kA100_40, 1, 0);
  const NodeId s0 = g.add_switch("s0", NodeKind::kAccessSwitch);
  const NodeId s1 = g.add_switch("s1", NodeKind::kAccessSwitch);
  const NodeId g1 = g.add_gpu("g1", GpuModel::kA100_40, 1, 1);
  g.add_edge(g0, s0, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s0, s1, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s1, g1, LinkKind::kEthernet, 100 * units::Gbps);
  return g;
}

TEST(ShortestPath, FindsLine) {
  const Graph g = line_graph();
  const auto p = shortest_path(g, g.find("g0"), g.find("g1"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 3u);
  EXPECT_EQ(p->src(), g.find("g0"));
  EXPECT_EQ(p->dst(), g.find("g1"));
  EXPECT_EQ(p->nodes.size(), 4u);
}

TEST(ShortestPath, SameNodeIsEmptyPath) {
  const Graph g = line_graph();
  const auto p = shortest_path(g, g.find("g0"), g.find("g0"));
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(ShortestPath, StoreAndForwardLatency) {
  const Graph g = line_graph();
  const auto p = shortest_path(g, g.find("g0"), g.find("g1"));
  // 3 hops x (1MB / 12.5GB/s + 1us) = 3 x 81us.
  EXPECT_NEAR(raw(p->latency(g, 1.0 * units::MB)),
              raw(3 * 81.0 * units::us),
              1e-9);
}

TEST(ShortestPath, BottleneckBandwidth) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId s = g.add_switch("s", NodeKind::kAccessSwitch);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 1);
  g.add_edge(a, s, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s, b, LinkKind::kEthernet, 25 * units::Gbps);
  const auto p = shortest_path(g, a, b);
  EXPECT_DOUBLE_EQ(raw(p->bottleneck(g)), raw(25 * units::Gbps));
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 1);
  (void)b;
  g.add_gpu("c", GpuModel::kA100_40, 1, 2);
  EXPECT_FALSE(shortest_path(g, a, b).has_value());
}

TEST(ShortestPath, EthernetOnlyConstraintExcludesNvlink) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 0);
  g.add_edge(a, b, LinkKind::kNvLink, 600 * units::GBps);
  PathOptions opts;
  opts.constraints.allow_nvlink = false;
  EXPECT_FALSE(shortest_path(g, a, b, opts).has_value());
  EXPECT_TRUE(shortest_path(g, a, b).has_value());
}

TEST(ShortestPath, ServersNeverRelay) {
  // g0 - ps - g1 with Ethernet: unreachable because servers do not forward.
  Graph g;
  const NodeId g0 = g.add_gpu("g0", GpuModel::kA100_40, 1, 0);
  const NodeId ps = g.add_server("ps");
  const NodeId g1 = g.add_gpu("g1", GpuModel::kA100_40, 1, 1);
  g.add_edge(g0, ps, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(ps, g1, LinkKind::kEthernet, 100 * units::Gbps);
  EXPECT_FALSE(shortest_path(g, g0, g1).has_value());
  // But the server itself is reachable as an endpoint.
  EXPECT_TRUE(shortest_path(g, g0, ps).has_value());
}

TEST(ShortestPath, GpuRelayRequiresNvlinkSide) {
  // sw0 - gX - sw1 all Ethernet: gX must not relay switch-to-switch
  // traffic.
  Graph g;
  const NodeId s0 = g.add_switch("s0", NodeKind::kAccessSwitch);
  const NodeId gx = g.add_gpu("gx", GpuModel::kA100_40, 1, 0);
  const NodeId s1 = g.add_switch("s1", NodeKind::kAccessSwitch);
  const NodeId g0 = g.add_gpu("g0", GpuModel::kA100_40, 1, 1);
  const NodeId g1 = g.add_gpu("g1", GpuModel::kA100_40, 1, 2);
  g.add_edge(g0, s0, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s0, gx, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(gx, s1, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s1, g1, LinkKind::kEthernet, 100 * units::Gbps);
  EXPECT_FALSE(shortest_path(g, g0, g1).has_value());
}

TEST(ShortestPath, NvlinkForwardingAllowed) {
  // Fig. 2(b): GN1 -> (NVLink) GN2 -> S2 is a legal relay.
  const Graph g = make_fig2_example();
  const auto p = shortest_path(g, g.find("GN1"), g.find("S2"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_TRUE(p->uses_nvlink(g));
  EXPECT_EQ(p->nodes[1], g.find("GN2"));
}

TEST(Fig2, HomogeneousCollectionIs160us) {
  // Ethernet-only: GN1 must reach core S1 over two 100G hops -> ~160 us
  // for 1 MB (paper SII-C).
  const Graph g = make_fig2_example();
  PathOptions opts;
  opts.constraints.allow_nvlink = false;
  const auto p = shortest_path(g, g.find("GN1"), g.find("S1"), opts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_NEAR(raw(p->latency(g, 1.0 * units::MB)),
              raw(162.0 * units::us),
              raw(1.0 * units::us));
}

TEST(Fig2, HeterogeneousCollectionIs90us) {
  // NVLink forwarding reaches access switch S2 in one Ethernet hop:
  // ~43% lower than homogeneous (paper: ~90 us vs ~160 us).
  const Graph g = make_fig2_example();
  const auto p = shortest_path(g, g.find("GN1"), g.find("S2"));
  ASSERT_TRUE(p.has_value());
  const Time hetero = p->latency(g, 1.0 * units::MB);
  EXPECT_LT(hetero, 95.0 * units::us);
  EXPECT_GT(hetero, 80.0 * units::us);
}

TEST(NvlinkDirect, AllowsSingleHopNvlinkWithoutForwarding) {
  // allow_nvlink_direct: the direct intra-server edge works, but the
  // NVLink-forwarding detour of Fig. 2(b) stays forbidden.
  const Graph g = make_fig2_example();
  PathOptions opts;
  opts.constraints.allow_nvlink = false;
  opts.constraints.allow_nvlink_direct = true;
  // GN1 -> GN2: the direct NVLink edge.
  const auto direct = shortest_path(g, g.find("GN1"), g.find("GN2"), opts);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->hops(), 1u);
  EXPECT_TRUE(direct->uses_nvlink(g));
  // GN1 -> S2 must NOT go through GN2's NIC: 3 Ethernet hops instead of
  // the heterogeneous 2-hop NVLink detour.
  const auto to_s2 = shortest_path(g, g.find("GN1"), g.find("S2"), opts);
  ASSERT_TRUE(to_s2.has_value());
  EXPECT_FALSE(to_s2->uses_nvlink(g));
}

TEST(NvlinkDirect, PrefersCheaperOfDirectAndEthernet) {
  // When an Ethernet route is cheaper than NVLink (contrived tiny NVLink),
  // the direct override must not force the worse path.
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 0);
  const NodeId s = g.add_switch("s", NodeKind::kAccessSwitch);
  g.add_edge(a, b, LinkKind::kNvLink, 1 * units::Mbps, 0.0);  // terrible
  g.add_edge(a, s, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  g.add_edge(s, b, LinkKind::kEthernet, 100 * units::Gbps, 0.0);
  PathOptions opts;
  opts.constraints.allow_nvlink = false;
  opts.constraints.allow_nvlink_direct = true;
  const auto p = shortest_path(g, a, b, opts);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->uses_nvlink(g));
}

TEST(NvlinkDirect, PathStoreAppliesOverride) {
  const Graph g = make_fig2_example();
  PathOptions opts;
  opts.constraints.allow_nvlink = false;
  opts.constraints.allow_nvlink_direct = true;
  const PathStore store(g, g.gpus(), opts);
  EXPECT_EQ(store.path(g.find("GN1"), g.find("GN2")).hops(), 1u);
  EXPECT_TRUE(store.path(g.find("GN1"), g.find("GN2")).uses_nvlink(g));
}

TEST(AlternatePaths, ReturnsDistinctRoutes) {
  // Diamond: a - {s0|s1} - b.
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId s0 = g.add_switch("s0", NodeKind::kAccessSwitch);
  const NodeId s1 = g.add_switch("s1", NodeKind::kAccessSwitch);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 1);
  g.add_edge(a, s0, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s0, b, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(a, s1, LinkKind::kEthernet, 100 * units::Gbps);
  g.add_edge(s1, b, LinkKind::kEthernet, 100 * units::Gbps);
  const auto alts = alternate_paths(g, a, b, 3);
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_NE(alts[0].edges, alts[1].edges);
}

TEST(AlternatePaths, FirstIsShortest) {
  const Graph g = make_testbed();
  const auto gpus = g.gpus();
  const auto alts = alternate_paths(g, gpus[0], gpus[5], 3);
  ASSERT_FALSE(alts.empty());
  const auto direct = shortest_path(g, gpus[0], gpus[5]);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(alts[0].edges, direct->edges);
}

TEST(AlternatePaths, ZeroKReturnsEmpty) {
  const Graph g = line_graph();
  EXPECT_TRUE(alternate_paths(g, g.find("g0"), g.find("g1"), 0).empty());
}

TEST(PathStore, MatchesSinglePairQueries) {
  const Graph g = make_testbed();
  std::vector<NodeId> terminals = g.gpus();
  for (NodeId sw : g.switches()) terminals.push_back(sw);
  const PathStore store(g, terminals);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const auto single = shortest_path(g, terminals[i], terminals[j]);
      ASSERT_TRUE(single.has_value());
      EXPECT_NEAR(raw(store.latency(terminals[i], terminals[j],
                                    1 * units::MB)),
                  raw(single->latency(g, 1 * units::MB)),
                  raw(2 * units::us))
          << "pair " << i << "," << j;
    }
  }
}

TEST(PathStore, SelfPathIsEmpty) {
  const Graph g = line_graph();
  const PathStore store(g, g.gpus());
  EXPECT_TRUE(store.path(g.find("g0"), g.find("g0")).empty());
  EXPECT_DOUBLE_EQ(raw(store.latency(g.find("g0"), g.find("g0"), 1e6)),
                   raw(0.0));
}

TEST(PathStore, NonTerminalThrows) {
  const Graph g = line_graph();
  const PathStore store(g, g.gpus());
  EXPECT_THROW((void)store.path(g.find("g0"), g.find("s0")),
               std::out_of_range);
}

TEST(PathOracle, MatchesSinglePairQueriesExactly) {
  // The oracle must be a pure memoization of shortest_path: identical node
  // and edge sequences for every pair, under both constraint regimes
  // (including the homogeneous direct-NVLink override).
  const Graph g = make_testbed();
  for (const bool hetero : {true, false}) {
    PathOptions opts;
    opts.constraints =
        PathConstraints{hetero, true, /*allow_nvlink_direct=*/!hetero};
    const PathOracle oracle(g, opts);
    for (NodeId a = 0; a < g.node_count(); ++a) {
      for (NodeId b = 0; b < g.node_count(); ++b) {
        const auto direct = shortest_path(g, a, b, opts);
        const auto cached = oracle.path(a, b);
        ASSERT_EQ(direct.has_value(), cached.has_value())
            << a << " -> " << b;
        if (!direct) continue;
        EXPECT_EQ(direct->nodes, cached->nodes) << a << " -> " << b;
        EXPECT_EQ(direct->edges, cached->edges) << a << " -> " << b;
        EXPECT_EQ(direct->latency(g, units::MiB),
                  oracle.latency(a, b, units::MiB));
      }
    }
  }
}

TEST(PathOracle, SolvesEachSourceOnce) {
  const Graph g = make_testbed();
  const PathOracle oracle(g);
  EXPECT_EQ(oracle.sources_solved(), 0u);
  const NodeId src = g.gpus()[0];
  for (NodeId sw : g.switches()) (void)oracle.path(src, sw);
  EXPECT_EQ(oracle.sources_solved(), 1u);
  (void)oracle.path(g.gpus()[1], g.switches()[0]);
  EXPECT_EQ(oracle.sources_solved(), 2u);
}

TEST(PathOracle, UnreachableLatencyIsInfinite) {
  // Ethernet-forbidden: a cross-server pair has no route.
  const Graph g = make_testbed();
  PathOptions opts;
  opts.constraints.allow_ethernet = false;
  const PathOracle oracle(g, opts);
  const auto gpus = g.gpus();
  const NodeId far = gpus.back();  // different server than gpus[0]
  ASSERT_NE(g.node(gpus[0]).gpu.server, g.node(far).gpu.server);
  EXPECT_FALSE(oracle.path(gpus[0], far).has_value());
  EXPECT_TRUE(std::isinf(raw(oracle.latency(gpus[0], far, units::MiB))));
}

TEST(PathStore, RespectsResidualBandwidth) {
  const Graph g = line_graph();
  std::vector<Bandwidth> residual(g.edge_count(), 100 * units::Gbps);
  residual[1] = 10 * units::Gbps;  // congested middle hop
  PathOptions opts;
  opts.residual_bw = residual;
  const PathStore store(g, g.gpus(), opts);
  const Time t = store.latency(g.find("g0"), g.find("g1"), 1.0 * units::MB);
  // 80us + 800us + 80us + 3us hop latencies.
  EXPECT_NEAR(raw(t), raw(963.0 * units::us), raw(1.0 * units::us));
}

/// Property: on random pure-switch graphs Dijkstra's latencies satisfy the
/// triangle inequality and symmetric pairs agree.
class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphTest, MetricProperties) {
  Rng rng(GetParam());
  Graph g;
  const std::size_t n = 8;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        g.add_switch("s" + std::to_string(i), NodeKind::kAccessSwitch));
  }
  // Random connected graph: spanning chain + extra edges.
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(nodes[i - 1], nodes[i], LinkKind::kEthernet,
               rng.uniform(10, 100) * units::Gbps);
  }
  for (int extra = 0; extra < 6; ++extra) {
    const NodeId a = nodes[rng.uniform_int(n)];
    const NodeId b = nodes[rng.uniform_int(n)];
    if (a != b) {
      g.add_edge(a, b, LinkKind::kEthernet,
                 rng.uniform(10, 100) * units::Gbps);
    }
  }
  const PathStore store(g, nodes);
  const Bytes bytes = 1.0 * units::MB;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Time dij = store.latency(nodes[i], nodes[j], bytes);
      EXPECT_NEAR(raw(dij),
                  raw(store.latency(nodes[j], nodes[i], bytes)),
                  1e-12);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LE(dij, store.latency(nodes[i], nodes[k], bytes) +
                           store.latency(nodes[k], nodes[j], bytes) + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hero::topo
