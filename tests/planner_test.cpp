// Tests for the offline planner: constrained k-means grouping, random-swap
// perturbation, queueing, candidate generation, pool splitting, and full
// Algorithm-1 planning on the testbed.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/heroserve.hpp"
#include "planner/grouping.hpp"
#include "planner/planner.hpp"
#include "planner/queueing.hpp"
#include "topology/builders.hpp"

namespace hero::planner {
namespace {

// --- queueing (Pollaczek-Khinchine) ---

TEST(Queueing, FormulaMatchesHandComputation) {
  // lambda=2, S=0.25 => rho=0.5, Tq = 2*0.0625/(2*0.5) = 0.125.
  const QueueEstimate est = pollaczek_khinchine(2.0, 0.25);
  EXPECT_TRUE(est.stable);
  EXPECT_DOUBLE_EQ(est.utilization, 0.5);
  EXPECT_DOUBLE_EQ(raw(est.queue_delay), raw(0.125));
}

TEST(Queueing, UnstableWhenRhoAtLeastOne) {
  const QueueEstimate est = pollaczek_khinchine(4.0, 0.25);
  EXPECT_FALSE(est.stable);
  EXPECT_TRUE(std::isinf(raw(est.queue_delay)));
}

TEST(Queueing, ZeroLoadIsFree) {
  EXPECT_DOUBLE_EQ(raw(pollaczek_khinchine(0.0, 1.0).queue_delay), raw(0.0));
  EXPECT_DOUBLE_EQ(raw(pollaczek_khinchine(1.0, 0.0).queue_delay), raw(0.0));
}

TEST(Queueing, DelayGrowsWithUtilization) {
  double prev = 0.0;
  for (double lam : {0.5, 1.0, 2.0, 3.0, 3.9}) {
    const QueueEstimate est = pollaczek_khinchine(lam, 0.25);
    EXPECT_GT(raw(est.queue_delay), prev);
    prev = raw(est.queue_delay);
  }
}

// --- latency matrix / constrained k-means ---

LatencyMatrix cluster_matrix() {
  // 8 "GPUs": 0-3 close together, 4-7 close together, far across.
  std::vector<topo::NodeId> ids(8);
  std::vector<Time> data(64, 0.0);
  for (std::size_t i = 0; i < 8; ++i) {
    ids[i] = static_cast<topo::NodeId>(i);
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      const bool same = (i < 4) == (j < 4);
      data[i * 8 + j] = same ? 1.0 : 10.0;
    }
  }
  return LatencyMatrix(ids, data);
}

TEST(LatencyMatrix, ShapeValidation) {
  EXPECT_THROW(LatencyMatrix({1, 2}, std::vector<Time>(3)),
               std::invalid_argument);
}

TEST(ConstrainedKmeans, BalancedGroupSizes) {
  const LatencyMatrix m = cluster_matrix();
  Rng rng(1);
  const auto groups = constrained_kmeans(m, 2, 4, rng);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[1].size(), 4u);
}

TEST(ConstrainedKmeans, RecoversNaturalClusters) {
  const LatencyMatrix m = cluster_matrix();
  Rng rng(2);
  const auto groups = constrained_kmeans(m, 2, 4, rng);
  // Each group must be all-low or all-high indices.
  for (const auto& g : groups) {
    const bool low = g[0] < 4;
    for (std::size_t idx : g) EXPECT_EQ(idx < 4, low);
  }
}

TEST(ConstrainedKmeans, PartialAssignmentLeavesLeftovers) {
  const LatencyMatrix m = cluster_matrix();
  Rng rng(3);
  const auto groups = constrained_kmeans(m, 2, 3, rng);  // uses 6 of 8
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 6u);
}

TEST(ConstrainedKmeans, InfeasibleShapesThrow) {
  const LatencyMatrix m = cluster_matrix();
  Rng rng(4);
  EXPECT_THROW(constrained_kmeans(m, 3, 4, rng), std::invalid_argument);
  EXPECT_THROW(constrained_kmeans(m, 0, 4, rng), std::invalid_argument);
}

/// Property: balanced sizes for arbitrary shapes.
class KmeansShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(KmeansShapeTest, AllGroupsExactSize) {
  const auto [groups_n, size_n] = GetParam();
  Rng rng(7);
  // Random symmetric matrix over 16 nodes.
  std::vector<topo::NodeId> ids(16);
  std::vector<Time> data(256, 0.0);
  for (std::size_t i = 0; i < 16; ++i) {
    ids[i] = static_cast<topo::NodeId>(i);
    for (std::size_t j = i + 1; j < 16; ++j) {
      data[i * 16 + j] = data[j * 16 + i] = rng.uniform(0.1, 5.0);
    }
  }
  const LatencyMatrix m(ids, data);
  const auto result = constrained_kmeans(m, groups_n, size_n, rng);
  ASSERT_EQ(result.size(), groups_n);
  for (const auto& g : result) EXPECT_EQ(g.size(), size_n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, KmeansShapeTest,
                         ::testing::Values(std::make_pair(2ul, 8ul),
                                           std::make_pair(4ul, 4ul),
                                           std::make_pair(8ul, 2ul),
                                           std::make_pair(1ul, 16ul),
                                           std::make_pair(3ul, 5ul)));

// --- perturbation ---

TEST(Perturbation, NeverIncreasesTotalCost) {
  const LatencyMatrix m = cluster_matrix();
  Rng rng(5);
  // Deliberately bad split: mixed groups. Cost = sum of pairwise
  // latencies, so single-GPU swaps make monotone progress toward the
  // natural clustering.
  std::vector<std::vector<std::size_t>> groups{{0, 1, 4, 5}, {2, 3, 6, 7}};
  auto cost = [&](const std::vector<std::size_t>& g) -> Time {
    Time total = 0.0;
    for (std::size_t i : g) {
      for (std::size_t j : g) total += m.at(i, j);
    }
    return total;
  };
  const Time before = total_group_cost(groups, cost);
  const std::size_t swaps = perturb_groups(groups, cost, rng);
  const Time after = total_group_cost(groups, cost);
  EXPECT_LE(after, before);
  EXPECT_GT(swaps, 0u);  // the bad split is improvable
  // Converged to the natural clustering: all-low/all-high.
  for (const auto& g : groups) {
    const bool low = g[0] < 4;
    for (std::size_t idx : g) EXPECT_EQ(idx < 4, low);
  }
}

TEST(Perturbation, SingleGroupIsNoop) {
  std::vector<std::vector<std::size_t>> groups{{0, 1, 2}};
  Rng rng(6);
  EXPECT_EQ(perturb_groups(groups, [](const auto&) { return 1.0; }, rng),
            0u);
}

// --- pool splitting ---

TEST(SplitPools, PrefillPrefersComputeStrongServers) {
  const topo::Graph g = topo::make_testbed();
  const PoolSplit split = split_pools(g, 10 * units::GB, 10 * units::GB, 8,
                                      8);
  ASSERT_EQ(split.prefill.size(), 8u);
  ASSERT_EQ(split.decode.size(), 8u);
  for (topo::NodeId id : split.prefill) {
    EXPECT_EQ(g.node(id).gpu.model, topo::GpuModel::kA100_40);
  }
  for (topo::NodeId id : split.decode) {
    EXPECT_EQ(g.node(id).gpu.model, topo::GpuModel::kV100_32);
  }
}

TEST(SplitPools, PoolsAreDisjoint) {
  const topo::Graph g = topo::make_testbed();
  const PoolSplit split = split_pools(g, units::GB, units::GB, 10, 6);
  for (topo::NodeId p : split.prefill) {
    for (topo::NodeId d : split.decode) EXPECT_NE(p, d);
  }
}

TEST(SplitPools, MemoryRequirementFiltersGpus) {
  const topo::Graph g = topo::make_testbed();
  // 35 GB requirement excludes the 32 GB V100s.
  const PoolSplit split = split_pools(g, 35 * units::GB, 35 * units::GB, 16,
                                      16);
  EXPECT_EQ(split.prefill.size() + split.decode.size(), 8u);
}

// --- candidate generation and planning ---

PlannerInputs testbed_inputs(const topo::Graph& graph,
                             const gpu::LatencyModel& lat,
                             bool heterogeneous = true) {
  PlannerInputs in;
  in.graph = &graph;
  in.model = llm::opt_66b();
  in.latency = &lat;
  in.batch_q = 8;
  in.k_in = 2500;
  in.k_in2 = 900000;
  in.k_out = 1500;
  in.arrival_rate = 1.0;
  in.t_sla_prefill = 2.5;
  in.t_sla_decode = 0.15;
  in.heterogeneous = heterogeneous;
  return in;
}

TEST(Candidates, RespectMemoryAndCap) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.max_candi = 10;
  OfflinePlanner planner(in);
  const auto candidates = planner.generate_candidates();
  EXPECT_LE(candidates.size(), 10u);
  EXPECT_FALSE(candidates.empty());
  const Bytes model_bytes = in.model.param_bytes();
  for (const CandidateConfig& c : candidates) {
    // m_req must fit the largest GPU (40 GB) under r_frac.
    EXPECT_LE(model_bytes / (c.prefill.gpus() * in.r_frac),
              40.0 * units::GB * 1.0001);
    EXPECT_LE(c.gpus(), g.gpus().size());
  }
  // Sorted by total GPU count.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].gpus(), candidates[i].gpus());
  }
}

TEST(Candidates, SmallModelAllowsSingleGpu) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_13b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.model = llm::opt_13b();
  OfflinePlanner planner(in);
  const auto candidates = planner.generate_candidates();
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front().prefill.gpus(), 1u);
}

TEST(Plan, FeasibleOnTestbed) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  OfflinePlanner planner(testbed_inputs(g, lat));
  const PlanResult result = planner.plan();
  ASSERT_TRUE(result.feasible) << result.infeasible_reason;
  EXPECT_LE(result.t_prefill, 2.5);
  EXPECT_LE(result.t_decode, 0.15);
  EXPECT_GT(result.throughput_h, 0.0);
  EXPECT_GT(result.candidates_evaluated, 0u);
  EXPECT_GT(result.solve_work_units, 0u);
  // Deployment shapes match the parallelism config.
  EXPECT_EQ(result.prefill.stages.size(), result.prefill.parallel.p_pipe);
  for (const GroupPlan& s : result.prefill.stages) {
    EXPECT_EQ(s.gpus.size(), result.prefill.parallel.p_tens);
  }
  // Disjoint deployments.
  for (topo::NodeId p : result.prefill.all_gpus()) {
    for (topo::NodeId d : result.decode.all_gpus()) EXPECT_NE(p, d);
  }
}

TEST(Plan, DeterministicForSeed) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  const PlanResult a = OfflinePlanner(testbed_inputs(g, lat)).plan();
  const PlanResult b = OfflinePlanner(testbed_inputs(g, lat)).plan();
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.prefill.parallel.p_tens, b.prefill.parallel.p_tens);
  EXPECT_EQ(a.decode.parallel.p_tens, b.decode.parallel.p_tens);
  EXPECT_EQ(a.prefill.all_gpus(), b.prefill.all_gpus());
  EXPECT_DOUBLE_EQ(raw(a.throughput_h), raw(b.throughput_h));
}

TEST(Plan, OverloadStillDeploysMaxCapacityConfig) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.arrival_rate = 1000.0;  // far beyond capacity
  const PlanResult result = OfflinePlanner(in).plan();
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.queue.stable);
  EXPECT_GT(result.service_rate, 0.0);
}

TEST(Plan, InfeasibleWhenSlaImpossiblyTight) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.t_sla_prefill = 1e-6;
  const PlanResult result = OfflinePlanner(in).plan();
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.infeasible_reason.empty());
}

TEST(Plan, HeterogeneousEstimatesNoWorseThanHomogeneous) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  const PlanResult hetero =
      OfflinePlanner(testbed_inputs(g, lat, true)).plan();
  const PlanResult homo =
      OfflinePlanner(testbed_inputs(g, lat, false)).plan();
  ASSERT_TRUE(hetero.feasible);
  ASSERT_TRUE(homo.feasible);
  EXPECT_GE(hetero.throughput_h, homo.throughput_h * 0.999);
}

TEST(Plan, SchemesAreInaOrRingPerGroup) {
  // Alg. 2 `getlatency` picks alpha (INA) or beta (ring) per group; when
  // INA is chosen, a switch must be elected.
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  const PlanResult result = OfflinePlanner(testbed_inputs(g, lat)).plan();
  ASSERT_TRUE(result.feasible);
  for (const auto* cluster : {&result.prefill, &result.decode}) {
    for (const GroupPlan& group : cluster->stages) {
      if (group.scheme == coll::Scheme::kInaSync) {
        EXPECT_NE(group.ina_switch, topo::kInvalidNode);
      } else {
        EXPECT_EQ(group.scheme, coll::Scheme::kRing);
      }
    }
  }
}

TEST(Plan, QDecodeBoundedByBatchLimit) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.decode_batch_limit = 16;
  const PlanResult result = OfflinePlanner(in).plan();
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.q_decode, 16u);
  EXPECT_GE(result.q_decode, 1u);
}

TEST(Plan, MinPTensForcesCrossServerGroups) {
  // min_p_tens = 8 on 4-GPU servers: every tensor group must span at least
  // two NVLink domains (the paper's SII-B deployment regime).
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.min_p_tens = 8;
  in.t_sla_prefill = 10.0;  // headroom: TP8 pays cross-server sync
  const PlanResult result = OfflinePlanner(in).plan();
  ASSERT_TRUE(result.feasible) << result.infeasible_reason;
  EXPECT_GE(result.prefill.parallel.p_tens, 8u);
  EXPECT_GE(result.decode.parallel.p_tens, 8u);
  for (const GroupPlan& stage : result.prefill.stages) {
    std::set<std::int32_t> servers;
    for (topo::NodeId id : stage.gpus) servers.insert(g.node(id).gpu.server);
    EXPECT_GE(servers.size(), 2u);
  }
}

TEST(Candidates, MinPTensFiltersNarrowConfigs) {
  const topo::Graph g = topo::make_testbed();
  const auto& lat = fitted_model(llm::opt_66b());
  PlannerInputs in = testbed_inputs(g, lat);
  in.min_p_tens = 4;
  OfflinePlanner planner(in);
  for (const CandidateConfig& c : planner.generate_candidates()) {
    EXPECT_GE(c.prefill.p_tens, 4u);
    EXPECT_GE(c.decode.p_tens, 4u);
  }
}

TEST(Planner, RequiresGraphAndLatency) {
  PlannerInputs in;
  EXPECT_THROW(OfflinePlanner{in}, std::invalid_argument);
}

}  // namespace
}  // namespace hero::planner
